# Convenience targets mirroring what CI runs.

.PHONY: build test fmt clippy lint sanity modelcheck crashcheck chaos perfline serve verify trace clean

build:
	cargo build --release --workspace

test:
	cargo test -q --release --workspace

fmt:
	cargo fmt --all --check

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Protocol lint: the eight token rules plus the four interprocedural deep
# analyses (panic-reachability, blocking-under-lock, tag matrix, atomic
# pairing), then the seed-bug self-test (every planted violation must be
# convicted). Blocking in CI.
lint:
	cargo xtask lint --deep
	cargo xtask lint --seed-bug all

# Full test suite with the runtime sanity layer armed: lock-order checking,
# MPI happens-before / protocol monitoring, deadlock detection.
sanity:
	PAPYRUS_SANITY=1 cargo test -q --release --workspace

# Model checking: rebuild the workspace with `--cfg modelcheck` (atomics and
# locks swap to the papyrus-modelcheck shims) and exhaustively explore
# bounded thread interleavings of the concurrent data structures and the
# replica promotion protocol, with DPOR pruning. The second leg proves the
# checker catches two planted concurrency bugs (a Relaxed-publication data
# race and a check-then-act promotion race).
modelcheck:
	cargo xtask modelcheck
	cargo xtask modelcheck --seed-bug all

# Crash-consistency sweep: enumerate every NVM crash point of a
# checkpoint/restart workload, verify recovery against audit_db and a KV
# oracle, then prove the checker catches three planted durability bugs.
crashcheck:
	cargo xtask crashcheck
	cargo xtask crashcheck --seed-bug all

# Chaos soak: seeded fault schedules (I/O errors, ENOSPC, slow devices,
# delay spikes, rank kills) over a multi-rank workload, judged by a KV
# oracle — no acked-write loss, no phantoms, typed errors, no hangs —
# then prove the oracle catches two planted protocol bugs. The second
# leg reruns the sweep with replication factor 2, where the oracle drops
# the dead-owner exemption: acked keys must survive a rank kill.
chaos:
	cargo xtask chaos
	cargo xtask chaos --replicas 2
	cargo xtask chaos --seed-bug all

# Perf-trajectory gate: run the YCSB-style suite, write BENCH_<sha>.json,
# and fail on >10% p99/throughput regressions vs the committed baseline;
# then prove the gate catches two planted regressions (seed-bug self-test).
# Refresh the baseline with: cargo xtask perfline --out BENCH_baseline.json
perfline:
	cargo xtask perfline --check BENCH_baseline.json
	cargo xtask perfline --seed-bug all

# Serve-plane gate: the 4-rank, 10k-connection RESP load test (run twice,
# byte-identical reports required, group commit must be visibly batching),
# then the seeded self-test (ack-before-fence must be convicted by the
# durability probe, dropped-write by the read-your-writes sweep).
serve:
	cargo xtask serve
	cargo xtask serve --seed-bug all

# The tier-1 gate: everything CI requires to pass, in one command.
verify: build test fmt clippy lint modelcheck crashcheck chaos perfline serve
	@echo "verify: OK"

# Quick observability smoke: writes trace.json (chrome://tracing / Perfetto).
trace:
	cargo run --release -p papyrus-bench --bin diag_latency -- --ranks 4 --telemetry trace.json

clean:
	cargo clean
