# Convenience targets mirroring what CI runs.

.PHONY: build test fmt clippy verify trace clean

build:
	cargo build --release --workspace

test:
	cargo test -q --release --workspace

fmt:
	cargo fmt --all --check

clippy:
	cargo clippy --workspace --all-targets

# The tier-1 gate: everything CI requires to pass, in one command.
verify: build test fmt
	@echo "verify: OK"

# Quick observability smoke: writes trace.json (chrome://tracing / Perfetto).
trace:
	cargo run --release -p papyrus-bench --bin diag_latency -- --ranks 4 --telemetry trace.json

clean:
	cargo clean
