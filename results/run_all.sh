#!/bin/bash
# Regenerate every figure's recorded output (moderate scale).
set -x
cd /root/repo
B=./target/release
$B/fig6_basic --systems                          > results/table2.txt 2>&1
$B/fig6_basic --iters 20                         > results/fig6.txt 2>&1
$B/fig7_consistency --ranks 2,4,8,16,32 --iters 12 > results/fig7.txt 2>&1
$B/fig8_get --ranks 4,8,16,32 --iters 120        > results/fig8.txt 2>&1
$B/fig9_workload --ranks 2,4,8,16 --iters 24     > results/fig9.txt 2>&1
$B/fig10_cr --ranks 2,4,8,16 --iters 20          > results/fig10.txt 2>&1
$B/fig11_mdhim --ranks 2,4,8,16,32 --iters 30    > results/fig11.txt 2>&1
$B/fig13_meraculous --ranks 4,8,16,32            > results/fig13.txt 2>&1
{ echo "# Replication overhead: R=1 vs R=2 (fig6_basic / fig7_consistency --replicas 2)"
  echo "=== fig6_basic (R=1, default) ===";        $B/fig6_basic
  echo; echo "=== fig6_basic --replicas 2 ===";    $B/fig6_basic --replicas 2
  echo; echo "=== fig7_consistency (R=1, default) ==="; $B/fig7_consistency
  echo; echo "=== fig7_consistency --replicas 2 ==="; $B/fig7_consistency --replicas 2
} > results/replica.txt 2>&1
# Perf-trajectory snapshot: the YCSB-style suite's table goes with the
# figures, and the JSON snapshot (BENCH_<sha>.json at the repo root) is
# the artifact the CI regression gate compares against BENCH_baseline.json.
$B/perfline                                      > results/perfline.txt 2>&1
echo ALL_FIGURES_DONE
