//! # mdhim — the comparison baseline for Figure 11
//!
//! A faithful-in-spirit reimplementation of MDHIM (Greenberg, Bent, Grider —
//! HotStorage'15): "a parallel embedded key/value framework for HPC" that
//! "presents a communication/distribution layer on top of the local data
//! store such as LevelDB".
//!
//! The PapyrusKV paper's §5.2 attributes MDHIM's performance gap to two
//! architectural properties, both reproduced here:
//!
//! 1. **Two discrete layers with duplicated memory structures** — the
//!    communication/distribution layer ([`Mdhim`] client + range server)
//!    keeps its own buffers and hands records to an independent local store
//!    ([`ldb::MiniLdb`], a miniature LevelDB with its own skiplist MemTable
//!    and table files), incurring "additional duplicated memory allocation
//!    and data transfer between the two layers".
//! 2. **No SSTable sharing** — each rank's LevelDB instance is private, so
//!    every remote get moves the full value over the interconnect even when
//!    the ranks share an NVM device.
//!
//! Keys are range-partitioned across ranks (MDHIM's sliced key space), each
//! rank acting as the range server for its slice.

pub mod ldb;
pub mod skiplist;
mod store;

pub use store::{range_owner, Mdhim, MdhimConfig, MdhimError};
