//! A LevelDB-style skiplist: the MiniLdb MemTable index.
//!
//! LevelDB's MemTable is a probabilistic skiplist; reimplementing it (rather
//! than reusing PapyrusKV's red-black tree) keeps the two KVS stacks'
//! local stores genuinely distinct, as in the paper's comparison.

use bytes::Bytes;

const MAX_LEVEL: usize = 12;
const NIL: usize = usize::MAX;

struct Node {
    key: Vec<u8>,
    value: Option<Bytes>,
    /// Forward pointers, one per level the node participates in.
    next: Vec<usize>,
}

/// A byte-key ordered map with O(log n) expected insert/lookup, implemented
/// as an arena skiplist with a deterministic xorshift level generator.
pub struct SkipList {
    nodes: Vec<Node>,
    /// Head forward pointers per level.
    head: [usize; MAX_LEVEL],
    level: usize,
    len: usize,
    bytes: u64,
    rng: u64,
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl SkipList {
    /// Empty list.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            head: [NIL; MAX_LEVEL],
            level: 1,
            len: 0,
            bytes: 0,
            rng: 0x9E3779B97F4A7C15,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate payload bytes held (key + value).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn random_level(&mut self) -> usize {
        // xorshift64*; each level has probability 1/4, like LevelDB.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let mut lvl = 1;
        let mut x = self.rng;
        while lvl < MAX_LEVEL && (x & 3) == 0 {
            lvl += 1;
            x >>= 2;
        }
        lvl
    }

    /// Next pointer of `node` (or the head when `node == NIL`) at `level`.
    fn fwd(&self, node: usize, level: usize) -> usize {
        if node == NIL {
            self.head[level]
        } else {
            self.nodes[node].next[level]
        }
    }

    fn set_fwd(&mut self, node: usize, level: usize, to: usize) {
        if node == NIL {
            self.head[level] = to;
        } else {
            self.nodes[node].next[level] = to;
        }
    }

    /// Insert or replace. `value = None` stores a deletion marker (LevelDB
    /// encodes deletes as marker entries in the MemTable).
    pub fn insert(&mut self, key: &[u8], value: Option<Bytes>) {
        let mut update = [NIL; MAX_LEVEL];
        let mut x = NIL;
        for lvl in (0..self.level).rev() {
            loop {
                let nxt = self.fwd(x, lvl);
                if nxt != NIL && self.nodes[nxt].key.as_slice() < key {
                    x = nxt;
                } else {
                    break;
                }
            }
            update[lvl] = x;
        }
        let candidate = self.fwd(x, 0);
        if candidate != NIL && self.nodes[candidate].key.as_slice() == key {
            // Replace in place.
            let old = self.nodes[candidate].value.take();
            self.bytes -= old.map_or(0, |v| v.len() as u64);
            self.bytes += value.as_ref().map_or(0, |v| v.len() as u64);
            self.nodes[candidate].value = value;
            return;
        }
        let lvl = self.random_level();
        if lvl > self.level {
            for u in update.iter_mut().take(lvl).skip(self.level) {
                *u = NIL;
            }
            self.level = lvl;
        }
        let idx = self.nodes.len();
        let mut next = vec![NIL; lvl];
        for (l, nxt) in next.iter_mut().enumerate() {
            *nxt = self.fwd(update[l], l);
        }
        self.bytes += key.len() as u64 + value.as_ref().map_or(0, |v| v.len() as u64);
        self.nodes.push(Node { key: key.to_vec(), value, next });
        for (l, &u) in update.iter().enumerate().take(lvl) {
            self.set_fwd(u, l, idx);
        }
        self.len += 1;
    }

    /// Look up a key. `Some(None)` means a deletion marker; `None` means the
    /// key was never written to this MemTable.
    pub fn get(&self, key: &[u8]) -> Option<Option<&Bytes>> {
        let mut x = NIL;
        for lvl in (0..self.level).rev() {
            loop {
                let nxt = self.fwd(x, lvl);
                if nxt != NIL && self.nodes[nxt].key.as_slice() < key {
                    x = nxt;
                } else {
                    break;
                }
            }
        }
        let candidate = self.fwd(x, 0);
        if candidate != NIL && self.nodes[candidate].key.as_slice() == key {
            Some(self.nodes[candidate].value.as_ref())
        } else {
            None
        }
    }

    /// Key-sorted iteration over `(key, value-or-marker)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&Bytes>)> {
        SkipIter { list: self, cur: self.head[0] }
    }

    /// Drain into a key-sorted vector, leaving the list empty.
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Option<Bytes>)> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head[0];
        while cur != NIL {
            let node = &mut self.nodes[cur];
            out.push((std::mem::take(&mut node.key), node.value.take()));
            cur = node.next[0];
        }
        *self = Self::new();
        out
    }
}

struct SkipIter<'a> {
    list: &'a SkipList,
    cur: usize,
}

impl<'a> Iterator for SkipIter<'a> {
    type Item = (&'a [u8], Option<&'a Bytes>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur];
        self.cur = node.next[0];
        Some((node.key.as_slice(), node.value.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn insert_get_basic() {
        let mut s = SkipList::new();
        assert!(s.is_empty());
        s.insert(b"b", Some(b("2")));
        s.insert(b"a", Some(b("1")));
        assert_eq!(s.get(b"a").unwrap().unwrap().as_ref(), b"1");
        assert_eq!(s.get(b"b").unwrap().unwrap().as_ref(), b"2");
        assert!(s.get(b"c").is_none());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn replace_keeps_len_updates_bytes() {
        let mut s = SkipList::new();
        s.insert(b"k", Some(b("12345")));
        let before = s.bytes();
        s.insert(b"k", Some(b("1")));
        assert_eq!(s.len(), 1);
        assert_eq!(s.bytes(), before - 4);
        assert_eq!(s.get(b"k").unwrap().unwrap().as_ref(), b"1");
    }

    #[test]
    fn deletion_markers_distinct_from_missing() {
        let mut s = SkipList::new();
        s.insert(b"dead", None);
        assert_eq!(s.get(b"dead"), Some(None));
        assert_eq!(s.get(b"never"), None);
    }

    #[test]
    fn iteration_sorted() {
        let mut s = SkipList::new();
        for k in ["m", "a", "z", "c", "q"] {
            s.insert(k.as_bytes(), Some(b(k)));
        }
        let keys: Vec<&[u8]> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&b"a"[..], b"c", b"m", b"q", b"z"]);
    }

    #[test]
    fn drain_sorted_empties() {
        let mut s = SkipList::new();
        for i in (0..100u32).rev() {
            s.insert(format!("{i:03}").as_bytes(), Some(b("v")));
        }
        let v = s.drain_sorted();
        assert_eq!(v.len(), 100);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(s.is_empty());
        assert_eq!(s.bytes(), 0);
        // Usable after drain.
        s.insert(b"x", Some(b("1")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn large_scale_against_btreemap() {
        let mut s = SkipList::new();
        let mut model = std::collections::BTreeMap::new();
        let mut x = 0xABCDEFu64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = format!("{:04}", (x >> 30) % 800);
            if (x >> 10).is_multiple_of(4) {
                s.insert(k.as_bytes(), None);
                model.insert(k, None);
            } else {
                let v = b(&format!("{}", x % 97));
                s.insert(k.as_bytes(), Some(v.clone()));
                model.insert(k, Some(v));
            }
        }
        assert_eq!(s.len(), model.len());
        for (k, v) in &model {
            assert_eq!(s.get(k.as_bytes()).unwrap(), v.as_ref());
        }
        let got: Vec<Vec<u8>> = s.iter().map(|(k, _)| k.to_vec()).collect();
        let want: Vec<Vec<u8>> = model.keys().map(|k| k.clone().into_bytes()).collect();
        assert_eq!(got, want);
    }
}
