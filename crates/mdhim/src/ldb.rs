//! MiniLdb: a miniature LevelDB-style local store, private to one rank.
//!
//! Structure: a skiplist MemTable plus a tier of immutable table files on
//! the rank's storage, each with an in-memory (key → offset) index and a
//! [min, max] key-range filter (LevelDB's table-level filtering; no bloom by
//! default, as in the MDHIM-era configuration). When the tier grows past a
//! threshold, all tables merge into one.
//!
//! Table file format (one object per table):
//! `[count: u64][record: keylen u32, vallen u32, marker u8, key, value]*`

use bytes::{Buf, BufMut, Bytes, BytesMut};
use papyrus_nvm::NvmStore;
use papyrus_simtime::{AccessPattern, Clock};

use crate::skiplist::SkipList;

const HEADER: usize = 8;
const REC_HEADER: u64 = 9;

/// One immutable table file.
struct Table {
    path: String,
    /// Sorted (key, offset) pairs — the in-memory index built at open/flush.
    index: Vec<(Vec<u8>, u64)>,
    min: Vec<u8>,
    max: Vec<u8>,
}

/// A single-rank LevelDB-like store over an [`NvmStore`].
pub struct MiniLdb {
    store: NvmStore,
    prefix: String,
    mem: SkipList,
    mem_capacity: u64,
    tables: Vec<Table>, // ascending seq
    next_seq: u64,
    merge_threshold: usize,
}

impl MiniLdb {
    /// Open a store writing under `prefix` on `store`.
    pub fn new(store: NvmStore, prefix: impl Into<String>, mem_capacity: u64) -> Self {
        Self {
            store,
            prefix: prefix.into(),
            mem: SkipList::new(),
            mem_capacity,
            tables: Vec::new(),
            next_seq: 1,
            merge_threshold: 8,
        }
    }

    /// Entries currently staged in the MemTable.
    pub fn memtable_len(&self) -> usize {
        self.mem.len()
    }

    /// Number of table files on storage.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Insert or update; flushes the MemTable synchronously when full
    /// (classic embedded-LevelDB behaviour — no PapyrusKV-style background
    /// compaction thread in this layer).
    pub fn put(&mut self, key: &[u8], value: Bytes, clock: &Clock) {
        self.mem.insert(key, Some(value));
        if self.mem.bytes() >= self.mem_capacity {
            self.flush(clock);
        }
    }

    /// Delete a key (write a deletion marker).
    pub fn delete(&mut self, key: &[u8], clock: &Clock) {
        self.mem.insert(key, None);
        if self.mem.bytes() >= self.mem_capacity {
            self.flush(clock);
        }
    }

    /// Look up a key: MemTable first, then tables newest-first.
    pub fn get(&self, key: &[u8], clock: &Clock) -> Option<Bytes> {
        match self.mem.get(key) {
            Some(Some(v)) => return Some(v.clone()),
            Some(None) => return None, // deletion marker
            None => {}
        }
        for t in self.tables.iter().rev() {
            if key < t.min.as_slice() || key > t.max.as_slice() {
                continue;
            }
            match t.index.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                Ok(i) => {
                    let off = t.index[i].1;
                    return self.read_value(t, off, clock);
                }
                Err(_) => continue,
            }
        }
        None
    }

    fn read_value(&self, t: &Table, off: u64, clock: &Clock) -> Option<Bytes> {
        let header = self.store.read(&t.path, off, REC_HEADER, AccessPattern::Random, clock)?;
        if header.len() < REC_HEADER as usize {
            return None;
        }
        let keylen = u32::from_le_bytes(header[0..4].try_into().unwrap()) as u64;
        let vallen = u32::from_le_bytes(header[4..8].try_into().unwrap()) as u64;
        let marker = header[8];
        if marker != 0 {
            return None; // persisted deletion marker
        }
        self.store.read(&t.path, off + REC_HEADER + keylen, vallen, AccessPattern::Random, clock)
    }

    /// Flush the MemTable into a new table file (synchronous).
    pub fn flush(&mut self, clock: &Clock) {
        if self.mem.is_empty() {
            return;
        }
        let entries = self.mem.drain_sorted();
        let seq = self.next_seq;
        self.next_seq += 1;
        let path = format!("{}/ldb{:08}.tbl", self.prefix, seq);

        let mut buf = BytesMut::new();
        buf.put_u64_le(entries.len() as u64);
        let mut index = Vec::with_capacity(entries.len());
        for (key, value) in &entries {
            index.push((key.clone(), buf.len() as u64));
            buf.put_u32_le(key.len() as u32);
            buf.put_u32_le(value.as_ref().map_or(0, |v| v.len() as u32));
            buf.put_u8(u8::from(value.is_none()));
            buf.put_slice(key);
            if let Some(v) = value {
                buf.put_slice(v);
            }
        }
        let min = entries.first().map(|(k, _)| k.clone()).unwrap_or_default();
        let max = entries.last().map(|(k, _)| k.clone()).unwrap_or_default();
        self.store.put(&path, buf.freeze(), clock);
        self.tables.push(Table { path, index, min, max });

        if self.tables.len() > self.merge_threshold {
            self.merge_all(clock);
        }
    }

    /// Merge every table into one (tiered compaction), newest-seq wins,
    /// dropping deletion markers.
    fn merge_all(&mut self, clock: &Clock) {
        let mut merged: std::collections::BTreeMap<Vec<u8>, Option<Bytes>> =
            std::collections::BTreeMap::new();
        let old = std::mem::take(&mut self.tables);
        for t in old.iter().rev() {
            // Sequential read of the whole table.
            let Some(data) = self.store.read_all(&t.path, clock) else { continue };
            for (key, value) in parse_table(&data) {
                merged.entry(key).or_insert(value);
            }
        }
        merged.retain(|_, v| v.is_some());
        for (key, value) in merged {
            self.mem.insert(&key, value);
        }
        // Rewrite as a single fresh table via the normal flush path (without
        // re-triggering a merge).
        let entries = self.mem.drain_sorted();
        if !entries.is_empty() {
            let seq = self.next_seq;
            self.next_seq += 1;
            let path = format!("{}/ldb{:08}.tbl", self.prefix, seq);
            let mut buf = BytesMut::new();
            buf.put_u64_le(entries.len() as u64);
            let mut index = Vec::with_capacity(entries.len());
            for (key, value) in &entries {
                index.push((key.clone(), buf.len() as u64));
                buf.put_u32_le(key.len() as u32);
                buf.put_u32_le(value.as_ref().map_or(0, |v| v.len() as u32));
                buf.put_u8(u8::from(value.is_none()));
                buf.put_slice(key);
                if let Some(v) = value {
                    buf.put_slice(v);
                }
            }
            let min = entries.first().map(|(k, _)| k.clone()).unwrap_or_default();
            let max = entries.last().map(|(k, _)| k.clone()).unwrap_or_default();
            self.store.put(&path, buf.freeze(), clock);
            self.tables.push(Table { path, index, min, max });
        }
        for t in &old {
            self.store.delete(&t.path, clock);
        }
    }
}

/// Parse a table file into `(key, value-or-marker)` pairs (skips the count
/// header; tolerates truncation by stopping early).
fn parse_table(data: &Bytes) -> Vec<(Vec<u8>, Option<Bytes>)> {
    let mut out = Vec::new();
    if data.len() < HEADER {
        return out;
    }
    let mut pos = HEADER;
    while pos + REC_HEADER as usize <= data.len() {
        let mut h = &data[pos..pos + REC_HEADER as usize];
        let keylen = h.get_u32_le() as usize;
        let vallen = h.get_u32_le() as usize;
        let marker = h.get_u8();
        pos += REC_HEADER as usize;
        if pos + keylen + vallen > data.len() {
            break;
        }
        let key = data[pos..pos + keylen].to_vec();
        let value = (marker == 0).then(|| data.slice(pos + keylen..pos + keylen + vallen));
        pos += keylen + vallen;
        out.push((key, value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use papyrus_simtime::DeviceModel;

    fn ldb(cap: u64) -> MiniLdb {
        MiniLdb::new(NvmStore::in_memory(DeviceModel::dram()), "r0", cap)
    }

    #[test]
    fn put_get_memtable_only() {
        let mut l = ldb(1 << 20);
        let c = Clock::new();
        l.put(b"a", Bytes::from_static(b"1"), &c);
        assert_eq!(l.get(b"a", &c).unwrap().as_ref(), b"1");
        assert!(l.get(b"b", &c).is_none());
        assert_eq!(l.table_count(), 0);
    }

    #[test]
    fn flush_then_get_from_table() {
        let mut l = ldb(1 << 20);
        let c = Clock::new();
        for i in 0..100 {
            l.put(format!("k{i:03}").as_bytes(), Bytes::from(format!("v{i}")), &c);
        }
        l.flush(&c);
        assert_eq!(l.memtable_len(), 0);
        assert_eq!(l.table_count(), 1);
        for i in (0..100).step_by(7) {
            assert_eq!(
                l.get(format!("k{i:03}").as_bytes(), &c).unwrap(),
                Bytes::from(format!("v{i}"))
            );
        }
        assert!(l.get(b"k999", &c).is_none());
    }

    #[test]
    fn capacity_triggers_flush() {
        let mut l = ldb(256);
        let c = Clock::new();
        for i in 0..50 {
            l.put(format!("c{i}").as_bytes(), Bytes::from(vec![b'x'; 32]), &c);
        }
        assert!(l.table_count() >= 1, "capacity must force flushes");
        for i in 0..50 {
            assert!(l.get(format!("c{i}").as_bytes(), &c).is_some(), "c{i}");
        }
    }

    #[test]
    fn newest_table_wins() {
        let mut l = ldb(1 << 20);
        let c = Clock::new();
        l.put(b"k", Bytes::from_static(b"old"), &c);
        l.flush(&c);
        l.put(b"k", Bytes::from_static(b"new"), &c);
        l.flush(&c);
        assert_eq!(l.get(b"k", &c).unwrap().as_ref(), b"new");
    }

    #[test]
    fn deletes_persist_across_flush() {
        let mut l = ldb(1 << 20);
        let c = Clock::new();
        l.put(b"d", Bytes::from_static(b"v"), &c);
        l.flush(&c);
        l.delete(b"d", &c);
        l.flush(&c);
        assert!(l.get(b"d", &c).is_none());
    }

    #[test]
    fn merge_compaction_bounds_tables() {
        let mut l = ldb(1 << 20);
        let c = Clock::new();
        for round in 0..20 {
            for i in 0..20 {
                l.put(format!("m{i:02}").as_bytes(), Bytes::from(format!("r{round}")), &c);
            }
            l.flush(&c);
        }
        assert!(l.table_count() <= 9, "merge must bound tables, got {}", l.table_count());
        for i in 0..20 {
            assert_eq!(
                l.get(format!("m{i:02}").as_bytes(), &c).unwrap(),
                Bytes::from_static(b"r19")
            );
        }
    }

    #[test]
    fn merge_drops_deleted_keys() {
        let mut l = ldb(1 << 20);
        let c = Clock::new();
        for i in 0..30 {
            l.put(format!("x{i}").as_bytes(), Bytes::from_static(b"v"), &c);
            l.flush(&c);
        }
        l.delete(b"x0", &c);
        for _ in 0..10 {
            l.flush(&c);
            l.put(b"keepalive", Bytes::from_static(b"1"), &c);
            l.flush(&c);
        }
        assert!(l.get(b"x0", &c).is_none());
        assert!(l.get(b"x1", &c).is_some());
    }

    #[test]
    fn io_costs_charged() {
        let store = NvmStore::in_memory(DeviceModel::ssd_stampede());
        let mut l = MiniLdb::new(store, "r0", 1 << 20);
        let c = Clock::new();
        for i in 0..50 {
            l.put(format!("k{i}").as_bytes(), Bytes::from(vec![0u8; 1024]), &c);
        }
        l.flush(&c);
        let after_flush = c.now();
        assert!(after_flush > 0, "flush must cost time");
        l.get(b"k25", &c).unwrap();
        assert!(c.now() > after_flush, "table read must cost time");
    }
}
