//! The MDHIM communication/distribution layer: range-partitioned clients
//! and per-rank range-server threads over [`crate::ldb::MiniLdb`].

use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use papyrus_mpi::{Communicator, RankCtx, RecvSrc, RecvTag};
use papyrus_nvm::{NvmStore, StorageMap, SystemProfile};
use papyrus_simtime::Clock;
use parking_lot::Mutex;

use crate::ldb::MiniLdb;

/// Fixed server-side software overhead per request (ns): MDHIM-tng's range
/// server hands each request from its listener thread to a worker via an
/// internal work queue, with per-request allocation — overhead PapyrusKV's
/// single integrated layer avoids (paper §5.2).
const SERVER_SW_OVERHEAD_NS: u64 = 2_000;

const TAG_PUT: u32 = 1;
const TAG_GET: u32 = 2;
const TAG_DEL: u32 = 3;
const TAG_SHUTDOWN: u32 = 4;
const TAG_PUT_ACK: u32 = 10;
const TAG_GET_RESP: u32 = 11;

/// MDHIM errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdhimError {
    /// Wire-format corruption.
    Protocol(String),
    /// Operation after finalize.
    Finalized,
}

impl std::fmt::Display for MdhimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdhimError::Protocol(s) => write!(f, "mdhim protocol error: {s}"),
            MdhimError::Finalized => write!(f, "mdhim already finalized"),
        }
    }
}

impl std::error::Error for MdhimError {}

/// MDHIM configuration.
#[derive(Clone)]
pub struct MdhimConfig {
    /// LevelDB MemTable capacity in bytes.
    pub memtable_capacity: u64,
    /// Store data on the PFS instead of node-local NVM (the Figure 11
    /// "MDHIM-L" configuration).
    pub use_pfs: bool,
}

impl Default for MdhimConfig {
    fn default() -> Self {
        Self { memtable_capacity: 64 << 20, use_pfs: false }
    }
}

/// An MDHIM instance on one rank: client API plus this rank's range server.
///
/// Keys are range-partitioned: the first 8 bytes of the key, read as a
/// big-endian integer, select the server slice (MDHIM's sliced key space).
pub struct Mdhim {
    rank: RankCtx,
    profile: SystemProfile,
    comm_req: Communicator,
    comm_rep: Communicator,
    server: Option<JoinHandle<()>>,
    finalized: bool,
}

/// Range partitioner: first 8 key bytes as a big-endian fraction of the key
/// space, mapped onto `n` slices.
pub fn range_owner(key: &[u8], n: usize) -> usize {
    let mut buf = [0u8; 8];
    for (i, b) in key.iter().take(8).enumerate() {
        buf[i] = *b;
    }
    let x = u64::from_be_bytes(buf);
    // Multiply-shift to map the full u64 range onto n slices.
    ((x as u128 * n as u128) >> 64) as usize
}

struct Server {
    ldb: Mutex<MiniLdb>,
    /// The comm/distribution layer's own staging buffer — the "discrete
    /// memory data structure" duplicated above LevelDB's MemTable that the
    /// paper identifies as MDHIM overhead. Records pass through it on every
    /// server-side operation.
    staging: Mutex<Vec<u8>>,
}

impl Mdhim {
    /// Initialise MDHIM on this rank (collective). `repo` is the storage
    /// prefix (like `PAPYRUSKV_REPOSITORY` for the mdhim app).
    pub fn init(
        rank: RankCtx,
        profile: SystemProfile,
        storage: &StorageMap,
        repo: &str,
        cfg: MdhimConfig,
    ) -> Self {
        let comm_req = rank.world().dup();
        let comm_rep = rank.world().dup();
        let me = rank.rank();
        let store: NvmStore =
            if cfg.use_pfs { storage.pfs().clone() } else { storage.nvm_of(me).clone() };
        let ldb = MiniLdb::new(store, format!("{repo}/mdhim/r{me}"), cfg.memtable_capacity);
        let server = Arc::new(Server { ldb: Mutex::new(ldb), staging: Mutex::new(Vec::new()) });

        let srv_comm = comm_req.clone();
        let rep_comm = comm_rep.clone();
        let srv_profile = profile.clone();
        let handle = std::thread::Builder::new()
            .name(format!("mdhim-srv-{me}"))
            .stack_size(1 << 20)
            .spawn(move || server_loop(server, srv_comm, rep_comm, srv_profile))
            .expect("spawn mdhim range server");

        Self { rank, profile, comm_req, comm_rep, server: Some(handle), finalized: false }
    }

    /// The range-server rank owning `key`.
    pub fn owner_of(&self, key: &[u8]) -> usize {
        range_owner(key, self.rank.size())
    }

    /// Synchronous put: serialise into the distribution layer (copy #1),
    /// message the range server, which stages (copy #2) and hands the record
    /// to LevelDB (copy #3), then acknowledge.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MdhimError> {
        if self.finalized {
            return Err(MdhimError::Finalized);
        }
        let owner = self.owner_of(key);
        let clock = self.rank.clock();
        // Client-side marshalling copy.
        clock.advance(self.profile.mem.op_ns((key.len() + value.len()) as u64));
        let payload = encode_kv(key, value, false);
        self.comm_req.send(owner, TAG_PUT, payload);
        self.comm_rep.recv(RecvSrc::Rank(owner), RecvTag::Tag(TAG_PUT_ACK));
        Ok(())
    }

    /// Synchronous delete.
    pub fn delete(&self, key: &[u8]) -> Result<(), MdhimError> {
        if self.finalized {
            return Err(MdhimError::Finalized);
        }
        let owner = self.owner_of(key);
        let clock = self.rank.clock();
        clock.advance(self.profile.mem.op_ns(key.len() as u64));
        let payload = encode_kv(key, &[], true);
        self.comm_req.send(owner, TAG_DEL, payload);
        self.comm_rep.recv(RecvSrc::Rank(owner), RecvTag::Tag(TAG_PUT_ACK));
        Ok(())
    }

    /// Synchronous get: the full value always crosses the network on remote
    /// hits — MDHIM's independent LevelDB instances cannot share tables.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>, MdhimError> {
        if self.finalized {
            return Err(MdhimError::Finalized);
        }
        let owner = self.owner_of(key);
        let clock = self.rank.clock();
        clock.advance(self.profile.mem.op_ns(key.len() as u64));
        self.comm_req.send(owner, TAG_GET, encode_kv(key, &[], false));
        let m = self.comm_rep.recv(RecvSrc::Rank(owner), RecvTag::Tag(TAG_GET_RESP));
        let mut buf = m.payload;
        if buf.remaining() < 1 {
            return Err(MdhimError::Protocol("empty get response".into()));
        }
        match buf.get_u8() {
            0 => Ok(None),
            1 => {
                // Client-side unmarshalling copy.
                clock.advance(self.profile.mem.op_ns(buf.remaining() as u64));
                Ok(Some(buf))
            }
            op => Err(MdhimError::Protocol(format!("bad get opcode {op}"))),
        }
    }

    /// Collective shutdown: barrier, stop the range server, join it. The
    /// server flushes its LevelDB MemTable on the way out, like an embedded
    /// LevelDB close.
    pub fn finalize(&mut self) -> Result<(), MdhimError> {
        if self.finalized {
            return Err(MdhimError::Finalized);
        }
        self.finalized = true;
        self.rank.world().barrier();
        self.comm_req.send(self.rank.rank(), TAG_SHUTDOWN, Bytes::new());
        if let Some(h) = self.server.take() {
            h.join().map_err(|_| MdhimError::Protocol("server panicked".into()))?;
        }
        self.rank.world().barrier();
        Ok(())
    }
}

impl Drop for Mdhim {
    fn drop(&mut self) {
        if !self.finalized {
            let _ = self.finalize();
        }
    }
}

fn server_loop(
    server: Arc<Server>,
    comm_req: Communicator,
    comm_rep: Communicator,
    profile: SystemProfile,
) {
    loop {
        let m = comm_req.recv_unstamped(RecvSrc::Any, RecvTag::Any);
        match m.tag {
            TAG_SHUTDOWN => {
                // Flush remaining MemTable contents like an ldb close.
                let clk = Clock::starting_at(m.stamp);
                server.ldb.lock().flush(&clk);
                return;
            }
            TAG_PUT | TAG_DEL => {
                let clk = Clock::starting_at(m.stamp);
                clk.advance(SERVER_SW_OVERHEAD_NS);
                if let Some((key, value, del)) = decode_kv(m.payload) {
                    // Distribution-layer staging copy (the duplicated
                    // structure), then the LevelDB-side copy.
                    {
                        let mut staging = server.staging.lock();
                        staging.clear();
                        staging.extend_from_slice(&key);
                        staging.extend_from_slice(&value);
                    }
                    clk.advance(profile.mem.op_ns((key.len() + value.len()) as u64));
                    clk.advance(profile.mem.op_ns((key.len() + value.len()) as u64));
                    let mut ldb = server.ldb.lock();
                    if del {
                        ldb.delete(&key, &clk);
                    } else {
                        ldb.put(&key, value, &clk);
                    }
                }
                comm_rep.send_at(m.src, TAG_PUT_ACK, Bytes::new(), clk.now());
            }
            TAG_GET => {
                let clk = Clock::starting_at(m.stamp);
                clk.advance(SERVER_SW_OVERHEAD_NS);
                let resp = match decode_kv(m.payload) {
                    Some((key, _, _)) => {
                        let ldb = server.ldb.lock();
                        match ldb.get(&key, &clk) {
                            Some(v) => {
                                // Server-side staging copy before the reply.
                                clk.advance(profile.mem.op_ns(v.len() as u64));
                                let mut out = BytesMut::with_capacity(1 + v.len());
                                out.put_u8(1);
                                out.put_slice(&v);
                                out.freeze()
                            }
                            None => Bytes::from_static(&[0]),
                        }
                    }
                    None => Bytes::from_static(&[0]),
                };
                comm_rep.send_at(m.src, TAG_GET_RESP, resp, clk.now());
            }
            _ => {}
        }
    }
}

fn encode_kv(key: &[u8], value: &[u8], del: bool) -> Bytes {
    let mut buf = BytesMut::with_capacity(9 + key.len() + value.len());
    buf.put_u8(u8::from(del));
    buf.put_u32_le(key.len() as u32);
    buf.put_slice(key);
    buf.put_u32_le(value.len() as u32);
    buf.put_slice(value);
    buf.freeze()
}

fn decode_kv(mut buf: Bytes) -> Option<(Vec<u8>, Bytes, bool)> {
    if buf.remaining() < 5 {
        return None;
    }
    let del = buf.get_u8() != 0;
    let klen = buf.get_u32_le() as usize;
    if buf.remaining() < klen {
        return None;
    }
    let key = buf.split_to(klen).to_vec();
    if buf.remaining() < 4 {
        return None;
    }
    let vlen = buf.get_u32_le() as usize;
    if buf.remaining() < vlen {
        return None;
    }
    let value = buf.split_to(vlen);
    Some((key, value, del))
}

#[cfg(test)]
mod tests {
    use super::*;
    use papyrus_mpi::{World, WorldConfig};

    #[test]
    fn range_owner_covers_all_slices_monotonically() {
        let n = 8;
        assert_eq!(range_owner(b"", n), 0);
        assert_eq!(range_owner(&[0xFF; 8], n), n - 1);
        // Monotone in the key prefix.
        let a = range_owner(b"aaaa", n);
        let z = range_owner(b"zzzz", n);
        assert!(a <= z);
        // Uniform random keys spread across slices.
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000u32 {
            let h = papyruskv_like_hash(i);
            seen.insert(range_owner(&h.to_be_bytes(), n));
        }
        assert_eq!(seen.len(), n);
    }

    fn papyruskv_like_hash(mut x: u32) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for _ in 0..4 {
            h ^= (x & 0xff) as u64;
            h = h.wrapping_mul(0x100000001b3);
            x >>= 8;
        }
        h
    }

    #[test]
    fn kv_wire_roundtrip() {
        let enc = encode_kv(b"key", b"value", false);
        let (k, v, del) = decode_kv(enc).unwrap();
        assert_eq!(k, b"key");
        assert_eq!(&v[..], b"value");
        assert!(!del);
        let (_, _, del) = decode_kv(encode_kv(b"k", b"", true)).unwrap();
        assert!(del);
        assert!(decode_kv(Bytes::from_static(&[1, 9, 0, 0, 0])).is_none());
    }

    #[test]
    fn put_get_across_ranks() {
        let profile = SystemProfile::test_profile();
        let storage = StorageMap::new(&profile, 4, 1);
        World::run(WorldConfig::for_tests(4), move |rank| {
            let mut m = Mdhim::init(
                rank.clone(),
                profile.clone(),
                &storage,
                "repo",
                MdhimConfig { memtable_capacity: 1 << 10, use_pfs: false },
            );
            for i in 0..50 {
                let k = format!("r{}k{i:03}", rank.rank());
                m.put(k.as_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            rank.world().barrier();
            for r in 0..rank.size() {
                for i in 0..50 {
                    let k = format!("r{r}k{i:03}");
                    let got = m.get(k.as_bytes()).unwrap().expect("present");
                    assert_eq!(&got[..], format!("v{i}").as_bytes());
                }
            }
            assert!(m.get(b"missing-key").unwrap().is_none());
            m.finalize().unwrap();
        });
    }

    #[test]
    fn delete_across_ranks() {
        let profile = SystemProfile::test_profile();
        let storage = StorageMap::new(&profile, 2, 1);
        World::run(WorldConfig::for_tests(2), move |rank| {
            let mut m = Mdhim::init(
                rank.clone(),
                profile.clone(),
                &storage,
                "repo",
                MdhimConfig::default(),
            );
            if rank.rank() == 0 {
                for i in 0..20 {
                    m.put(format!("del{i}").as_bytes(), b"v").unwrap();
                }
                for i in (0..20).step_by(2) {
                    m.delete(format!("del{i}").as_bytes()).unwrap();
                }
            }
            rank.world().barrier();
            for i in 0..20 {
                let got = m.get(format!("del{i}").as_bytes()).unwrap();
                if i % 2 == 0 {
                    assert!(got.is_none());
                } else {
                    assert!(got.is_some());
                }
            }
            m.finalize().unwrap();
        });
    }

    #[test]
    fn ops_after_finalize_fail() {
        let profile = SystemProfile::test_profile();
        let storage = StorageMap::new(&profile, 1, 1);
        World::run(WorldConfig::for_tests(1), move |rank| {
            let mut m =
                Mdhim::init(rank, profile.clone(), &storage, "repo", MdhimConfig::default());
            m.put(b"k", b"v").unwrap();
            m.finalize().unwrap();
            assert_eq!(m.put(b"k", b"v").unwrap_err(), MdhimError::Finalized);
            assert_eq!(m.get(b"k").unwrap_err(), MdhimError::Finalized);
            assert_eq!(m.finalize().unwrap_err(), MdhimError::Finalized);
        });
    }

    #[test]
    fn virtual_time_cost_higher_than_zero() {
        let profile = SystemProfile::summitdev();
        let storage = StorageMap::new(&profile, 2, 2);
        let net = profile.net.clone();
        let times = World::run(WorldConfig::new(2, net), move |rank| {
            let mut m = Mdhim::init(
                rank.clone(),
                profile.clone(),
                &storage,
                "repo",
                MdhimConfig::default(),
            );
            for i in 0..50 {
                m.put(format!("t{i}").as_bytes(), &[0u8; 1024]).unwrap();
            }
            let t = rank.now();
            m.finalize().unwrap();
            t
        });
        assert!(times.iter().all(|&t| t > 0));
    }
}
