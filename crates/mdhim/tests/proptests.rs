//! Property-based tests for the MDHIM baseline's local store.

use bytes::Bytes;
use mdhim::ldb::MiniLdb;
use mdhim::range_owner;
use mdhim::skiplist::SkipList;
use papyrus_nvm::NvmStore;
use papyrus_simtime::{Clock, DeviceModel};
use proptest::collection::vec;
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 1..16)
}

proptest! {
    /// The skiplist matches BTreeMap under arbitrary insert/marker
    /// interleavings.
    #[test]
    fn skiplist_matches_btreemap(ops in vec((key_strategy(), any::<Option<u8>>()), 0..300)) {
        let mut list = SkipList::new();
        let mut model: std::collections::BTreeMap<Vec<u8>, Option<Bytes>> = Default::default();
        for (k, v) in &ops {
            let value = v.map(|b| Bytes::from(vec![b; 3]));
            list.insert(k, value.clone());
            model.insert(k.clone(), value);
        }
        prop_assert_eq!(list.len(), model.len());
        for (k, want) in &model {
            prop_assert_eq!(list.get(k).map(|o| o.cloned()), Some(want.clone()));
        }
        let keys: Vec<Vec<u8>> = list.iter().map(|(k, _)| k.to_vec()).collect();
        let want_keys: Vec<Vec<u8>> = model.keys().cloned().collect();
        prop_assert_eq!(keys, want_keys);
    }

    /// MiniLdb with random flush points behaves like a map: the last write
    /// (or delete) per key wins, across the MemTable/table-file boundary.
    #[test]
    fn ldb_matches_map_across_flushes(
        ops in vec((key_strategy(), any::<Option<u8>>(), any::<bool>()), 0..200),
        capacity in 64u64..512,
    ) {
        let store = NvmStore::in_memory(DeviceModel::dram());
        let mut ldb = MiniLdb::new(store, "prop", capacity);
        let clock = Clock::new();
        let mut model: std::collections::HashMap<Vec<u8>, Option<Bytes>> = Default::default();
        for (k, v, flush) in &ops {
            match v {
                Some(b) => {
                    let value = Bytes::from(vec![*b; 4]);
                    ldb.put(k, value.clone(), &clock);
                    model.insert(k.clone(), Some(value));
                }
                None => {
                    ldb.delete(k, &clock);
                    model.insert(k.clone(), None);
                }
            }
            if *flush {
                ldb.flush(&clock);
            }
        }
        for (k, want) in &model {
            prop_assert_eq!(&ldb.get(k, &clock), want, "key {:?}", k);
        }
    }

    /// The range partitioner is total, stable, and monotone in the key.
    #[test]
    fn range_owner_properties(mut keys in vec(key_strategy(), 2..50), n in 1usize..100) {
        for k in &keys {
            let o = range_owner(k, n);
            prop_assert!(o < n);
            prop_assert_eq!(o, range_owner(k, n));
        }
        keys.sort();
        let owners: Vec<usize> = keys.iter().map(|k| range_owner(k, n)).collect();
        prop_assert!(owners.windows(2).all(|w| w[0] <= w[1]), "range partition must be monotone");
    }
}
