//! # papyrus-dsm
//!
//! A UPC-style distributed-shared-memory (PGAS) substrate: the baseline the
//! paper compares PapyrusKV against for the Meraculous assembler (§5.2,
//! Figure 13).
//!
//! Unified Parallel C presents a single global address space over
//! distributed memory; Meraculous implements its de Bruijn graph as a
//! distributed hash table whose accesses compile down to *one-sided* RDMA
//! gets/puts and built-in remote atomics — no software handler on the
//! remote side, which is exactly the advantage the paper measures during
//! graph traversal ("UPC shows better performance than PapyrusKV due to its
//! RDMA capability and built-in remote atomic operations").
//!
//! This crate reproduces that mechanism in-process:
//!
//! * [`GlobalHashTable`] — a hash table partitioned across ranks by key
//!   affinity (like `upc_all_alloc`-ed buckets). Remote accesses touch the
//!   owner's memory directly (threads share an address space) and are
//!   charged one-sided RDMA costs (`NetModel::rdma_ns`), lower than the
//!   two-sided message costs PapyrusKV pays.
//! * Remote atomics — [`GlobalHashTable::try_claim`] is the
//!   compare-and-swap a traversal uses to claim a vertex exactly once.

use std::sync::Arc;

use bytes::Bytes;
use papyrus_mpi::RankCtx;
use papyrus_simtime::{MemModel, NetModel, Resource};
use parking_lot::Mutex;

/// One stored entry: a value plus a claim flag (Meraculous' `used_flag`).
#[derive(Debug, Clone)]
struct Slot {
    key: Vec<u8>,
    value: Bytes,
    claimed: bool,
}

/// One rank's partition: chained buckets under fine-grained locks (UPC
/// programs guard hash-table buckets with `upc_lock_t` the same way).
struct Segment {
    buckets: Vec<Mutex<Vec<Slot>>>,
}

impl Segment {
    fn new(n_buckets: usize) -> Self {
        Self { buckets: (0..n_buckets).map(|_| Mutex::new(Vec::new())).collect() }
    }
}

/// The shared (world-wide) state of a [`GlobalHashTable`]: build once with
/// [`GlobalHashTable::shared`] outside the SPMD closure, then `attach` per
/// rank.
pub struct DsmShared {
    segments: Vec<Segment>,
    nics: Vec<Resource>,
    net: NetModel,
    mem: MemModel,
    buckets_per_rank: usize,
}

/// Per-rank handle to a distributed hash table in the global address space.
#[derive(Clone)]
pub struct GlobalHashTable {
    shared: Arc<DsmShared>,
    rank: RankCtx,
}

/// FNV-1a over the key — the affinity function (UPC applications pick their
/// own; Meraculous hashes the k-mer).
fn fnv(key: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Avalanche so both rank and bucket selection are well mixed.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^ (h >> 33)
}

impl GlobalHashTable {
    /// Build the shared state for `n_ranks` ranks with `buckets_per_rank`
    /// buckets each.
    pub fn shared(
        n_ranks: usize,
        buckets_per_rank: usize,
        net: NetModel,
        mem: MemModel,
    ) -> Arc<DsmShared> {
        assert!(n_ranks > 0 && buckets_per_rank > 0);
        Arc::new(DsmShared {
            segments: (0..n_ranks).map(|_| Segment::new(buckets_per_rank)).collect(),
            nics: (0..n_ranks).map(|_| Resource::new()).collect(),
            net,
            mem,
            buckets_per_rank,
        })
    }

    /// Attach this rank to the shared table.
    pub fn attach(shared: Arc<DsmShared>, rank: RankCtx) -> Self {
        assert_eq!(shared.segments.len(), rank.size(), "shared state built for another world");
        Self { shared, rank }
    }

    /// Owner rank of `key` (thread-data affinity).
    pub fn owner_of(&self, key: &[u8]) -> usize {
        (fnv(key) % self.shared.segments.len() as u64) as usize
    }

    fn bucket_of(&self, key: &[u8]) -> usize {
        ((fnv(key) >> 32) as usize) % self.shared.buckets_per_rank
    }

    /// Charge a one-sided access of `bytes` to/from `owner`; returns after
    /// merging the completion stamp into the caller's clock (one-sided ops
    /// are synchronous at the caller).
    fn charge(&self, owner: usize, bytes: u64) {
        let clock = self.rank.clock();
        let me = self.rank.rank();
        if owner == me {
            clock.advance(self.shared.mem.op_ns(bytes));
            return;
        }
        let cost = self.shared.net.rdma_ns(bytes);
        // The transfer occupies the remote NIC (contention — incast during
        // graph construction — emerges from the shared resource); the wire
        // latency is pipelined and does not hold the NIC.
        let occupancy = cost.saturating_sub(self.shared.net.rdma_latency);
        let done = self.shared.nics[owner].submit_with_occupancy(clock.now(), cost, occupancy);
        clock.merge(done);
    }

    /// One-sided put: insert or overwrite `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) {
        let owner = self.owner_of(key);
        self.charge(owner, (key.len() + value.len()) as u64);
        let bucket = &self.shared.segments[owner].buckets[self.bucket_of(key)];
        let mut b = bucket.lock();
        match b.iter_mut().find(|s| s.key == key) {
            Some(slot) => slot.value = Bytes::copy_from_slice(value),
            None => b.push(Slot {
                key: key.to_vec(),
                value: Bytes::copy_from_slice(value),
                claimed: false,
            }),
        }
    }

    /// One-sided insert-if-absent; returns whether the key was inserted.
    pub fn insert_if_absent(&self, key: &[u8], value: &[u8]) -> bool {
        let owner = self.owner_of(key);
        self.charge(owner, (key.len() + value.len()) as u64);
        let bucket = &self.shared.segments[owner].buckets[self.bucket_of(key)];
        let mut b = bucket.lock();
        if b.iter().any(|s| s.key == key) {
            return false;
        }
        b.push(Slot { key: key.to_vec(), value: Bytes::copy_from_slice(value), claimed: false });
        true
    }

    /// One-sided get.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let owner = self.owner_of(key);
        let bucket = &self.shared.segments[owner].buckets[self.bucket_of(key)];
        let found = bucket.lock().iter().find(|s| s.key == key).map(|s| s.value.clone());
        let bytes = key.len() as u64 + found.as_ref().map_or(0, |v| v.len() as u64);
        self.charge(owner, bytes);
        found
    }

    /// Remote atomic: claim `key` exactly once (compare-and-swap on the
    /// claim flag). Returns `true` iff this caller performed the claim.
    /// Atomics are latency-bound: charged as an 8-byte RDMA.
    pub fn try_claim(&self, key: &[u8]) -> bool {
        let owner = self.owner_of(key);
        self.charge(owner, 8);
        let bucket = &self.shared.segments[owner].buckets[self.bucket_of(key)];
        let mut b = bucket.lock();
        match b.iter_mut().find(|s| s.key == key) {
            Some(slot) if !slot.claimed => {
                slot.claimed = true;
                true
            }
            _ => false,
        }
    }

    /// Reset every claim flag (between traversal phases).
    pub fn reset_claims(&self) {
        for seg in &self.shared.segments {
            for bucket in &seg.buckets {
                for slot in bucket.lock().iter_mut() {
                    slot.claimed = false;
                }
            }
        }
    }

    /// Total entries across all ranks (collective-ish diagnostic; callers
    /// should barrier first).
    pub fn global_len(&self) -> usize {
        self.shared.segments.iter().flat_map(|s| s.buckets.iter()).map(|b| b.lock().len()).sum()
    }

    /// Keys owned by this rank (for owner-partitioned traversal seeds).
    pub fn local_keys(&self) -> Vec<Vec<u8>> {
        let me = self.rank.rank();
        self.shared.segments[me]
            .buckets
            .iter()
            .flat_map(|b| b.lock().iter().map(|s| s.key.clone()).collect::<Vec<_>>())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papyrus_mpi::{World, WorldConfig};

    fn world(n: usize) -> (Arc<DsmShared>, WorldConfig) {
        (
            GlobalHashTable::shared(n, 1024, NetModel::free(), MemModel::free()),
            WorldConfig::for_tests(n),
        )
    }

    #[test]
    fn put_get_across_ranks() {
        let (shared, cfg) = world(4);
        World::run(cfg, move |rank| {
            let t = GlobalHashTable::attach(shared.clone(), rank.clone());
            for i in 0..100 {
                t.put(format!("r{}k{i}", rank.rank()).as_bytes(), &[rank.rank() as u8, i as u8]);
            }
            rank.world().barrier();
            for r in 0..rank.size() {
                for i in 0..100 {
                    let v = t.get(format!("r{r}k{i}").as_bytes()).expect("present");
                    assert_eq!(&v[..], &[r as u8, i as u8]);
                }
            }
            assert!(t.get(b"missing").is_none());
        });
    }

    #[test]
    fn overwrite_and_insert_if_absent() {
        let (shared, cfg) = world(2);
        World::run(cfg, move |rank| {
            let t = GlobalHashTable::attach(shared.clone(), rank.clone());
            if rank.rank() == 0 {
                t.put(b"k", b"first");
                assert!(!t.insert_if_absent(b"k", b"second"));
                assert_eq!(&t.get(b"k").unwrap()[..], b"first");
                t.put(b"k", b"third");
                assert_eq!(&t.get(b"k").unwrap()[..], b"third");
                assert!(t.insert_if_absent(b"fresh", b"1"));
            }
        });
    }

    #[test]
    fn claims_are_exactly_once_across_ranks() {
        let (shared, cfg) = world(4);
        let claims = World::run(cfg, move |rank| {
            let t = GlobalHashTable::attach(shared.clone(), rank.clone());
            if rank.rank() == 0 {
                for i in 0..200 {
                    t.put(format!("c{i}").as_bytes(), b"x");
                }
            }
            rank.world().barrier();
            // Everyone races to claim every key.
            let mut mine = 0;
            for i in 0..200 {
                if t.try_claim(format!("c{i}").as_bytes()) {
                    mine += 1;
                }
            }
            mine
        });
        assert_eq!(claims.iter().sum::<usize>(), 200, "each key claimed exactly once");
    }

    #[test]
    fn claim_missing_key_is_false() {
        let (shared, cfg) = world(1);
        World::run(cfg, move |rank| {
            let t = GlobalHashTable::attach(shared.clone(), rank);
            assert!(!t.try_claim(b"ghost"));
        });
    }

    #[test]
    fn reset_claims_allows_reclaim() {
        let (shared, cfg) = world(1);
        World::run(cfg, move |rank| {
            let t = GlobalHashTable::attach(shared.clone(), rank);
            t.put(b"k", b"v");
            assert!(t.try_claim(b"k"));
            assert!(!t.try_claim(b"k"));
            t.reset_claims();
            assert!(t.try_claim(b"k"));
        });
    }

    #[test]
    fn local_keys_partition_the_table() {
        let (shared, cfg) = world(3);
        let locals = World::run(cfg, move |rank| {
            let t = GlobalHashTable::attach(shared.clone(), rank.clone());
            if rank.rank() == 0 {
                for i in 0..300 {
                    t.put(format!("p{i}").as_bytes(), b"v");
                }
            }
            rank.world().barrier();
            assert_eq!(t.global_len(), 300);
            t.local_keys().len()
        });
        assert_eq!(locals.iter().sum::<usize>(), 300);
        assert!(locals.iter().all(|&l| l > 0), "affinity should spread keys: {locals:?}");
    }

    #[test]
    fn rdma_costs_charged_remote_only() {
        let shared = GlobalHashTable::shared(2, 64, NetModel::infiniband_edr(), MemModel::free());
        let times = World::run(WorldConfig::new(2, NetModel::infiniband_edr()), move |rank| {
            let t = GlobalHashTable::attach(shared.clone(), rank.clone());
            if rank.rank() == 0 {
                // Half the keys land remote; RDMA latency must accrue.
                for i in 0..100 {
                    t.put(format!("q{i}").as_bytes(), &[0u8; 64]);
                }
            }
            rank.now()
        });
        assert!(times[0] > 0);
        assert_eq!(times[1], 0, "remote side pays nothing for one-sided ops");
    }

    #[test]
    fn rdma_cheaper_than_two_sided_round_trip() {
        let net = NetModel::infiniband_edr();
        // A one-sided get of 64B vs. a request+response message pair.
        assert!(net.rdma_ns(64) < 2 * net.msg_ns(64));
    }
}
