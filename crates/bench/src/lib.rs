//! # papyrus-bench
//!
//! Benchmark harnesses regenerating every table and figure of the paper's
//! evaluation (§5). One binary per figure under `src/bin/`:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig6_basic` | Figure 6 (put/barrier/get vs. value size, NVM vs Lustre, 3 systems) + Table 2 |
//! | `fig7_consistency` | Figure 7 (put throughput, relaxed vs sequential, ± barrier) |
//! | `fig8_get` | Figure 8 (get throughput: Default / +SG / +B / +SG+B) |
//! | `fig9_workload` | Figure 9 (read/update mixes, ± read-only protection) |
//! | `fig10_cr` | Figure 10 (checkpoint / restart / restart+redistribution) |
//! | `fig11_mdhim` | Figure 11 (PapyrusKV vs MDHIM, NVMe vs Lustre) |
//! | `fig13_meraculous` | Figure 13 (Meraculous: PapyrusKV vs UPC) |
//! | `ablations` | extra design-choice ablations (bloom, compaction trigger, cache, queue depth) |
//! | `diag_latency` | diagnostic: per-rank phase-time distribution (not a paper figure) |
//!
//! Numbers are *virtual-time* throughputs from the calibrated device and
//! network models; the goal is the paper's shape (who wins, by what factor,
//! where curves cross), not its absolute values. Every binary accepts
//! `--full` for paper-scale parameters and prints scaled-down defaults
//! otherwise; see `EXPERIMENTS.md` for recorded outputs.

pub mod workload;

use papyrus_simtime::SimNs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Alphanumeric alphabet used by the paper's key generator ("random strings
/// containing letters (a-Z) and digits (0-9) ... uniformly distributed").
const ALPHANUM: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

/// Generate `n` uniformly random alphanumeric keys of `len` bytes.
/// Deterministic in `seed` (each rank passes a distinct seed).
pub fn random_keys(n: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..len).map(|_| ALPHANUM[rng.gen_range(0..ALPHANUM.len())]).collect()).collect()
}

/// Generate a value buffer of `len` bytes.
pub fn value_of(len: usize, tag: u8) -> Vec<u8> {
    vec![tag; len]
}

/// Per-rank measurement of one phase: operations, payload bytes, and the
/// rank's virtual time spent.
#[derive(Debug, Clone, Copy)]
pub struct RankPhase {
    /// Operations completed.
    pub ops: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Virtual nanoseconds elapsed on this rank.
    pub ns: SimNs,
}

/// Aggregated phase result across ranks.
#[derive(Debug, Clone, Copy)]
pub struct PhaseResult {
    /// Total operations across ranks.
    pub ops: u64,
    /// Total payload bytes across ranks.
    pub bytes: u64,
    /// Slowest rank's virtual time — the parallel elapsed time.
    pub max_ns: SimNs,
    /// Fastest rank's virtual time.
    pub min_ns: SimNs,
    /// Mean rank virtual time.
    pub avg_ns: f64,
}

impl PhaseResult {
    /// Aggregate per-rank phases (parallel semantics: elapsed = max).
    pub fn aggregate(per_rank: &[RankPhase]) -> Self {
        let ops = per_rank.iter().map(|p| p.ops).sum();
        let bytes = per_rank.iter().map(|p| p.bytes).sum();
        let max_ns = per_rank.iter().map(|p| p.ns).max().unwrap_or(0);
        let min_ns = per_rank.iter().map(|p| p.ns).min().unwrap_or(0);
        let avg_ns = if per_rank.is_empty() {
            0.0
        } else {
            per_rank.iter().map(|p| p.ns as f64).sum::<f64>() / per_rank.len() as f64
        };
        Self { ops, bytes, max_ns, min_ns, avg_ns }
    }

    /// Aggregate throughput in kilo-requests/second (the paper's KRPS).
    pub fn krps(&self) -> f64 {
        papyrus_simtime::krps(self.ops, self.max_ns)
    }

    /// Aggregate bandwidth in MB/s (the paper's MBPS).
    pub fn mbps(&self) -> f64 {
        papyrus_simtime::mbps(self.bytes, self.max_ns)
    }

    /// Elapsed parallel time in seconds.
    pub fn seconds(&self) -> f64 {
        self.max_ns as f64 / 1e9
    }
}

/// Parsed CLI arguments shared by the figure binaries: `--full`
/// (paper-scale), `--iters N`, `--ranks a,b,c`, `--seed N`,
/// `--telemetry out.json` (Chrome trace + metrics table).
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Paper-scale parameters requested.
    pub full: bool,
    /// Iteration-count override.
    pub iters: Option<usize>,
    /// Rank-sweep override.
    pub ranks: Option<Vec<usize>>,
    /// Workload seed.
    pub seed: u64,
    /// Replication factor (`--replicas R`, default 1 = the paper's
    /// unreplicated behaviour). At 2+ every put also lands on R-1
    /// successor ranks, so the put columns show the replication overhead.
    pub replicas: usize,
    /// Chrome-trace output path; `Some` turns telemetry recording on.
    pub telemetry: Option<String>,
}

impl BenchArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (tests).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self {
            full: false,
            iters: None,
            ranks: None,
            seed: 0x5EED,
            replicas: 1,
            telemetry: None,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--iters" => {
                    out.iters = it.next().and_then(|v| v.parse().ok());
                }
                "--replicas" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        out.replicas = v;
                    }
                }
                "--telemetry" => {
                    out.telemetry = it.next();
                }
                "--ranks" => {
                    out.ranks = it
                        .next()
                        .map(|v| v.split(',').filter_map(|x| x.trim().parse().ok()).collect());
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        out.seed = v;
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Pick iteration count: explicit > full-scale > default.
    pub fn iters_or(&self, default: usize, full_scale: usize) -> usize {
        self.iters.unwrap_or(if self.full { full_scale } else { default })
    }

    /// Pick the rank sweep: explicit > full-scale > default.
    pub fn ranks_or(&self, default: &[usize], full_scale: &[usize]) -> Vec<usize> {
        match &self.ranks {
            Some(r) if !r.is_empty() => r.clone(),
            _ => if self.full { full_scale } else { default }.to_vec(),
        }
    }

    /// Start a telemetry capture window if `--telemetry` was given: zeroes
    /// the global registry and turns recording on. Call before each sweep
    /// point so the trace covers a single run (virtual clocks restart at 0
    /// every `World::run`, so merging runs would overlay their timelines).
    pub fn telemetry_begin(&self) {
        if self.telemetry.is_some() {
            papyrus_telemetry::reset();
            papyrus_telemetry::enable();
        }
    }

    /// Finish the capture: write the Chrome trace JSON (open in
    /// chrome://tracing or Perfetto), print the per-rank metrics table,
    /// and turn recording back off. No-op without `--telemetry`.
    pub fn telemetry_end(&self) {
        let Some(path) = &self.telemetry else { return };
        let snap = papyrus_telemetry::snapshot();
        papyrus_telemetry::disable();
        match snap.write_chrome_trace(path) {
            Ok(()) => eprintln!("# telemetry: chrome trace written to {path}"),
            Err(e) => eprintln!("# telemetry: failed to write {path}: {e}"),
        }
        print!("{}", snap.to_table());
    }
}

/// Human-readable value-size label (256B, 4KB, 1MB...).
pub fn size_label(bytes: usize) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Print a figure header in a consistent style.
pub fn print_header(figure: &str, description: &str) {
    println!("# {figure}: {description}");
    println!("# (virtual-time reproduction; compare shapes, not absolutes)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_alphanumeric_and_distinct() {
        let a = random_keys(100, 16, 1);
        let b = random_keys(100, 16, 1);
        let c = random_keys(100, 16, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|k| k.len() == 16));
        assert!(a.iter().all(|k| k.iter().all(|ch| ch.is_ascii_alphanumeric())));
        let uniq: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(uniq.len(), 100, "16-byte random keys should not collide");
    }

    #[test]
    fn aggregate_parallel_semantics() {
        let per_rank = vec![
            RankPhase { ops: 10, bytes: 100, ns: 50 },
            RankPhase { ops: 10, bytes: 100, ns: 200 },
        ];
        let agg = PhaseResult::aggregate(&per_rank);
        assert_eq!(agg.ops, 20);
        assert_eq!(agg.bytes, 200);
        assert_eq!(agg.max_ns, 200);
        assert_eq!(agg.min_ns, 50);
        assert!((agg.avg_ns - 125.0).abs() < 1e-9);
        // 20 ops over 200 ns = 100_000 KRPS.
        assert!((agg.krps() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn args_parse() {
        let a = BenchArgs::from_args(
            ["--full", "--iters", "99", "--ranks", "1,2,4", "--seed", "7", "--replicas", "2"]
                .map(String::from),
        );
        assert!(a.full);
        assert_eq!(a.iters, Some(99));
        assert_eq!(a.ranks, Some(vec![1, 2, 4]));
        assert_eq!(a.seed, 7);
        assert_eq!(a.replicas, 2);
        assert_eq!(a.iters_or(10, 100), 99);

        let d = BenchArgs::from_args(std::iter::empty());
        assert!(!d.full);
        assert_eq!(d.replicas, 1);
        assert_eq!(d.iters_or(10, 100), 10);
        assert_eq!(d.ranks_or(&[1, 2], &[1, 2, 3]), vec![1, 2]);
        let f = BenchArgs::from_args(["--full".to_string()]);
        assert_eq!(f.iters_or(10, 100), 100);
        assert_eq!(f.ranks_or(&[1, 2], &[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(256), "256B");
        assert_eq!(size_label(4096), "4KB");
        assert_eq!(size_label(1 << 20), "1MB");
        assert_eq!(size_label(1500), "1500B");
    }
}
