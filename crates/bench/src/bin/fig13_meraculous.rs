//! Figure 13: Meraculous performance — PapyrusKV (PKV) vs UPC on Cori.
//!
//! Total execution time (de Bruijn graph construction + traversal) on a
//! synthetic chr14-scale genome across a thread sweep, for the PapyrusKV
//! port of the distributed k-mer hash table vs. the UPC (one-sided DSM)
//! original. Expected shape: UPC faster thanks to RDMA gets and remote
//! atomics during traversal, with the gap narrowing as threads increase
//! (~1.5x at the top of the sweep in the paper).
//!
//! Also verifies the two versions' contigs agree (the artifact's
//! `check_results.sh`).

use std::sync::Arc;

use meraculous::{
    assemble::{construct, meraculous_hash, traverse, DsmBackend, PkvBackend},
    genome::{synthesize_genome, synthesize_reads, GenomeConfig},
    ufx::build_dataset,
    verify::check_contigs,
};
use papyrus_bench::{print_header, BenchArgs};
use papyrus_dsm::GlobalHashTable;
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{Context, OpenFlags, Options, Platform};

struct RunOut {
    total_ns: u64,
    contigs: Vec<Vec<u8>>,
}

fn run_pkv(
    profile: &SystemProfile,
    threads: usize,
    dataset: Arc<Vec<meraculous::UfxRecord>>,
    k: usize,
) -> RunOut {
    let platform = Platform::new(profile.clone(), threads);
    let per_rank = World::run(WorldConfig::new(threads, profile.net.clone()), move |rank| {
        let ctx = Context::init(rank.clone(), platform.clone(), "nvm://meraculous").unwrap();
        let opt = Options::default()
            .with_memtable_capacity(32 << 20)
            .with_custom_hash(Arc::new(meraculous_hash));
        let db = ctx.open("kmers", OpenFlags::create(), opt).unwrap();
        let backend = PkvBackend::new(db.clone());
        let t0 = ctx.now();
        construct(&backend, &dataset, rank.rank(), rank.size());
        let contigs = traverse(&backend, &dataset, rank.rank(), k, dataset.len() + 10);
        let t1 = ctx.now();
        db.close().unwrap();
        ctx.finalize().unwrap();
        (t1 - t0, contigs)
    });
    RunOut {
        total_ns: per_rank.iter().map(|r| r.0).max().unwrap_or(0),
        contigs: per_rank.into_iter().flat_map(|r| r.1).collect(),
    }
}

fn run_upc(
    profile: &SystemProfile,
    threads: usize,
    dataset: Arc<Vec<meraculous::UfxRecord>>,
    k: usize,
) -> RunOut {
    let shared =
        GlobalHashTable::shared(threads, 1 << 16, profile.net.clone(), profile.mem.clone());
    let per_rank = World::run(WorldConfig::new(threads, profile.net.clone()), move |rank| {
        let backend =
            DsmBackend::new(GlobalHashTable::attach(shared.clone(), rank.clone()), rank.clone());
        let t0 = rank.now();
        construct(&backend, &dataset, rank.rank(), rank.size());
        let contigs = traverse(&backend, &dataset, rank.rank(), k, dataset.len() + 10);
        let t1 = rank.now();
        (t1 - t0, contigs)
    });
    RunOut {
        total_ns: per_rank.iter().map(|r| r.0).max().unwrap_or(0),
        contigs: per_rank.into_iter().flat_map(|r| r.1).collect(),
    }
}

fn main() {
    let args = BenchArgs::parse();
    print_header("Figure 13", "Meraculous: PapyrusKV (PKV) vs UPC total execution time");

    // Synthetic stand-in for human chr14 (not redistributable); --full uses
    // a ~2 Mbp genome, default a ~200 kbp one.
    let gcfg = GenomeConfig {
        length: if args.full { 2_000_000 } else { 200_000 },
        repeats: if args.full { 400 } else { 40 },
        repeat_len: 64,
        read_len: 150,
        coverage: 6,
        seed: args.seed,
    };
    let k = 21;
    let genome = synthesize_genome(&gcfg);
    let reads = synthesize_reads(&genome, &gcfg);
    let dataset = Arc::new(build_dataset(&reads, k));
    println!(
        "# genome {} bp, {} reads, {} UFX records, k={k}",
        genome.len(),
        reads.len(),
        dataset.len()
    );

    let profile = SystemProfile::cori();
    let sweep = args.ranks_or(&[4, 8, 16, 32], &[32, 64, 128, 256, 512]);
    println!("{:>8} {:>10} {:>10} {:>10}", "threads", "PKV-s", "UPC-s", "PKV/UPC");
    let mut verified = true;
    for &n in &sweep {
        // With --telemetry, each begin resets the registry so the written
        // trace covers the final PKV run only (the UPC baseline runs
        // first: it bypasses the KV engine, and its fabric events would
        // otherwise overlay the PKV timeline).
        let upc = run_upc(&profile, n, dataset.clone(), k);
        args.telemetry_begin();
        let pkv = run_pkv(&profile, n, dataset.clone(), k);
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>10.2}",
            n,
            pkv.total_ns as f64 / 1e9,
            upc.total_ns as f64 / 1e9,
            pkv.total_ns as f64 / upc.total_ns.max(1) as f64
        );
        match check_contigs(&genome, &pkv.contigs, &upc.contigs, 900) {
            Ok(report) => {
                if n == sweep[0] {
                    println!(
                        "# verified: {} contigs, {} bases, {}.{}% genome coverage",
                        report.contigs,
                        report.bases,
                        report.coverage_permille / 10,
                        report.coverage_permille % 10
                    );
                }
            }
            Err(e) => {
                verified = false;
                println!("# VERIFICATION FAILED at {n} threads: {e}");
            }
        }
    }
    if verified {
        println!("# all contig sets verified identical across backends (check_results.sh OK)");
    }
    args.telemetry_end();
}
