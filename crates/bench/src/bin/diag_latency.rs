//! Diagnostic: per-rank phase-time distribution for the Figure 11 workload
//! — prints per-rank virtual times so scaling anomalies (stragglers,
//! contention) are visible. Not part of the paper reproduction.

use papyrus_bench::{random_keys, value_of, BenchArgs};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{Consistency, Context, OpenFlags, Options, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = BenchArgs::parse();
    let profile = SystemProfile::summitdev();
    let iters = args.iters_or(30, 1000);
    for &n in &args.ranks_or(&[2, 4, 8, 16], &[2, 4, 8, 16, 32, 64]) {
        let platform = Platform::new(profile.clone(), n);
        let seed = args.seed;
        let net = if std::env::var("DIAG_FREE_NET").is_ok() {
            papyrus_simtime::NetModel::free()
        } else {
            profile.net.clone()
        };
        let times = World::run(WorldConfig::new(n, net), move |rank| {
            let ctx = Context::init(rank.clone(), platform.clone(), "nvm://diag").unwrap();
            let opt = Options::default()
                .with_memtable_capacity(1 << 30)
                .with_consistency(Consistency::Sequential);
            let db = ctx.open("diag", OpenFlags::create(), opt).unwrap();
            let keys = random_keys(iters, 16, seed + rank.rank() as u64);
            let value = value_of(8, b'v');
            for k in &keys {
                db.put(k, &value).unwrap();
            }
            db.barrier(papyruskv::BarrierLevel::MemTable).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ (rank.rank() as u64) << 32);
            let t0 = ctx.now();
            let mut put_ns = 0u64;
            let mut get_ns = 0u64;
            for k in &keys {
                let s = ctx.now();
                if rng.gen_range(0..100) < 50 {
                    db.put(k, &value).unwrap();
                    put_ns += ctx.now() - s;
                } else {
                    let _ = db.get(k).unwrap();
                    get_ns += ctx.now() - s;
                }
            }
            let total = ctx.now() - t0;
            db.close().unwrap();
            ctx.finalize().unwrap();
            (total, put_ns, get_ns)
        });
        let max = times.iter().map(|t| t.0).max().unwrap();
        let min = times.iter().map(|t| t.0).min().unwrap();
        let avg: u64 = times.iter().map(|t| t.0).sum::<u64>() / n as u64;
        let put: u64 = times.iter().map(|t| t.1).sum::<u64>() / n as u64;
        let get: u64 = times.iter().map(|t| t.2).sum::<u64>() / n as u64;
        println!(
            "n={n:>3} phase max={:>9}ns min={:>9}ns avg={:>9}ns  avg-put={put}ns avg-get={get}ns per-op-max={}ns",
            max, min, avg, max / iters as u64
        );
    }
}
