//! Diagnostic: per-op-class virtual-latency distribution for a mixed
//! put/get workload — prints count, mean, p50/p95/p99, and max per class
//! from the telemetry histograms, so tail-latency anomalies (stragglers,
//! backlog saturation, remote round-trip contention) are visible. Not part
//! of the paper reproduction.
//!
//! With `--telemetry out.json` the final sweep point's span timeline is
//! also written as Chrome Trace JSON.

use papyrus_bench::{random_keys, value_of, BenchArgs};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyrus_telemetry::fmt_ns;
use papyruskv::{Consistency, Context, OpenFlags, Options, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Histogram names from the KV engine, one row per op class.
const CLASSES: &[(&str, &str)] = &[
    ("put", "kv.put.ns"),
    ("get-local", "kv.get.local.ns"),
    ("get-remote", "kv.get.remote.ns"),
    ("fence-wait", "kv.fence.wait.ns"),
    ("barrier-wait", "kv.barrier.wait.ns"),
];

fn main() {
    let args = BenchArgs::parse();
    let profile = SystemProfile::summitdev();
    let iters = args.iters_or(30, 1000);
    // The diagnostic runs on the histograms, so recording is always on;
    // --telemetry additionally writes the span trace.
    papyrus_telemetry::enable();
    println!(
        "{:<4} {:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "n", "class", "count", "mean", "p50", "p95", "p99", "max"
    );
    for &n in &args.ranks_or(&[2, 4, 8, 16], &[2, 4, 8, 16, 32, 64]) {
        papyrus_telemetry::reset();
        let platform = Platform::new(profile.clone(), n);
        let seed = args.seed;
        let net = if std::env::var("DIAG_FREE_NET").is_ok() {
            papyrus_simtime::NetModel::free()
        } else {
            profile.net.clone()
        };
        World::run(WorldConfig::new(n, net), move |rank| {
            let ctx = Context::init(rank.clone(), platform.clone(), "nvm://diag").unwrap();
            let opt = Options::default()
                .with_memtable_capacity(1 << 30)
                .with_consistency(Consistency::Sequential);
            let db = ctx.open("diag", OpenFlags::create(), opt).unwrap();
            let keys = random_keys(iters, 16, seed + rank.rank() as u64);
            let value = value_of(8, b'v');
            for k in &keys {
                db.put(k, &value).unwrap();
            }
            db.barrier(papyruskv::BarrierLevel::MemTable).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ (rank.rank() as u64) << 32);
            for k in &keys {
                if rng.gen_range(0..100) < 50 {
                    db.put(k, &value).unwrap();
                } else {
                    let _ = db.get(k).unwrap();
                }
            }
            db.close().unwrap();
            ctx.finalize().unwrap();
        });
        let snap = papyrus_telemetry::snapshot();
        for &(label, name) in CLASSES {
            // Merge the per-rank histograms into one distribution per class.
            let mut merged = papyrus_telemetry::HistogramData::empty();
            for (_, hname, h) in &snap.histograms {
                if hname == name {
                    merged.merge(h);
                }
            }
            if merged.count == 0 {
                continue;
            }
            println!(
                "{n:<4} {label:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                merged.count,
                fmt_ns(merged.mean() as u64),
                fmt_ns(merged.p50()),
                fmt_ns(merged.p95()),
                fmt_ns(merged.p99()),
                fmt_ns(merged.max),
            );
        }
        if let Some(path) = &args.telemetry {
            // Last sweep point wins: each World::run restarts virtual time
            // at 0, so merging runs would overlay their timelines.
            if let Err(e) = snap.write_chrome_trace(path) {
                eprintln!("# telemetry: failed to write {path}: {e}");
            }
        }
    }
    if let Some(path) = &args.telemetry {
        eprintln!("# telemetry: chrome trace written to {path}");
    }
}
