//! Figure 11: PapyrusKV (PKV) vs MDHIM on Summitdev, with NVMe (N) and
//! Lustre (L) storage, 8 B and 128 KB values.
//!
//! Workload: the Figure 9 app at a 50/50 update/read ratio — each rank runs
//! an init fill, then mixed puts and gets over the same keys. PKV runs in
//! sequential consistency (apples-to-apples with MDHIM's synchronous ops).
//!
//! Expected shape (paper §5.2): PKV above MDHIM in throughput and scaling;
//! for 8 B values both pairs (N, L) coincide (the data never leaves DRAM);
//! for 128 KB values NVMe beats Lustre for both systems, and PKV's storage
//! groups widen its lead.

use mdhim::{Mdhim, MdhimConfig};
use papyrus_bench::{print_header, random_keys, value_of, BenchArgs, PhaseResult, RankPhase};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{Consistency, Context, OpenFlags, Options, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn run_pkv(
    profile: &SystemProfile,
    ranks: usize,
    iters: usize,
    vallen: usize,
    on_pfs: bool,
    seed: u64,
) -> PhaseResult {
    let platform = Platform::new(profile.clone(), ranks);
    let repo = if on_pfs { "pfs://workload" } else { "nvm://workload" };
    let repo = repo.to_string();
    let per_rank = World::run(WorldConfig::new(ranks, profile.net.clone()), move |rank| {
        let ctx = Context::init(rank.clone(), platform.clone(), &repo).unwrap();
        // 1 MiB MemTables: the 8 B workload never reaches capacity (it
        // stays in DRAM — the paper's observation that N and L coincide),
        // while the 128 KB workload flushes to SSTables naturally.
        let opt = Options::default()
            .with_memtable_capacity(1 << 20)
            .with_consistency(Consistency::Sequential);
        let db = ctx.open("workload", OpenFlags::create(), opt).unwrap();
        let keys = random_keys(iters, 16, seed + rank.rank() as u64);
        let value = value_of(vallen, b'v');
        for k in &keys {
            db.put(k, &value).unwrap();
        }
        db.barrier(papyruskv::BarrierLevel::MemTable).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ (rank.rank() as u64) << 32);
        let t0 = ctx.now();
        let mut bytes = 0u64;
        for k in &keys {
            if rng.gen_range(0..100) < 50 {
                db.put(k, &value).unwrap();
                bytes += (16 + vallen) as u64;
            } else {
                bytes += db.get(k).unwrap().len() as u64 + 16;
            }
        }
        let t1 = ctx.now();
        db.close().unwrap();
        ctx.finalize().unwrap();
        RankPhase { ops: iters as u64, bytes, ns: t1 - t0 }
    });
    PhaseResult::aggregate(&per_rank)
}

fn run_mdhim(
    profile: &SystemProfile,
    ranks: usize,
    iters: usize,
    vallen: usize,
    on_pfs: bool,
    seed: u64,
) -> PhaseResult {
    let platform = Platform::new(profile.clone(), ranks);
    let prof = profile.clone();
    let per_rank = World::run(WorldConfig::new(ranks, profile.net.clone()), move |rank| {
        let mut m = Mdhim::init(
            rank.clone(),
            prof.clone(),
            &platform.storage,
            "workload",
            MdhimConfig { memtable_capacity: 1 << 20, use_pfs: on_pfs },
        );
        let keys = random_keys(iters, 16, seed + rank.rank() as u64);
        let value = value_of(vallen, b'v');
        for k in &keys {
            m.put(k, &value).unwrap();
        }
        rank.world().barrier();
        let mut rng = StdRng::seed_from_u64(seed ^ (rank.rank() as u64) << 32);
        let t0 = rank.now();
        let mut bytes = 0u64;
        for k in &keys {
            if rng.gen_range(0..100) < 50 {
                m.put(k, &value).unwrap();
                bytes += (16 + vallen) as u64;
            } else {
                bytes += m.get(k).unwrap().map_or(0, |v| v.len() as u64) + 16;
            }
        }
        let t1 = rank.now();
        m.finalize().unwrap();
        RankPhase { ops: iters as u64, bytes, ns: t1 - t0 }
    });
    PhaseResult::aggregate(&per_rank)
}

fn main() {
    let args = BenchArgs::parse();
    print_header("Figure 11", "PapyrusKV (PKV) vs MDHIM; NVMe (N) and Lustre (L) storage");

    let profile = SystemProfile::summitdev();
    let rpn = profile.ranks_per_node;
    let sweep = args
        .ranks_or(&[1, 2, 4, 8, 16], &[1, 2, 4, 8, 16, rpn, rpn * 2, rpn * 4, rpn * 8, rpn * 16]);
    for vallen in [8usize, 128 << 10] {
        let iters = args.iters_or(16, 10_000.min(if vallen == 8 { 10_000 } else { 1_000 }));
        println!("\n## summitdev, {}B values ({} iters/rank, update/read 50/50)", vallen, iters);
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "ranks", "PKV-N-KRPS", "PKV-L-KRPS", "MDH-N-KRPS", "MDH-L-KRPS"
        );
        for &n in &sweep {
            // With --telemetry, each begin resets the registry so the
            // written trace covers a single run — the last one (PKV on
            // Lustre; the MDHIM baseline records only fabric/NVM metrics).
            args.telemetry_begin();
            let pkv_n = run_pkv(&profile, n, iters, vallen, false, args.seed);
            let mdh_n = run_mdhim(&profile, n, iters, vallen, false, args.seed);
            let mdh_l = run_mdhim(&profile, n, iters, vallen, true, args.seed);
            args.telemetry_begin();
            let pkv_l = run_pkv(&profile, n, iters, vallen, true, args.seed);
            println!(
                "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                n,
                pkv_n.krps(),
                pkv_l.krps(),
                mdh_n.krps(),
                mdh_l.krps()
            );
        }
    }
    args.telemetry_end();
}
