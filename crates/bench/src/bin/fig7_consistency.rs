//! Figure 7: put-operation performance in relaxed (Rel) vs sequential
//! (Seq) consistency modes, with (+B) and without the trailing
//! barrier(SSTABLE), across a rank sweep on each system.
//!
//! 16-byte keys, 128 KB values. Expected shape (paper §5.2): Rel put
//! throughput ≫ Seq put throughput (memory-only vs synchronous migration),
//! but Seq+B slightly beats Rel+B because the barrier's all-to-all
//! migration congests the network harder than incremental synchronous puts.

use papyrus_bench::{print_header, random_keys, value_of, BenchArgs, PhaseResult, RankPhase};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{BarrierLevel, Consistency, Context, OpenFlags, Options, Platform};

/// One run: returns (put phase, put+barrier phase) aggregates.
fn run_config(
    profile: &SystemProfile,
    ranks: usize,
    iters: usize,
    vallen: usize,
    mode: Consistency,
    seed: u64,
    replicas: usize,
) -> (PhaseResult, PhaseResult) {
    let platform = Platform::new(profile.clone(), ranks);
    let per_rank = World::run(WorldConfig::new(ranks, profile.net.clone()), move |rank| {
        let ctx = Context::init(rank.clone(), platform.clone(), "nvm://basic").unwrap();
        let opt = Options::default()
            .with_memtable_capacity(64 << 20)
            .with_consistency(mode)
            .with_replicas(replicas);
        let db = ctx.open("basic", OpenFlags::create(), opt).unwrap();
        let keys = random_keys(iters, 16, seed + rank.rank() as u64);
        let value = value_of(vallen, b'v');
        let t0 = ctx.now();
        for k in &keys {
            db.put(k, &value).unwrap();
        }
        let t1 = ctx.now();
        db.barrier(BarrierLevel::SsTable).unwrap();
        let t2 = ctx.now();
        db.close().unwrap();
        ctx.finalize().unwrap();
        let moved = (iters * (16 + vallen)) as u64;
        (
            RankPhase { ops: iters as u64, bytes: moved, ns: t1 - t0 },
            RankPhase { ops: iters as u64, bytes: moved, ns: t2 - t0 },
        )
    });
    let put: Vec<RankPhase> = per_rank.iter().map(|r| r.0).collect();
    let put_b: Vec<RankPhase> = per_rank.iter().map(|r| r.1).collect();
    (PhaseResult::aggregate(&put), PhaseResult::aggregate(&put_b))
}

fn main() {
    let args = BenchArgs::parse();
    print_header("Figure 7", "put throughput: relaxed vs sequential consistency (B = +barrier)");

    let vallen = 128 << 10;
    for profile in SystemProfile::all_eval_systems() {
        let ranks_default: Vec<usize> = vec![1, 2, 4, 8, 16, 32];
        let rpn = profile.ranks_per_node;
        let ranks_full: Vec<usize> =
            vec![1, 2, 4, 8, rpn / 2, rpn, rpn * 2, rpn * 4, rpn * 8, rpn * 16];
        let sweep = args.ranks_or(&ranks_default, &ranks_full);
        let iters = args.iters_or(16, profile.iters.min(1000));
        let repl = if args.replicas > 1 { format!(", R={}", args.replicas) } else { String::new() };
        println!("\n## {} ({} iters/rank, 16B keys, 128KB values{repl})", profile.name, iters);
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "ranks", "Rel-MBPS", "Seq-MBPS", "Rel+B-MBPS", "Seq+B-MBPS"
        );
        for &n in &sweep {
            // With --telemetry, each begin resets the registry so the
            // written trace covers the final (sequential) configuration
            // only — virtual clocks restart at 0 every World::run, so
            // merging runs would overlay their timelines.
            args.telemetry_begin();
            let (rel, rel_b) = run_config(
                &profile,
                n,
                iters,
                vallen,
                Consistency::Relaxed,
                args.seed,
                args.replicas,
            );
            args.telemetry_begin();
            let (seq, seq_b) = run_config(
                &profile,
                n,
                iters,
                vallen,
                Consistency::Sequential,
                args.seed,
                args.replicas,
            );
            println!(
                "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                n,
                rel.mbps(),
                seq.mbps(),
                rel_b.mbps(),
                seq_b.mbps()
            );
        }
    }
    args.telemetry_end();
}
