//! Figure 10: checkpoint, restart, and restart-with-redistribution (RD)
//! performance.
//!
//! The artifact's three coupled `cr` applications: (1) fill the database
//! and checkpoint it to Lustre; (2) restart from the snapshot verbatim;
//! (3) restart with the redistribution path forced
//! (`PAPYRUSKV_FORCE_REDISTRIBUTE=1`), even though rank counts match.
//! Reports total time and aggregate bandwidth for each step.

use papyrus_bench::{print_header, random_keys, value_of, BenchArgs};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{Context, OpenFlags, Options, Platform};

struct CrResult {
    ckpt_ns: u64,
    restart_ns: u64,
    rd_ns: u64,
    bytes: u64,
}

fn run_config(
    profile: &SystemProfile,
    ranks: usize,
    iters: usize,
    vallen: usize,
    seed: u64,
) -> CrResult {
    let platform = Platform::new(profile.clone(), ranks);
    let results = World::run(WorldConfig::new(ranks, profile.net.clone()), move |rank| {
        let ctx = Context::init(rank.clone(), platform.clone(), "nvm://cr").unwrap();
        let opt = Options::default().with_memtable_capacity(16 << 20);

        // Application 1: fill + checkpoint.
        let db = ctx.open("cr", OpenFlags::create(), opt.clone()).unwrap();
        let keys = random_keys(iters, 16, seed + rank.rank() as u64);
        let value = value_of(vallen, b'v');
        for k in &keys {
            db.put(k, &value).unwrap();
        }
        let t0 = ctx.now();
        let ev = db.checkpoint("lustre-snap").unwrap();
        let ckpt_done = ev.wait();
        let ckpt_ns = ckpt_done.saturating_sub(t0);
        db.destroy().unwrap();
        ctx.barrier_all();
        if ctx.rank() == 0 {
            platform.storage.trim_nvm(); // job boundary: scratch trimmed
        }
        ctx.barrier_all();

        // Application 2: restart (same rank count, verbatim copy-back).
        let t1 = ctx.now();
        let (db2, ev2) =
            ctx.restart("lustre-snap", "cr", OpenFlags::create(), opt.clone(), false).unwrap();
        let restart_done = ev2.wait();
        let restart_ns = restart_done.saturating_sub(t1);
        db2.destroy().unwrap();
        ctx.barrier_all();
        if ctx.rank() == 0 {
            platform.storage.trim_nvm();
        }
        ctx.barrier_all();

        // Application 3: restart with forced redistribution.
        let t2 = ctx.now();
        let (db3, ev3) =
            ctx.restart("lustre-snap", "cr", OpenFlags::create(), opt.clone(), true).unwrap();
        let rd_done = ev3.wait();
        let rd_ns = rd_done.saturating_sub(t2);
        db3.close().unwrap();
        ctx.finalize().unwrap();
        (ckpt_ns, restart_ns, rd_ns)
    });
    CrResult {
        ckpt_ns: results.iter().map(|r| r.0).max().unwrap_or(0),
        restart_ns: results.iter().map(|r| r.1).max().unwrap_or(0),
        rd_ns: results.iter().map(|r| r.2).max().unwrap_or(0),
        bytes: (ranks * iters * (16 + vallen)) as u64,
    }
}

fn main() {
    let args = BenchArgs::parse();
    print_header("Figure 10", "checkpoint / restart / restart with redistribution (RD)");

    let vallen = 128 << 10;
    for profile in SystemProfile::all_eval_systems() {
        let sweep = args.ranks_or(&[2, 4, 8, 16], &[32, 64, 128, 256, 512]);
        let iters = args.iters_or(16, profile.iters.min(1000));
        println!("\n## {} ({} iters/rank, 16B keys, 128KB values)", profile.name, iters);
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "ranks", "ckpt-s", "ckpt-MBPS", "rst-s", "rst-MBPS", "rd-s", "rd-MBPS"
        );
        for &n in &sweep {
            // With --telemetry, each begin resets the registry so the
            // written trace covers the final configuration only.
            args.telemetry_begin();
            let r = run_config(&profile, n, iters, vallen, args.seed);
            let mbps = |ns: u64| papyrus_simtime::mbps(r.bytes, ns);
            println!(
                "{:>6} {:>10.3} {:>10.1} {:>10.3} {:>10.1} {:>10.3} {:>10.1}",
                n,
                r.ckpt_ns as f64 / 1e9,
                mbps(r.ckpt_ns),
                r.restart_ns as f64 / 1e9,
                mbps(r.restart_ns),
                r.rd_ns as f64 / 1e9,
                mbps(r.rd_ns),
            );
        }
    }
    args.telemetry_end();
}
