//! Figure 6: basic-operations performance in a single node.
//!
//! For each evaluation system (Summitdev, Stampede KNL, Cori Haswell) and
//! each repository placement (NVM vs Lustre), one node's worth of ranks
//! performs put / barrier(SSTABLE) / get with 16-byte keys and value sizes
//! from 256 B to 1 MB on a relaxed-consistency database. Metrics: KRPS for
//! values < 64 KB, MBPS at and above (matching the paper's two panels).
//!
//! Also prints Table 2 (the target-system summary) with `--systems`.

use papyrus_bench::{
    print_header, random_keys, size_label, value_of, BenchArgs, PhaseResult, RankPhase,
};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{BarrierLevel, Context, OpenFlags, Options, Platform};

fn print_table2() {
    println!("# Table 2: The target HPC systems.");
    println!(
        "{:<12} {:<6} {:<11} {:>6} {:>6} {:>12} {:>16} {:>10}",
        "system", "site", "nvm-arch", "rpn", "iters", "nvm-device", "interconnect", "pfs"
    );
    for s in SystemProfile::all_eval_systems() {
        println!(
            "{:<12} {:<6} {:<11} {:>6} {:>6} {:>12} {:>16} {:>10}",
            s.name,
            s.site,
            format!("{:?}", s.arch).to_lowercase(),
            s.ranks_per_node,
            s.iters,
            s.nvm.name,
            s.net.name,
            s.pfs.name,
        );
    }
}

/// One configuration run: returns (put, barrier, get) phase results.
fn run_config(
    profile: &SystemProfile,
    repo: &str,
    ranks: usize,
    iters: usize,
    vallen: usize,
    seed: u64,
    replicas: usize,
) -> (PhaseResult, PhaseResult, PhaseResult) {
    let platform = Platform::new(profile.clone(), ranks);
    let repo = repo.to_string();
    let per_rank = World::run(WorldConfig::new(ranks, profile.net.clone()), move |rank| {
        let ctx = Context::init(rank.clone(), platform.clone(), &repo).unwrap();
        let opt = Options::default().with_memtable_capacity(64 << 20).with_replicas(replicas);
        let db = ctx.open("basic", OpenFlags::create(), opt).unwrap();
        let keys = random_keys(iters, 16, seed + rank.rank() as u64);
        let value = value_of(vallen, b'v');

        let t0 = ctx.now();
        for k in &keys {
            db.put(k, &value).unwrap();
        }
        let t1 = ctx.now();
        db.barrier(BarrierLevel::SsTable).unwrap();
        let t2 = ctx.now();
        for k in &keys {
            let _ = db.get(k).unwrap();
        }
        let t3 = ctx.now();
        db.close().unwrap();
        ctx.finalize().unwrap();
        let moved = (iters * (16 + vallen)) as u64;
        (
            RankPhase { ops: iters as u64, bytes: moved, ns: t1 - t0 },
            RankPhase { ops: 1, bytes: moved, ns: t2 - t1 },
            RankPhase { ops: iters as u64, bytes: moved, ns: t3 - t2 },
        )
    });
    let put: Vec<RankPhase> = per_rank.iter().map(|r| r.0).collect();
    let bar: Vec<RankPhase> = per_rank.iter().map(|r| r.1).collect();
    let get: Vec<RankPhase> = per_rank.iter().map(|r| r.2).collect();
    (PhaseResult::aggregate(&put), PhaseResult::aggregate(&bar), PhaseResult::aggregate(&get))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--systems") {
        print_table2();
        return;
    }
    let args = BenchArgs::parse();
    print_header("Figure 6", "basic operations performance in a single node (put / barrier / get)");

    // The paper sweeps 256B..1MB; default keeps a representative subset.
    let sizes: Vec<usize> = if args.full {
        (8..=20).map(|p| 1usize << p).collect() // 256B .. 1MB
    } else {
        vec![256, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]
    };

    for profile in SystemProfile::all_eval_systems() {
        // One node's worth of ranks (paper: 20 / 68 / 32).
        let ranks = if args.full { profile.ranks_per_node } else { profile.ranks_per_node.min(16) };
        let iters = args.iters_or(24, profile.iters.min(1000));
        for (storage, repo) in [("nvm", "nvm://basic"), ("lustre", "pfs://basic")] {
            let repl =
                if args.replicas > 1 { format!(", R={}", args.replicas) } else { String::new() };
            println!(
                "\n## {} / {} ({} ranks, {} iters/rank{repl})",
                profile.name, storage, ranks, iters
            );
            println!(
                "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
                "value", "put-KRPS", "put-MBPS", "bar-MBPS", "get-KRPS", "get-MBPS", "bar-sec"
            );
            for &vallen in &sizes {
                // With --telemetry, each begin resets the registry so the
                // written trace covers the final configuration only.
                args.telemetry_begin();
                let (put, bar, get) =
                    run_config(&profile, repo, ranks, iters, vallen, args.seed, args.replicas);
                println!(
                    "{:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.4}",
                    size_label(vallen),
                    put.krps(),
                    put.mbps(),
                    bar.mbps(),
                    get.krps(),
                    get.mbps(),
                    bar.seconds(),
                );
            }
        }
    }
    args.telemetry_end();
}
