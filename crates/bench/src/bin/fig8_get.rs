//! Figure 8: get-operation performance with the two get-path optimisations
//! toggled — storage group (SG) and SSTable binary search (B).
//!
//! Workload: fill (relaxed puts) + barrier(SSTABLE) so gets hit SSTables,
//! then random gets. Configurations, as in the artifact's env toggles:
//!
//! * `Default` — `PAPYRUSKV_GROUP_SIZE=1`, linear SSData scans
//! * `Def+SG`  — node-sized (or job-sized on Cori) storage groups
//! * `Def+B`   — binary search via the in-memory SSIndex
//! * `Def+SG+B` — both (the paper's best configuration)

use papyrus_bench::{print_header, random_keys, value_of, BenchArgs, PhaseResult, RankPhase};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{BarrierLevel, Context, OpenFlags, Options, Platform};

fn run_config(
    profile: &SystemProfile,
    ranks: usize,
    iters: usize,
    vallen: usize,
    sg: bool,
    bin_search: bool,
    seed: u64,
) -> PhaseResult {
    let platform = Platform::new(profile.clone(), ranks);
    let sg_size = if sg { profile.default_group_size(ranks) } else { 1 };
    let per_rank = World::run(WorldConfig::new(ranks, profile.net.clone()), move |rank| {
        let ctx = Context::init_with_group(rank.clone(), platform.clone(), "nvm://basic", sg_size)
            .unwrap();
        let opt = Options::default().with_memtable_capacity(8 << 20).with_bin_search(bin_search);
        let db = ctx.open("basic", OpenFlags::create(), opt).unwrap();
        let keys = random_keys(iters, 16, seed + rank.rank() as u64);
        let value = value_of(vallen, b'v');
        for k in &keys {
            db.put(k, &value).unwrap();
        }
        db.barrier(BarrierLevel::SsTable).unwrap();
        let t0 = ctx.now();
        for k in &keys {
            let _ = db.get(k).unwrap();
        }
        let t1 = ctx.now();
        db.close().unwrap();
        ctx.finalize().unwrap();
        RankPhase { ops: iters as u64, bytes: (iters * (16 + vallen)) as u64, ns: t1 - t0 }
    });
    PhaseResult::aggregate(&per_rank)
}

fn main() {
    let args = BenchArgs::parse();
    print_header("Figure 8", "get throughput: storage group (SG) and SSTable binary search (B)");

    let vallen = 128 << 10;
    for profile in SystemProfile::all_eval_systems() {
        let rpn = profile.ranks_per_node;
        let sweep =
            args.ranks_or(&[2, 4, 8, 16, 32], &[1, 2, 4, 8, rpn, rpn * 2, rpn * 4, rpn * 8]);
        let iters = args.iters_or(16, profile.iters.min(1000));
        println!("\n## {} ({} iters/rank, 16B keys, 128KB values)", profile.name, iters);
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "ranks", "Def-MBPS", "Def+SG", "Def+B", "Def+SG+B"
        );
        for &n in &sweep {
            let d = run_config(&profile, n, iters, vallen, false, false, args.seed);
            let sg = run_config(&profile, n, iters, vallen, true, false, args.seed);
            let b = run_config(&profile, n, iters, vallen, false, true, args.seed);
            // With --telemetry, each begin resets the registry so the trace
            // covers the best (SG+B) configuration of the final sweep point.
            args.telemetry_begin();
            let sgb = run_config(&profile, n, iters, vallen, true, true, args.seed);
            println!(
                "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                n,
                d.mbps(),
                sg.mbps(),
                b.mbps(),
                sgb.mbps()
            );
        }
    }
    args.telemetry_end();
}
