//! Ablation studies for PapyrusKV's design choices (not a paper figure —
//! the complementary experiments DESIGN.md calls out): bloom filters,
//! merge-compaction trigger, local-cache capacity, and flush-queue depth.
//!
//! Each ablation runs the same fill + mixed-read workload on Summitdev's
//! profile with one knob varied, reporting get/put virtual-time throughput
//! and storage amplification.

use papyrus_bench::{random_keys, value_of, BenchArgs, PhaseResult, RankPhase};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{BarrierLevel, Context, OpenFlags, Options, Platform};

struct AblationOut {
    get: PhaseResult,
    sstables: usize,
    hit_ratio: f64,
}

fn run(
    profile: &SystemProfile,
    ranks: usize,
    iters: usize,
    opt: Options,
    seed: u64,
) -> AblationOut {
    let platform = Platform::new(profile.clone(), ranks);
    let per_rank = World::run(WorldConfig::new(ranks, profile.net.clone()), move |rank| {
        let ctx = Context::init(rank.clone(), platform.clone(), "nvm://ablate").unwrap();
        let db = ctx.open("db", OpenFlags::create(), opt.clone()).unwrap();
        let keys = random_keys(iters, 16, seed + rank.rank() as u64);
        let value = value_of(32 << 10, b'v');
        for k in &keys {
            db.put(k, &value).unwrap();
        }
        db.barrier(BarrierLevel::SsTable).unwrap();
        let t0 = ctx.now();
        // Two passes: the second exercises the caches; plus misses.
        for pass in 0..2 {
            for k in &keys {
                let _ = db.get(k).unwrap();
            }
            if pass == 0 {
                for k in &keys {
                    let mut missing = k.clone();
                    missing.push(b'!');
                    let _ = db.get(&missing); // definite miss: bloom's case
                }
            }
        }
        let t1 = ctx.now();
        let ssts = db.sstable_count();
        let (h, m) = (db.get_stats().hits(), db.get_stats().misses());
        db.close().unwrap();
        ctx.finalize().unwrap();
        (
            RankPhase {
                ops: 3 * iters as u64,
                bytes: (3 * iters * (16 + (32 << 10))) as u64,
                ns: t1 - t0,
            },
            ssts,
            if h + m == 0 { 0.0 } else { h as f64 / (h + m) as f64 },
        )
    });
    AblationOut {
        get: PhaseResult::aggregate(&per_rank.iter().map(|r| r.0).collect::<Vec<_>>()),
        sstables: per_rank.iter().map(|r| r.1).max().unwrap_or(0),
        hit_ratio: per_rank.iter().map(|r| r.2).sum::<f64>() / per_rank.len() as f64,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let profile = SystemProfile::summitdev();
    let ranks = 8;
    let iters = args.iters_or(60, 1000);
    let base = || Options::default().with_memtable_capacity(256 << 10);

    println!("# Ablations (summitdev profile, {ranks} ranks, {iters} iters/rank, 32KB values)");
    println!("# workload: fill, barrier(SSTABLE), then hit+miss read passes\n");

    println!("## Bloom filters (skip-table test on definite misses)");
    println!("{:>10} {:>12} {:>10}", "bloom", "get-MBPS", "ssts");
    for on in [true, false] {
        let out = run(&profile, ranks, iters, base().with_bloom_filter(on), args.seed);
        println!("{:>10} {:>12.1} {:>10}", on, out.get.mbps(), out.sstables);
    }

    println!("\n## Merge-compaction trigger (SSID multiple; 0 = off)");
    println!("{:>10} {:>12} {:>10}", "trigger", "get-MBPS", "ssts");
    for trigger in [0u64, 2, 4, 8, 16] {
        let mut opt = base();
        opt.compaction_trigger = trigger;
        let out = run(&profile, ranks, iters, opt, args.seed);
        println!("{:>10} {:>12.1} {:>10}", trigger, out.get.mbps(), out.sstables);
    }

    println!("\n## Local cache capacity (repeat-read hit ratio)");
    println!("{:>10} {:>12} {:>10}", "capacity", "get-MBPS", "hit-ratio");
    for cap in [0u64, 256 << 10, 4 << 20, 64 << 20] {
        let mut opt = base();
        opt.local_cache = cap > 0;
        opt.local_cache_capacity = cap.max(1);
        let out = run(&profile, ranks, iters, opt, args.seed);
        println!("{:>10} {:>12.1} {:>10.3}", cap >> 10, out.get.mbps(), out.hit_ratio);
    }

    println!("\n## Flush-queue depth (put-side backpressure)");
    println!("{:>10} {:>12}", "depth", "get-MBPS");
    for depth in [1usize, 2, 4, 16] {
        let mut opt = base();
        opt.flush_queue_len = depth;
        let out = run(&profile, ranks, iters, opt, args.seed);
        println!("{:>10} {:>12.1}", depth, out.get.mbps());
    }
}
