//! Figure 9: various workloads and caching.
//!
//! Two phases per run, both in *sequential* consistency mode (as in the
//! artifact's workload app): an initialisation phase of puts, then a
//! read/update phase mixing gets and puts over the same keys at ratios
//! 50/50, 95/5, and 100/0. The `100/0+P` configuration additionally sets
//! `PAPYRUSKV_RDONLY` protection during the read phase, enabling the remote
//! cache (§3.2).
//!
//! The read/update mixes are expressed through the shared YCSB-style
//! vocabulary in [`papyrus_bench::workload`] (the same generators drive
//! the `papyrus-perfline` trajectory suite).

use papyrus_bench::workload::{fig9_mix, Mix, Op};
use papyrus_bench::{print_header, random_keys, value_of, BenchArgs, PhaseResult, RankPhase};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{Consistency, Context, OpenFlags, Options, Platform, Protection};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run init + read/update phases; returns the read/update phase aggregate.
fn run_config(
    profile: &SystemProfile,
    ranks: usize,
    iters: usize,
    vallen: usize,
    mix: Mix,
    protect_readonly: bool,
    seed: u64,
) -> PhaseResult {
    let platform = Platform::new(profile.clone(), ranks);
    let per_rank = World::run(WorldConfig::new(ranks, profile.net.clone()), move |rank| {
        let ctx = Context::init(rank.clone(), platform.clone(), "nvm://workload").unwrap();
        let opt = Options::default()
            .with_memtable_capacity(32 << 20)
            .with_consistency(Consistency::Sequential);
        let db = ctx.open("workload", OpenFlags::create(), opt).unwrap();
        let keys = random_keys(iters, 16, seed + rank.rank() as u64);
        let value = value_of(vallen, b'v');
        // Initialisation phase.
        for k in &keys {
            db.put(k, &value).unwrap();
        }
        db.barrier(papyruskv::BarrierLevel::MemTable).unwrap();
        if protect_readonly {
            db.protect(Protection::ReadOnly).unwrap();
        }
        // Read/update phase over the same keys.
        let mut rng = StdRng::seed_from_u64(seed ^ (rank.rank() as u64) << 32);
        let t0 = ctx.now();
        let mut bytes = 0u64;
        for k in &keys {
            match mix.next_op(&mut rng) {
                Op::Update => {
                    db.put(k, &value).unwrap();
                    bytes += (16 + vallen) as u64;
                }
                _ => bytes += db.get(k).unwrap().len() as u64 + 16,
            }
        }
        let t1 = ctx.now();
        if protect_readonly {
            db.protect(Protection::ReadWrite).unwrap();
        }
        db.close().unwrap();
        ctx.finalize().unwrap();
        RankPhase { ops: iters as u64, bytes, ns: t1 - t0 }
    });
    PhaseResult::aggregate(&per_rank)
}

fn main() {
    let args = BenchArgs::parse();
    print_header(
        "Figure 9",
        "read/update workload mixes (P = PAPYRUSKV_RDONLY protection enabling the remote cache)",
    );

    let m5050 = fig9_mix("50/50", 50);
    let m955 = fig9_mix("95/5", 5);
    let m1000 = fig9_mix("100/0", 0);
    let vallen = 128 << 10;
    for profile in SystemProfile::all_eval_systems() {
        let rpn = profile.ranks_per_node;
        let sweep = args.ranks_or(&[1, 2, 4, 8, 16], &[1, 2, 4, 8, rpn, rpn * 2, rpn * 4, rpn * 8]);
        let iters = args.iters_or(16, profile.iters.min(1000));
        println!("\n## {} ({} iters/rank, 16B keys, 128KB values)", profile.name, iters);
        println!("{:>6} {:>12} {:>12} {:>12} {:>12}", "ranks", "50/50", "95/5", "100/0", "100/0+P");
        for &n in &sweep {
            // With --telemetry, each begin resets the registry so the
            // written trace covers the final configuration only.
            let run = |mix: Mix, protect: bool| {
                args.telemetry_begin();
                run_config(&profile, n, iters, vallen, mix, protect, args.seed)
            };
            let r5050 = run(m5050, false);
            let r955 = run(m955, false);
            let r1000 = run(m1000, false);
            let r1000p = run(m1000, true);
            println!(
                "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                n,
                r5050.mbps(),
                r955.mbps(),
                r1000.mbps(),
                r1000p.mbps()
            );
        }
    }
    args.telemetry_end();
}
