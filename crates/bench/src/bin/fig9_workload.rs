//! Figure 9: various workloads and caching.
//!
//! Two phases per run, both in *sequential* consistency mode (as in the
//! artifact's workload app): an initialisation phase of puts, then a
//! read/update phase mixing gets and puts over the same keys at ratios
//! 50/50, 95/5, and 100/0. The `100/0+P` configuration additionally sets
//! `PAPYRUSKV_RDONLY` protection during the read phase, enabling the remote
//! cache (§3.2).

use papyrus_bench::{print_header, random_keys, value_of, BenchArgs, PhaseResult, RankPhase};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{Consistency, Context, OpenFlags, Options, Platform, Protection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run init + read/update phases; returns the read/update phase aggregate.
/// `update_pct` = percentage of operations that are puts (0-100).
fn run_config(
    profile: &SystemProfile,
    ranks: usize,
    iters: usize,
    vallen: usize,
    update_pct: usize,
    protect_readonly: bool,
    seed: u64,
) -> PhaseResult {
    let platform = Platform::new(profile.clone(), ranks);
    let per_rank = World::run(WorldConfig::new(ranks, profile.net.clone()), move |rank| {
        let ctx = Context::init(rank.clone(), platform.clone(), "nvm://workload").unwrap();
        let opt = Options::default()
            .with_memtable_capacity(32 << 20)
            .with_consistency(Consistency::Sequential);
        let db = ctx.open("workload", OpenFlags::create(), opt).unwrap();
        let keys = random_keys(iters, 16, seed + rank.rank() as u64);
        let value = value_of(vallen, b'v');
        // Initialisation phase.
        for k in &keys {
            db.put(k, &value).unwrap();
        }
        db.barrier(papyruskv::BarrierLevel::MemTable).unwrap();
        if protect_readonly {
            db.protect(Protection::ReadOnly).unwrap();
        }
        // Read/update phase over the same keys.
        let mut rng = StdRng::seed_from_u64(seed ^ (rank.rank() as u64) << 32);
        let t0 = ctx.now();
        let mut bytes = 0u64;
        for k in &keys {
            if rng.gen_range(0..100) < update_pct {
                db.put(k, &value).unwrap();
                bytes += (16 + vallen) as u64;
            } else {
                bytes += db.get(k).unwrap().len() as u64 + 16;
            }
        }
        let t1 = ctx.now();
        if protect_readonly {
            db.protect(Protection::ReadWrite).unwrap();
        }
        db.close().unwrap();
        ctx.finalize().unwrap();
        RankPhase { ops: iters as u64, bytes, ns: t1 - t0 }
    });
    PhaseResult::aggregate(&per_rank)
}

fn main() {
    let args = BenchArgs::parse();
    print_header(
        "Figure 9",
        "read/update workload mixes (P = PAPYRUSKV_RDONLY protection enabling the remote cache)",
    );

    let vallen = 128 << 10;
    for profile in SystemProfile::all_eval_systems() {
        let rpn = profile.ranks_per_node;
        let sweep = args.ranks_or(&[1, 2, 4, 8, 16], &[1, 2, 4, 8, rpn, rpn * 2, rpn * 4, rpn * 8]);
        let iters = args.iters_or(16, profile.iters.min(1000));
        println!("\n## {} ({} iters/rank, 16B keys, 128KB values)", profile.name, iters);
        println!("{:>6} {:>12} {:>12} {:>12} {:>12}", "ranks", "50/50", "95/5", "100/0", "100/0+P");
        for &n in &sweep {
            let m5050 = run_config(&profile, n, iters, vallen, 50, false, args.seed);
            let m955 = run_config(&profile, n, iters, vallen, 5, false, args.seed);
            let m1000 = run_config(&profile, n, iters, vallen, 0, false, args.seed);
            let m1000p = run_config(&profile, n, iters, vallen, 0, true, args.seed);
            println!(
                "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                n,
                m5050.mbps(),
                m955.mbps(),
                m1000.mbps(),
                m1000p.mbps()
            );
        }
    }
}
