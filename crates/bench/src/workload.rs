//! YCSB-style workload mixes and key-skew generators, shared by the
//! figure binaries and the `papyrus-perfline` trajectory suite.
//!
//! Three pieces:
//!
//! - [`KeyDist`] / [`KeyChooser`] — uniform, zipfian (YCSB's
//!   Gray-et-al. rejection-free generator with FNV scatter), hotspot, and
//!   latest key-index distributions over an ordered keyspace.
//! - [`Mix`] — the six standard YCSB mixes A–F as operation-ratio tables,
//!   plus the figure-9 read/update mixes expressed in the same vocabulary.
//! - [`ordered_key`] — the `user<index>` keyspace encoding: ordered indices
//!   make scans meaningful (a scan reads `len` consecutive indices) while
//!   the store's key hash still spreads ownership across ranks.
//!
//! Everything is deterministic in the caller-provided seed, and — by
//! design — the *distribution over the keyspace* does not depend on how
//! many ranks are drawing from it: each rank seeds its own chooser, and
//! the union of their draws converges to the same shape at any rank count
//! (tested below).

use rand::rngs::StdRng;
use rand::Rng;

/// Default zipfian exponent (YCSB's `zipfian_const`).
pub const ZIPF_THETA: f64 = 0.99;

/// Default hotspot shape: 20% of the keyspace receives 80% of operations.
pub const HOTSPOT_SET_FRACTION: f64 = 0.2;
/// Fraction of operations aimed at the hot set.
pub const HOTSPOT_OP_FRACTION: f64 = 0.8;

/// Encode an ordered key index as a fixed-width key (`user00000000042`).
/// Fixed width keeps keys length-uniform (as in the paper's workloads)
/// and makes index order and lexicographic order agree.
pub fn ordered_key(index: u64) -> Vec<u8> {
    format!("user{index:012}").into_bytes()
}

/// Key-index distribution over an `n`-item keyspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every index equally likely.
    Uniform,
    /// Zipf-distributed popularity with exponent `theta`, scattered over
    /// the keyspace by an FNV hash so the hot items are not clustered on
    /// one owner rank (YCSB `ScrambledZipfianGenerator`).
    Zipfian {
        /// Skew exponent in (0, 1); [`ZIPF_THETA`] matches YCSB.
        theta: f64,
    },
    /// A hot subset of the keyspace absorbs most operations (YCSB
    /// `HotspotIntegerGenerator`): `set_fraction` of indices receive
    /// `op_fraction` of draws, the rest are uniform over the cold set.
    Hotspot {
        /// Fraction of the keyspace that is hot, in (0, 1).
        set_fraction: f64,
        /// Fraction of operations aimed at the hot set, in (0, 1).
        op_fraction: f64,
    },
    /// Recency-skewed: zipfian over "items ago" from the newest index
    /// (YCSB's `SkewedLatestGenerator`, used by workload D's reads).
    Latest,
}

impl KeyDist {
    /// Canonical short label used in snapshot row ids.
    pub fn label(&self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipfian { .. } => "zipfian",
            KeyDist::Hotspot { .. } => "hotspot",
            KeyDist::Latest => "latest",
        }
    }
}

/// FNV-1a over the index bytes: decorrelates zipfian rank from keyspace
/// position so popular keys spread across owner ranks.
fn fnv_scatter(i: u64, n: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in i.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h % n
}

/// Draws key indices in `[0, n)` from a [`KeyDist`]. One chooser per rank;
/// construction precomputes the zipfian normalisation constants (O(n),
/// done once per workload cell).
#[derive(Debug, Clone)]
pub struct KeyChooser {
    dist: KeyDist,
    n: u64,
    // Zipfian constants (Gray et al., "Quickly generating billion-record
    // synthetic databases"): zeta(n, theta), alpha, eta.
    zeta_n: f64,
    theta: f64,
    alpha: f64,
    eta: f64,
}

impl KeyChooser {
    /// Chooser over an `n`-index keyspace. Panics if `n == 0`.
    pub fn new(dist: KeyDist, n: u64) -> Self {
        assert!(n > 0, "empty keyspace");
        let theta = match dist {
            KeyDist::Zipfian { theta } => theta,
            KeyDist::Latest => ZIPF_THETA,
            _ => 0.0,
        };
        let (zeta_n, alpha, eta) = if theta > 0.0 {
            let zeta_n = zeta(n, theta);
            let zeta_2 = zeta(2.min(n), theta);
            let alpha = 1.0 / (1.0 - theta);
            let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
            (zeta_n, alpha, eta)
        } else {
            (0.0, 0.0, 0.0)
        };
        Self { dist, n, zeta_n, theta, alpha, eta }
    }

    /// Number of indices in the keyspace.
    pub fn keyspace(&self) -> u64 {
        self.n
    }

    /// Draw the next key index in `[0, n)`.
    pub fn next(&self, rng: &mut StdRng) -> u64 {
        match self.dist {
            KeyDist::Uniform => rng.gen_range(0..self.n),
            KeyDist::Zipfian { .. } => fnv_scatter(self.next_zipf_rank(rng), self.n),
            KeyDist::Hotspot { set_fraction, op_fraction } => {
                let hot = ((self.n as f64 * set_fraction) as u64).clamp(1, self.n);
                if rng.gen::<f64>() < op_fraction || hot == self.n {
                    rng.gen_range(0..hot)
                } else {
                    rng.gen_range(hot..self.n)
                }
            }
            // Newest item (index n-1) is rank 0 of the zipfian.
            KeyDist::Latest => self.n - 1 - self.next_zipf_rank(rng),
        }
    }

    /// Draw a recency offset in `[0, window)` — 0 means "the newest item".
    /// This is how read-latest workloads (YCSB D) apply the cell's skew to
    /// *recency* rather than keyspace position: uniform stays uniform,
    /// zipfian/latest concentrate on the most recent items (unscattered —
    /// scattering would destroy the recency correlation), hotspot makes
    /// the newest `set_fraction` of the window the hot set. The window may
    /// differ from the chooser's keyspace (it grows as the caller
    /// inserts); draws are clamped into it.
    pub fn next_recency(&self, rng: &mut StdRng, window: u64) -> u64 {
        assert!(window > 0, "empty recency window");
        match self.dist {
            KeyDist::Uniform => rng.gen_range(0..window),
            KeyDist::Zipfian { .. } | KeyDist::Latest => self.next_zipf_rank(rng).min(window - 1),
            KeyDist::Hotspot { set_fraction, op_fraction } => {
                let hot = ((window as f64 * set_fraction) as u64).clamp(1, window);
                if rng.gen::<f64>() < op_fraction || hot == window {
                    rng.gen_range(0..hot)
                } else {
                    rng.gen_range(hot..window)
                }
            }
        }
    }

    /// Popularity rank (0 = most popular) from the zipfian; unscattered.
    fn next_zipf_rank(&self, rng: &mut StdRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// Harmonic-like normaliser `zeta(n, theta) = Σ_{i=1..n} 1/i^theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// The operations a workload mix is made of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point read of one key.
    Read,
    /// Overwrite of one existing key.
    Update,
    /// Append of a fresh key (grows the keyspace).
    Insert,
    /// Range read of consecutive key indices.
    Scan,
    /// Read-modify-write of one key.
    Rmw,
}

/// A workload mix: operation ratios in percent (summing to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Mix name (`"A"`..`"F"`, or a figure-9 ratio label).
    pub name: &'static str,
    /// Point-read percentage.
    pub read: u8,
    /// Update percentage.
    pub update: u8,
    /// Insert percentage.
    pub insert: u8,
    /// Scan percentage.
    pub scan: u8,
    /// Read-modify-write percentage.
    pub rmw: u8,
}

impl Mix {
    /// Choose the next operation. Deterministic in the rng stream.
    pub fn next_op(&self, rng: &mut StdRng) -> Op {
        let roll = rng.gen_range(0..100u32) as u8;
        let mut acc = self.read;
        if roll < acc {
            return Op::Read;
        }
        acc += self.update;
        if roll < acc {
            return Op::Update;
        }
        acc += self.insert;
        if roll < acc {
            return Op::Insert;
        }
        acc += self.scan;
        if roll < acc {
            return Op::Scan;
        }
        Op::Rmw
    }
}

/// YCSB A: update-heavy (50/50 read/update) — session-store shape.
pub const MIX_A: Mix = Mix { name: "A", read: 50, update: 50, insert: 0, scan: 0, rmw: 0 };
/// YCSB B: read-mostly (95/5 read/update).
pub const MIX_B: Mix = Mix { name: "B", read: 95, update: 5, insert: 0, scan: 0, rmw: 0 };
/// YCSB C: read-only.
pub const MIX_C: Mix = Mix { name: "C", read: 100, update: 0, insert: 0, scan: 0, rmw: 0 };
/// YCSB D: read-latest (95/5 read/insert; reads skew to recent inserts).
pub const MIX_D: Mix = Mix { name: "D", read: 95, update: 0, insert: 5, scan: 0, rmw: 0 };
/// YCSB E: short ranges (95/5 scan/insert).
pub const MIX_E: Mix = Mix { name: "E", read: 0, update: 0, insert: 5, scan: 95, rmw: 0 };
/// YCSB F: read-modify-write (50/50 read/RMW).
pub const MIX_F: Mix = Mix { name: "F", read: 50, update: 0, insert: 0, scan: 0, rmw: 50 };

/// The six standard mixes, in letter order.
pub const ALL_MIXES: [Mix; 6] = [MIX_A, MIX_B, MIX_C, MIX_D, MIX_E, MIX_F];

/// Figure 9's read/update ratio expressed as a [`Mix`] (`update_pct` of
/// operations are puts over existing keys, the rest are gets).
pub const fn fig9_mix(name: &'static str, update_pct: u8) -> Mix {
    Mix { name, read: 100 - update_pct, update: update_pct, insert: 0, scan: 0, rmw: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draw_counts(dist: KeyDist, n: u64, draws: usize, seed: u64) -> Vec<u64> {
        let chooser = KeyChooser::new(dist, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[chooser.next(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn choosers_are_deterministic_under_a_fixed_seed() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipfian { theta: ZIPF_THETA },
            KeyDist::Hotspot { set_fraction: 0.2, op_fraction: 0.8 },
            KeyDist::Latest,
        ] {
            let a = draw_counts(dist, 128, 5_000, 7);
            let b = draw_counts(dist, 128, 5_000, 7);
            let c = draw_counts(dist, 128, 5_000, 8);
            assert_eq!(a, b, "{dist:?} must be seed-deterministic");
            assert_ne!(a, c, "{dist:?} must vary with the seed");
        }
    }

    #[test]
    fn uniform_chi_square_within_bounds() {
        let n = 64u64;
        let draws = 64_000usize;
        let counts = draw_counts(KeyDist::Uniform, n, draws, 11);
        let expected = draws as f64 / n as f64;
        let chi2: f64 = counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
        // 63 dof: mean 63, std ~11.2. 120 is > 5 sigma — loose enough to be
        // deterministic-test-safe, tight enough to catch a broken sampler.
        assert!(chi2 < 120.0, "uniform chi2 = {chi2}");
        assert!(counts.iter().all(|&c| c > 0), "every index must be reachable");
    }

    #[test]
    fn zipfian_matches_theoretical_frequencies() {
        // Check the *popularity ranks* (pre-scatter) against 1/i^theta.
        let n = 100u64;
        let theta = ZIPF_THETA;
        let chooser = KeyChooser::new(KeyDist::Zipfian { theta }, n);
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 200_000;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[chooser.next_zipf_rank(&mut rng) as usize] += 1;
        }
        let zeta_n = zeta(n, theta);
        // Chi-square-ish bounds on the head. Ranks 0 and 1 come from exact
        // branch probabilities (1/ζ and 0.5^θ/ζ) — tight tolerance; ranks
        // 2..10 go through Gray et al.'s continuous approximation, which
        // carries an inherent ~10-15% mid-rank bias at small n — loose
        // tolerance, enough to catch a broken sampler but not the
        // algorithm's own approximation error.
        for (rank, &count) in counts.iter().enumerate().take(10) {
            let expected = draws as f64 / ((rank + 1) as f64).powf(theta) / zeta_n;
            let got = count as f64;
            let err = (got - expected).abs() / expected;
            let tol = if rank < 2 { 0.05 } else { 0.25 };
            assert!(err < tol, "rank {rank}: expected {expected:.0}, got {got} (err {err:.3})");
        }
        // Monotone-ish decreasing head, heavy skew overall: theory puts
        // the top-10 share at Σ_{i≤10} i^-θ / ζ(100, θ) ≈ 56%.
        assert!(counts[0] > counts[5] && counts[5] > counts[30]);
        let head: u64 = counts[..10].iter().sum();
        assert!(
            head as f64 > 0.50 * draws as f64,
            "top-10 ranks should absorb >50% of zipf(0.99) draws, got {head}"
        );
    }

    #[test]
    fn zipfian_scatter_spreads_hot_keys() {
        // After FNV scatter the most popular *indices* must not be the
        // first indices — i.e. popularity is decoupled from owner layout.
        let counts = draw_counts(KeyDist::Zipfian { theta: ZIPF_THETA }, 256, 100_000, 5);
        let hottest = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_ne!(hottest, 0, "scatter must move the zipf head off index 0");
        // The scatter is a fixed hash: the hot set is stable across seeds.
        let again = draw_counts(KeyDist::Zipfian { theta: ZIPF_THETA }, 256, 100_000, 99);
        let hottest_again = again.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(hottest, hottest_again);
    }

    #[test]
    fn hotspot_hits_the_hot_set_at_the_requested_rate() {
        let n = 200u64;
        let counts =
            draw_counts(KeyDist::Hotspot { set_fraction: 0.2, op_fraction: 0.8 }, n, 100_000, 13);
        let hot: u64 = counts[..40].iter().sum();
        let frac = hot as f64 / 100_000.0;
        assert!((frac - 0.8).abs() < 0.02, "hot-set fraction {frac}");
        // Cold keys still drawn (uniformly).
        assert!(counts[40..].iter().all(|&c| c > 0));
    }

    #[test]
    fn latest_skews_toward_newest_index() {
        let n = 100u64;
        let counts = draw_counts(KeyDist::Latest, n, 50_000, 17);
        assert!(counts[99] > counts[50] && counts[50] >= counts[0].saturating_sub(50));
        // Theory: newest decile = top-10 zipf ranks ≈ 56% of draws.
        let newest_decile: u64 = counts[90..].iter().sum();
        assert!(
            newest_decile as f64 > 0.5 * 50_000.0,
            "latest should concentrate on the newest decile, got {newest_decile}"
        );
    }

    #[test]
    fn distribution_agrees_across_rank_counts() {
        // The union of per-rank streams must converge to the same shape no
        // matter how many ranks draw: compare aggregate per-index
        // frequencies between a 2-rank and an 8-rank split of the same
        // total draw budget.
        let n = 64u64;
        let total = 160_000usize;
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipfian { theta: ZIPF_THETA },
            KeyDist::Hotspot { set_fraction: 0.25, op_fraction: 0.75 },
        ] {
            let agg = |ranks: usize| -> Vec<f64> {
                let mut counts = vec![0u64; n as usize];
                let chooser = KeyChooser::new(dist, n);
                for r in 0..ranks {
                    let mut rng = StdRng::seed_from_u64(0xBEEF + r as u64);
                    for _ in 0..total / ranks {
                        counts[chooser.next(&mut rng) as usize] += 1;
                    }
                }
                counts.iter().map(|&c| c as f64 / total as f64).collect()
            };
            let two = agg(2);
            let eight = agg(8);
            for i in 0..n as usize {
                let diff = (two[i] - eight[i]).abs();
                assert!(
                    diff < 0.01,
                    "{dist:?} index {i}: freq {two} vs {eight} differ by {diff}",
                    two = two[i],
                    eight = eight[i]
                );
            }
        }
    }

    #[test]
    fn mixes_sum_to_100_and_produce_their_ops() {
        for m in ALL_MIXES {
            assert_eq!(
                m.read as u32 + m.update as u32 + m.insert as u32 + m.scan as u32 + m.rmw as u32,
                100,
                "mix {} ratios must sum to 100",
                m.name
            );
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_scan = false;
        let mut saw_insert = false;
        for _ in 0..1000 {
            match MIX_E.next_op(&mut rng) {
                Op::Scan => saw_scan = true,
                Op::Insert => saw_insert = true,
                op => panic!("mix E produced {op:?}"),
            }
        }
        assert!(saw_scan && saw_insert);
        let mut rng = StdRng::seed_from_u64(2);
        let reads = (0..10_000).filter(|_| MIX_B.next_op(&mut rng) == Op::Read).count();
        assert!((reads as f64 / 10_000.0 - 0.95).abs() < 0.01, "B read ratio {reads}");
    }

    #[test]
    fn ordered_keys_sort_like_their_indices() {
        let keys: Vec<_> =
            [0u64, 1, 9, 10, 99, 100, 12345].iter().map(|&i| ordered_key(i)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(ordered_key(42), b"user000000000042".to_vec());
        assert!(keys.iter().all(|k| k.len() == 16));
    }

    #[test]
    fn fig9_mixes_map_to_read_update_ratios() {
        let m = fig9_mix("95/5", 5);
        assert_eq!((m.read, m.update), (95, 5));
        let mut rng = StdRng::seed_from_u64(4);
        let updates = (0..10_000).filter(|_| m.next_op(&mut rng) == Op::Update).count();
        assert!((updates as f64 / 10_000.0 - 0.05).abs() < 0.01);
    }
}
