//! Criterion micro-benchmarks for PapyrusKV's core data structures — the
//! real-time performance-regression harness complementing the virtual-time
//! figure binaries.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use papyruskv::bloom::Bloom;
use papyruskv::lru::{CacheEntry, LruCache};
use papyruskv::memtable::{Entry, MemTable};
use papyruskv::queue::BoundedQueue;
use papyruskv::rbtree::RbTree;

fn keys(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("key-{:08x}", i.wrapping_mul(2654435761)).into_bytes()).collect()
}

fn bench_rbtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbtree");
    for n in [1_000usize, 10_000] {
        let ks = keys(n);
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, _| {
            b.iter(|| {
                let mut t = RbTree::new();
                for k in &ks {
                    t.insert(k, 1u32);
                }
                black_box(t.len())
            });
        });
        let mut tree = RbTree::new();
        for k in &ks {
            tree.insert(k, 1u32);
        }
        group.bench_with_input(BenchmarkId::new("get", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0;
                for k in ks.iter().step_by(7) {
                    if tree.get(black_box(k)).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        });
    }
    group.finish();
}

fn bench_memtable(c: &mut Criterion) {
    let ks = keys(5_000);
    c.bench_function("memtable/insert-freeze-5k", |b| {
        b.iter(|| {
            let mut m = MemTable::new();
            for k in &ks {
                m.insert(k, Entry::value(bytes::Bytes::from_static(b"value")));
            }
            black_box(m.freeze().len())
        });
    });
}

fn bench_bloom(c: &mut Criterion) {
    let ks = keys(10_000);
    let mut bloom = Bloom::with_capacity(10_000, 10);
    for k in &ks {
        bloom.insert(k);
    }
    c.bench_function("bloom/lookup-10k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in &ks {
                hits += usize::from(bloom.maybe_contains(black_box(k)));
            }
            black_box(hits)
        });
    });
}

fn bench_lru(c: &mut Criterion) {
    let ks = keys(2_000);
    c.bench_function("lru/churn-2k", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(64 << 10);
            for k in &ks {
                cache.insert(k, CacheEntry::value(bytes::Bytes::from_static(b"0123456789")));
                let _ = cache.get(k);
            }
            black_box(cache.len())
        });
    });
}

fn bench_queue(c: &mut Criterion) {
    c.bench_function("queue/spsc-64k", |b| {
        b.iter(|| {
            let q = BoundedQueue::new(1024);
            let mut popped = 0u64;
            for i in 0..65_536u64 {
                while q.try_push(i).is_err() {
                    popped += q.try_pop().map_or(0, |_| 1);
                }
            }
            while q.try_pop().is_some() {
                popped += 1;
            }
            black_box(popped)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_rbtree, bench_memtable, bench_bloom, bench_lru, bench_queue
}
criterion_main!(benches);
