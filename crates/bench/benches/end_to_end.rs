//! Criterion bench: end-to-end PapyrusKV operation real-time cost on a
//! small world (harness overhead regression guard).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{BarrierLevel, Context, OpenFlags, Options, Platform};

fn bench_world_roundtrip(c: &mut Criterion) {
    c.bench_function("e2e/4rank-200put-200get", |b| {
        b.iter(|| {
            let platform = Platform::new(SystemProfile::test_profile(), 4);
            let out = World::run(WorldConfig::for_tests(4), move |rank| {
                let ctx = Context::init(rank.clone(), platform.clone(), "nvm://bench").unwrap();
                let db = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
                let me = ctx.rank();
                for i in 0..200 {
                    db.put(format!("k{me}-{i}").as_bytes(), b"value").unwrap();
                }
                db.barrier(BarrierLevel::MemTable).unwrap();
                let mut hits = 0usize;
                for r in 0..ctx.size() {
                    for i in (0..200).step_by(4) {
                        hits += usize::from(db.get(format!("k{r}-{i}").as_bytes()).is_ok());
                    }
                }
                db.close().unwrap();
                ctx.finalize().unwrap();
                hits
            });
            black_box(out)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_world_roundtrip
}
criterion_main!(benches);
