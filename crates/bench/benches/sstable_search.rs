//! Criterion bench: SSTable binary search vs linear scan (the Figure 8 "B"
//! optimisation) in *real* time, plus end-to-end single-rank put/get.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use papyrus_nvm::NvmStore;
use papyrus_simtime::DeviceModel;
use papyruskv::memtable::Entry;
use papyruskv::sstable;

fn build_table(n: usize) -> sstable::SstReader {
    let store = NvmStore::in_memory(DeviceModel::dram());
    let entries: Vec<(Vec<u8>, Entry)> = (0..n)
        .map(|i| {
            (format!("key{i:08}").into_bytes(), Entry::value(bytes::Bytes::from(vec![b'v'; 64])))
        })
        .collect();
    let (reader, _) = sstable::build_at(&store, "bench/sst", 1, &entries, 0);
    reader
}

fn bench_sst_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("sstable");
    for n in [1_000usize, 50_000] {
        let reader = build_table(n);
        let probe = format!("key{:08}", n - 1).into_bytes();
        group.bench_with_input(BenchmarkId::new("binary", n), &n, |b, _| {
            b.iter(|| black_box(reader.get_at(black_box(&probe), true, 0)));
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            b.iter(|| black_box(reader.get_at(black_box(&probe), false, 0)));
        });
    }
    group.finish();
}

fn bench_sst_build(c: &mut Criterion) {
    let store = NvmStore::in_memory(DeviceModel::dram());
    let entries: Vec<(Vec<u8>, Entry)> = (0..10_000)
        .map(|i| {
            (format!("key{i:08}").into_bytes(), Entry::value(bytes::Bytes::from(vec![b'v'; 128])))
        })
        .collect();
    c.bench_function("sstable/build-10k", |b| {
        let mut ssid = 0u64;
        b.iter(|| {
            ssid += 1;
            let (reader, _) =
                sstable::build_at(&store, &format!("bench/b{ssid}"), ssid, &entries, 0);
            black_box(reader.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sst_search, bench_sst_build
}
criterion_main!(benches);
