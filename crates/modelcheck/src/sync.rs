//! Shimmed `Mutex` / `RwLock` / `Condvar`, API-compatible with the
//! workspace's `parking_lot` compat shim (non-poisoning, `Condvar::wait`
//! takes `&mut MutexGuard`).
//!
//! Inside a model execution, acquisition is a scheduling point and the
//! model's lock table decides who may hold the lock; the underlying std
//! primitive is then taken uncontended (the model never grants a held
//! lock). Release is an immediate effect. Lock/unlock pairs feed the
//! vector-clock happens-before relation, so data protected by a lock is
//! ordered and data that escapes it races.

use std::panic::Location;
use std::time::Duration;

use crate::exec::{self, LockReq, ObjTag};

fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Shimmed counterpart of the compat `parking_lot::Mutex`.
pub struct Mutex<T> {
    tag: ObjTag,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self { tag: ObjTag::new(), inner: std::sync::Mutex::new(t) }
    }

    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let model = exec::lock_acquire(&self.tag, LockReq::Mutex, Location::caller());
        let guard = unpoison(self.inner.lock());
        MutexGuard { lock: self, guard: Some(guard), model }
    }

    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match exec::try_lock_acquire(&self.tag, LockReq::Mutex, Location::caller()) {
            Some(true) => {
                let guard = unpoison(self.inner.lock());
                Some(MutexGuard { lock: self, guard: Some(guard), model: true })
            }
            Some(false) => None,
            None => self.inner.try_lock().ok().map(|guard| MutexGuard {
                lock: self,
                guard: Some(guard),
                model: false,
            }),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.inner, f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard for [`Mutex`]; releases the model lock (if any) on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    guard: Option<std::sync::MutexGuard<'a, T>>,
    model: bool,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside condvar wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.guard = None;
        if self.model {
            exec::lock_release(&self.lock.tag, LockReq::Mutex);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait; mirrors the compat shim's type.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Shimmed counterpart of the compat `parking_lot::Condvar`.
pub struct Condvar {
    tag: ObjTag,
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self { tag: ObjTag::new(), inner: std::sync::Condvar::new() }
    }

    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let site = Location::caller();
        if guard.model && exec::condvar_wait_begin(&self.tag, &guard.lock.tag, false, site) {
            guard.guard = None;
            exec::condvar_wait_finish(site);
            guard.guard = Some(unpoison(guard.lock.inner.lock()));
        } else {
            let inner = guard.guard.take().expect("guard present before wait");
            guard.guard = Some(unpoison(self.inner.wait(inner)));
        }
    }

    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let site = Location::caller();
        if guard.model && exec::condvar_wait_begin(&self.tag, &guard.lock.tag, true, site) {
            guard.guard = None;
            let timed_out = exec::condvar_wait_finish(site);
            guard.guard = Some(unpoison(guard.lock.inner.lock()));
            WaitTimeoutResult { timed_out }
        } else {
            let inner = guard.guard.take().expect("guard present before wait");
            let (inner, res) = unpoison(self.inner.wait_timeout(inner, timeout));
            guard.guard = Some(inner);
            WaitTimeoutResult { timed_out: res.timed_out() }
        }
    }

    pub fn notify_one(&self) {
        exec::condvar_notify(&self.tag, false);
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        exec::condvar_notify(&self.tag, true);
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Shimmed counterpart of the compat `parking_lot::RwLock`.
pub struct RwLock<T> {
    tag: ObjTag,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        Self { tag: ObjTag::new(), inner: std::sync::RwLock::new(t) }
    }

    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model = exec::lock_acquire(&self.tag, LockReq::Read, Location::caller());
        let guard = unpoison(self.inner.read());
        RwLockReadGuard { lock: self, guard: Some(guard), model }
    }

    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model = exec::lock_acquire(&self.tag, LockReq::Write, Location::caller());
        let guard = unpoison(self.inner.write());
        RwLockWriteGuard { lock: self, guard: Some(guard), model }
    }

    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match exec::try_lock_acquire(&self.tag, LockReq::Read, Location::caller()) {
            Some(true) => {
                let guard = unpoison(self.inner.read());
                Some(RwLockReadGuard { lock: self, guard: Some(guard), model: true })
            }
            Some(false) => None,
            None => self.inner.try_read().ok().map(|guard| RwLockReadGuard {
                lock: self,
                guard: Some(guard),
                model: false,
            }),
        }
    }

    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match exec::try_lock_acquire(&self.tag, LockReq::Write, Location::caller()) {
            Some(true) => {
                let guard = unpoison(self.inner.write());
                Some(RwLockWriteGuard { lock: self, guard: Some(guard), model: true })
            }
            Some(false) => None,
            None => self.inner.try_write().ok().map(|guard| RwLockWriteGuard {
                lock: self,
                guard: Some(guard),
                model: false,
            }),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.inner, f)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    guard: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: bool,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("read guard present")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.guard = None;
        if self.model {
            exec::lock_release(&self.lock.tag, LockReq::Read);
        }
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    guard: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("write guard present")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("write guard present")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.guard = None;
        if self.model {
            exec::lock_release(&self.lock.tag, LockReq::Write);
        }
    }
}
