//! Shimmed `hint::spin_loop`: a scheduling point in a model (so spin-wait
//! loops hand the schedule to the thread they are waiting on instead of
//! spinning to the step bound), a real pause instruction otherwise.

use std::panic::Location;

use crate::exec;

/// Shimmed counterpart of [`std::hint::spin_loop`].
#[track_caller]
pub fn spin_loop() {
    if exec::in_model() {
        exec::yield_point(Location::caller());
    } else {
        std::hint::spin_loop();
    }
}
