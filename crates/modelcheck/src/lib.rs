//! # papyrus-modelcheck
//!
//! A loom-style deterministic schedule explorer for the workspace's
//! concurrent components.
//!
//! Code under test swaps its synchronization primitives for the shims in
//! [`atomic`], [`sync`], [`cell`], [`thread`] and [`hint`] (under `--cfg
//! modelcheck`; outside a model execution every shim passes through to
//! std, so shimmed code still runs normally). [`model`] / [`explore`] then
//! run a closure under a cooperative scheduler that owns every
//! interleaving decision:
//!
//! - every synchronization operation is a scheduling point; exactly one
//!   model thread runs at a time, so executions are fully deterministic
//!   and replayable;
//! - the DFS explorer enumerates schedules with DPOR-style pruning
//!   (alternatives are revisited only where operations *conflict*:
//!   same object, at least one write), with an optional unpruned mode and
//!   a seeded random-walk mode for larger state spaces;
//! - memory orderings feed a vector-clock happens-before relation
//!   (release stores publish, acquire loads adopt, relaxed stores break
//!   release chains, RMWs extend them, SeqCst ops additionally share one
//!   total order; locks publish on unlock and adopt on lock);
//! - non-atomic shared state goes through [`cell::UnsafeCell`], whose
//!   accesses are checked FastTrack-style against happens-before — a
//!   `Relaxed` store where `Release` was needed surfaces as a
//!   [`ViolationKind::DataRace`] on the data it failed to publish;
//! - deadlocks (all live threads blocked), model panics (assertion
//!   failures) and step-bound overruns (livelock) are the other violation
//!   classes.
//!
//! ```
//! use std::sync::Arc;
//!
//! papyrus_modelcheck::model(|| {
//!     let n = Arc::new(papyrus_modelcheck::atomic::AtomicUsize::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = Arc::clone(&n);
//!             papyrus_modelcheck::thread::spawn(move || {
//!                 n.fetch_add(1, papyrus_modelcheck::atomic::Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(n.load(papyrus_modelcheck::atomic::Ordering::Relaxed), 2);
//! });
//! ```

mod clock;
mod exec;
mod explore;

pub mod atomic;
pub mod cell;
pub mod hint;
pub mod sync;
pub mod thread;

pub use exec::{Violation, ViolationKind};
pub use explore::{explore, model, Builder, Report};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::cell::UnsafeCell;
    use super::*;

    /// Two threads doing non-atomic read-modify-write through an atomic
    /// (load; store) — the classic lost update. The explorer must find the
    /// interleaving where both loads happen before either store.
    fn lost_update_model() {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    // ordering: deliberately racy increment under test.
                    let v = n.load(Ordering::Relaxed);
                    n.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // ordering: single-threaded after the joins.
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    }

    #[test]
    fn modelcheck_finds_lost_update() {
        let report = explore(lost_update_model);
        assert!(!report.ok(), "lost update must be found");
        assert_eq!(report.violations[0].kind, ViolationKind::Panic);
        assert!(report.schedule.is_some());
    }

    /// Same counter with a proper atomic RMW: clean, and the exploration
    /// counts are pinned (they are deterministic; a change means the
    /// scheduler or DPOR logic changed and EXPERIMENTS.md needs updating).
    #[test]
    fn modelcheck_counter_exhaustive_pinned() {
        let run = || {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        // ordering: counter only, no data published.
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            // ordering: single-threaded after the joins.
            assert_eq!(n.load(Ordering::Relaxed), 2);
        };
        let dpor = explore(run);
        assert!(dpor.ok(), "correct counter must be clean: {:?}", dpor.violations);
        let full = Builder::new().full().check(run);
        assert!(full.ok());
        // DPOR explores no more schedules than the full tree.
        assert!(dpor.interleavings <= full.interleavings);
        // Pinned: see EXPERIMENTS.md (modelcheck table).
        assert_eq!(dpor.interleavings, PINNED_COUNTER_DPOR);
        assert_eq!(full.interleavings, PINNED_COUNTER_FULL);
    }

    const PINNED_COUNTER_DPOR: u64 = 5;
    const PINNED_COUNTER_FULL: u64 = 10;

    /// Seed bug (a) of the issue: a message published with a `Relaxed`
    /// store where `Release` is needed. The reader observes the flag but
    /// has no happens-before edge to the write of the payload: data race.
    fn publication_model(publish_order: Ordering) -> impl Fn() + Send + Sync + 'static {
        move || {
            struct Chan {
                data: UnsafeCell<u64>,
                ready: AtomicBool,
            }
            // SAFETY: all access to `data` goes through the modelcheck
            // UnsafeCell shim, which verifies (under every explored
            // schedule) that reads of `data` happen after the publishing
            // write; `ready` is atomic.
            unsafe impl Sync for Chan {}
            let ch = Arc::new(Chan { data: UnsafeCell::new(0), ready: AtomicBool::new(false) });
            let producer = {
                let ch = Arc::clone(&ch);
                thread::spawn(move || {
                    // SAFETY: model-verified exclusive access (this is the
                    // access the seeded Relaxed publication makes racy).
                    unsafe { ch.data.with_mut(|p| *p = 42) };
                    ch.ready.store(true, publish_order);
                })
            };
            let consumer = {
                let ch = Arc::clone(&ch);
                thread::spawn(move || {
                    // ordering: acquire side of the publication handshake.
                    if ch.ready.load(Ordering::Acquire) {
                        // SAFETY: model-verified read-after-publication.
                        let v = unsafe { ch.data.with(|p| *p) };
                        assert_eq!(v, 42);
                    }
                })
            };
            producer.join().unwrap();
            consumer.join().unwrap();
        }
    }

    #[test]
    fn modelcheck_seedbug_relaxed_publication_detected() {
        // ordering: the planted bug — Relaxed where Release is required.
        let report = explore(publication_model(Ordering::Relaxed));
        assert!(!report.ok(), "relaxed publication must race");
        assert_eq!(report.violations[0].kind, ViolationKind::DataRace);
        let schedule = report.schedule.expect("violating schedule rendered");
        assert!(schedule.contains("data-"), "schedule names the data accesses:\n{schedule}");
    }

    #[test]
    fn modelcheck_release_publication_clean() {
        // ordering: the correct publication pairing (Release/Acquire).
        let report = explore(publication_model(Ordering::Release));
        assert!(report.ok(), "release publication is race-free: {:?}", report.violations);
    }

    #[test]
    fn modelcheck_detects_deadlock() {
        let report = explore(|| {
            let a = Arc::new(sync::Mutex::new(()));
            let b = Arc::new(sync::Mutex::new(()));
            let t = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
            };
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            t.join().unwrap();
        });
        assert!(!report.ok(), "AB/BA lock order must deadlock in some schedule");
        assert_eq!(report.violations[0].kind, ViolationKind::Deadlock);
    }

    #[test]
    fn modelcheck_mutex_counter_clean() {
        let report = explore(|| {
            let n = Arc::new(sync::Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        *n.lock() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock(), 2);
        });
        assert!(report.ok(), "mutex counter is clean: {:?}", report.violations);
    }

    #[test]
    fn modelcheck_rwlock_readers_see_consistent_state() {
        let report = explore(|| {
            // Writer keeps (a, b) equal under the write lock; readers must
            // never observe a != b.
            let pair = Arc::new(sync::RwLock::new((0u64, 0u64)));
            let writer = {
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    let mut g = pair.write();
                    g.0 += 1;
                    g.1 += 1;
                })
            };
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let pair = Arc::clone(&pair);
                    thread::spawn(move || {
                        let g = pair.read();
                        assert_eq!(g.0, g.1, "readers must see a consistent pair");
                    })
                })
                .collect();
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });
        assert!(report.ok(), "rwlock invariant holds: {:?}", report.violations);
    }

    #[test]
    fn modelcheck_random_walk_is_deterministic() {
        // ordering: deliberately racy model; the buggy publication is the
        // fixture this determinism test walks.
        let mk = || publication_model(Ordering::Relaxed);
        let a = Builder::new().random_walk(0xDEAD_BEEF, 64).keep_going().check(mk());
        let b = Builder::new().random_walk(0xDEAD_BEEF, 64).keep_going().check(mk());
        assert_eq!(a.interleavings, b.interleavings);
        assert_eq!(a.violations.len(), b.violations.len());
        assert!(!a.ok(), "64 random walks find the publication race");
    }

    #[test]
    fn modelcheck_step_bound_reports_livelock() {
        let report = Builder::new().max_steps(128).check(|| {
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            // Nobody ever sets `stop`: a genuine livelock.
            let t = thread::spawn(move || {
                // ordering: spin flag in a deliberate livelock model.
                while !stop2.load(Ordering::Acquire) {
                    hint::spin_loop();
                }
            });
            t.join().unwrap();
        });
        assert!(!report.ok());
        assert_eq!(report.violations[0].kind, ViolationKind::StepBound);
    }

    #[test]
    fn shims_pass_through_outside_model() {
        // No model(): everything must behave like plain std primitives.
        let n = AtomicUsize::new(1);
        // ordering: passthrough smoke test, single-threaded.
        assert_eq!(n.fetch_add(1, Ordering::SeqCst), 1);
        let m = sync::Mutex::new(5);
        assert_eq!(*m.lock(), 5);
        let rw = sync::RwLock::new(7);
        assert_eq!(*rw.read(), 7);
        let t = thread::spawn(|| 3);
        assert_eq!(t.join().unwrap(), 3);
        let cv = sync::Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(1));
        assert!(res.timed_out());
    }
}
