//! Shimmed `thread::spawn` / `JoinHandle` / `yield_now`.
//!
//! Inside a model execution, spawned closures become cooperatively
//! scheduled model threads (capped at a small per-execution limit so the
//! interleaving space stays bounded); outside one they are plain
//! `std::thread` spawns.

use std::panic::Location;
use std::sync::{Arc, Mutex};

use crate::exec;

enum Inner<T> {
    Real(std::thread::JoinHandle<T>),
    Model { tid: usize, result: Arc<Mutex<Option<T>>> },
}

/// Handle to a shim-spawned thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result.
    ///
    /// In a model a panicking child aborts the whole execution as a
    /// [`Panic`](crate::ViolationKind::Panic) violation before any joiner
    /// resumes, so the `Err` arm is only reachable in passthrough mode.
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Real(h) => h.join(),
            Inner::Model { tid, result } => {
                exec::join_thread(tid, Location::caller());
                let slot = result
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("joined model thread stored its result");
                Ok(slot)
            }
        }
    }
}

/// Shimmed counterpart of [`std::thread::spawn`].
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if exec::in_model() {
        let result = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let tid = exec::spawn_thread(Box::new(move || {
            let r = f();
            *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
        }))
        .expect("in_model() checked above");
        JoinHandle(Inner::Model { tid, result })
    } else {
        JoinHandle(Inner::Real(std::thread::spawn(f)))
    }
}

/// Shimmed counterpart of [`std::thread::yield_now`]: a pure scheduling
/// point in a model, a real yield otherwise.
#[track_caller]
pub fn yield_now() {
    if exec::in_model() {
        exec::yield_point(Location::caller());
    } else {
        std::thread::yield_now();
    }
}
