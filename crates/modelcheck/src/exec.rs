//! One model execution: cooperative scheduling of real OS threads.
//!
//! Exactly one model thread runs at a time. Every shimmed synchronization
//! operation is a *scheduling point*: the thread announces the operation it
//! is about to perform, a scheduling decision picks which announced
//! operation executes next (replaying the explorer's chosen prefix, then
//! extending it), and only the granted thread proceeds. Because every
//! parked thread is parked *at* its next operation, the scheduler always
//! knows the full frontier of pending operations — which is what makes
//! DPOR-style conflict analysis (in `explore.rs`) possible.
//!
//! Threads are real `std::thread`s recycled through a process-global worker
//! pool (an execution costs two context switches per step instead of a
//! spawn per thread per interleaving). Outside an execution every shim
//! passes through to the underlying std primitive, so code compiled with
//! `--cfg modelcheck` still behaves normally when not under the explorer.
//!
//! Known state-space reductions (documented, deliberate): lock release,
//! condvar notify, and thread spawn are *immediate effects* (not decision
//! points) — sound for mutual-exclusion properties because they only
//! enable more operations, and the enabled operations are themselves
//! decision points. Timed condvar waits treat "timeout fires" as an
//! always-enabled choice, so the timeout path is explored eagerly.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

use crate::clock::VClock;

/// Hard ceiling on model threads per execution (keeps clocks small).
pub(crate) const MAX_THREADS: usize = 8;

// ---------------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------------

/// What kind of concurrency bug the explorer found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Two unordered accesses to the same non-atomic location, at least one
    /// a write: a C++11-style data race (e.g. a `Relaxed` store publishing
    /// data that needed `Release`).
    DataRace,
    /// Every unfinished thread was blocked: deadlock or lost wakeup.
    Deadlock,
    /// A model thread panicked (an assertion inside the model failed).
    Panic,
    /// An execution exceeded the step bound: livelock or an unbounded spin
    /// loop in the model.
    StepBound,
}

impl ViolationKind {
    /// Stable short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::DataRace => "data-race",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Panic => "panic",
            ViolationKind::StepBound => "step-bound",
        }
    }
}

/// One concurrency bug found by the explorer.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Bug category.
    pub kind: ViolationKind,
    /// Human-readable description naming the sites/threads involved.
    pub detail: String,
}

/// Panic payload used to unwind model threads when an execution is
/// abandoned (violation found): control flow, not itself a bug.
pub(crate) struct ExecAbort;

// ---------------------------------------------------------------------------
// Objects
// ---------------------------------------------------------------------------

/// Lock flavours for [`Pending::Lock`] / [`Pending::TryLock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LockReq {
    Mutex,
    Read,
    Write,
}

/// Per-execution state of one shimmed object.
#[derive(Debug)]
pub(crate) enum ObjectState {
    Atomic {
        /// Clock published by the release-sequence head (cleared by a
        /// relaxed store, joined by RMWs).
        sync: VClock,
    },
    Lock {
        /// Exclusive holder (mutex or rwlock writer).
        writer: Option<usize>,
        /// Shared holders (rwlock readers).
        readers: Vec<usize>,
        /// Clock of the last exclusive release.
        write_sync: VClock,
        /// Join of all shared releases since the last exclusive release.
        read_sync: VClock,
    },
    Data {
        /// Last write: `(tid, epoch, site)`.
        last_write: Option<(usize, u64, &'static Location<'static>)>,
        /// Reads since the last write: `(tid, epoch, site)`.
        reads: Vec<(usize, u64, &'static Location<'static>)>,
    },
    Condvar {
        /// Parked waiters in arrival order (`notify_one` wakes FIFO).
        waiters: VecDeque<usize>,
    },
}

/// Identity cell embedded in every shim object: maps the object onto a
/// per-execution dense id, assigned on first touch. Ids are ephemeral —
/// they only need to be stable *within* one execution (the trace and the
/// conflict analysis never compare objects across executions).
#[derive(Debug)]
pub(crate) struct ObjTag {
    epoch: AtomicU64,
    id: AtomicU32,
}

impl ObjTag {
    pub(crate) const fn new() -> Self {
        Self { epoch: AtomicU64::new(0), id: AtomicU32::new(0) }
    }
}

/// Kind used when an [`ObjTag`] is first touched in an execution.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ObjKind {
    Atomic,
    Lock,
    Data,
    Condvar,
}

// ---------------------------------------------------------------------------
// Pending operations
// ---------------------------------------------------------------------------

/// The operation a thread is parked in front of. Enabledness of the whole
/// frontier drives each scheduling decision.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Pending {
    /// First scheduling of a newly spawned thread.
    Begin,
    /// A shimmed atomic operation (`write` covers stores and RMWs).
    AtomicOp { obj: usize, write: bool },
    /// A tracked non-atomic access through the `UnsafeCell` shim.
    DataOp { obj: usize, write: bool },
    /// Blocking lock acquisition; enabled iff the lock admits `req`.
    Lock { obj: usize, req: LockReq },
    /// Non-blocking acquisition attempt; always enabled.
    TryLock { obj: usize },
    /// Condvar wait, phase 1: release the mutex and park.
    CondWait { cv: usize },
    /// Condvar wait, parked: disabled until notified; a timed wait stays
    /// enabled (scheduling it = the timeout firing).
    CondBlocked { cv: usize, mutex: usize, timed: bool },
    /// Join on another model thread; enabled once it finished.
    Join { target: usize },
    /// Pure yield (`yield_now` / `spin_loop`): no object, no conflict.
    Yield,
}

impl Pending {
    /// The object this operation touches and whether it writes it — the
    /// conflict relation for DPOR.
    pub(crate) fn access(&self) -> Option<(usize, bool)> {
        match *self {
            Pending::AtomicOp { obj, write } | Pending::DataOp { obj, write } => Some((obj, write)),
            Pending::Lock { obj, .. } | Pending::TryLock { obj } => Some((obj, true)),
            Pending::CondWait { cv, .. } | Pending::CondBlocked { cv, .. } => Some((cv, true)),
            Pending::Begin | Pending::Join { .. } | Pending::Yield => None,
        }
    }

    fn describe(&self) -> &'static str {
        match self {
            Pending::Begin => "begin",
            Pending::AtomicOp { write: true, .. } => "atomic-write",
            Pending::AtomicOp { write: false, .. } => "atomic-read",
            Pending::DataOp { write: true, .. } => "data-write",
            Pending::DataOp { write: false, .. } => "data-read",
            Pending::Lock { .. } => "lock",
            Pending::TryLock { .. } => "try-lock",
            Pending::CondWait { .. } => "cond-wait",
            Pending::CondBlocked { .. } => "cond-timeout",
            Pending::Join { .. } => "join",
            Pending::Yield => "yield",
        }
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadStatus {
    Live,
    Finished,
}

pub(crate) struct ThreadState {
    pub(crate) status: ThreadStatus,
    pub(crate) pending: Option<(Pending, &'static Location<'static>)>,
    pub(crate) clock: VClock,
    /// Set when a timed condvar wait was scheduled as a timeout.
    timed_out: bool,
}

/// One recorded scheduling decision (the explorer turns these into its
/// DFS/backtrack stack).
#[derive(Debug, Clone)]
pub(crate) struct DecisionRec {
    /// Threads whose pending op was enabled, ascending.
    pub(crate) enabled: Vec<usize>,
    /// The thread whose op was executed.
    pub(crate) chosen: usize,
}

/// One executed step (1:1 with decisions) for conflict analysis and
/// schedule rendering.
#[derive(Debug, Clone)]
pub(crate) struct StepRec {
    pub(crate) tid: usize,
    /// Touched object and write-ness, if any.
    pub(crate) access: Option<(usize, bool)>,
    pub(crate) what: &'static str,
    pub(crate) site: &'static Location<'static>,
}

pub(crate) struct ExecState {
    /// Monotone id of this execution (object tags key off it).
    epoch: u64,
    threads: Vec<ThreadState>,
    objects: Vec<ObjectState>,
    /// Chosen-thread prefix to replay before extending.
    replay: Vec<usize>,
    /// Seeded RNG state for random-walk extension (`None` = DFS policy).
    rng: Option<u64>,
    decisions: Vec<DecisionRec>,
    trace: Vec<StepRec>,
    /// Thread currently allowed to run (`usize::MAX` = none yet).
    active: usize,
    /// The first violation found in this execution.
    violation: Option<Violation>,
    /// Set with `violation`: model threads unwind at their next park.
    poisoned: bool,
    /// All threads finished (the explorer's completion signal).
    done: bool,
    max_steps: usize,
    live_threads: usize,
    /// Join of the clocks of all SeqCst operations so far (models the
    /// single total order of SeqCst ops as synchronising — conservative).
    sc_clock: VClock,
}

pub(crate) struct ExecShared {
    mx: Mutex<ExecState>,
    cv: Condvar,
}

fn lock_state(shared: &ExecShared) -> MutexGuard<'_, ExecState> {
    shared.mx.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ExecState {
    /// Dense per-execution id for a shim object, assigning on first touch.
    fn obj_id(&mut self, tag: &ObjTag, kind: ObjKind) -> usize {
        // ordering: tags are only read/written under the execution state
        // lock (a single thread runs at a time); the atomics exist for
        // const-init and cross-execution reuse, not for unsynchronised
        // concurrent access.
        if tag.epoch.load(Ordering::Relaxed) != self.epoch {
            let id = self.objects.len() as u32;
            self.objects.push(match kind {
                ObjKind::Atomic => ObjectState::Atomic { sync: VClock::new() },
                ObjKind::Lock => ObjectState::Lock {
                    writer: None,
                    readers: Vec::new(),
                    write_sync: VClock::new(),
                    read_sync: VClock::new(),
                },
                ObjKind::Data => ObjectState::Data { last_write: None, reads: Vec::new() },
                ObjKind::Condvar => ObjectState::Condvar { waiters: VecDeque::new() },
            });
            // ordering: same single-threaded-under-lock regime as above.
            tag.id.store(id, Ordering::Relaxed);
            tag.epoch.store(self.epoch, Ordering::Relaxed);
        }
        // ordering: read back under the same state lock that wrote it.
        tag.id.load(Ordering::Relaxed) as usize
    }

    fn is_enabled(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        if t.status != ThreadStatus::Live {
            return false;
        }
        let Some((pending, _)) = t.pending else { return false };
        match pending {
            Pending::Begin
            | Pending::AtomicOp { .. }
            | Pending::DataOp { .. }
            | Pending::TryLock { .. }
            | Pending::CondWait { .. }
            | Pending::Yield => true,
            Pending::Lock { obj, req } => match &self.objects[obj] {
                ObjectState::Lock { writer, readers, .. } => match req {
                    LockReq::Mutex | LockReq::Write => writer.is_none() && readers.is_empty(),
                    LockReq::Read => writer.is_none(),
                },
                _ => unreachable!("lock pending on non-lock object"),
            },
            Pending::CondBlocked { timed, .. } => timed,
            Pending::Join { target } => self.threads[target].status == ThreadStatus::Finished,
        }
    }

    fn enabled_set(&self) -> Vec<usize> {
        (0..self.threads.len()).filter(|&t| self.is_enabled(t)).collect()
    }

    fn record_violation(&mut self, kind: ViolationKind, detail: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation { kind, detail });
        }
        self.poisoned = true;
    }

    /// DFS extension policy: keep the current thread running (fewest
    /// context switches) unless it just yielded or would fire a condvar
    /// timeout — those deprioritise so spin-wait models make progress and
    /// notify paths get explored first.
    fn dfs_pick(&self, cur: usize, enabled: &[usize]) -> usize {
        let deprioritised = |t: usize| {
            matches!(
                self.threads[t].pending,
                Some((Pending::Yield, _)) | Some((Pending::CondBlocked { .. }, _))
            )
        };
        if enabled.contains(&cur) && !deprioritised(cur) {
            return cur;
        }
        // Round-robin from cur+1 so yielding threads hand off; prefer
        // non-deprioritised ops.
        let n = self.threads.len();
        for off in 1..=n {
            let t = (cur.wrapping_add(off)) % n;
            if enabled.contains(&t) && !deprioritised(t) {
                return t;
            }
        }
        for off in 1..=n {
            let t = (cur.wrapping_add(off)) % n;
            if enabled.contains(&t) {
                return t;
            }
        }
        enabled[0]
    }

    /// Pick and grant the next operation. Called by the running thread at
    /// every scheduling point (after announcing its own pending op), by
    /// `finish_thread`, and once by the driver to start the execution.
    /// Wakes the granted thread via the shared condvar.
    fn decide(&mut self, cur: usize, cv: &Condvar) {
        if self.poisoned {
            // Abandon: wake everyone so parked threads can unwind.
            self.check_done();
            cv.notify_all();
            return;
        }
        let enabled = self.enabled_set();
        if enabled.is_empty() {
            if self.live_threads == 0 {
                self.done = true;
            } else {
                let stuck: Vec<String> = (0..self.threads.len())
                    .filter(|&t| self.threads[t].status == ThreadStatus::Live)
                    .map(|t| match self.threads[t].pending {
                        Some((p, site)) => format!("t{t} blocked at {} ({site})", p.describe()),
                        None => format!("t{t} (no pending op)"),
                    })
                    .collect();
                self.record_violation(
                    ViolationKind::Deadlock,
                    format!("all live threads blocked: {}", stuck.join("; ")),
                );
            }
            cv.notify_all();
            return;
        }
        if self.decisions.len() >= self.max_steps {
            self.record_violation(
                ViolationKind::StepBound,
                format!(
                    "execution exceeded {} steps (livelock or unbounded spin loop in model)",
                    self.max_steps
                ),
            );
            cv.notify_all();
            return;
        }
        let k = self.decisions.len();
        let chosen = if k < self.replay.len() {
            let c = self.replay[k];
            debug_assert!(
                enabled.contains(&c),
                "replay divergence at step {k}: t{c} not enabled in {enabled:?}"
            );
            c
        } else if let Some(rng) = self.rng.as_mut() {
            // splitmix64: deterministic per (seed, step).
            *rng = rng.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            enabled[(z % enabled.len() as u64) as usize]
        } else {
            self.dfs_pick(cur, &enabled)
        };
        let (pending, site) = self.threads[chosen].pending.expect("chosen thread has a pending op");
        self.decisions.push(DecisionRec { enabled, chosen });
        self.trace.push(StepRec {
            tid: chosen,
            access: pending.access(),
            what: pending.describe(),
            site,
        });
        self.active = chosen;
        if chosen != cur {
            cv.notify_all();
        }
    }

    fn check_done(&mut self) {
        if self.live_threads == 0 {
            self.done = true;
        }
    }

    /// Render the schedule that led here (for violation reports).
    fn render_schedule(&self) -> String {
        self.trace
            .iter()
            .map(|s| match s.access {
                Some((obj, _)) => format!("t{} {}#{obj} ({})", s.tid, s.what, s.site),
                None => format!("t{} {} ({})", s.tid, s.what, s.site),
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

// ---------------------------------------------------------------------------
// Worker pool (process-global; threads park on their channel between jobs)
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

fn pool_idle() -> &'static Mutex<Vec<Sender<Job>>> {
    static IDLE: OnceLock<Mutex<Vec<Sender<Job>>>> = OnceLock::new();
    IDLE.get_or_init(|| Mutex::new(Vec::new()))
}

fn dispatch(job: Job) {
    let worker = pool_idle().lock().unwrap_or_else(std::sync::PoisonError::into_inner).pop();
    match worker {
        Some(tx) => {
            if let Err(returned) = tx.send(job) {
                spawn_worker(returned.0);
            }
        }
        None => spawn_worker(job),
    }
}

fn spawn_worker(first: Job) {
    let (tx, rx) = channel::<Job>();
    std::thread::spawn(move || {
        let mut next = Some(first);
        loop {
            let job = match next.take() {
                Some(j) => j,
                None => match rx.recv() {
                    Ok(j) => j,
                    Err(_) => return,
                },
            };
            job();
            pool_idle().lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(tx.clone());
        }
    });
}

// ---------------------------------------------------------------------------
// Thread-local execution context
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Ctx {
    shared: Arc<ExecShared>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Whether the calling thread is running inside a model execution.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

// ---------------------------------------------------------------------------
// Scheduling protocol
// ---------------------------------------------------------------------------

/// Park (state lock held on entry) until `tid` is the active thread;
/// unwinds with [`ExecAbort`] if the execution is abandoned meanwhile.
/// The state lock is *dropped* on return — the caller re-locks to run its
/// effect (safe: only the granted thread runs, nothing intervenes).
fn wait_granted_locked(shared: &Arc<ExecShared>, mut st: MutexGuard<'_, ExecState>, tid: usize) {
    loop {
        if st.poisoned {
            drop(st);
            std::panic::panic_any(ExecAbort);
        }
        if st.active == tid {
            return;
        }
        st = shared.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// Announce `op`, trigger a scheduling decision, park until granted, and
/// return the state guard ready for the operation's effect.
fn arrive_granted<'a>(
    shared: &'a Arc<ExecShared>,
    tid: usize,
    op: Pending,
    site: &'static Location<'static>,
) -> MutexGuard<'a, ExecState> {
    {
        let mut st = lock_state(shared);
        debug_assert_eq!(st.active, tid, "only the active thread reaches a scheduling point");
        st.threads[tid].pending = Some((op, site));
        st.decide(tid, &shared.cv);
        wait_granted_locked(shared, st, tid);
    }
    let st = lock_state(shared);
    debug_assert_eq!(st.active, tid);
    st
}

fn clear_pending(st: &mut ExecState, tid: usize) {
    st.threads[tid].pending = None;
}

// ---------------------------------------------------------------------------
// Happens-before application
// ---------------------------------------------------------------------------

/// Orderings condensed to their acquire/release halves.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HbFlags {
    acquire: bool,
    release: bool,
    seq_cst: bool,
}

impl HbFlags {
    pub(crate) fn of(ord: Ordering) -> Self {
        match ord {
            // ordering: this table DEFINES the checker's semantics for each
            // strength; the patterns themselves synchronise nothing.
            Ordering::Relaxed => Self { acquire: false, release: false, seq_cst: false },
            Ordering::Acquire => Self { acquire: true, release: false, seq_cst: false },
            Ordering::Release => Self { acquire: false, release: true, seq_cst: false },
            Ordering::AcqRel => Self { acquire: true, release: true, seq_cst: false },
            // Ordering is #[non_exhaustive]; treat unknown orderings like
            // SeqCst (strongest known).
            _ => Self { acquire: true, release: true, seq_cst: true },
        }
    }
}

/// Apply the HB rules of one atomic operation. `load`/`store` carry the
/// operation's halves: plain load = `(Some, None)`, plain store =
/// `(None, Some)`, RMW = both.
fn apply_atomic_hb(
    st: &mut ExecState,
    tid: usize,
    obj: usize,
    load: Option<HbFlags>,
    store: Option<HbFlags>,
) {
    st.threads[tid].clock.tick(tid);
    let seq_cst =
        load.map(|f| f.seq_cst).unwrap_or(false) || store.map(|f| f.seq_cst).unwrap_or(false);
    if seq_cst {
        // All SeqCst operations participate in one total order; modelling
        // that order as synchronising is conservative (it can hide races
        // *between two SeqCst accesses*, which are not races anyway) and
        // avoids false positives on SeqCst-published data.
        let sc = st.sc_clock.clone();
        st.threads[tid].clock.join(&sc);
    }
    // Acquire half first, so a release/RMW publishes a clock that already
    // includes what this operation acquired.
    if load.map(|f| f.acquire).unwrap_or(false) {
        let acquired = match &st.objects[obj] {
            ObjectState::Atomic { sync } => sync.clone(),
            _ => unreachable!("atomic op on non-atomic object"),
        };
        st.threads[tid].clock.join(&acquired);
    }
    if let Some(f) = store {
        let tclock = st.threads[tid].clock.clone();
        let is_rmw = load.is_some();
        let ObjectState::Atomic { sync } = &mut st.objects[obj] else {
            unreachable!("atomic op on non-atomic object")
        };
        if f.release {
            if is_rmw {
                // An RMW continues the release sequence: join, don't replace.
                sync.join(&tclock);
            } else {
                *sync = tclock;
            }
        } else if !is_rmw {
            // A relaxed plain store breaks the release chain: later acquire
            // loads of this value must not synchronise with older releases.
            sync.clear();
        }
        // A relaxed RMW leaves the release-sequence clock intact (release
        // sequences include RMWs by any thread).
    }
    if seq_cst {
        let tclock = st.threads[tid].clock.clone();
        st.sc_clock.join(&tclock);
    }
}

// ---------------------------------------------------------------------------
// Shim entry points
// ---------------------------------------------------------------------------

/// A shimmed atomic operation. `f` performs the real memory operation
/// (serialized by the scheduler, or run immediately outside a model).
pub(crate) fn atomic_op<R>(
    tag: &ObjTag,
    write: bool,
    site: &'static Location<'static>,
    load: Option<HbFlags>,
    store: Option<HbFlags>,
    f: impl FnOnce() -> R,
) -> R {
    let Some(c) = ctx() else { return f() };
    let obj = {
        let mut st = lock_state(&c.shared);
        st.obj_id(tag, ObjKind::Atomic)
    };
    let mut st = arrive_granted(&c.shared, c.tid, Pending::AtomicOp { obj, write }, site);
    let r = f();
    apply_atomic_hb(&mut st, c.tid, obj, load, store);
    clear_pending(&mut st, c.tid);
    r
}

/// A shimmed compare-exchange: HB flags depend on whether it succeeded.
pub(crate) fn atomic_cas<T>(
    tag: &ObjTag,
    site: &'static Location<'static>,
    success: Ordering,
    failure: Ordering,
    f: impl FnOnce() -> Result<T, T>,
) -> Result<T, T> {
    let Some(c) = ctx() else { return f() };
    let obj = {
        let mut st = lock_state(&c.shared);
        st.obj_id(tag, ObjKind::Atomic)
    };
    let mut st = arrive_granted(&c.shared, c.tid, Pending::AtomicOp { obj, write: true }, site);
    let r = f();
    match &r {
        Ok(_) => apply_atomic_hb(
            &mut st,
            c.tid,
            obj,
            Some(HbFlags::of(success)),
            Some(HbFlags::of(success)),
        ),
        Err(_) => apply_atomic_hb(&mut st, c.tid, obj, Some(HbFlags::of(failure)), None),
    }
    clear_pending(&mut st, c.tid);
    r
}

/// A tracked non-atomic access (the `UnsafeCell` shim): checks for data
/// races against every unordered prior access, FastTrack-style.
pub(crate) fn data_op(tag: &ObjTag, write: bool, site: &'static Location<'static>) {
    let Some(c) = ctx() else { return };
    let obj = {
        let mut st = lock_state(&c.shared);
        st.obj_id(tag, ObjKind::Data)
    };
    let mut st = arrive_granted(&c.shared, c.tid, Pending::DataOp { obj, write }, site);
    let epoch = st.threads[c.tid].clock.tick(c.tid);
    let clock = st.threads[c.tid].clock.clone();
    let mut race: Option<String> = None;
    {
        let ObjectState::Data { last_write, reads } = &mut st.objects[obj] else {
            unreachable!("data op on non-data object")
        };
        if let Some((wt, we, wsite)) = *last_write {
            if wt != c.tid && clock.get(wt) < we {
                race = Some(format!(
                    "{} at {site} (t{}) races with write at {wsite} (t{wt})",
                    if write { "write" } else { "read" },
                    c.tid
                ));
            }
        }
        if write && race.is_none() {
            for &(rt, re, rsite) in reads.iter() {
                if rt != c.tid && clock.get(rt) < re {
                    race = Some(format!(
                        "write at {site} (t{}) races with read at {rsite} (t{rt})",
                        c.tid
                    ));
                    break;
                }
            }
        }
        if write {
            *last_write = Some((c.tid, epoch, site));
            reads.clear();
        } else {
            reads.retain(|&(rt, _, _)| rt != c.tid);
            reads.push((c.tid, epoch, site));
        }
    }
    if let Some(detail) = race {
        st.record_violation(ViolationKind::DataRace, detail);
        st.check_done();
        c.shared.cv.notify_all();
        drop(st);
        std::panic::panic_any(ExecAbort);
    }
    clear_pending(&mut st, c.tid);
}

/// Blocking lock acquisition (mutex lock, rwlock read/write). Returns
/// `true` if the calling thread is inside a model execution (the caller
/// then tags its guard so the drop releases the model lock too).
pub(crate) fn lock_acquire(tag: &ObjTag, req: LockReq, site: &'static Location<'static>) -> bool {
    let Some(c) = ctx() else { return false };
    let obj = {
        let mut st = lock_state(&c.shared);
        st.obj_id(tag, ObjKind::Lock)
    };
    let mut st = arrive_granted(&c.shared, c.tid, Pending::Lock { obj, req }, site);
    lock_effect(&mut st, c.tid, obj, req);
    clear_pending(&mut st, c.tid);
    true
}

fn lock_effect(st: &mut ExecState, tid: usize, obj: usize, req: LockReq) {
    st.threads[tid].clock.tick(tid);
    let mut acq = VClock::new();
    {
        let ObjectState::Lock { writer, readers, write_sync, read_sync } = &mut st.objects[obj]
        else {
            unreachable!("lock op on non-lock object")
        };
        match req {
            LockReq::Mutex | LockReq::Write => {
                debug_assert!(writer.is_none() && readers.is_empty(), "model granted a held lock");
                *writer = Some(tid);
                acq.join(write_sync);
                acq.join(read_sync);
            }
            LockReq::Read => {
                debug_assert!(writer.is_none(), "model granted a write-held lock to a reader");
                readers.push(tid);
                acq.join(write_sync);
            }
        }
    }
    st.threads[tid].clock.join(&acq);
}

/// Non-blocking acquisition attempt; returns `Some(acquired)` in a model,
/// `None` outside one (the caller falls back to the std primitive).
pub(crate) fn try_lock_acquire(
    tag: &ObjTag,
    req: LockReq,
    site: &'static Location<'static>,
) -> Option<bool> {
    let c = ctx()?;
    let obj = {
        let mut st = lock_state(&c.shared);
        st.obj_id(tag, ObjKind::Lock)
    };
    let mut st = arrive_granted(&c.shared, c.tid, Pending::TryLock { obj }, site);
    let free = match &st.objects[obj] {
        ObjectState::Lock { writer, readers, .. } => match req {
            LockReq::Mutex | LockReq::Write => writer.is_none() && readers.is_empty(),
            LockReq::Read => writer.is_none(),
        },
        _ => unreachable!("try-lock on non-lock object"),
    };
    if free {
        lock_effect(&mut st, c.tid, obj, req);
    } else {
        st.threads[c.tid].clock.tick(c.tid);
    }
    clear_pending(&mut st, c.tid);
    Some(free)
}

/// Lock release: an immediate effect (no scheduling decision — the next
/// decision sees the lock free, which is equivalent up to commutation
/// with the release itself).
pub(crate) fn lock_release(tag: &ObjTag, req: LockReq) {
    let Some(c) = ctx() else { return };
    let mut st = lock_state(&c.shared);
    if st.done || st.poisoned {
        return;
    }
    let obj = st.obj_id(tag, ObjKind::Lock);
    st.threads[c.tid].clock.tick(c.tid);
    let clock = st.threads[c.tid].clock.clone();
    let ObjectState::Lock { writer, readers, write_sync, read_sync } = &mut st.objects[obj] else {
        unreachable!("unlock on non-lock object")
    };
    match req {
        LockReq::Mutex | LockReq::Write => {
            debug_assert_eq!(*writer, Some(c.tid), "unlock by non-holder");
            *writer = None;
            *write_sync = clock;
            read_sync.clear();
        }
        LockReq::Read => {
            readers.retain(|&r| r != c.tid);
            read_sync.join(&clock);
        }
    }
}

/// Condvar wait, phase 1, called with the shim's std guard still held:
/// releases the mutex on the model side, registers as a waiter, and hands
/// the schedule off. The shim then drops its std guard and calls
/// [`condvar_wait_finish`]. Returns `false` outside a model (the shim
/// falls back to the std condvar).
pub(crate) fn condvar_wait_begin(
    cv_tag: &ObjTag,
    mx_tag: &ObjTag,
    timed: bool,
    site: &'static Location<'static>,
) -> bool {
    let Some(c) = ctx() else { return false };
    let (cv_obj, mx_obj) = {
        let mut st = lock_state(&c.shared);
        (st.obj_id(cv_tag, ObjKind::Condvar), st.obj_id(mx_tag, ObjKind::Lock))
    };
    let mut st = arrive_granted(&c.shared, c.tid, Pending::CondWait { cv: cv_obj }, site);
    st.threads[c.tid].clock.tick(c.tid);
    let clock = st.threads[c.tid].clock.clone();
    {
        let ObjectState::Lock { writer, write_sync, read_sync, .. } = &mut st.objects[mx_obj]
        else {
            unreachable!("condvar wait on non-lock mutex")
        };
        debug_assert_eq!(*writer, Some(c.tid), "condvar wait without holding the mutex");
        *writer = None;
        *write_sync = clock;
        read_sync.clear();
    }
    {
        let ObjectState::Condvar { waiters } = &mut st.objects[cv_obj] else {
            unreachable!("condvar wait on non-condvar object")
        };
        waiters.push_back(c.tid);
    }
    st.threads[c.tid].timed_out = false;
    st.threads[c.tid].pending =
        Some((Pending::CondBlocked { cv: cv_obj, mutex: mx_obj, timed }, site));
    st.decide(c.tid, &c.shared.cv);
    drop(st);
    true
}

/// Condvar wait, phase 2: park until woken (notify rewrites the pending op
/// to a lock re-acquisition; a timed wait may instead be scheduled as a
/// timeout), then re-acquire the mutex in the model. The shim re-acquires
/// the std lock afterwards (guaranteed uncontended: the model granted it).
/// Returns `timed_out`.
pub(crate) fn condvar_wait_finish(site: &'static Location<'static>) -> bool {
    let c = ctx().expect("condvar_wait_finish outside a model execution");
    loop {
        let st = lock_state(&c.shared);
        wait_granted_locked(&c.shared, st, c.tid);
        let mut st = lock_state(&c.shared);
        let (pending, _) = st.threads[c.tid].pending.expect("parked thread keeps a pending op");
        match pending {
            Pending::CondBlocked { cv, mutex, .. } => {
                // Scheduled while still parked: the timeout fires. Convert
                // to a pending lock re-acquisition and hand off again.
                st.threads[c.tid].timed_out = true;
                {
                    let ObjectState::Condvar { waiters } = &mut st.objects[cv] else {
                        unreachable!("condvar timeout on non-condvar object")
                    };
                    waiters.retain(|&w| w != c.tid);
                }
                st.threads[c.tid].clock.tick(c.tid);
                st.threads[c.tid].pending =
                    Some((Pending::Lock { obj: mutex, req: LockReq::Mutex }, site));
                st.decide(c.tid, &c.shared.cv);
            }
            Pending::Lock { obj, req } => {
                lock_effect(&mut st, c.tid, obj, req);
                let timed_out = st.threads[c.tid].timed_out;
                st.threads[c.tid].timed_out = false;
                clear_pending(&mut st, c.tid);
                return timed_out;
            }
            other => unreachable!("condvar waiter woke with pending {other:?}"),
        }
    }
}

/// Notify: an immediate effect (like unlock). Woken waiters' pending ops
/// become lock re-acquisitions, so they re-enter the enabled set.
pub(crate) fn condvar_notify(tag: &ObjTag, all: bool) {
    let Some(c) = ctx() else { return };
    let mut st = lock_state(&c.shared);
    if st.done || st.poisoned {
        return;
    }
    let obj = st.obj_id(tag, ObjKind::Condvar);
    st.threads[c.tid].clock.tick(c.tid);
    let to_wake: Vec<usize> = {
        let ObjectState::Condvar { waiters } = &mut st.objects[obj] else {
            unreachable!("notify on non-condvar object")
        };
        if all {
            waiters.drain(..).collect()
        } else {
            waiters.pop_front().into_iter().collect()
        }
    };
    for w in to_wake {
        let Some((Pending::CondBlocked { mutex, .. }, wsite)) = st.threads[w].pending else {
            unreachable!("condvar waiter without a CondBlocked pending op")
        };
        st.threads[w].pending = Some((Pending::Lock { obj: mutex, req: LockReq::Mutex }, wsite));
    }
}

/// Spawn a model thread: immediate effect (the child becomes schedulable
/// at the next decision). Returns the child's model tid, or `None` outside
/// a model (the shim falls back to `std::thread::spawn`).
#[track_caller]
pub(crate) fn spawn_thread(body: Box<dyn FnOnce() + Send + 'static>) -> Option<usize> {
    let c = ctx()?;
    let site = Location::caller();
    let tid = {
        let mut st = lock_state(&c.shared);
        assert!(st.threads.len() < MAX_THREADS, "model spawned more than {MAX_THREADS} threads");
        let tid = st.threads.len();
        st.threads[c.tid].clock.tick(c.tid);
        let mut clock = st.threads[c.tid].clock.clone();
        clock.tick(tid);
        st.threads.push(ThreadState {
            status: ThreadStatus::Live,
            pending: Some((Pending::Begin, site)),
            clock,
            timed_out: false,
        });
        st.live_threads += 1;
        tid
    };
    let shared = Arc::clone(&c.shared);
    dispatch(Box::new(move || run_model_thread(shared, tid, body)));
    Some(tid)
}

/// Join: blocks until the target thread finished; merges its clock.
pub(crate) fn join_thread(target: usize, site: &'static Location<'static>) {
    let c = ctx().expect("model JoinHandle joined outside its execution");
    let mut st = arrive_granted(&c.shared, c.tid, Pending::Join { target }, site);
    st.threads[c.tid].clock.tick(c.tid);
    let tclock = st.threads[target].clock.clone();
    st.threads[c.tid].clock.join(&tclock);
    clear_pending(&mut st, c.tid);
}

/// Pure scheduling point (`yield_now`, `spin_loop`).
pub(crate) fn yield_point(site: &'static Location<'static>) {
    let Some(c) = ctx() else { return };
    let mut st = arrive_granted(&c.shared, c.tid, Pending::Yield, site);
    st.threads[c.tid].clock.tick(c.tid);
    clear_pending(&mut st, c.tid);
}

// ---------------------------------------------------------------------------
// Thread lifecycle
// ---------------------------------------------------------------------------

fn run_model_thread(shared: Arc<ExecShared>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { shared: Arc::clone(&shared), tid }));
    // Park until the Begin op is granted.
    let begin = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let st = lock_state(&shared);
        wait_granted_locked(&shared, st, tid);
        let mut st = lock_state(&shared);
        st.threads[tid].clock.tick(tid);
        clear_pending(&mut st, tid);
    }));
    let result = match begin {
        Ok(()) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)),
        Err(e) => Err(e),
    };
    CTX.with(|c| *c.borrow_mut() = None);
    finish_thread(&shared, tid, result);
}

fn finish_thread(
    shared: &Arc<ExecShared>,
    tid: usize,
    result: Result<(), Box<dyn std::any::Any + Send>>,
) {
    let mut st = lock_state(shared);
    st.threads[tid].status = ThreadStatus::Finished;
    st.threads[tid].pending = None;
    st.live_threads -= 1;
    if let Err(payload) = result {
        if payload.downcast_ref::<ExecAbort>().is_none() {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "model thread panicked".to_string());
            st.record_violation(ViolationKind::Panic, format!("t{tid} panicked: {msg}"));
        }
    }
    if st.poisoned {
        st.check_done();
        shared.cv.notify_all();
    } else {
        st.decide(tid, &shared.cv);
    }
}

// ---------------------------------------------------------------------------
// Execution driver (called by explore.rs)
// ---------------------------------------------------------------------------

/// Everything the explorer needs from a finished execution.
pub(crate) struct ExecOutcome {
    pub(crate) decisions: Vec<DecisionRec>,
    pub(crate) trace: Vec<StepRec>,
    pub(crate) violation: Option<Violation>,
    pub(crate) schedule: String,
}

/// Monotone execution counter (object-tag epochs key off it; 0 is the
/// "never in an execution" sentinel every fresh tag starts at).
static EXEC_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Run `f` once under the scheduler, replaying `replay` and extending per
/// `rng` (random walk) or the DFS policy. Blocks until every model thread
/// finished.
pub(crate) fn run_once(
    f: &Arc<dyn Fn() + Send + Sync>,
    replay: Vec<usize>,
    rng: Option<u64>,
    max_steps: usize,
) -> ExecOutcome {
    // ordering: a plain unique-id counter; threads never synchronise
    // through it.
    let epoch = EXEC_EPOCH.fetch_add(1, Ordering::Relaxed);
    let mut root_clock = VClock::new();
    root_clock.tick(0);
    let shared = Arc::new(ExecShared {
        mx: Mutex::new(ExecState {
            epoch,
            threads: vec![ThreadState {
                status: ThreadStatus::Live,
                pending: Some((Pending::Begin, Location::caller())),
                clock: root_clock,
                timed_out: false,
            }],
            objects: Vec::new(),
            replay,
            rng,
            decisions: Vec::new(),
            trace: Vec::new(),
            active: usize::MAX,
            violation: None,
            poisoned: false,
            done: false,
            max_steps,
            live_threads: 1,
            sc_clock: VClock::new(),
        }),
        cv: Condvar::new(),
    });
    let shared2 = Arc::clone(&shared);
    let f2 = Arc::clone(f);
    dispatch(Box::new(move || run_model_thread(shared2, 0, Box::new(move || f2()))));
    // Kick off: the first decision is made by the driver.
    {
        let mut st = lock_state(&shared);
        st.decide(usize::MAX, &shared.cv);
    }
    let mut st = lock_state(&shared);
    while !st.done {
        st = shared.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    let schedule = st.render_schedule();
    ExecOutcome {
        decisions: std::mem::take(&mut st.decisions),
        trace: std::mem::take(&mut st.trace),
        violation: st.violation.take(),
        schedule,
    }
}

/// Install (once, process-wide) a panic hook that silences panics inside
/// model threads: aborts are control flow, and assertion failures are
/// converted to [`ViolationKind::Panic`] violations and reported with a
/// schedule by the explorer.
pub(crate) fn init_panic_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ExecAbort>().is_some() || in_model() {
                return;
            }
            prev(info);
        }));
    });
}
