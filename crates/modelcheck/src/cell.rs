//! Shimmed `UnsafeCell`: the data-race detector's probe.
//!
//! Non-atomic shared state accessed through this cell is checked against
//! the vector-clock happens-before relation on every access: two accesses
//! with no synchronization chain between them (at least one a write) are
//! reported as a [`DataRace`](crate::ViolationKind::DataRace).
//!
//! `with` / `with_mut` record a read / write respectively. The raw `get()`
//! escape hatch conservatively records a *write* (callers use it for both,
//! and existing code like `core`'s queue shouldn't need rewriting to be
//! modeled).

use std::panic::Location;

use crate::exec::{self, ObjTag};

/// Shimmed counterpart of [`std::cell::UnsafeCell`].
#[derive(Debug)]
pub struct UnsafeCell<T: ?Sized> {
    tag: ObjTag,
    inner: std::cell::UnsafeCell<T>,
}

impl<T> UnsafeCell<T> {
    pub const fn new(t: T) -> Self {
        Self { tag: ObjTag::new(), inner: std::cell::UnsafeCell::new(t) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Raw pointer access; recorded as a *write* (conservative: the caller
    /// may do either through the pointer).
    #[track_caller]
    pub fn get(&self) -> *mut T {
        exec::data_op(&self.tag, true, Location::caller());
        self.inner.get()
    }

    /// Immutable access, recorded as a read.
    ///
    /// # Safety
    /// As for [`std::cell::UnsafeCell`]: the caller must guarantee no
    /// concurrent mutable access exists (the model checker verifies that
    /// guarantee under every explored schedule).
    #[track_caller]
    pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        exec::data_op(&self.tag, false, Location::caller());
        f(self.inner.get())
    }

    /// Mutable access, recorded as a write.
    ///
    /// # Safety
    /// As for [`std::cell::UnsafeCell`]: the caller must guarantee the
    /// access is exclusive (the model checker verifies that guarantee
    /// under every explored schedule).
    #[track_caller]
    pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        exec::data_op(&self.tag, true, Location::caller());
        f(self.inner.get())
    }

    /// Exclusive access: no concurrency possible, untracked.
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` guarantees exclusive access for the
        // returned borrow's lifetime.
        unsafe { &mut *self.inner.get() }
    }
}
