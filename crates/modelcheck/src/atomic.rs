//! Shimmed atomic types.
//!
//! Drop-in replacements for `std::sync::atomic::*` that, inside a model
//! execution, make every operation a scheduling point and feed the
//! requested memory ordering into the vector-clock happens-before
//! machinery. Values are always sequentially consistent (the scheduler
//! serializes executions); *weak-memory bugs surface as data races on the
//! non-atomic data the atomics were supposed to publish*, exactly as in
//! loom. Outside a model every call passes straight through to std.

use std::panic::Location;

pub use std::sync::atomic::Ordering;

use crate::exec::{self, HbFlags, ObjTag};

macro_rules! atomic_int {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Shimmed counterpart of [`std::sync::atomic::
        #[doc = stringify!($std)]
        /// `].
        pub struct $name {
            tag: ObjTag,
            inner: std::sync::atomic::$std,
        }

        impl $name {
            pub const fn new(v: $ty) -> Self {
                Self { tag: ObjTag::new(), inner: std::sync::atomic::$std::new(v) }
            }

            #[track_caller]
            pub fn load(&self, ord: Ordering) -> $ty {
                exec::atomic_op(
                    &self.tag,
                    false,
                    Location::caller(),
                    Some(HbFlags::of(ord)),
                    None,
                    || self.inner.load(ord),
                )
            }

            #[track_caller]
            pub fn store(&self, v: $ty, ord: Ordering) {
                exec::atomic_op(
                    &self.tag,
                    true,
                    Location::caller(),
                    None,
                    Some(HbFlags::of(ord)),
                    || self.inner.store(v, ord),
                )
            }

            #[track_caller]
            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |inner| inner.swap(v, ord))
            }

            #[track_caller]
            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |inner| inner.fetch_add(v, ord))
            }

            #[track_caller]
            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |inner| inner.fetch_sub(v, ord))
            }

            #[track_caller]
            pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |inner| inner.fetch_and(v, ord))
            }

            #[track_caller]
            pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |inner| inner.fetch_or(v, ord))
            }

            #[track_caller]
            pub fn fetch_xor(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |inner| inner.fetch_xor(v, ord))
            }

            #[track_caller]
            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |inner| inner.fetch_max(v, ord))
            }

            #[track_caller]
            pub fn fetch_min(&self, v: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |inner| inner.fetch_min(v, ord))
            }

            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                exec::atomic_cas(&self.tag, Location::caller(), success, failure, || {
                    self.inner.compare_exchange(current, new, success, failure)
                })
            }

            /// Under the model a "weak" CAS only fails on a value mismatch
            /// (no spurious failures): spurious-failure retry loops are
            /// explored through genuine interleavings instead.
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                exec::atomic_cas(&self.tag, Location::caller(), success, failure, || {
                    self.inner.compare_exchange(current, new, success, failure)
                })
            }

            /// Exclusive access: no concurrency possible, untracked.
            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }

            #[track_caller]
            fn rmw(&self, ord: Ordering, f: impl FnOnce(&std::sync::atomic::$std) -> $ty) -> $ty {
                exec::atomic_op(
                    &self.tag,
                    true,
                    Location::caller(),
                    Some(HbFlags::of(ord)),
                    Some(HbFlags::of(ord)),
                    || f(&self.inner),
                )
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$ty>::default())
            }
        }

        impl From<$ty> for $name {
            fn from(v: $ty) -> Self {
                Self::new(v)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                std::fmt::Debug::fmt(&self.inner, f)
            }
        }
    };
}

atomic_int!(AtomicUsize, AtomicUsize, usize);
atomic_int!(AtomicU64, AtomicU64, u64);
atomic_int!(AtomicU32, AtomicU32, u32);
atomic_int!(AtomicU8, AtomicU8, u8);
atomic_int!(AtomicI64, AtomicI64, i64);

/// Shimmed counterpart of [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    tag: ObjTag,
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self { tag: ObjTag::new(), inner: std::sync::atomic::AtomicBool::new(v) }
    }

    #[track_caller]
    pub fn load(&self, ord: Ordering) -> bool {
        exec::atomic_op(&self.tag, false, Location::caller(), Some(HbFlags::of(ord)), None, || {
            self.inner.load(ord)
        })
    }

    #[track_caller]
    pub fn store(&self, v: bool, ord: Ordering) {
        exec::atomic_op(&self.tag, true, Location::caller(), None, Some(HbFlags::of(ord)), || {
            self.inner.store(v, ord)
        })
    }

    #[track_caller]
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.rmw(ord, |inner| inner.swap(v, ord))
    }

    #[track_caller]
    pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
        self.rmw(ord, |inner| inner.fetch_and(v, ord))
    }

    #[track_caller]
    pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
        self.rmw(ord, |inner| inner.fetch_or(v, ord))
    }

    #[track_caller]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        exec::atomic_cas(&self.tag, Location::caller(), success, failure, || {
            self.inner.compare_exchange(current, new, success, failure)
        })
    }

    /// See the integer shims: weak CAS never fails spuriously here.
    #[track_caller]
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        exec::atomic_cas(&self.tag, Location::caller(), success, failure, || {
            self.inner.compare_exchange(current, new, success, failure)
        })
    }

    /// Exclusive access: no concurrency possible, untracked.
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }

    #[track_caller]
    fn rmw(&self, ord: Ordering, f: impl FnOnce(&std::sync::atomic::AtomicBool) -> bool) -> bool {
        exec::atomic_op(
            &self.tag,
            true,
            Location::caller(),
            Some(HbFlags::of(ord)),
            Some(HbFlags::of(ord)),
            || f(&self.inner),
        )
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl From<bool> for AtomicBool {
    fn from(v: bool) -> Self {
        Self::new(v)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.inner, f)
    }
}
