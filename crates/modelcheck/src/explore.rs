//! The exploration loop: DFS over scheduling decisions with DPOR-style
//! pruning, an optional full (unpruned) mode, and a seeded random-walk
//! mode for state spaces too large to exhaust.
//!
//! Each execution yields the sequence of decisions taken (with the full
//! enabled set at each point) plus the access trace. DPOR then walks the
//! trace: for every step `i` by thread `p` touching object `o`, the last
//! earlier step `j` by a different thread that *conflicts* on `o` (at
//! least one side a write) gets `p` added to its backtrack set — i.e. "we
//! must also try running `p` first at that point". The DFS revisits only
//! decision points with non-empty unexplored backtrack sets; everything
//! else is pruned as equivalent by commutativity.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::exec::{self, ExecOutcome, Violation};

/// Result of exploring one model.
#[derive(Debug)]
pub struct Report {
    /// Number of distinct executions (interleavings) run.
    pub interleavings: u64,
    /// Enabled-but-never-taken branches skipped at popped decision points
    /// (the saving DPOR bought relative to the full tree).
    pub prunes: u64,
    /// Violations found (at most one per execution; empty = model clean).
    pub violations: Vec<Violation>,
    /// Rendered schedule of the first violating execution.
    pub schedule: Option<String>,
    /// True if exploration stopped at `max_interleavings` before
    /// exhausting the state space.
    pub capped: bool,
}

impl Report {
    /// True iff no violation was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One decision point on the DFS stack.
struct Choice {
    /// Threads enabled at this point (fixed across revisits: the replayed
    /// prefix is deterministic).
    enabled: Vec<usize>,
    /// Threads that must be tried here (DPOR grows this; full mode seeds
    /// it with `enabled`).
    backtrack: BTreeSet<usize>,
    /// Threads already tried here.
    done: BTreeSet<usize>,
    /// Thread taken on the most recent pass (forms the replay prefix).
    chosen: usize,
}

/// Configures and runs an exploration. Defaults: DPOR pruning on, 20 000
/// step bound, no interleaving cap, stop at the first violation.
#[derive(Debug, Clone)]
pub struct Builder {
    max_steps: usize,
    max_interleavings: Option<u64>,
    full: bool,
    random_walk: Option<(u64, u64)>,
    stop_on_violation: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    pub fn new() -> Self {
        Self {
            max_steps: 20_000,
            max_interleavings: None,
            full: false,
            random_walk: None,
            stop_on_violation: true,
        }
    }

    /// Per-execution step bound (exceeding it is a [`StepBound`]
    /// violation — livelock, or an unbounded spin loop in the model).
    ///
    /// [`StepBound`]: crate::ViolationKind::StepBound
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Cap the number of executions; the report sets `capped` when hit.
    pub fn max_interleavings(mut self, n: u64) -> Self {
        self.max_interleavings = Some(n);
        self
    }

    /// Disable DPOR pruning: explore the full decision tree. Only viable
    /// for tiny models; used by self-tests to validate the pruning.
    pub fn full(mut self) -> Self {
        self.full = true;
        self
    }

    /// Random-walk mode: `iterations` executions, each driven by a
    /// deterministic RNG derived from `seed` — for state spaces too large
    /// to exhaust. Replaces DFS entirely.
    pub fn random_walk(mut self, seed: u64, iterations: u64) -> Self {
        self.random_walk = Some((seed, iterations));
        self
    }

    /// Keep exploring after a violation (collect several).
    pub fn keep_going(mut self) -> Self {
        self.stop_on_violation = false;
        self
    }

    /// Explore `f` and return the report. `f` runs once per interleaving
    /// and must be self-contained (fresh state each call).
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        exec::init_panic_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        match self.random_walk {
            Some((seed, iterations)) => self.run_random(&f, seed, iterations),
            None => self.run_dfs(&f),
        }
    }

    fn run_random(&self, f: &Arc<dyn Fn() + Send + Sync>, seed: u64, iterations: u64) -> Report {
        let mut report = Report {
            interleavings: 0,
            prunes: 0,
            violations: Vec::new(),
            schedule: None,
            capped: false,
        };
        for i in 0..iterations {
            // Decorrelate per-iteration streams (splitmix64 of seed + i
            // happens inside the scheduler; offsetting by a large odd
            // constant keeps streams distinct even for adjacent seeds).
            let stream = seed.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15));
            let outcome = exec::run_once(f, Vec::new(), Some(stream), self.max_steps);
            report.interleavings += 1;
            if let Some(v) = outcome.violation {
                report.violations.push(v);
                if report.schedule.is_none() {
                    report.schedule = Some(outcome.schedule);
                }
                if self.stop_on_violation {
                    break;
                }
            }
        }
        report
    }

    fn run_dfs(&self, f: &Arc<dyn Fn() + Send + Sync>) -> Report {
        let mut report = Report {
            interleavings: 0,
            prunes: 0,
            violations: Vec::new(),
            schedule: None,
            capped: false,
        };
        let mut stack: Vec<Choice> = Vec::new();
        let mut replay: Vec<usize> = Vec::new();
        loop {
            let mut outcome = exec::run_once(f, replay.clone(), None, self.max_steps);
            report.interleavings += 1;
            let violated = outcome.violation.is_some();
            if let Some(v) = outcome.violation.take() {
                report.violations.push(v);
                if report.schedule.is_none() {
                    report.schedule = Some(std::mem::take(&mut outcome.schedule));
                }
            }
            self.merge_into_stack(&mut stack, &outcome);
            if violated && self.stop_on_violation {
                break;
            }
            if !self.full {
                add_backtrack_points(&mut stack, &outcome);
            }
            match next_target(&mut stack, &mut report.prunes) {
                None => break,
                Some(c) => {
                    replay = stack[..stack.len() - 1].iter().map(|ch| ch.chosen).collect();
                    replay.push(c);
                }
            }
            if let Some(cap) = self.max_interleavings {
                if report.interleavings >= cap {
                    report.capped = true;
                    break;
                }
            }
        }
        report
    }

    fn merge_into_stack(&self, stack: &mut Vec<Choice>, outcome: &ExecOutcome) {
        for (k, d) in outcome.decisions.iter().enumerate() {
            if k < stack.len() {
                stack[k].chosen = d.chosen;
                stack[k].done.insert(d.chosen);
            } else {
                let backtrack: BTreeSet<usize> = if self.full {
                    d.enabled.iter().copied().collect()
                } else {
                    BTreeSet::from([d.chosen])
                };
                stack.push(Choice {
                    enabled: d.enabled.clone(),
                    backtrack,
                    done: BTreeSet::from([d.chosen]),
                    chosen: d.chosen,
                });
            }
        }
        // An aborted execution (violation) can be shorter than the stack.
        stack.truncate(outcome.decisions.len());
    }
}

/// The DPOR pass: mark backtrack points for every conflicting pair.
fn add_backtrack_points(stack: &mut [Choice], outcome: &ExecOutcome) {
    for i in 0..outcome.trace.len() {
        let Some((obj, wi)) = outcome.trace[i].access else { continue };
        let p = outcome.trace[i].tid;
        // Last earlier step by a different thread conflicting on obj.
        for j in (0..i.min(stack.len())).rev() {
            let Some((oj, wj)) = outcome.trace[j].access else { continue };
            if oj == obj && outcome.trace[j].tid != p && (wi || wj) {
                if stack[j].enabled.contains(&p) {
                    stack[j].backtrack.insert(p);
                } else {
                    // p wasn't enabled at j: conservatively try everything
                    // that was (the standard over-approximation).
                    let all: Vec<usize> = stack[j].enabled.clone();
                    stack[j].backtrack.extend(all);
                }
                break;
            }
        }
    }
}

/// Pop exhausted decision points (counting pruned branches) and return the
/// next unexplored backtrack choice at the deepest remaining point.
fn next_target(stack: &mut Vec<Choice>, prunes: &mut u64) -> Option<usize> {
    loop {
        let top = stack.last()?;
        if let Some(&c) = top.backtrack.difference(&top.done).next() {
            return Some(c);
        }
        let top = stack.pop().expect("non-empty: last() succeeded");
        *prunes += (top.enabled.len() - top.done.len()) as u64;
    }
}

/// Exhaustively explore `f` with DPOR pruning; panic with the violating
/// schedule if a concurrency bug is found. The assert-style entry point
/// for tests.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Builder::new().check(f);
    if let Some(v) = report.violations.first() {
        panic!(
            "modelcheck: {} — {}\nschedule:\n{}",
            v.kind.name(),
            v.detail,
            report.schedule.as_deref().unwrap_or("<none>")
        );
    }
}

/// Exhaustively explore `f` with DPOR pruning and return the report
/// (violations collected, not panicked).
pub fn explore<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
