//! Vector clocks for happens-before tracking.
//!
//! Each model thread carries a [`VClock`]; every executed synchronization
//! step ticks the thread's own component. Release-style operations publish
//! the running thread's clock into the touched object; acquire-style
//! operations join the object's clock back into the thread. A non-atomic
//! access by thread `t` to a location last written by thread `w` at epoch
//! `e` is racy iff `t`'s clock component for `w` is below `e` — i.e. no
//! synchronization chain ordered the two accesses.

/// A growable vector clock indexed by model thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn new() -> Self {
        Self(Vec::new())
    }

    /// The clock component for `tid` (0 if never ticked).
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advance `tid`'s own component and return the new epoch.
    pub(crate) fn tick(&mut self, tid: usize) -> u64 {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
        self.0[tid]
    }

    /// Component-wise maximum: afterwards `self` dominates both inputs.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }

    /// Forget all ordering (used when a relaxed store breaks a release
    /// chain: later acquire loads must not synchronize with it).
    pub(crate) fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_get() {
        let mut a = VClock::new();
        assert_eq!(a.tick(2), 1);
        assert_eq!(a.tick(2), 2);
        assert_eq!(a.get(2), 2);
        assert_eq!(a.get(0), 0);
        let mut b = VClock::new();
        b.tick(0);
        b.join(&a);
        assert_eq!(b.get(0), 1);
        assert_eq!(b.get(2), 2);
        b.clear();
        assert_eq!(b.get(0), 0);
    }
}
