//! The chaos sweep: seeded schedules, a watchdog, and the seed-bug self test.
//!
//! The default sweep runs `cfg.seeds` schedules, cycling the five
//! [`FaultClass`]es so every class is covered several times. Each schedule
//! generates its [`FaultPlan`] from the seed, installs it, runs the
//! [`crate::workload`] under a supervised thread, and drains the global
//! `papyrus-sanity` registry: oracle verdicts, untyped errors, and watchdog
//! findings all become violations of that schedule. A clean sweep proves,
//! for every seed: no acknowledged write was lost, no phantom value
//! appeared, no schedule hung, and every surfaced error was typed.
//!
//! `--seed-bug` proves the harness can actually catch what it claims to:
//! each [`PlantedBug`] is armed together with a message-drop plan that
//! triggers it, and the run must end dirty — [`PlantedBug::LostAck`] caught
//! by the oracle as an acknowledged-write loss, [`PlantedBug::Hang`] caught
//! by the watchdog as a hung schedule.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use papyrus_faultinject::{
    self as fi, class_name, FaultClass, FaultEvent, FaultPlan, PlantedBug, ALL_CLASSES,
};
use papyrus_sanity::ViolationKind;
use parking_lot::Mutex;

use crate::workload::{run_schedule, ChaosCfg, RankOutcome};

/// One confirmed violation, tagged with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct ChaosViolation {
    /// Schedule seed.
    pub seed: u64,
    /// Fault class (or planted-bug label) of the schedule.
    pub class: String,
    /// Violation kind name (`papyrus_sanity::ViolationKind::name`).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Outcome of a sweep (or of one seed-bug run).
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Schedules run.
    pub schedules: usize,
    /// `(class name, schedules run)` coverage.
    pub per_class: Vec<(String, usize)>,
    /// Total puts acknowledged across all ranks and schedules.
    pub puts: usize,
    /// Total gets issued across all ranks and schedules.
    pub gets: usize,
    /// Typed errors surfaced to the workload (all legal).
    pub typed_errors: usize,
    /// Schedules in which at least one rank finished degraded.
    pub degraded_schedules: usize,
    /// Schedules in which the plan killed a rank.
    pub kill_schedules: usize,
    /// Everything that failed verification.
    pub violations: Vec<ChaosViolation>,
}

impl ChaosReport {
    /// No violations anywhere in the sweep.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line summary for CLI output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "soaked {} schedules: {} puts, {} gets, {} typed errors, \
             {} degraded, {} with a rank kill\n",
            self.schedules,
            self.puts,
            self.gets,
            self.typed_errors,
            self.degraded_schedules,
            self.kill_schedules
        );
        for (class, count) in &self.per_class {
            out.push_str(&format!("  class {class:<14} x{count}\n"));
        }
        if self.is_clean() {
            out.push_str("no violations\n");
        } else {
            out.push_str(&format!("{} VIOLATIONS:\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!(
                    "  seed {} [{}] {}: {}\n",
                    v.seed, v.class, v.kind, v.detail
                ));
            }
        }
        out
    }
}

/// Serialises chaos runs within one process: each run owns the global fault
/// gate, plan registry, planted-bug slot, and sanity registry.
pub(crate) fn chaos_lock() -> &'static Mutex<()> {
    static LOCK: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Install `plan`, run one schedule under the watchdog, drain the registry.
/// Returns rank outcomes (`None` if the schedule hung or panicked) plus the
/// violations recorded against it.
fn run_schedule_guarded(
    cfg: &ChaosCfg,
    plan: Arc<FaultPlan>,
    label: &str,
) -> (Option<Vec<RankOutcome>>, Vec<papyrus_sanity::Violation>) {
    let _ = papyrus_sanity::take_violations(); // isolate this schedule
    fi::install_plan(plan.clone());
    let oracle = Arc::new(crate::oracle::ChaosOracle::new());
    let (tx, rx) = mpsc::channel();
    let cfg2 = cfg.clone();
    let what = label.to_string();
    let spawned = std::thread::Builder::new().name(format!("chaos-{label}")).spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(move || run_schedule(&cfg2, plan, oracle)));
        let _ = tx.send(result);
    });
    let outcome = match spawned {
        Ok(handle) => match rx.recv_timeout(Duration::from_secs(cfg.timeout_secs)) {
            Ok(Ok(v)) => {
                let _ = handle.join();
                Some(v)
            }
            Ok(Err(panic)) => {
                let _ = handle.join();
                let msg = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                papyrus_sanity::record_violation(
                    ViolationKind::UntypedError,
                    format!("{what} panicked instead of returning a typed error: {msg}"),
                );
                None
            }
            Err(_) => {
                // Hung schedule: abandon its world and flag it.
                papyrus_sanity::record_violation(
                    ViolationKind::ChaosHang,
                    format!("{what} hung (> {}s wall clock)", cfg.timeout_secs),
                );
                None
            }
        },
        Err(e) => {
            papyrus_sanity::record_violation(
                ViolationKind::ChaosHang,
                format!("{what}: spawn failed: {e}"),
            );
            None
        }
    };
    fi::clear_plan();
    (outcome, papyrus_sanity::take_violations())
}

/// Fold one schedule's results into the report.
fn absorb(
    report: &mut ChaosReport,
    seed: u64,
    class: &str,
    had_kill: bool,
    outcomes: Option<Vec<RankOutcome>>,
    violations: Vec<papyrus_sanity::Violation>,
) {
    report.schedules += 1;
    match report.per_class.iter_mut().find(|(c, _)| c == class) {
        Some((_, n)) => *n += 1,
        None => report.per_class.push((class.to_string(), 1)),
    }
    report.kill_schedules += usize::from(had_kill);
    if let Some(outs) = outcomes {
        report.puts += outs.iter().map(|o| o.puts).sum::<usize>();
        report.gets += outs.iter().map(|o| o.gets).sum::<usize>();
        report.typed_errors += outs.iter().map(|o| o.typed_errors).sum::<usize>();
        report.degraded_schedules += usize::from(outs.iter().any(|o| o.degraded || o.died));
    }
    for v in violations {
        report.violations.push(ChaosViolation {
            seed,
            class: class.to_string(),
            kind: v.kind.name().to_string(),
            detail: v.detail,
        });
    }
}

/// The fault class schedule `i` of a sweep exercises.
pub fn class_of(i: usize) -> FaultClass {
    ALL_CLASSES[i % ALL_CLASSES.len()]
}

/// The seed schedule `i` of a sweep uses (`seed_base + i`).
pub fn seed_of(seed_base: u64, i: usize) -> u64 {
    seed_base.wrapping_add(i as u64)
}

/// Default seed base of the sweep (any value works; this one is pinned so
/// CI runs are reproducible and failures can be replayed by seed).
pub const SEED_BASE: u64 = 1000;

/// Run the default sweep: `cfg.seeds` schedules cycling all fault classes.
pub fn chaos_sweep(cfg: &ChaosCfg, seed_base: u64) -> ChaosReport {
    let _guard = chaos_lock().lock();
    fi::force_enable();
    fi::set_planted_bug(None);
    let mut report = ChaosReport::default();
    for i in 0..cfg.seeds {
        let seed = seed_of(seed_base, i);
        let class = class_of(i);
        let plan = Arc::new(FaultPlan::generate(seed, class, cfg.ranks, cfg.horizon_ns));
        if cfg.verbose {
            eprintln!("chaos: seed {seed} [{}] {} events", class_name(class), plan.events().len());
        }
        let had_kill = plan.has_kill();
        let label = format!("seed {seed} [{}]", class_name(class));
        let (outcomes, violations) = run_schedule_guarded(cfg, plan, &label);
        absorb(&mut report, seed, class_name(class), had_kill, outcomes, violations);
    }
    fi::force_disable();
    report
}

/// The two planted protocol bugs of the `--seed-bug` self test.
pub const SEED_BUGS: [PlantedBug; 2] = [PlantedBug::LostAck, PlantedBug::Hang];

/// Stable CLI name of a planted bug.
pub fn bug_name(bug: PlantedBug) -> &'static str {
    match bug {
        PlantedBug::LostAck => "lost-ack",
        PlantedBug::Hang => "hang",
    }
}

/// Parse a `--seed-bug` argument.
pub fn bug_by_name(name: &str) -> Option<PlantedBug> {
    SEED_BUGS.into_iter().find(|&b| bug_name(b) == name)
}

/// Run one schedule with `bug` planted in the protocol layer plus the
/// message-drop plan that triggers it. The report must be dirty — a clean
/// report means the harness failed to detect its own planted bug.
pub fn run_seed_bug(cfg: &ChaosCfg, bug: PlantedBug) -> ChaosReport {
    let _guard = chaos_lock().lock();
    fi::force_enable();
    fi::set_planted_bug(Some(bug));
    let mut cfg = cfg.clone();
    let events = match bug {
        // Drop the first two PUT_SYNC requests: the planted bug then
        // acknowledges those sequential puts after their first timeout
        // without the owner ever applying them. The oracle must report the
        // acknowledged-write loss at verify.
        PlantedBug::LostAck => vec![FaultEvent::NetDrop {
            start: 0,
            end: cfg.horizon_ns,
            to_rank: None,
            tag: Some(papyruskv::msg::tags::PUT_SYNC),
            budget: 2,
        }],
        // Drop one GET_REQ: the planted bug blocks that RPC on an undeadlined
        // receive forever, wedging the whole schedule. The watchdog must
        // report the hang. A short fuse keeps the self test fast.
        PlantedBug::Hang => {
            cfg.timeout_secs = cfg.timeout_secs.min(10);
            vec![FaultEvent::NetDrop {
                start: 0,
                end: cfg.horizon_ns,
                to_rank: None,
                tag: Some(papyruskv::msg::tags::GET_REQ),
                budget: 1,
            }]
        }
    };
    let seed = 0xB0C5 + bug as u64;
    let plan = Arc::new(FaultPlan::with_events(seed, events));
    let label = format!("seed-bug {}", bug_name(bug));
    let (outcomes, violations) = run_schedule_guarded(&cfg, plan, &label);
    fi::set_planted_bug(None);
    fi::force_disable();
    let mut report = ChaosReport::default();
    absorb(&mut report, seed, &label, false, outcomes, violations);
    report
}
