//! Shadow KV oracle: ground truth the chaos soak judges observations against.
//!
//! Every key has a single writer rank and self-describing values
//! (`k=<key>;r=<round>;w=<writer>;…`), so any read can be checked without
//! coordination: the value names the key and round it was written in. The
//! oracle tracks three per-key watermarks:
//!
//! * `attempted` — highest round whose put was *issued* (it may have failed
//!   with a typed error, or been buffered and lost with the writer);
//! * `ok` — highest round whose put returned `Ok`;
//! * `acked` — highest round known globally durable against *runtime*
//!   faults: the put returned `Ok` and a later collective barrier succeeded
//!   (or the put was sequential-consistency, its own synchronisation point).
//!
//! The invariants: an observed value must parse, must name its own key, and
//! its round must lie in `[acked, attempted]`. Below `acked` is an
//! **acknowledged-write loss**; above `attempted` (or unparseable) is a
//! **phantom read**. Keys whose owner rank was killed by the schedule are
//! exempt from the loss bound — degraded mode makes them unavailable, not
//! wrong — but any error returned for them must still be typed.

use std::collections::HashMap;

use bytes::Bytes;
use papyrus_sanity::ViolationKind;
use papyruskv::error::Error;
use parking_lot::Mutex;

/// Per-key watermarks. Rounds are 1-based; 0 = never.
#[derive(Debug, Default, Clone, Copy)]
struct KeyState {
    attempted: u32,
    ok: u32,
    acked: u32,
}

/// The errors the failure-aware protocol layer is allowed to surface.
/// Anything else reaching an application is an untyped-error violation.
pub fn error_is_typed(e: &Error) -> bool {
    matches!(
        e,
        Error::NotFound | Error::RankUnavailable(_) | Error::StorageFull(_) | Error::Timeout(_)
    )
}

/// Shared ground truth for one chaos schedule.
#[derive(Default)]
pub struct ChaosOracle {
    keys: Mutex<HashMap<Vec<u8>, KeyState>>,
}

impl ChaosOracle {
    pub fn new() -> Self {
        Self::default()
    }

    /// A put of `key` at `round` is about to be issued.
    pub fn will_put(&self, key: &[u8], round: u32) {
        let mut keys = self.keys.lock();
        let st = keys.entry(key.to_vec()).or_default();
        st.attempted = st.attempted.max(round);
    }

    /// The put of `key` at `round` returned `Ok`.
    pub fn put_ok(&self, key: &[u8], round: u32) {
        let mut keys = self.keys.lock();
        let st = keys.entry(key.to_vec()).or_default();
        st.ok = st.ok.max(round);
    }

    /// A collective barrier succeeded on the writer of `key` (or the put was
    /// sequential): everything that returned `Ok` so far is now durable
    /// against runtime faults.
    pub fn ack_key(&self, key: &[u8]) {
        let mut keys = self.keys.lock();
        let st = keys.entry(key.to_vec()).or_default();
        st.acked = st.acked.max(st.ok);
    }

    /// Every key any writer ever attempted.
    pub fn all_keys(&self) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = self.keys.lock().keys().cloned().collect();
        out.sort();
        out
    }

    /// Judge one observation of `key`. `owner_dead` exempts the key from the
    /// loss bound (its owner was killed by the schedule *and* the store runs
    /// unreplicated — with a replication factor >= 2 the workload passes
    /// `false` here, because read failover must keep acked keys readable
    /// through a single rank kill); `strict` enables loss checks and is set
    /// only in the quiesced verify phase — mid-chaos reads check typing and
    /// phantoms only, since migrations may still be in flight.
    pub fn judge(
        &self,
        key: &[u8],
        got: &Result<Option<Bytes>, Error>,
        owner_dead: bool,
        strict: bool,
    ) -> Option<(ViolationKind, String)> {
        let st = self.keys.lock().get(key).copied().unwrap_or_default();
        let kstr = String::from_utf8_lossy(key).into_owned();
        match got {
            Err(e) if !error_is_typed(e) => Some((
                ViolationKind::UntypedError,
                format!("get {kstr}: untyped error {e:?} escaped the protocol layer"),
            )),
            Err(Error::RankUnavailable(r)) if strict && !owner_dead && st.acked > 0 => Some((
                ViolationKind::AckedWriteLost,
                format!(
                    "get {kstr}: RankUnavailable({r}) but round {} was acknowledged durable — \
                     replication must keep acked keys readable",
                    st.acked
                ),
            )),
            Err(_) => None, // typed unavailability is legal degraded behaviour
            Ok(None) => {
                if strict && !owner_dead && st.acked > 0 {
                    Some((
                        ViolationKind::AckedWriteLost,
                        format!(
                            "get {kstr}: NotFound but round {} was acknowledged durable",
                            st.acked
                        ),
                    ))
                } else {
                    None
                }
            }
            Ok(Some(v)) => match parse_round(key, v) {
                None => Some((
                    ViolationKind::PhantomRead,
                    format!(
                        "get {kstr}: value {:?} does not describe this key",
                        String::from_utf8_lossy(v)
                    ),
                )),
                Some(r) if r > st.attempted => Some((
                    ViolationKind::PhantomRead,
                    format!("get {kstr}: round {r} observed but only {} attempted", st.attempted),
                )),
                Some(r) if strict && !owner_dead && r < st.acked => Some((
                    ViolationKind::AckedWriteLost,
                    format!(
                        "get {kstr}: round {r} observed but round {} was acknowledged",
                        st.acked
                    ),
                )),
                Some(_) => None,
            },
        }
    }
}

/// Self-describing value for `key` written by `writer` in `round`.
pub fn value_for(key: &[u8], round: u32, writer: usize) -> Bytes {
    Bytes::from(format!(
        "k={};r={round};w={writer};{}",
        String::from_utf8_lossy(key),
        "x".repeat(24)
    ))
}

/// Parse a value: `Some(round)` iff it is well formed and names `key`.
fn parse_round(key: &[u8], value: &Bytes) -> Option<u32> {
    let s = std::str::from_utf8(value).ok()?;
    let mut fields = s.split(';');
    let k = fields.next()?.strip_prefix("k=")?;
    if k.as_bytes() != key {
        return None;
    }
    fields.next()?.strip_prefix("r=")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let k = b"k2-001".to_vec();
        let v = value_for(&k, 7, 2);
        assert_eq!(parse_round(&k, &v), Some(7));
        assert_eq!(parse_round(b"k2-002", &v), None, "value must name its own key");
        assert_eq!(parse_round(&k, &Bytes::from_static(b"garbage")), None);
    }

    #[test]
    fn loss_and_phantom_bounds() {
        let o = ChaosOracle::new();
        let k = b"k0-000".to_vec();
        o.will_put(&k, 1);
        o.put_ok(&k, 1);
        o.ack_key(&k);
        o.will_put(&k, 2);
        o.put_ok(&k, 2); // round 2 ok but never acked

        // Round 1 or 2 visible: fine.
        for r in [1, 2] {
            assert!(o.judge(&k, &Ok(Some(value_for(&k, r, 0))), false, true).is_none());
        }
        // Round 3 was never attempted: phantom.
        let v = o.judge(&k, &Ok(Some(value_for(&k, 3, 0))), false, true).unwrap();
        assert_eq!(v.0, ViolationKind::PhantomRead);
        // Missing entirely: round 1 was acknowledged.
        let v = o.judge(&k, &Ok(None), false, true).unwrap();
        assert_eq!(v.0, ViolationKind::AckedWriteLost);
        // Same observation on a dead owner is legal degraded behaviour.
        assert!(o.judge(&k, &Ok(None), true, true).is_none());
        // Mid-chaos (non-strict) reads don't check the loss bound.
        assert!(o.judge(&k, &Ok(None), false, false).is_none());
        // Unexempted unavailability of an acked key (replication armed):
        // the ring was supposed to keep it readable.
        let v = o.judge(&k, &Err(Error::RankUnavailable(3)), false, true).unwrap();
        assert_eq!(v.0, ViolationKind::AckedWriteLost);
        // The same error is legal when the owner-dead exemption applies
        // (unreplicated run), mid-chaos, or for a never-acked key.
        assert!(o.judge(&k, &Err(Error::RankUnavailable(3)), true, true).is_none());
        assert!(o.judge(&k, &Err(Error::RankUnavailable(3)), false, false).is_none());
        assert!(o.judge(b"unwritten", &Err(Error::RankUnavailable(3)), false, true).is_none());
        // Untyped errors are always violations.
        let v = o.judge(&k, &Err(Error::Internal("boom".into())), false, true).unwrap();
        assert_eq!(v.0, ViolationKind::UntypedError);
    }
}
