//! Deterministic replication probes: targeted single-kill schedules that
//! pin down the two behaviours the sweep can only observe statistically.
//!
//! Both probes run a 4-rank world at replication factor 2 with exactly one
//! planted [`FaultEvent::RankKill`] and a fixed key set, so a failure here
//! replays bit-for-bit. They are stricter than the sweep: instead of
//! judging observations through the oracle they assert the exact outcome —
//! every key acked before the kill must read back its value through
//! failover, and re-replication must converge the ring back to `R` copies
//! (checked against the heal target's replica tables directly).
//!
//! Probe geometry (`VICTIM = 3`, n = 4, R = 2): the victim's one successor
//! is rank 0, so rank 0 serves failover gets (locally) and ranks 1..2 fetch
//! from it over `REPL_GET`; rank 0 also wins the promotion claim and
//! re-replicates the promoted ranges to the heal target, rank 1.

use std::sync::Arc;

use papyrus_faultinject::{self as fi, FaultEvent, FaultPlan};
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{BarrierLevel, Context, OpenFlags, Options, Platform};

use crate::sweep::chaos_lock;

/// Ranks in a probe world.
pub const PROBE_RANKS: usize = 4;
/// The rank the plan kills.
pub const VICTIM: usize = 3;
/// Virtual kill time: after the acking barrier, before the reads.
pub const KILL_AT: u64 = 2_000_000_000;
/// Pinned plan seed (replayable).
pub const PROBE_SEED: u64 = 0x5EED_FA11;
/// Keys owned by the victim that each rank writes.
pub const KEYS_PER_RANK: usize = 4;
/// Signal number: "re-replication has converged on the promoted rank".
const SIG_HEALED: u32 = 7;

/// What one probe rank observed.
#[derive(Debug, Default, Clone)]
pub struct ProbeOutcome {
    /// Acked keys this rank read back correctly after the kill.
    pub reads_ok: usize,
    /// Acked keys that were unreadable or wrong after the kill.
    pub reads_bad: Vec<String>,
    /// Victim-owned pairs visible in this rank's replica tables at the end
    /// (the heal target uses this to prove convergence).
    pub replica_pairs: usize,
    /// This rank won the promotion claim for the victim.
    pub promoted: bool,
}

/// The first `KEYS_PER_RANK` keys written by `writer` that hash to the
/// victim. Deterministic given the database's hash, so every rank can
/// enumerate every writer's victim-owned keys without coordination.
fn victim_keys(db: &papyruskv::Db, writer: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for j in 0.. {
        let k = format!("v{writer}-{j:03}").into_bytes();
        if db.owner_of(&k) == VICTIM {
            out.push(k);
            if out.len() == KEYS_PER_RANK {
                break;
            }
        }
    }
    out
}

fn value_of(key: &[u8]) -> Vec<u8> {
    let mut v = b"val:".to_vec();
    v.extend_from_slice(key);
    v
}

/// Run the pinned single-kill schedule and return per-rank outcomes.
///
/// Every rank writes `KEYS_PER_RANK` victim-owned keys, acks them with a
/// collective barrier, rides past the kill, then reads back *all* acked
/// keys (its own and every peer's). The promoted rank additionally drains
/// re-replication with a fence and signals the heal target, which then
/// counts the victim's pairs in its own replica tables.
pub fn replication_probe() -> Vec<ProbeOutcome> {
    let _guard = chaos_lock().lock();
    let _ = papyrus_sanity::take_violations();
    fi::force_enable();
    fi::set_planted_bug(None);
    let plan = Arc::new(FaultPlan::with_events(
        PROBE_SEED,
        vec![FaultEvent::RankKill { rank: VICTIM, at: KILL_AT }],
    ));
    fi::install_plan(plan.clone());

    let platform = Platform::new(SystemProfile::test_profile(), PROBE_RANKS);
    let outcomes = World::run(WorldConfig::for_tests(PROBE_RANKS), move |rank| {
        let ctx = Context::init_with_group(rank, platform.clone(), "nvm://chaos-probe", 1)
            .expect("probe init");
        let db = ctx
            .open("probe", OpenFlags::create(), Options::small().with_replicas(2))
            .expect("probe open");
        let me = ctx.rank();
        let mut out = ProbeOutcome::default();

        // Phase 1 (before the kill): write, then ack with a barrier. The
        // barrier's FIFO marks prove every successor ingested its copies.
        for k in victim_keys(&db, me) {
            db.put(&k, &value_of(&k)).expect("probe put");
        }
        db.barrier(BarrierLevel::MemTable).expect("probe ack barrier");

        // Phase 2: ride the virtual clock past the kill. The victim stops
        // participating exactly as a sweep victim would — no close, no
        // finalize, helper threads abandoned with the job.
        ctx.clock().advance(KILL_AT + KILL_AT / 2);
        if plan.rank_dead(me, ctx.now()) {
            return out;
        }

        // Phase 3: every acked key must still read back, dead owner and
        // all. Rank 0 answers from its own replica tables (and promotes);
        // ranks 1..2 fail over via REPL_GET to rank 0.
        for w in 0..PROBE_RANKS {
            for k in victim_keys(&db, w) {
                match db.get_opt(&k) {
                    Ok(Some(v)) if v == value_of(&k) => out.reads_ok += 1,
                    other => {
                        out.reads_bad.push(format!("{}: {other:?}", String::from_utf8_lossy(&k)));
                    }
                }
            }
        }

        // Phase 4: convergence. The promoted rank drains the background
        // re-replication job (fence counts it as an in-flight migration)
        // and then tells the heal target to inspect its replica tables.
        let survivors: Vec<usize> = (0..PROBE_RANKS).filter(|&r| r != VICTIM).collect();
        let first_successor = (VICTIM + 1) % PROBE_RANKS;
        if me == first_successor {
            db.fence().expect("probe fence");
            out.promoted = true;
            ctx.signal_notify(SIG_HEALED, &survivors).expect("probe notify");
        }
        ctx.signal_wait(SIG_HEALED, &[first_successor]).expect("probe wait");
        out.replica_pairs = papyruskv::sanity::replica_visible(&db, VICTIM)
            .iter()
            .filter(|(_, v)| v.is_some())
            .count();

        // Degraded world: the collective close/finalize cannot complete
        // with a dead member, so survivors skip it like the sweep does.
        out
    });

    fi::clear_plan();
    fi::force_disable();
    let _ = papyrus_sanity::take_violations();
    outcomes
}
