//! The multi-rank workload one chaos schedule runs against the fault plane.
//!
//! A Figure-6-style put/get job at `cfg.ranks` ranks: every rank owns a
//! writer namespace (`k<rank>-<i>`) whose keys hash across all owners, so
//! each round produces local writes, staged remote writes, migrations, and
//! cross-rank reads. Rounds are separated by collective barriers and by
//! explicit virtual-time steps sized so the middle rounds land inside the
//! plan's fault windows and the verify phase lands past its horizon:
//!
//! 1. **Rounds 1..=N** — each rank overwrites its keys with the round's
//!    value, reads a couple of peer keys (phantom/typing checks only —
//!    migrations may be in flight), then barriers; a successful barrier
//!    promotes that rank's `Ok` puts to *acknowledged* in the oracle.
//! 2. **Mid-run extras** (round 2, fault windows active, no kill planned):
//!    a sequential-consistency phase (synchronous remote puts — the
//!    `PUT_SYNC` retry path) and an asynchronous checkpoint whose
//!    [`papyruskv::Event::wait_result`] must be `Ok` or typed.
//! 3. **Verify** — advance past [`FaultPlan::horizon`], final barrier, then
//!    probe every key ever written and judge each observation strictly.
//!
//! Rank death is the plan's: a rank observing its own kill time stops
//! participating immediately (no close, no finalize — its helper threads
//! are abandoned, as a real dead process would abandon its). Survivors see
//! the failed barrier as a typed [`Error::RankUnavailable`], switch to
//! degraded mode, keep serving local and surviving-rank keys, and skip the
//! collective close — that is the degraded-semantics contract under test.

use std::sync::Arc;

use papyrus_faultinject::FaultPlan;
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyrus_sanity::ViolationKind;
use papyruskv::error::Error;
use papyruskv::{BarrierLevel, Consistency, Context, OpenFlags, Options, Platform};

use crate::oracle::{error_is_typed, value_for, ChaosOracle};

/// PapyrusKV repository string for chaos jobs.
pub const REPOSITORY: &str = "nvm://chaos";
/// Database name.
pub const DB_NAME: &str = "soak";
/// Checkpoint destination on the PFS (mid-run extras phase).
pub const CKPT_DEST: &str = "pfs-chaos/snap";

/// Soak sizing.
#[derive(Debug, Clone)]
pub struct ChaosCfg {
    /// Ranks per schedule.
    pub ranks: usize,
    /// Keys per writer rank.
    pub per_rank: usize,
    /// Overwrite rounds per schedule.
    pub rounds: u32,
    /// Virtual horizon handed to [`FaultPlan::generate`]; rounds step
    /// through it so fault windows overlap real traffic.
    pub horizon_ns: u64,
    /// Wall-clock seconds before the watchdog declares a schedule hung.
    pub timeout_secs: u64,
    /// Schedules in the default sweep (classes cycle per seed).
    pub seeds: usize,
    /// Replication factor handed to [`Options::with_replicas`]. At 1
    /// (default) the soak judges the paper's unreplicated semantics: keys
    /// of a killed owner may become unavailable. At >= 2 the oracle drops
    /// that exemption — an acked write must stay readable through a
    /// single rank kill (read failover + re-replication under test).
    pub replicas: usize,
    /// Print per-schedule progress.
    pub verbose: bool,
}

impl Default for ChaosCfg {
    fn default() -> Self {
        Self {
            ranks: 4,
            per_rank: 6,
            rounds: 3,
            horizon_ns: 4_000_000_000,
            timeout_secs: 60,
            seeds: 20,
            replicas: 1,
            verbose: false,
        }
    }
}

impl ChaosCfg {
    /// A minimal configuration for unit/CI tests in debug builds.
    pub fn tiny() -> Self {
        Self { per_rank: 3, rounds: 2, seeds: 5, timeout_secs: 30, ..Self::default() }
    }
}

/// What one rank did and saw in a schedule.
#[derive(Debug, Default, Clone)]
pub struct RankOutcome {
    pub puts: usize,
    pub gets: usize,
    /// Typed errors surfaced to the application (all legal).
    pub typed_errors: usize,
    /// This rank was killed by the plan and stopped participating.
    pub died: bool,
    /// This rank observed a dead peer and finished in degraded mode.
    pub degraded: bool,
}

/// Key `i` of writer rank `w` (relaxed rounds).
pub fn key(writer: usize, i: usize) -> Vec<u8> {
    format!("k{writer}-{i:03}").into_bytes()
}

/// Key `i` of writer rank `w` (sequential-consistency phase).
pub fn seq_key(writer: usize, i: usize) -> Vec<u8> {
    format!("s{writer}-{i:03}").into_bytes()
}

/// Record a typed error, or flag an untyped one as a violation.
fn note_error(e: &Error, what: &str, seed: u64, rank: usize, out: &mut RankOutcome) {
    if error_is_typed(e) {
        out.typed_errors += 1;
    } else {
        papyrus_sanity::record_violation(
            ViolationKind::UntypedError,
            format!("seed {seed} rank {rank}: {what} surfaced untyped error {e:?}"),
        );
    }
}

/// Run one schedule against `plan` (already installed, gate already on) and
/// return each rank's outcome. Violations land in the `papyrus-sanity`
/// registry; the sweep drains it per schedule.
pub fn run_schedule(
    cfg: &ChaosCfg,
    plan: Arc<FaultPlan>,
    oracle: Arc<ChaosOracle>,
) -> Vec<RankOutcome> {
    let platform = Platform::new(SystemProfile::test_profile(), cfg.ranks);
    let cfg = cfg.clone();
    let seed = plan.seed();
    World::run(WorldConfig::for_tests(cfg.ranks), move |rank| {
        let ctx =
            Context::init_with_group(rank, platform.clone(), REPOSITORY, 1).expect("chaos init");
        let db = ctx
            .open(DB_NAME, OpenFlags::create(), Options::small().with_replicas(cfg.replicas))
            .expect("chaos open");
        let me = ctx.rank();
        let n = ctx.size();
        let step = cfg.horizon_ns / u64::from(cfg.rounds + 1);
        let mut out = RankOutcome::default();

        'rounds: for r in 1..=cfg.rounds {
            // Overwrite this rank's namespace with the round's values.
            for i in 0..cfg.per_rank {
                if plan.rank_dead(me, ctx.now()) {
                    out.died = true;
                    break 'rounds;
                }
                let k = key(me, i);
                oracle.will_put(&k, r);
                match db.put(&k, &value_for(&k, r, me)) {
                    Ok(()) => {
                        oracle.put_ok(&k, r);
                        out.puts += 1;
                    }
                    Err(e) => note_error(&e, "put", seed, me, &mut out),
                }
            }
            // Cross-rank reads while faults are live: phantom + typing only.
            for j in 0..2usize {
                if plan.rank_dead(me, ctx.now()) {
                    out.died = true;
                    break 'rounds;
                }
                let w = (me + 1 + j) % n;
                let k = key(w, (r as usize + j) % cfg.per_rank);
                let got = db.get_opt(&k);
                out.gets += 1;
                if got.is_err() {
                    out.typed_errors += 1;
                }
                // With replication on, a dead owner is no excuse: the ring
                // must keep acked keys readable, so the exemption is dropped.
                let owner_dead = plan.rank_dead(db.owner_of(&k), ctx.now()) && cfg.replicas < 2;
                if let Some((kind, detail)) = oracle.judge(&k, &got, owner_dead, false) {
                    papyrus_sanity::record_violation(
                        kind,
                        format!("seed {seed} round {r} rank {me} (live): {detail}"),
                    );
                }
            }
            // Collective sync point; success acknowledges this rank's puts.
            if !out.degraded {
                match db.barrier(BarrierLevel::MemTable) {
                    Ok(()) => {
                        for i in 0..cfg.per_rank {
                            oracle.ack_key(&key(me, i));
                        }
                    }
                    Err(Error::RankUnavailable(_)) => out.degraded = true,
                    Err(e) => {
                        note_error(&e, "barrier", seed, me, &mut out);
                        out.degraded = true;
                    }
                }
            }
            // Mid-run extras, while fault windows are still active. Gated on
            // plan properties (identical on every rank) so the collectives
            // never diverge.
            if r == cfg.rounds.min(2) && !plan.has_kill() && !out.degraded {
                sequential_phase(&db, &oracle, &plan, r, me, &mut out);
                match db.checkpoint(CKPT_DEST) {
                    Ok(ev) => {
                        if let Err(e) = ev.wait_result() {
                            note_error(&e, "checkpoint", seed, me, &mut out);
                        }
                    }
                    Err(e) => note_error(&e, "checkpoint", seed, me, &mut out),
                }
            }
            ctx.clock().advance(step);
        }

        // A rank whose kill time passed while it was inside a collective
        // sees its own death as a failed barrier; it is still dead.
        if plan.rank_dead(me, ctx.now()) {
            out.died = true;
        }
        if !out.died {
            // Quiesce: ride past every fault window, then one final sync.
            ctx.clock().advance(plan.horizon().saturating_add(cfg.horizon_ns / 10));
            if !out.degraded {
                match db.barrier(BarrierLevel::MemTable) {
                    Ok(()) => {
                        for i in 0..cfg.per_rank {
                            oracle.ack_key(&key(me, i));
                        }
                    }
                    Err(Error::RankUnavailable(_)) => out.degraded = true,
                    Err(e) => {
                        note_error(&e, "final barrier", seed, me, &mut out);
                        out.degraded = true;
                    }
                }
            }
            // Strict verify: probe every key anyone ever wrote.
            for k in oracle.all_keys() {
                // With replication on, a dead owner is no excuse: the ring
                // must keep acked keys readable, so the exemption is dropped.
                let owner_dead = plan.rank_dead(db.owner_of(&k), ctx.now()) && cfg.replicas < 2;
                let got = db.get_opt(&k);
                out.gets += 1;
                if got.is_err() {
                    out.typed_errors += 1;
                }
                if let Some((kind, detail)) = oracle.judge(&k, &got, owner_dead, true) {
                    papyrus_sanity::record_violation(
                        kind,
                        format!("seed {seed} rank {me} (verify): {detail}"),
                    );
                }
            }
            // Background flush/compaction/migration failures must be typed.
            for e in db.take_io_errors() {
                note_error(&e, "background io", seed, me, &mut out);
            }
            if !out.degraded {
                if let Err(e) = db.close() {
                    note_error(&e, "close", seed, me, &mut out);
                } else if let Err(e) = ctx.finalize() {
                    note_error(&e, "finalize", seed, me, &mut out);
                }
            }
            // Degraded ranks skip the collective close/finalize: those
            // barriers cannot complete with a dead member. Their helper
            // threads are abandoned with the job, like the victim's.
        }
        out
    })
}

/// Sequential-consistency phase: synchronous remote puts are their own
/// synchronisation points, so an `Ok` acknowledges immediately.
fn sequential_phase(
    db: &papyruskv::Db,
    oracle: &ChaosOracle,
    plan: &FaultPlan,
    round: u32,
    me: usize,
    out: &mut RankOutcome,
) {
    let seed = plan.seed();
    match db.set_consistency(Consistency::Sequential) {
        Ok(()) => {
            for i in 0..2 {
                let k = seq_key(me, i);
                oracle.will_put(&k, round);
                match db.put(&k, &value_for(&k, round, me)) {
                    Ok(()) => {
                        oracle.put_ok(&k, round);
                        oracle.ack_key(&k);
                        out.puts += 1;
                    }
                    Err(e) => note_error(&e, "sync put", seed, me, out),
                }
            }
            if let Err(e) = db.set_consistency(Consistency::Relaxed) {
                note_error(&e, "set_consistency", seed, me, out);
            }
        }
        Err(e) => note_error(&e, "set_consistency", seed, me, out),
    }
}
