//! # papyrus-chaos
//!
//! Seeded chaos soak for the PapyrusKV failure-aware protocol layer.
//!
//! PR 3's crashcheck proves PapyrusKV survives *power loss*; this crate
//! proves it survives *runtime* faults: transient NVM I/O errors, `ENOSPC`,
//! device stalls, network delay spikes, and rank death. Each schedule is a
//! [`papyrus_faultinject::FaultPlan`] generated deterministically from a
//! seed and run against a Figure-6-style multi-rank put/get workload
//! ([`workload`]), whose every observation is judged by a shadow KV oracle
//! ([`oracle`]):
//!
//! * **no acknowledged write is lost** — anything `Ok` before a successful
//!   barrier (or any sequential-consistency `Ok`) must still be readable
//!   after the faults pass, unless its owner rank was killed;
//! * **no phantom reads** — every observed value must describe its own key
//!   and a round that was actually attempted;
//! * **no hangs** — every schedule finishes under a wall-clock watchdog,
//!   dead ranks included (degraded mode, not deadlock);
//! * **every error is typed** — only `NotFound` / `RankUnavailable` /
//!   `StorageFull` / `Timeout` may reach the application.
//!
//! The [`sweep`] runs `seeds` schedules cycling all five fault classes; the
//! `--seed-bug` self test plants a real protocol bug ([`PlantedBug`]) and
//! fails unless the harness catches it — a lost acknowledgement caught by
//! the oracle, an undeadlined receive caught by the watchdog.
//!
//! Run it via `cargo xtask chaos` or the `chaos` binary.

pub mod oracle;
pub mod probes;
pub mod sweep;
pub mod workload;

pub use oracle::ChaosOracle;
pub use papyrus_faultinject::PlantedBug;
pub use sweep::{
    bug_by_name, bug_name, chaos_sweep, run_seed_bug, ChaosReport, ChaosViolation, SEED_BASE,
    SEED_BUGS,
};
pub use workload::{run_schedule, ChaosCfg, RankOutcome};
