//! CLI for the chaos soak.
//!
//! ```text
//! chaos [--ranks N] [--per-rank K] [--rounds R] [--seeds S]
//!       [--seed-base B] [--timeout SECS] [--replicas R]
//!       [--seed-bug MODE|all] [--verbose]
//! ```
//!
//! Without `--seed-bug`: run the default sweep (`S` seeded schedules
//! cycling all five fault classes) and exit non-zero if any violation is
//! found. With `--seed-bug`: plant each named protocol bug and exit
//! non-zero unless every one is detected.

use std::process::ExitCode;

use papyrus_chaos::{bug_by_name, bug_name, chaos_sweep, run_seed_bug, ChaosCfg, SEED_BUGS};

fn main() -> ExitCode {
    let mut cfg = ChaosCfg::default();
    let mut seed_base = papyrus_chaos::SEED_BASE;
    let mut seed_bug: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |what: &str| -> Option<u64> {
            match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => Some(n),
                _ => {
                    eprintln!("chaos: {what} needs a positive integer");
                    None
                }
            }
        };
        match arg.as_str() {
            "--ranks" => match num("--ranks") {
                Some(n) => cfg.ranks = n as usize,
                None => return ExitCode::FAILURE,
            },
            "--per-rank" => match num("--per-rank") {
                Some(n) => cfg.per_rank = n as usize,
                None => return ExitCode::FAILURE,
            },
            "--rounds" => match num("--rounds") {
                Some(n) => cfg.rounds = n as u32,
                None => return ExitCode::FAILURE,
            },
            "--seeds" => match num("--seeds") {
                Some(n) => cfg.seeds = n as usize,
                None => return ExitCode::FAILURE,
            },
            "--seed-base" => match num("--seed-base") {
                Some(n) => seed_base = n,
                None => return ExitCode::FAILURE,
            },
            "--timeout" => match num("--timeout") {
                Some(n) => cfg.timeout_secs = n,
                None => return ExitCode::FAILURE,
            },
            "--replicas" => match num("--replicas") {
                Some(n) => cfg.replicas = n as usize,
                None => return ExitCode::FAILURE,
            },
            "--seed-bug" => match it.next() {
                Some(mode) => seed_bug = Some(mode.clone()),
                None => {
                    eprintln!("chaos: --seed-bug needs a mode name or `all`");
                    return ExitCode::FAILURE;
                }
            },
            "--verbose" => cfg.verbose = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: chaos [--ranks N] [--per-rank K] [--rounds R] [--seeds S] \
                     [--seed-base B] [--timeout SECS] [--replicas R] \
                     [--seed-bug MODE|all] [--verbose]\n\
                     seed-bug modes: {}\n\
                     --replicas 2+ arms the replication oracle: acked keys \
                     must survive a rank kill",
                    SEED_BUGS.map(bug_name).join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("chaos: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    match seed_bug {
        None => {
            let report = chaos_sweep(&cfg, seed_base);
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some(mode) => {
            let bugs: Vec<_> = if mode == "all" {
                SEED_BUGS.to_vec()
            } else {
                match bug_by_name(&mode) {
                    Some(b) => vec![b],
                    None => {
                        eprintln!(
                            "chaos: unknown seed-bug `{mode}` (known: {}, all)",
                            SEED_BUGS.map(bug_name).join(", ")
                        );
                        return ExitCode::FAILURE;
                    }
                }
            };
            let mut detected = 0usize;
            for bug in &bugs {
                let report = run_seed_bug(&cfg, *bug);
                let caught = !report.is_clean();
                println!(
                    "seed-bug {:<10} {}",
                    bug_name(*bug),
                    if caught {
                        let v = &report.violations[0];
                        format!("detected: [{}] {}", v.kind, v.detail)
                    } else {
                        "MISSED".to_string()
                    }
                );
                detected += usize::from(caught);
            }
            println!("{detected}/{} seeded bugs detected", bugs.len());
            if detected == bugs.len() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
