//! LSM invariant auditor (`papyruskv::sanity::audit_db`).
//!
//! Walks a database's storage stack and checks the structural invariants
//! the LSM design promises, recording findings both in the returned
//! [`AuditReport`] and in the global `papyrus-sanity` registry:
//!
//! - **SSTable internals**: records strictly key-sorted ([`SstOrder`]),
//!   SSIndex record count agrees with SSData, and the bloom filter admits
//!   every stored key ([`BloomFalseNegative`] — bloom filters may lie
//!   positively, never negatively).
//! - **Registry shape**: live SSTables in ascending-SSID order, every SSID
//!   below `next_ssid` ([`LsmState`]).
//! - **MemTable accounting**: keys iterate in sorted order and the byte
//!   accounting matches a recount ([`LsmState`]).
//! - **Quiescence / manifest agreement** (checked when no flush is
//!   pending): immutable queues empty when their counters say so, the
//!   on-NVM manifest lists exactly the live SSIDs and the same `next_ssid`
//!   ([`ManifestMismatch`]), and no barrier-mark entries linger for epochs
//!   that already completed ([`BarrierEpochMismatch`]).
//!
//! The audit reads through the store backend directly and charges **no
//! virtual time** — it observes the simulation without perturbing it. Run
//! it at a quiesced point (right after a `barrier`, before new
//! operations); mid-stream, the quiescence checks can see legitimate
//! in-flight state.
//!
//! [`SstOrder`]: ViolationKind::SstOrder
//! [`BloomFalseNegative`]: ViolationKind::BloomFalseNegative
//! [`LsmState`]: ViolationKind::LsmState
//! [`ManifestMismatch`]: ViolationKind::ManifestMismatch
//! [`BarrierEpochMismatch`]: ViolationKind::BarrierEpochMismatch

use std::sync::atomic::Ordering;

use papyrus_sanity::{AuditReport, ViolationKind};

use crate::ckpt;
use crate::db::Db;
use crate::memtable::{Entry, MemTable, ENTRY_OVERHEAD};
use crate::sstable::{Ssid, SstReader};

fn lossy(key: &[u8]) -> String {
    String::from_utf8_lossy(key).into_owned()
}

/// Audit every record of one SSTable: key order, index/data agreement,
/// bloom completeness.
pub(crate) fn audit_sst(reader: &SstReader, report: &mut AuditReport) {
    report.sstables_checked += 1;
    let ssid = reader.ssid();
    let Some(records) = reader.records_uncharged() else {
        report.push(
            ViolationKind::LsmState,
            format!("sst {ssid} ({}): SSData missing or corrupt", reader.base()),
        );
        return;
    };
    if records.len() != reader.len() {
        report.push(
            ViolationKind::LsmState,
            format!(
                "sst {ssid}: SSIndex lists {} records but SSData parses to {}",
                reader.len(),
                records.len()
            ),
        );
    }
    let mut prev: Option<&[u8]> = None;
    for (key, _) in &records {
        report.records_checked += 1;
        if let Some(p) = prev {
            if p >= key.as_slice() {
                report.push(
                    ViolationKind::SstOrder,
                    format!(
                        "sst {ssid}: records out of key order: {:?} not before {:?}",
                        lossy(p),
                        lossy(key)
                    ),
                );
            }
        }
        prev = Some(key);
        if !reader.maybe_contains(key) {
            report.push(
                ViolationKind::BloomFalseNegative,
                format!("sst {ssid}: bloom filter denies stored key {:?}", lossy(key)),
            );
        }
    }
}

/// Audit one MemTable: sorted iteration order and byte-accounting drift.
fn audit_memtable(label: &str, mt: &MemTable, report: &mut AuditReport) {
    let mut recount = 0u64;
    let mut prev: Option<&[u8]> = None;
    for (key, e) in mt.iter() {
        recount += key.len() as u64 + e.value.len() as u64 + ENTRY_OVERHEAD;
        if let Some(p) = prev {
            if p >= key {
                report.push(
                    ViolationKind::LsmState,
                    format!(
                        "{label} MemTable iterates out of key order: {:?} not before {:?}",
                        lossy(p),
                        lossy(key)
                    ),
                );
            }
        }
        prev = Some(key);
    }
    if recount != mt.bytes() {
        report.push(
            ViolationKind::LsmState,
            format!(
                "{label} MemTable byte accounting drift: recount {recount} != tracked {}",
                mt.bytes()
            ),
        );
    }
}

/// Audit a database's full LSM state. See the module docs for the checks.
///
/// Cheap relative to the data (one in-memory pass per SSTable) and charges
/// no virtual time; callable regardless of the `PAPYRUS_SANITY` gate —
/// invoking an explicit audit IS the opt-in.
pub fn audit_db(db: &Db) -> AuditReport {
    let (ctx, inner) = db.sanity_parts();
    let mut report = AuditReport::default();
    let me = ctx.rank.rank();
    // ordering: audit reads the allocator with the same SeqCst the
    // flush/compaction paths use, so every registered table id is <= it.
    let next_ssid = inner.next_ssid.load(Ordering::SeqCst);

    // SSTable registry + per-table checks. Snapshot the readers so no lock
    // is held across the record scans.
    let snapshot: Vec<SstReader> = inner.ssts.read().clone();
    let live: Vec<Ssid> = snapshot.iter().map(SstReader::ssid).collect();
    for pair in live.windows(2) {
        if pair[0] >= pair[1] {
            report.push(
                ViolationKind::LsmState,
                format!("live SSTable list not in ascending SSID order: {live:?}"),
            );
            break;
        }
    }
    for reader in &snapshot {
        if reader.ssid() >= next_ssid {
            report.push(
                ViolationKind::LsmState,
                format!("sst {} at or above next_ssid {next_ssid}", reader.ssid()),
            );
        }
        audit_sst(reader, &mut report);
    }

    audit_memtable("local", &inner.local.read(), &mut report);
    audit_memtable("remote", &inner.remote.lock(), &mut report);

    // Replica stacks (R >= 2): each per-origin table must be internally
    // well-formed and live in the `rep{origin}-` file namespace so it can
    // never collide with (or be salvaged into) the primary LSM; a dead
    // rank's promoted ranges must be claimed by exactly one live primary.
    {
        let repl = inner.repl.lock();
        for (&origin, stack) in repl.iter() {
            audit_memtable(&format!("replica(r{origin})"), &stack.mem, &mut report);
            let ssids: Vec<Ssid> = stack.ssts.iter().map(SstReader::ssid).collect();
            for pair in ssids.windows(2) {
                if pair[0] >= pair[1] {
                    report.push(
                        ViolationKind::ReplicaState,
                        format!(
                            "replica(r{origin}) SSTables not in ascending SSID order: {ssids:?}"
                        ),
                    );
                    break;
                }
            }
            let marker = format!("rep{origin:04}-");
            for reader in &stack.ssts {
                if reader.ssid() >= stack.next_ssid {
                    report.push(
                        ViolationKind::ReplicaState,
                        format!(
                            "replica(r{origin}) sst {} at or above its next_ssid {}",
                            reader.ssid(),
                            stack.next_ssid
                        ),
                    );
                }
                if !reader.base().contains(&marker) {
                    report.push(
                        ViolationKind::ReplicaState,
                        format!(
                            "replica(r{origin}) sst {} stored at {:?} — outside the replica \
                             namespace, colliding with primary SSTable files",
                            reader.ssid(),
                            reader.base()
                        ),
                    );
                }
                audit_sst(reader, &mut report);
            }
        }
    }
    for (dead, claimants) in ctx.platform.repl.claims_for(inner.id) {
        if claimants.len() != 1 {
            report.push(
                ViolationKind::ReplicaState,
                format!(
                    "dead rank {dead}: promoted ranges have {} claimants {claimants:?} \
                     (exactly one live primary required)",
                    claimants.len()
                ),
            );
        } else if ctx.comm_req.rank_known_dead(claimants[0]) {
            report.push(
                ViolationKind::ReplicaState,
                format!("dead rank {dead}: promoted primary r{} is itself dead", claimants[0]),
            );
        }
    }

    let (pending_flushes, migration_inflight, stale_marks) = {
        let sync = inner.sync.lock();
        // ordering: SeqCst pairs with the barrier's fetch_add; the audit
        // must not observe an epoch older than a completed barrier.
        let epoch = inner.barrier_epoch.load(Ordering::SeqCst);
        // Marks for epochs >= the current counter are in-flight arrivals for
        // a barrier this rank has not completed — legitimate. Marks for
        // completed epochs should have been consumed exactly at count == n.
        let stale: Vec<(u64, usize)> = sync
            .barrier_marks
            .iter()
            .filter(|(&e, _)| e < epoch)
            .map(|(&e, &(count, _))| (e, count))
            .collect();
        (sync.pending_flushes, sync.migration_inflight, stale)
    };
    for (epoch, count) in stale_marks {
        report.push(
            ViolationKind::BarrierEpochMismatch,
            format!(
                "rank {me}: leftover barrier marks for completed epoch {epoch} \
                 (count {count}) — marks must be consumed when all ranks arrive"
            ),
        );
    }
    if pending_flushes == 0 {
        let imm_local = inner.imm_local.read().len();
        if imm_local != 0 {
            report.push(
                ViolationKind::LsmState,
                format!("no flush pending but {imm_local} immutable local MemTables queued"),
            );
        }
    }
    if migration_inflight == 0 {
        let imm_remote = inner.imm_remote.read().len();
        if imm_remote != 0 {
            report.push(
                ViolationKind::LsmState,
                format!(
                    "no migration in flight but {imm_remote} immutable remote MemTables queued"
                ),
            );
        }
    }

    // Manifest agreement is only well-defined when nothing is mid-flush
    // (flushes rewrite the manifest as their last step).
    if pending_flushes == 0 {
        let store = ctx.repo_store();
        match ckpt::read_manifest(&store, &ctx.repo.prefix, &inner.name, me) {
            ckpt::ManifestRead::Present(m_next, mut m_live) => {
                m_live.sort_unstable();
                if m_live != live {
                    report.push(
                        ViolationKind::ManifestMismatch,
                        format!("manifest lists SSIDs {m_live:?} but live set is {live:?}"),
                    );
                }
                if m_next != next_ssid {
                    report.push(
                        ViolationKind::ManifestMismatch,
                        format!("manifest next:{m_next} != in-memory next_ssid {next_ssid}"),
                    );
                }
            }
            ckpt::ManifestRead::Corrupt(why) => {
                report.push(
                    ViolationKind::ManifestCorrupt,
                    format!("rank {me}: manifest unparseable: {why}"),
                );
            }
            ckpt::ManifestRead::Absent => {
                if !live.is_empty() {
                    report.push(
                        ViolationKind::ManifestMismatch,
                        format!("no manifest on NVM but {} live SSTables", live.len()),
                    );
                }
            }
        }
    }

    report
}

/// Dump every key this rank's local LSM stack currently makes visible,
/// newest writer wins: the active local MemTable shadows the immutable
/// queue (newest-first), which shadows the SSTables (newest-first). A key
/// whose newest record is a tombstone maps to `None`.
///
/// Reads through `records_uncharged` and charges no virtual time. Used by
/// the crash-consistency checker to compare a recovered store against its
/// KV oracle; like [`audit_db`], calling it is the opt-in.
pub fn dump_visible(db: &Db) -> Vec<(Vec<u8>, Option<bytes::Bytes>)> {
    let (_ctx, inner) = db.sanity_parts();
    let mut seen: std::collections::BTreeMap<Vec<u8>, Option<bytes::Bytes>> =
        std::collections::BTreeMap::new();
    let mut absorb = |key: &[u8], e: &Entry| {
        seen.entry(key.to_vec()).or_insert_with(|| (!e.tombstone).then(|| e.value.clone()));
    };
    for (k, e) in inner.local.read().iter() {
        absorb(k, e);
    }
    for mt in inner.imm_local.read().iter().rev() {
        for (k, e) in mt.iter() {
            absorb(k, e);
        }
    }
    for reader in inner.ssts.read().iter().rev() {
        if let Some(records) = reader.records_uncharged() {
            for (k, e) in &records {
                absorb(k, e);
            }
        }
    }
    seen.into_iter().collect()
}

/// Dump every key the replica stack held for `origin` currently makes
/// visible, newest writer wins: the replica MemTable shadows the replica
/// SSTables (newest-first). Tombstoned keys map to `None`; an absent
/// stack yields an empty list.
///
/// Charges no virtual time. Used by the chaos probes to check that
/// re-replication converged a successor's copy to the promoted data.
pub fn replica_visible(db: &Db, origin: usize) -> Vec<(Vec<u8>, Option<bytes::Bytes>)> {
    let (_ctx, inner) = db.sanity_parts();
    let mut seen: std::collections::BTreeMap<Vec<u8>, Option<bytes::Bytes>> =
        std::collections::BTreeMap::new();
    let mut absorb = |key: &[u8], e: &Entry| {
        seen.entry(key.to_vec()).or_insert_with(|| (!e.tombstone).then(|| e.value.clone()));
    };
    let repl = inner.repl.lock();
    let Some(stack) = repl.get(&(origin as u32)) else { return Vec::new() };
    for (k, e) in stack.mem.iter() {
        absorb(k, e);
    }
    for reader in stack.ssts.iter().rev() {
        if let Some(records) = reader.records_uncharged() {
            for (k, e) in &records {
                absorb(k, e);
            }
        }
    }
    seen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloom::Bloom;
    use crate::memtable::Entry;
    use crate::sstable::build_at;
    use bytes::Bytes;
    use papyrus_nvm::NvmStore;
    use papyrus_simtime::DeviceModel;

    fn store() -> NvmStore {
        NvmStore::in_memory(DeviceModel::nvme_summitdev())
    }

    /// Hand-assemble an SSTable whose SSData holds `keys` in the given
    /// order, with a bloom filter built from `bloom_keys` only — lets tests
    /// seed order and bloom violations that `build_at` refuses to produce.
    fn raw_sst(
        s: &NvmStore,
        base: &str,
        ssid: u64,
        keys: &[&[u8]],
        bloom_keys: &[&[u8]],
    ) -> SstReader {
        let mut data = Vec::new();
        let mut offsets: Vec<u64> = Vec::new();
        for key in keys {
            offsets.push(data.len() as u64);
            data.extend_from_slice(&(key.len() as u32).to_le_bytes());
            data.extend_from_slice(&0u32.to_le_bytes()); // vallen
            data.push(0); // tombstone
            data.extend_from_slice(key);
        }
        let mut index = Vec::new();
        index.extend_from_slice(&(offsets.len() as u64).to_le_bytes());
        for off in &offsets {
            index.extend_from_slice(&off.to_le_bytes());
        }
        let mut bloom = Bloom::with_capacity(bloom_keys.len().max(1), 10);
        for key in bloom_keys {
            bloom.insert(key);
        }
        s.put_at(&format!("{base}.data"), Bytes::from(data), 0);
        s.put_at(&format!("{base}.index"), Bytes::from(index), 0);
        s.put_at(&format!("{base}.bloom"), Bytes::from(bloom.to_bytes()), 0);
        SstReader::open_at(s, base, ssid, 0).expect("raw sst opens").0
    }

    #[test]
    fn well_formed_sstable_audits_clean() {
        let s = store();
        let entries: Vec<(Vec<u8>, Entry)> = [b"aa".as_slice(), b"bb", b"cc"]
            .iter()
            .map(|k| (k.to_vec(), Entry::value(Bytes::from_static(b"v"))))
            .collect();
        let (r, _) = build_at(&s, "audit/ok", 1, &entries, 0);
        let mut report = AuditReport::default();
        audit_sst(&r, &mut report);
        assert!(report.is_clean(), "unexpected: {}", report.render());
        assert_eq!(report.sstables_checked, 1);
        assert_eq!(report.records_checked, 3);
    }

    #[test]
    fn seeded_order_and_bloom_violations_are_detected() {
        let s = store();
        // Keys out of order, and the bloom filter was built without "zz".
        let r = raw_sst(&s, "audit/bad", 1, &[b"bb", b"aa", b"zz"], &[b"bb", b"aa"]);
        let mut report = AuditReport::default();
        audit_sst(&r, &mut report);
        assert!(
            report.violations.iter().any(|v| v.kind == ViolationKind::SstOrder),
            "order violation expected: {}",
            report.render()
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::BloomFalseNegative && v.detail.contains("zz")),
            "bloom false negative on zz expected: {}",
            report.render()
        );
    }

    #[test]
    fn seeded_replica_violations_are_detected() {
        use crate::db::ReplicaStack;
        use crate::options::{OpenFlags, Options};
        use crate::runtime::{Context, Platform};
        use papyrus_mpi::{World, WorldConfig};
        use papyrus_nvm::SystemProfile;

        let profile = SystemProfile::summitdev();
        let platform = Platform::new(profile.clone(), 1);
        let reports = World::run(WorldConfig::new(1, profile.net.clone()), move |rank| {
            let ctx =
                Context::init(rank.clone(), platform.clone(), "nvm://sanity-repl").expect("init");
            let db = ctx.open("db", OpenFlags::create(), Options::default()).expect("open");
            {
                let (ctx_inner, inner) = db.sanity_parts();
                // Seed a replica stack whose one SSTable (a) carries an SSID
                // at/above the stack's next_ssid, (b) lives outside the
                // `rep{origin}-` namespace, and (c) holds out-of-order keys.
                let store = ctx_inner.repo_store();
                let bad = raw_sst(
                    &store,
                    "sanity-repl/db/r0/sst0000000099",
                    99,
                    &[b"bb", b"aa"],
                    &[b"aa", b"bb"],
                );
                let mut stack = ReplicaStack::new();
                stack.ssts.push(bad);
                inner.repl.lock().insert(2, stack);
                // Seed a double promotion claim: two ranks both think they
                // own dead rank 0's ranges.
                ctx_inner.platform.repl.force_claim(inner.id, 0, 0);
                ctx_inner.platform.repl.force_claim(inner.id, 0, 1);
            }
            let report = audit_db(&db);
            // Clear the seeded stack so close sees an ordinary database.
            db.sanity_parts().1.repl.lock().clear();
            db.close().expect("close");
            ctx.finalize().expect("finalize");
            report
        });

        let report = &reports[0];
        let replica: Vec<_> =
            report.violations.iter().filter(|v| v.kind == ViolationKind::ReplicaState).collect();
        assert!(
            replica.iter().any(|v| v.detail.contains("next_ssid")),
            "SSID-above-next violation expected: {}",
            report.render()
        );
        assert!(
            replica.iter().any(|v| v.detail.contains("namespace")),
            "namespace-collision violation expected: {}",
            report.render()
        );
        assert!(
            replica.iter().any(|v| v.detail.contains("claimants")),
            "double-claim violation expected: {}",
            report.render()
        );
        assert!(
            report.violations.iter().any(|v| v.kind == ViolationKind::SstOrder),
            "replica key-order violation expected: {}",
            report.render()
        );
    }

    #[test]
    fn memtable_recount_matches_tracking() {
        let mut mt = MemTable::new();
        mt.insert(b"k1", Entry::value(Bytes::from_static(b"v1")));
        mt.insert(b"k2", Entry::tombstone());
        mt.insert(b"k1", Entry::value(Bytes::from_static(b"longer-value")));
        let mut report = AuditReport::default();
        audit_memtable("test", &mt, &mut report);
        assert!(report.is_clean(), "unexpected: {}", report.render());
    }
}
