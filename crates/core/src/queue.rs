//! Lock-free bounded FIFO: the flushing / migration queue (paper §2.4).
//!
//! "The flushing queue is a lock-free, fixed-size, FIFO queue. ... If the
//! flushing queue is full when the runtime enqueues an immutable local
//! MemTable into the queue, the MPI rank is blocked on the put operation
//! until the queue is available. This prevents the unflushed MemTables from
//! consuming too much system memory due to the performance imbalance between
//! DRAM and NVM."
//!
//! [`BoundedQueue`] is a Vyukov-style MPMC ring buffer (per-slot sequence
//! numbers; the fast path is a single CAS). [`BlockingQueue`] layers the
//! block-when-full / block-when-empty behaviour on top with a condvar used
//! purely for parking — the data path stays lock-free.

use std::mem::MaybeUninit;
use std::sync::Arc;
use std::time::Duration;

// Under `--cfg modelcheck` the queue's synchronization primitives come from
// the deterministic schedule explorer, so the exact CAS/seq protocol below
// runs under exhaustive interleaving search (see `modelcheck_tests`).
#[cfg(modelcheck)]
use papyrus_modelcheck::atomic::{AtomicUsize, Ordering};
#[cfg(modelcheck)]
use papyrus_modelcheck::cell::UnsafeCell;
#[cfg(not(modelcheck))]
use std::cell::UnsafeCell;
#[cfg(not(modelcheck))]
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;
use parking_lot::{Condvar, Mutex};

struct Slot<T> {
    /// Slot state: `seq == index` ⇒ empty and writable by the producer whose
    /// enqueue position is `index`; `seq == index + 1` ⇒ full and readable
    /// by the consumer whose dequeue position is `index`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Fixed-capacity lock-free MPMC FIFO.
pub struct BoundedQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: values are moved in/out under the per-slot sequence protocol; a
// slot is only touched by the single producer/consumer that claimed it.
unsafe impl<T: Send> Send for BoundedQueue<T> {}
// SAFETY: same per-slot protocol; a shared &BoundedQueue exposes no direct
// slot access, every entry point re-claims via the seq counters.
unsafe impl<T: Send> Sync for BoundedQueue<T> {}

impl<T> BoundedQueue<T> {
    /// Create a queue with capacity rounded up to the next power of two
    /// (minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: cap - 1,
            enqueue_pos: CachePadded::new(AtomicUsize::new(0)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate number of queued items (racy under concurrency).
    pub fn len(&self) -> usize {
        // ordering: advisory size; the two cursors are sampled independently
        // and the result is documented as approximate.
        let tail = self.enqueue_pos.load(Ordering::Relaxed);
        let head = self.dequeue_pos.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Whether the queue appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempt to enqueue; returns the value back if the queue is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        // ordering: optimistic cursor read; the slot's Acquire seq load is
        // what synchronises, a stale cursor just retries the CAS.
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    match self.enqueue_pos.compare_exchange_weak(
                        pos,
                        pos + 1,
                        // ordering: the cursor only claims a slot index; all
                        // data publication rides the slot seq Release store.
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: we own this slot until we bump seq.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(observed) => pos = observed,
                    }
                }
                d if d < 0 => return Err(value), // full
                // ordering: refresh after losing a race; retry loop.
                _ => pos = self.enqueue_pos.load(Ordering::Relaxed),
            }
        }
    }

    /// Attempt to dequeue; `None` if empty.
    pub fn try_pop(&self) -> Option<T> {
        // ordering: optimistic cursor read, same protocol as try_push.
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - (pos + 1) as isize {
                0 => {
                    match self.dequeue_pos.compare_exchange_weak(
                        pos,
                        pos + 1,
                        // ordering: cursor claim only; the Acquire seq load
                        // above took ownership of the slot's contents.
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: we own this full slot until we bump seq.
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq.store(pos + self.mask + 1, Ordering::Release);
                            return Some(value);
                        }
                        Err(observed) => pos = observed,
                    }
                }
                d if d < 0 => return None, // empty
                // ordering: refresh after losing a race; retry loop.
                _ => pos = self.dequeue_pos.load(Ordering::Relaxed),
            }
        }
    }
}

impl<T> Drop for BoundedQueue<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

/// Blocking facade over [`BoundedQueue`]: producers block when full (the
/// paper's put-side backpressure), consumers block when empty (the
/// compaction / dispatcher threads sleep until work arrives).
pub struct BlockingQueue<T> {
    queue: BoundedQueue<T>,
    gate: Mutex<()>,
    cv: Condvar,
}

impl<T> BlockingQueue<T> {
    /// Blocking queue with the given capacity.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            queue: BoundedQueue::new(capacity),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    /// Enqueue, blocking while the queue is full.
    pub fn push(&self, mut value: T) {
        loop {
            match self.queue.try_push(value) {
                Ok(()) => {
                    self.cv.notify_all();
                    return;
                }
                Err(v) => {
                    value = v;
                    let mut g = self.gate.lock();
                    // Timed wait: immune to lost-wakeup races with the
                    // lock-free fast path.
                    self.cv.wait_for(&mut g, Duration::from_micros(200));
                }
            }
        }
    }

    /// Dequeue, blocking while the queue is empty.
    pub fn pop(&self) -> T {
        loop {
            if let Some(v) = self.queue.try_pop() {
                self.cv.notify_all();
                return v;
            }
            let mut g = self.gate.lock();
            self.cv.wait_for(&mut g, Duration::from_micros(200));
        }
    }

    /// Non-blocking enqueue.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let r = self.queue.try_push(value);
        if r.is_ok() {
            self.cv.notify_all();
        }
        r
    }

    /// Non-blocking dequeue.
    pub fn try_pop(&self) -> Option<T> {
        let v = self.queue.try_pop();
        if v.is_some() {
            self.cv.notify_all();
        }
        v
    }

    /// Approximate occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue appears empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let q = BoundedQueue::new(8);
        for i in 0..8 {
            q.try_push(i).unwrap();
        }
        assert!(q.try_push(99).is_err(), "queue should be full");
        for i in 0..8 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let q: BoundedQueue<u8> = BoundedQueue::new(5);
        assert_eq!(q.capacity(), 8);
        let q: BoundedQueue<u8> = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn wraparound_many_times() {
        let q = BoundedQueue::new(4);
        for round in 0..100 {
            for i in 0..4 {
                q.try_push(round * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(q.try_pop(), Some(round * 4 + i));
            }
        }
    }

    #[test]
    fn len_tracks_occupancy() {
        let q = BoundedQueue::new(8);
        assert!(q.is_empty());
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        q.try_pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drop_releases_queued_values() {
        // Arc payloads: if Drop leaks, the Arc count stays elevated.
        let sentinel = Arc::new(());
        {
            let q = BoundedQueue::new(4);
            q.try_push(sentinel.clone()).unwrap();
            q.try_push(sentinel.clone()).unwrap();
        }
        assert_eq!(Arc::strong_count(&sentinel), 1);
    }

    #[test]
    // Hot loops / many threads: minutes under Miri's interpreter, covered
    // natively; Miri still runs the small structural tests in this module.
    #[cfg_attr(miri, ignore)]
    fn mpmc_no_loss_no_duplication() {
        let q = Arc::new(BoundedQueue::new(64));
        let n_producers = 4;
        let per = 5_000usize;
        let consumed = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    let mut v = p * per + i;
                    loop {
                        match q.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            }));
        }
        for _ in 0..4 {
            let q = q.clone();
            let consumed = consumed.clone();
            handles.push(thread::spawn(move || {
                // Each consumer drains exactly `per` items.
                let mut local = Vec::with_capacity(per);
                while local.len() < per {
                    match q.try_pop() {
                        Some(v) => local.push(v),
                        None => std::hint::spin_loop(),
                    }
                }
                consumed.lock().extend(local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all = consumed.lock().clone();
        all.sort_unstable();
        let want: Vec<usize> = (0..n_producers * per).collect();
        assert_eq!(all, want);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = BlockingQueue::new(2);
        q.push(1);
        q.push(2);
        let q2 = q.clone();
        let h = thread::spawn(move || {
            q2.push(3); // blocks until a pop frees a slot
            true
        });
        thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished(), "push must block while full");
        assert_eq!(q.pop(), 1);
        assert!(h.join().unwrap());
        assert_eq!(q.pop(), 2);
        assert_eq!(q.pop(), 3);
    }

    #[test]
    fn blocking_pop_waits_for_item() {
        let q: Arc<BlockingQueue<u32>> = BlockingQueue::new(4);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(20));
        q.push(42);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    // Hot loops / many threads: minutes under Miri's interpreter, covered
    // natively; Miri still runs the small structural tests in this module.
    #[cfg_attr(miri, ignore)]
    fn blocking_queue_spsc_throughput() {
        let q = BlockingQueue::new(8);
        let q2 = q.clone();
        let h = thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..10_000 {
                sum += q2.pop();
            }
            sum
        });
        for i in 0..10_000u64 {
            q.push(i);
        }
        assert_eq!(h.join().unwrap(), 10_000 * 9_999 / 2);
    }
}

/// Schedule-exhaustive models of the Vyukov ring, compiled and run only
/// under `--cfg modelcheck` (`cargo xtask modelcheck`). The queue code
/// above is unchanged — its `AtomicUsize`/`UnsafeCell` imports resolve to
/// the explorer's shims, so every CAS and every slot write/read becomes a
/// scheduling point and a happens-before edge or data-race check.
#[cfg(all(test, modelcheck))]
mod modelcheck_tests {
    use super::*;
    use papyrus_modelcheck as mc;

    /// 2 producers + 1 consumer (3 model threads) over a capacity-2 ring:
    /// no value lost, none duplicated, no data race on the slots, under
    /// *every* DPOR-distinct schedule. The interleaving count is pinned —
    /// see EXPERIMENTS.md; a change means the scheduler/DPOR or the queue
    /// protocol changed.
    #[test]
    fn modelcheck_queue_2p1c_exhaustive() {
        let report = mc::explore(|| {
            let q = Arc::new(BoundedQueue::new(2));
            let producers: Vec<_> = (0..2u64)
                .map(|i| {
                    let q = Arc::clone(&q);
                    mc::thread::spawn(move || {
                        q.try_push(i).expect("capacity 2 fits 2 pushes");
                    })
                })
                .collect();
            let consumer = {
                let q = Arc::clone(&q);
                mc::thread::spawn(move || {
                    // Bounded attempts (no spinning: the model must not
                    // wait on other threads outside sync operations).
                    let mut got = Vec::new();
                    for _ in 0..2 {
                        if let Some(v) = q.try_pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            };
            for p in producers {
                p.join().unwrap();
            }
            let mut got = consumer.join().unwrap();
            // Drain what the consumer's bounded attempts missed.
            while let Some(v) = q.try_pop() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1], "every pushed value popped exactly once");
        });
        assert!(report.ok(), "queue 2p1c model must be clean: {:?}", report.violations);
        assert_eq!(report.interleavings, PINNED_QUEUE_2P1C, "see EXPERIMENTS.md");
        assert!(report.prunes > 0, "DPOR must prune some of the tree");
    }

    const PINNED_QUEUE_2P1C: u64 = 109_792;

    /// Full/unfull wrap-around: one producer pushes 3 values through a
    /// capacity-2 ring while a consumer pops; the seq protocol must hand
    /// slots over cleanly when positions lap the ring.
    #[test]
    fn modelcheck_queue_wraparound_exhaustive() {
        let report = mc::explore(|| {
            let q = Arc::new(BoundedQueue::new(2));
            let consumer = {
                let q = Arc::clone(&q);
                mc::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..4 {
                        if let Some(v) = q.try_pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            };
            let mut pushed = Vec::new();
            for i in 0..3u64 {
                if q.try_push(i).is_ok() {
                    pushed.push(i);
                }
            }
            let mut got = consumer.join().unwrap();
            while let Some(v) = q.try_pop() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, pushed, "popped exactly what was pushed, once each");
        });
        assert!(report.ok(), "wrap-around model must be clean: {:?}", report.violations);
    }
}
