//! Per-rank telemetry handles for the KV engine.
//!
//! One [`CoreTel`] is created per opened database and caches interned
//! handles from the global [`papyrus_telemetry`] registry, so the hot paths
//! never take the registry lock. Handles are keyed by rank only — multiple
//! databases opened by the same rank aggregate into the same metrics, which
//! matches how the paper reports per-rank numbers.
//!
//! Span placement: per-operation put/get work is captured in histograms
//! only (spans would swamp the bounded buffer); the long-running engine
//! activities — flush, merge compaction, migration, handler ingest/serve,
//! fence/barrier waits — get real spans on the rank's timeline, on the tid
//! lane of the thread that performs them.

use papyrus_telemetry::{Counter, Histogram, SpanRecorder};

pub(crate) struct CoreTel {
    pub put_local: Counter,
    pub put_remote: Counter,
    pub put_sync: Counter,
    pub get_local: Counter,
    pub get_remote: Counter,
    pub freeze_local: Counter,
    pub freeze_remote: Counter,
    /// Times a freeze had to block on a full flush/migration queue (the
    /// paper's DRAM→NVM backpressure); real-thread waits have no virtual
    /// duration, so they are counted rather than timed.
    pub freeze_stall: Counter,
    pub flush_count: Counter,
    pub compact_count: Counter,
    pub migrate_count: Counter,
    pub ingest_records: Counter,
    pub serve_gets: Counter,
    /// SSTable probes skipped because the bloom filter said "definitely
    /// absent". Deliberately NOT folded into `OpStats` hit/miss — those
    /// counters mean *cache* hits and feed the ablation harness's hit-ratio.
    pub bloom_neg: Counter,
    /// SSTable probes that passed the bloom filter (maybe-present).
    pub bloom_pass: Counter,
    /// Remote RPC attempts re-sent after a timeout (fault plane on).
    pub rpc_retries: Counter,
    /// Remote RPC receive deadlines that expired (fault plane on).
    pub rpc_timeouts: Counter,
    /// Replica batches forwarded to successor ranks (R >= 2).
    pub repl_forwards: Counter,
    /// Remote gets served from a replica after the owner was confirmed dead.
    pub repl_failovers: Counter,
    /// Promotion claims won: this rank became primary for a dead rank's
    /// ranges.
    pub repl_promotions: Counter,
    /// Bytes copied to new successors by background re-replication.
    pub repl_rereplicated_bytes: Counter,
    pub put_ns: Histogram,
    pub get_local_ns: Histogram,
    pub get_remote_ns: Histogram,
    pub flush_ns: Histogram,
    pub compact_ns: Histogram,
    pub migrate_ns: Histogram,
    pub fence_wait_ns: Histogram,
    pub barrier_wait_ns: Histogram,
    /// Virtual backoff delay charged before each RPC retry.
    pub backoff_ns: Histogram,
    /// Ack-to-replica-durable lag: virtual time from a replica batch's
    /// dispatch stamp to its ingest-complete (ack) stamp on the successor.
    pub repl_lag_ns: Histogram,
    pub rec: SpanRecorder,
}

impl CoreTel {
    pub fn new(rank: usize) -> Self {
        let reg = papyrus_telemetry::global();
        let pid = rank as u32;
        Self {
            put_local: reg.counter(pid, "kv.put.local"),
            put_remote: reg.counter(pid, "kv.put.remote"),
            put_sync: reg.counter(pid, "kv.put.sync"),
            get_local: reg.counter(pid, "kv.get.local"),
            get_remote: reg.counter(pid, "kv.get.remote"),
            freeze_local: reg.counter(pid, "kv.freeze.local"),
            freeze_remote: reg.counter(pid, "kv.freeze.remote"),
            freeze_stall: reg.counter(pid, "kv.freeze.stall"),
            flush_count: reg.counter(pid, "kv.flush.count"),
            compact_count: reg.counter(pid, "kv.compact.count"),
            migrate_count: reg.counter(pid, "kv.migrate.count"),
            ingest_records: reg.counter(pid, "kv.ingest.records"),
            serve_gets: reg.counter(pid, "kv.serve_get.count"),
            bloom_neg: reg.counter(pid, "kv.bloom.neg"),
            bloom_pass: reg.counter(pid, "kv.bloom.pass"),
            rpc_retries: reg.counter(pid, "rpc_retries"),
            rpc_timeouts: reg.counter(pid, "rpc_timeouts"),
            repl_forwards: reg.counter(pid, "repl.forwards"),
            repl_failovers: reg.counter(pid, "repl.failovers"),
            repl_promotions: reg.counter(pid, "repl.promotions"),
            repl_rereplicated_bytes: reg.counter(pid, "repl.rereplicated.bytes"),
            put_ns: reg.histogram(pid, "kv.put.ns"),
            get_local_ns: reg.histogram(pid, "kv.get.local.ns"),
            get_remote_ns: reg.histogram(pid, "kv.get.remote.ns"),
            flush_ns: reg.histogram(pid, "kv.flush.ns"),
            compact_ns: reg.histogram(pid, "kv.compact.ns"),
            migrate_ns: reg.histogram(pid, "kv.migrate.ns"),
            fence_wait_ns: reg.histogram(pid, "kv.fence.wait.ns"),
            barrier_wait_ns: reg.histogram(pid, "kv.barrier.wait.ns"),
            backoff_ns: reg.histogram(pid, "rpc.backoff.ns"),
            repl_lag_ns: reg.histogram(pid, "repl.lag.ns"),
            rec: reg.recorder_for_rank(rank),
        }
    }

    /// Whether recording is live (one relaxed load; callers guard blocks of
    /// telemetry work with this to skip even the handle-level checks).
    #[inline]
    pub fn on(&self) -> bool {
        papyrus_telemetry::is_enabled()
    }
}
