//! Wire format for runtime-internal messages.
//!
//! PapyrusKV's message dispatcher and message handler threads exchange
//! request/response messages over runtime-private communicators (§2.4,
//! §2.6). The format here is a hand-rolled little-endian binary encoding
//! (no serde): a one-byte opcode followed by opcode-specific fields.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Error, Result};
use crate::sstable::Ssid;

/// Message tags on the request communicator (handler side).
pub mod tags {
    /// Batched migration of key-value pairs to their owner.
    pub const MIGRATE: u32 = 1;
    /// Synchronous single put/delete (sequential consistency mode).
    pub const PUT_SYNC: u32 = 2;
    /// Remote get request.
    pub const GET_REQ: u32 = 3;
    /// Barrier marker (flushes the FIFO channel ahead of it).
    pub const BARRIER_MARK: u32 = 4;
    /// Handler shutdown (sent by the own rank at finalize).
    pub const SHUTDOWN: u32 = 5;
    /// Replica copy of a put batch, forwarded to a successor rank of the
    /// owner (DESIGN §11). Rides the same FIFO request channel as
    /// `BARRIER_MARK`, so a successful barrier proves every replica batch
    /// sent before it has been ingested.
    pub const REPL_PUT: u32 = 6;
    /// Failover get served from a successor's replica tables after the
    /// owner rank died.
    pub const REPL_GET: u32 = 7;
    /// Tags on the reply communicator (caller side).
    pub const PUT_ACK: u32 = 10;
    /// Remote get response.
    pub const GET_RESP: u32 = 11;
    /// Migration-batch acknowledgement (only sent while the
    /// `PAPYRUS_FAULTS` plane is on; the gate is process-global, so sender
    /// and receiver always agree on whether acks flow).
    pub const MIGRATE_ACK: u32 = 12;
    /// Replica-batch acknowledgement (sent only when the `REPL_PUT` header
    /// requests one: synchronous forwards and fault-plane dispatch).
    pub const REPL_ACK: u32 = 13;
    /// Failover-get response (same body as `GET_RESP`).
    pub const REPL_RESP: u32 = 14;
}

/// RPC sequence number carried by every request and echoed by its reply.
///
/// Under the fault plane a timed-out request is *resent*; the reply to the
/// original attempt may still arrive later. The echoed sequence number lets
/// the caller discard such stale replies instead of pairing them with the
/// wrong RPC. All request payloads carry it unconditionally (8 bytes) so the
/// wire format does not depend on the gate.
pub type RpcSeq = u64;

/// Sentinel storage-group id meaning "do not use the shared-SSTable fast
/// path; perform a full local get" — used when a caller's shared search
/// raced the owner's compaction.
pub const NO_GROUP: u32 = u32::MAX;

/// One key-value record inside a migration batch or sync put.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvRecord {
    /// Key bytes.
    pub key: Vec<u8>,
    /// Value bytes (empty for tombstones).
    pub value: Bytes,
    /// Deletion marker.
    pub tombstone: bool,
}

/// Remote-get response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GetResp {
    /// Value found in the owner's memory or SSTables.
    Found(Bytes),
    /// Key definitely absent (or tombstoned).
    NotFound,
    /// Owner and caller share a storage group and the key was not in the
    /// owner's memory: the caller should search the owner's SSTables
    /// directly in the shared NVM (§2.7). Carries the owner's live SSID
    /// list, newest first.
    SearchShared(Vec<Ssid>),
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut Bytes) -> Result<Bytes> {
    if buf.remaining() < 4 {
        return Err(Error::Internal("truncated message".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(Error::Internal("truncated message body".into()));
    }
    Ok(buf.split_to(len))
}

/// Encode a migration batch: `[db: u32][seq: u64][count: u32]` then per
/// record `[tomb: u8][key][value]` (length-prefixed).
pub fn encode_migrate(db: u32, seq: RpcSeq, records: &[KvRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        16 + records.iter().map(|r| 9 + r.key.len() + r.value.len()).sum::<usize>(),
    );
    buf.put_u32_le(db);
    buf.put_u64_le(seq);
    buf.put_u32_le(records.len() as u32);
    for r in records {
        buf.put_u8(u8::from(r.tombstone));
        put_bytes(&mut buf, &r.key);
        put_bytes(&mut buf, &r.value);
    }
    buf.freeze()
}

/// Decode a migration batch.
pub fn decode_migrate(mut buf: Bytes) -> Result<(u32, RpcSeq, Vec<KvRecord>)> {
    if buf.remaining() < 16 {
        return Err(Error::Internal("truncated migrate header".into()));
    }
    let db = buf.get_u32_le();
    let seq = buf.get_u64_le();
    let count = buf.get_u32_le() as usize;
    // `count` comes off the wire: cap the preallocation so corrupt headers
    // cannot trigger huge allocations (the decode loop still bails on
    // truncation).
    let mut records = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        if buf.remaining() < 1 {
            return Err(Error::Internal("truncated migrate record".into()));
        }
        let tombstone = buf.get_u8() != 0;
        let key = get_bytes(&mut buf)?.to_vec();
        let value = get_bytes(&mut buf)?;
        records.push(KvRecord { key, value, tombstone });
    }
    Ok((db, seq, records))
}

/// Encode a synchronous put: same record format, count = 1 implied.
pub fn encode_put_sync(db: u32, seq: RpcSeq, record: &KvRecord) -> Bytes {
    encode_migrate(db, seq, std::slice::from_ref(record))
}

/// Decode a synchronous put.
pub fn decode_put_sync(buf: Bytes) -> Result<(u32, RpcSeq, KvRecord)> {
    let (db, seq, mut records) = decode_migrate(buf)?;
    if records.len() != 1 {
        return Err(Error::Internal("put_sync must carry one record".into()));
    }
    let record = records.pop().ok_or_else(|| Error::Internal("put_sync record vanished".into()))?;
    Ok((db, seq, record))
}

/// Encode a request acknowledgement (`PUT_ACK`/`MIGRATE_ACK`): the echoed
/// sequence number.
pub fn encode_ack(seq: RpcSeq) -> Bytes {
    let mut buf = BytesMut::with_capacity(8);
    buf.put_u64_le(seq);
    buf.freeze()
}

/// Decode an acknowledgement.
pub fn decode_ack(mut buf: Bytes) -> Result<RpcSeq> {
    if buf.remaining() < 8 {
        return Err(Error::Internal("truncated ack".into()));
    }
    Ok(buf.get_u64_le())
}

/// Encode a remote-get request: `[db: u32][group: u32][seq: u64][key]`.
/// The caller's storage-group id lets the owner decide the shared-SSTable
/// fast path (§2.7).
pub fn encode_get_req(db: u32, caller_group: u32, seq: RpcSeq, key: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(20 + key.len());
    buf.put_u32_le(db);
    buf.put_u32_le(caller_group);
    buf.put_u64_le(seq);
    put_bytes(&mut buf, key);
    buf.freeze()
}

/// Decode a remote-get request.
pub fn decode_get_req(mut buf: Bytes) -> Result<(u32, u32, RpcSeq, Bytes)> {
    if buf.remaining() < 16 {
        return Err(Error::Internal("truncated get_req".into()));
    }
    let db = buf.get_u32_le();
    let group = buf.get_u32_le();
    let seq = buf.get_u64_le();
    let key = get_bytes(&mut buf)?;
    Ok((db, group, seq, key))
}

const RESP_FOUND: u8 = 0;
const RESP_NOT_FOUND: u8 = 1;
const RESP_SEARCH_SHARED: u8 = 2;

/// Encode a remote-get response: `[seq: u64][opcode: u8]` + body.
pub fn encode_get_resp(seq: RpcSeq, resp: &GetResp) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64_le(seq);
    match resp {
        GetResp::Found(v) => {
            buf.put_u8(RESP_FOUND);
            put_bytes(&mut buf, v);
        }
        GetResp::NotFound => buf.put_u8(RESP_NOT_FOUND),
        GetResp::SearchShared(ssids) => {
            buf.put_u8(RESP_SEARCH_SHARED);
            buf.put_u32_le(ssids.len() as u32);
            for s in ssids {
                buf.put_u64_le(*s);
            }
        }
    }
    buf.freeze()
}

/// Decode a remote-get response.
pub fn decode_get_resp(mut buf: Bytes) -> Result<(RpcSeq, GetResp)> {
    if buf.remaining() < 9 {
        return Err(Error::Internal("truncated get_resp".into()));
    }
    let seq = buf.get_u64_le();
    let resp = match buf.get_u8() {
        RESP_FOUND => GetResp::Found(get_bytes(&mut buf)?),
        RESP_NOT_FOUND => GetResp::NotFound,
        RESP_SEARCH_SHARED => {
            if buf.remaining() < 4 {
                return Err(Error::Internal("truncated search_shared".into()));
            }
            let n = buf.get_u32_le() as usize;
            if buf.remaining() < n.saturating_mul(8) {
                return Err(Error::Internal("truncated ssid list".into()));
            }
            GetResp::SearchShared((0..n).map(|_| buf.get_u64_le()).collect())
        }
        op => return Err(Error::Internal(format!("unknown get_resp opcode {op}"))),
    };
    Ok((seq, resp))
}

/// Encode a replica put batch: `[db: u32][origin: u32][want_ack: u8]`
/// `[seq: u64][count: u32]` then the migrate record format. `origin` is the
/// owner rank whose ranges the records belong to — the receiver files them
/// in its per-origin replica tables, never in its primary stack.
pub fn encode_repl_put(
    db: u32,
    origin: u32,
    want_ack: bool,
    seq: RpcSeq,
    records: &[KvRecord],
) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        21 + records.iter().map(|r| 9 + r.key.len() + r.value.len()).sum::<usize>(),
    );
    buf.put_u32_le(db);
    buf.put_u32_le(origin);
    buf.put_u8(u8::from(want_ack));
    buf.put_u64_le(seq);
    buf.put_u32_le(records.len() as u32);
    for r in records {
        buf.put_u8(u8::from(r.tombstone));
        put_bytes(&mut buf, &r.key);
        put_bytes(&mut buf, &r.value);
    }
    buf.freeze()
}

/// Decode a replica put batch.
pub fn decode_repl_put(mut buf: Bytes) -> Result<(u32, u32, bool, RpcSeq, Vec<KvRecord>)> {
    if buf.remaining() < 21 {
        return Err(Error::Internal("truncated repl_put header".into()));
    }
    let db = buf.get_u32_le();
    let origin = buf.get_u32_le();
    let want_ack = buf.get_u8() != 0;
    let seq = buf.get_u64_le();
    let count = buf.get_u32_le() as usize;
    let mut records = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        if buf.remaining() < 1 {
            return Err(Error::Internal("truncated repl_put record".into()));
        }
        let tombstone = buf.get_u8() != 0;
        let key = get_bytes(&mut buf)?.to_vec();
        let value = get_bytes(&mut buf)?;
        records.push(KvRecord { key, value, tombstone });
    }
    Ok((db, origin, want_ack, seq, records))
}

/// Encode a failover get: `[db: u32][origin: u32][seq: u64][key]`. The
/// receiver searches its replica tables for `origin`'s ranges.
pub fn encode_repl_get(db: u32, origin: u32, seq: RpcSeq, key: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(20 + key.len());
    buf.put_u32_le(db);
    buf.put_u32_le(origin);
    buf.put_u64_le(seq);
    put_bytes(&mut buf, key);
    buf.freeze()
}

/// Decode a failover get.
pub fn decode_repl_get(mut buf: Bytes) -> Result<(u32, u32, RpcSeq, Bytes)> {
    if buf.remaining() < 16 {
        return Err(Error::Internal("truncated repl_get".into()));
    }
    let db = buf.get_u32_le();
    let origin = buf.get_u32_le();
    let seq = buf.get_u64_le();
    let key = get_bytes(&mut buf)?;
    Ok((db, origin, seq, key))
}

/// Encode a barrier marker: `[db: u32][epoch: u64]`.
pub fn encode_barrier_mark(db: u32, epoch: u64) -> Bytes {
    let mut buf = BytesMut::with_capacity(12);
    buf.put_u32_le(db);
    buf.put_u64_le(epoch);
    buf.freeze()
}

/// Decode a barrier marker.
pub fn decode_barrier_mark(mut buf: Bytes) -> Result<(u32, u64)> {
    if buf.remaining() < 12 {
        return Err(Error::Internal("truncated barrier mark".into()));
    }
    Ok((buf.get_u32_le(), buf.get_u64_le()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &str, v: &str, t: bool) -> KvRecord {
        KvRecord {
            key: k.as_bytes().to_vec(),
            value: Bytes::copy_from_slice(v.as_bytes()),
            tombstone: t,
        }
    }

    #[test]
    fn migrate_roundtrip() {
        let records = vec![rec("a", "1", false), rec("dead", "", true), rec("b", "22", false)];
        let (db, seq, got) = decode_migrate(encode_migrate(7, 42, &records)).unwrap();
        assert_eq!((db, seq), (7, 42));
        assert_eq!(got, records);
    }

    #[test]
    fn migrate_empty_batch() {
        let (db, seq, got) = decode_migrate(encode_migrate(0, 0, &[])).unwrap();
        assert_eq!((db, seq), (0, 0));
        assert!(got.is_empty());
    }

    #[test]
    fn put_sync_roundtrip() {
        let r = rec("key", "value", false);
        let (db, seq, got) = decode_put_sync(encode_put_sync(3, 9, &r)).unwrap();
        assert_eq!((db, seq), (3, 9));
        assert_eq!(got, r);
    }

    #[test]
    fn put_sync_rejects_multi_record() {
        let batch = encode_migrate(1, 0, &[rec("a", "1", false), rec("b", "2", false)]);
        assert!(decode_put_sync(batch).is_err());
    }

    #[test]
    fn get_req_roundtrip() {
        let buf = encode_get_req(9, 2, 77, b"the-key");
        let (db, group, seq, key) = decode_get_req(buf).unwrap();
        assert_eq!((db, group, seq), (9, 2, 77));
        assert_eq!(&key[..], b"the-key");
    }

    #[test]
    fn get_resp_variants_roundtrip() {
        for resp in [
            GetResp::Found(Bytes::from_static(b"v")),
            GetResp::NotFound,
            GetResp::SearchShared(vec![5, 3, 1]),
            GetResp::SearchShared(vec![]),
        ] {
            assert_eq!(decode_get_resp(encode_get_resp(13, &resp)).unwrap(), (13, resp));
        }
    }

    #[test]
    fn ack_roundtrip() {
        assert_eq!(decode_ack(encode_ack(0xdead_beef)).unwrap(), 0xdead_beef);
    }

    #[test]
    fn stale_reply_seq_distinguishable() {
        // Two replies to different attempts: the caller pairs by seq.
        let stale = encode_get_resp(1, &GetResp::NotFound);
        let fresh = encode_get_resp(2, &GetResp::Found(Bytes::from_static(b"v")));
        assert_eq!(decode_get_resp(stale).unwrap().0, 1);
        assert_eq!(decode_get_resp(fresh).unwrap().0, 2);
    }

    #[test]
    fn repl_put_roundtrip() {
        let records = vec![rec("a", "1", false), rec("gone", "", true)];
        for want_ack in [false, true] {
            let buf = encode_repl_put(5, 3, want_ack, 88, &records);
            let (db, origin, ack, seq, got) = decode_repl_put(buf).unwrap();
            assert_eq!((db, origin, ack, seq), (5, 3, want_ack, 88));
            assert_eq!(got, records);
        }
    }

    #[test]
    fn repl_get_roundtrip() {
        let (db, origin, seq, key) = decode_repl_get(encode_repl_get(2, 1, 31, b"k7")).unwrap();
        assert_eq!((db, origin, seq), (2, 1, 31));
        assert_eq!(&key[..], b"k7");
    }

    #[test]
    fn repl_replies_are_seq_first() {
        // `rpc_with_retry` pairs replies by peeking the first 8 bytes; the
        // replica replies reuse the ack/get_resp encodings, which must keep
        // the sequence number leading.
        let ack = encode_ack(0x0123_4567_89ab_cdef);
        assert_eq!(&ack[..8], &0x0123_4567_89ab_cdefu64.to_le_bytes());
        let resp = encode_get_resp(0xfeed_f00d, &GetResp::NotFound);
        assert_eq!(&resp[..8], &0xfeed_f00du64.to_le_bytes());
    }

    #[test]
    fn repl_truncations_error_not_panic() {
        assert!(decode_repl_put(Bytes::from_static(&[1, 2, 3])).is_err());
        assert!(decode_repl_get(Bytes::from_static(&[0; 10])).is_err());
        // Count says 2 records but the body is empty.
        let mut bad = BytesMut::new();
        bad.put_u32_le(0);
        bad.put_u32_le(1);
        bad.put_u8(0);
        bad.put_u64_le(0);
        bad.put_u32_le(2);
        assert!(decode_repl_put(bad.freeze()).is_err());
    }

    #[test]
    fn barrier_mark_roundtrip() {
        let (db, epoch) = decode_barrier_mark(encode_barrier_mark(4, 99)).unwrap();
        assert_eq!((db, epoch), (4, 99));
    }

    #[test]
    fn truncated_messages_error_not_panic() {
        assert!(decode_migrate(Bytes::from_static(&[1, 2])).is_err());
        assert!(decode_get_req(Bytes::from_static(&[0])).is_err());
        assert!(decode_get_resp(Bytes::new()).is_err());
        assert!(decode_get_resp(Bytes::from_static(&[9])).is_err());
        assert!(decode_barrier_mark(Bytes::from_static(&[0, 0])).is_err());
        assert!(decode_ack(Bytes::from_static(&[1, 2, 3])).is_err());
        // Count says 3 records but body holds none.
        let mut bad = BytesMut::new();
        bad.put_u32_le(0);
        bad.put_u64_le(0);
        bad.put_u32_le(3);
        assert!(decode_migrate(bad.freeze()).is_err());
    }

    #[test]
    fn large_payload_roundtrip() {
        let big = "x".repeat(1 << 20);
        let r = rec("k", &big, false);
        let (_, _, got) = decode_put_sync(encode_put_sync(0, 1, &r)).unwrap();
        assert_eq!(got.value.len(), 1 << 20);
    }
}
