//! Bloom filter: the per-SSTable membership test (paper §2.4).
//!
//! "Bloom filter is a bit vector used to test whether an element is a member
//! of a set. Given an arbitrary key, it identifies whether the key may exist
//! or definitely does not exist in the SSData." One filter is built per
//! SSTable at flush time, stored as the SSTable's third file, and consulted
//! before opening SSIndex/SSData on every get.

use crate::hashfn::{fnv1a64, mix64};

/// A serialisable Bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u64>,
    m: u64,
    k: u32,
}

impl Bloom {
    /// Build an empty filter sized for `expected` keys at `bits_per_key`
    /// bits each (10 bits/key ≈ 1% false-positive rate).
    pub fn with_capacity(expected: usize, bits_per_key: usize) -> Self {
        let m = (expected.max(1) * bits_per_key.max(1)).max(64) as u64;
        let m = m.next_multiple_of(64);
        // Optimal k = ln2 * bits/key, clamped to a practical range.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        Self { bits: vec![0u64; (m / 64) as usize], m, k }
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hashes(key);
        for i in 0..self.k {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.m;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Whether the key *may* be present (false positives possible, false
    /// negatives impossible).
    pub fn maybe_contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hashes(key);
        (0..self.k).all(|i| {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.m;
            self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    // Double hashing: two independent 64-bit hashes drive all k probes.
    fn hashes(key: &[u8]) -> (u64, u64) {
        let h = fnv1a64(key);
        (h, mix64(h) | 1) // force h2 odd so strides cover the table
    }

    /// Serialise to the SSTable bloom-file format:
    /// `[m: u64 le][k: u32 le][bit words: u64 le...]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&self.m.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Parse the bloom-file format; `None` on corruption.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 12 {
            return None;
        }
        let m = u64::from_le_bytes(data[0..8].try_into().ok()?);
        let k = u32::from_le_bytes(data[8..12].try_into().ok()?);
        if m == 0 || m % 64 != 0 || k == 0 {
            return None;
        }
        let nwords = (m / 64) as usize;
        let body = &data[12..];
        if body.len() != nwords * 8 {
            return None;
        }
        let bits =
            body.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect(); // lint:allow(panic-path): chunks_exact(8) yields exactly-8-byte chunks
        Some(Self { bits, m, k })
    }

    /// Size of the serialised filter in bytes.
    pub fn serialized_len(&self) -> u64 {
        12 + self.bits.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = Bloom::with_capacity(1000, 10);
        for i in 0..1000 {
            b.insert(format!("key-{i}").as_bytes());
        }
        for i in 0..1000 {
            assert!(b.maybe_contains(format!("key-{i}").as_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut b = Bloom::with_capacity(10_000, 10);
        for i in 0..10_000 {
            b.insert(format!("in-{i}").as_bytes());
        }
        let fp = (0..10_000).filter(|i| b.maybe_contains(format!("out-{i}").as_bytes())).count();
        // 10 bits/key targets ~1%; allow generous slack.
        assert!(fp < 500, "false positive count {fp} too high");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let b = Bloom::with_capacity(100, 10);
        assert!(!b.maybe_contains(b"anything"));
    }

    #[test]
    fn serialisation_roundtrip() {
        let mut b = Bloom::with_capacity(500, 12);
        for i in 0..500 {
            b.insert(&[i as u8, (i >> 8) as u8, 7]);
        }
        let bytes = b.to_bytes();
        assert_eq!(bytes.len() as u64, b.serialized_len());
        let b2 = Bloom::from_bytes(&bytes).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        assert!(Bloom::from_bytes(&[]).is_none());
        assert!(Bloom::from_bytes(&[0u8; 5]).is_none());
        let mut good = Bloom::with_capacity(10, 10).to_bytes();
        good.pop(); // truncate body
        assert!(Bloom::from_bytes(&good).is_none());
        // m = 0 rejected.
        let mut zeroed = vec![0u8; 12];
        zeroed[8] = 1; // k = 1
        assert!(Bloom::from_bytes(&zeroed).is_none());
    }

    #[test]
    fn tiny_capacity_still_works() {
        let mut b = Bloom::with_capacity(0, 0);
        b.insert(b"x");
        assert!(b.maybe_contains(b"x"));
    }
}
