//! # PapyrusKV
//!
//! A from-scratch Rust reproduction of **PapyrusKV: A High-Performance
//! Parallel Key-Value Store for Distributed NVM Architectures** (Kim, Lee,
//! Vetter — SC 2017).
//!
//! PapyrusKV is an *embedded*, MPI-style distributed key-value store
//! following the log-structured merge-tree design: keys and values (arbitrary
//! byte arrays) are distributed across ranks by a hash of the key, staged in
//! in-memory red-black-tree MemTables, and flushed to immutable sorted
//! SSTables on NVM. On top of the standard put/get/delete operations it
//! provides the paper's HPC-specific features:
//!
//! * **Dynamic consistency control** (§3.1) — per-database relaxed vs.
//!   sequential consistency, switchable at runtime; fence and barrier
//!   synchronisation primitives; signal notify/wait.
//! * **Protection attributes** (§3.2) — read-write / write-only / read-only
//!   phases driving cache policy (the read-only remote cache).
//! * **Storage groups** (§2.7) — ranks sharing an NVM device read each
//!   other's SSTables directly, skipping data transfer.
//! * **Zero-copy workflow** (§4.1) — SSTables persist past a database close
//!   and are recomposed by a later `open` with no data movement.
//! * **Asynchronous checkpoint/restart** (§4.2) — background snapshot to a
//!   parallel file system, restart with optional redistribution.
//!
//! The execution substrate is simulated (see the `papyrus-mpi` and
//! `papyrus-nvm` crates): ranks are threads, the interconnect and storage
//! devices are cost models over virtual time, which is how this repository
//! regenerates the paper's evaluation on a laptop.
//!
//! ## Quickstart
//!
//! ```
//! use papyruskv::{Context, Options, OpenFlags, Platform};
//! use papyrus_mpi::{World, WorldConfig};
//! use papyrus_nvm::SystemProfile;
//!
//! let platform = Platform::new(SystemProfile::test_profile(), 4);
//! World::run(WorldConfig::for_tests(4), move |rank| {
//!     let ctx = Context::init(rank, platform.clone(), "nvm://quickstart").unwrap();
//!     let db = ctx.open("mydb", OpenFlags::create(), Options::default()).unwrap();
//!     let key = format!("rank{}-key", ctx.rank());
//!     db.put(key.as_bytes(), b"hello").unwrap();
//!     db.barrier(papyruskv::BarrierLevel::MemTable).unwrap();
//!     assert_eq!(&db.get(key.as_bytes()).unwrap()[..], b"hello");
//!     db.close().unwrap();
//!     ctx.finalize().unwrap();
//! });
//! ```
//!
//! ### C API mapping
//!
//! | C function | Rust equivalent |
//! |---|---|
//! | `papyruskv_init` / `papyruskv_finalize` | [`Context::init`] / [`Context::finalize`] |
//! | `papyruskv_open` / `papyruskv_close` | [`Context::open`] / [`Db::close`] |
//! | `papyruskv_put` / `get` / `delete` | [`Db::put`] / [`Db::get`] / [`Db::delete`] |
//! | `papyruskv_free` | dropping the returned [`bytes::Bytes`] |
//! | `papyruskv_fence` / `papyruskv_barrier` | [`Db::fence`] / [`Db::barrier`] |
//! | `papyruskv_consistency` / `papyruskv_protect` | [`Db::set_consistency`] / [`Db::protect`] |
//! | `papyruskv_signal_notify` / `wait` | [`Context::signal_notify`] / [`Context::signal_wait`] |
//! | `papyruskv_checkpoint` / `restart` / `destroy` | [`Db::checkpoint`] / [`Context::restart`] / [`Db::destroy`] |
//! | `papyruskv_wait` | [`Event::wait`] |

pub mod bloom;
pub mod capi;
mod ckpt;
mod db;
pub mod error;
pub mod hashfn;
pub mod lru;
pub mod memtable;
pub mod msg;
pub mod options;
pub mod queue;
pub mod rbtree;
mod runtime;
pub mod sanity;
pub mod sstable;
mod tel;

pub use db::Db;
pub use error::{Error, Result};
pub use options::{BarrierLevel, Consistency, OpenFlags, Options, Protection};
pub use runtime::{Context, Event, Platform, RepoKind};
