//! Key hashing and owner-rank distribution.
//!
//! PapyrusKV "hashes the key and divides the result by the total number of
//! the running MPI ranks; the remainder maps the key to the owner rank"
//! (§2.4). The built-in hash is FNV-1a-64 with an avalanche finaliser;
//! applications can supply a custom hash through
//! [`crate::Options::custom_hash`] for load balancing (§2.4) or to match an
//! existing application's data affinity (the Meraculous port, §5.2).

use std::sync::Arc;

/// A key-hash function: application-visible customisation point.
pub type HashFn = Arc<dyn Fn(&[u8]) -> u64 + Send + Sync>;

/// FNV-1a 64-bit over the key bytes.
#[inline]
pub fn fnv1a64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// splitmix64-style avalanche finaliser: decorrelates the low bits so that
/// `hash % n` distributes well even for small `n`.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The built-in PapyrusKV key hash.
#[inline]
pub fn builtin_hash(key: &[u8]) -> u64 {
    mix64(fnv1a64(key))
}

/// The key distributor: built-in or custom hash, plus the rank count.
#[derive(Clone)]
pub struct Distributor {
    hash: Option<HashFn>,
    nranks: usize,
}

impl std::fmt::Debug for Distributor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Distributor")
            .field("custom", &self.hash.is_some())
            .field("nranks", &self.nranks)
            .finish()
    }
}

impl Distributor {
    /// Distributor over `nranks` ranks; `hash = None` selects the built-in.
    pub fn new(hash: Option<HashFn>, nranks: usize) -> Self {
        assert!(nranks > 0, "distributor needs at least one rank");
        Self { hash, nranks }
    }

    /// Owner rank of `key`.
    #[inline]
    pub fn owner(&self, key: &[u8]) -> usize {
        let h = match &self.hash {
            Some(f) => f(key),
            None => builtin_hash(key),
        };
        (h % self.nranks as u64) as usize
    }

    /// Number of ranks keys are distributed over.
    pub fn nranks(&self) -> usize {
        self.nranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn builtin_hash_deterministic() {
        assert_eq!(builtin_hash(b"key-1"), builtin_hash(b"key-1"));
        assert_ne!(builtin_hash(b"key-1"), builtin_hash(b"key-2"));
    }

    #[test]
    fn owner_in_range() {
        let d = Distributor::new(None, 7);
        for i in 0..1000 {
            let key = format!("k{i}");
            assert!(d.owner(key.as_bytes()) < 7);
        }
    }

    #[test]
    fn distribution_roughly_uniform() {
        // The load-balancing premise of §2.4: the built-in hash spreads
        // uniform random keys evenly across ranks.
        let n = 16;
        let d = Distributor::new(None, n);
        let mut counts = vec![0usize; n];
        let total = 32_000;
        for i in 0..total {
            counts[d.owner(format!("key:{i}").as_bytes())] += 1;
        }
        let expect = total / n;
        for (r, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 8 / 10 && c < expect * 12 / 10,
                "rank {r} got {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn custom_hash_overrides_builtin() {
        // A pathological custom hash sending everything to rank 3.
        let d = Distributor::new(Some(Arc::new(|_k: &[u8]| 3u64)), 5);
        for i in 0..50 {
            assert_eq!(d.owner(format!("{i}").as_bytes()), 3);
        }
    }

    #[test]
    fn single_rank_owns_everything() {
        let d = Distributor::new(None, 1);
        assert_eq!(d.owner(b"anything"), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Distributor::new(None, 0);
    }
}
