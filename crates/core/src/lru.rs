//! Byte-capacity LRU cache: the local and remote caches (paper §2.3).
//!
//! "The cache is a kind of MemTable, and it is managed in a LRU fashion. The
//! local and remote caches store key-value pairs fetched from SSTables and
//! other remote MPI ranks, respectively."
//!
//! Implemented as a hash map into an index arena forming an intrusive
//! doubly-linked recency list — no per-entry allocation beyond the key/value
//! bytes, O(1) get/insert/evict.

use std::collections::HashMap;

use bytes::Bytes;

/// A cached lookup result: either a value or a cached tombstone (the key is
/// known deleted — caching this avoids re-searching SSTables for it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Value bytes (empty for tombstones).
    pub value: Bytes,
    /// Whether this entry records a deletion.
    pub tombstone: bool,
}

impl CacheEntry {
    /// A live value entry.
    pub fn value(v: Bytes) -> Self {
        Self { value: v, tombstone: false }
    }

    /// A tombstone entry.
    pub fn tombstone() -> Self {
        Self { value: Bytes::new(), tombstone: true }
    }
}

const NONE: u32 = u32::MAX;

#[derive(Debug)]
struct Slot {
    key: Vec<u8>,
    entry: CacheEntry,
    prev: u32,
    next: u32,
}

/// Byte-bounded LRU map from keys to [`CacheEntry`].
#[derive(Debug)]
pub struct LruCache {
    map: HashMap<Vec<u8>, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32, // most recent
    tail: u32, // least recent
    bytes: u64,
    capacity: u64,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Cache bounded to `capacity` bytes of key+value payload.
    pub fn new(capacity: u64) -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            bytes: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current payload bytes held.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Configured byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn unlink(&mut self, i: u32) {
        let (p, n) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if p != NONE {
            self.slots[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NONE {
            self.slots[n as usize].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NONE;
            s.next = old_head;
        }
        if old_head != NONE {
            self.slots[old_head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NONE {
            self.tail = i;
        }
    }

    fn entry_size(key: &[u8], e: &CacheEntry) -> u64 {
        (key.len() + e.value.len()) as u64
    }

    /// Look up and promote to most-recently-used.
    pub fn get(&mut self, key: &[u8]) -> Option<CacheEntry> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(self.slots[i as usize].entry.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without promoting or counting (tests/diagnostics).
    pub fn peek(&self, key: &[u8]) -> Option<&CacheEntry> {
        self.map.get(key).map(|&i| &self.slots[i as usize].entry)
    }

    /// Insert or replace; evicts LRU entries until the new total fits.
    /// Entries larger than the whole capacity are not cached.
    pub fn insert(&mut self, key: &[u8], entry: CacheEntry) {
        let size = Self::entry_size(key, &entry);
        if size > self.capacity {
            // Too big to cache; also drop any stale cached version.
            self.invalidate(key);
            return;
        }
        if let Some(&i) = self.map.get(key) {
            let old = Self::entry_size(key, &self.slots[i as usize].entry);
            self.bytes = self.bytes - old + size;
            self.slots[i as usize].entry = entry;
            self.unlink(i);
            self.push_front(i);
        } else {
            let i = if let Some(i) = self.free.pop() {
                self.slots[i as usize] = Slot { key: key.to_vec(), entry, prev: NONE, next: NONE };
                i
            } else {
                self.slots.push(Slot { key: key.to_vec(), entry, prev: NONE, next: NONE });
                (self.slots.len() - 1) as u32
            };
            self.map.insert(key.to_vec(), i);
            self.push_front(i);
            self.bytes += size;
        }
        while self.bytes > self.capacity {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        let i = self.tail;
        debug_assert_ne!(i, NONE, "over capacity with empty list");
        self.unlink(i);
        let key = std::mem::take(&mut self.slots[i as usize].key);
        let size = Self::entry_size(&key, &self.slots[i as usize].entry);
        self.slots[i as usize].entry = CacheEntry::tombstone();
        self.map.remove(&key);
        self.free.push(i);
        self.bytes -= size;
    }

    /// Drop a key if cached. Returns whether it was present. This is the
    /// stale-entry eviction on put (paper §2.4: "a stale cache entry that
    /// has the same key as the new key-value pair is evicted").
    pub fn invalidate(&mut self, key: &[u8]) -> bool {
        if let Some(i) = self.map.remove(key) {
            self.unlink(i);
            let size = Self::entry_size(key, &self.slots[i as usize].entry);
            self.slots[i as usize].key = Vec::new();
            self.slots[i as usize].entry = CacheEntry::tombstone();
            self.free.push(i);
            self.bytes -= size;
            true
        } else {
            false
        }
    }

    /// Drop everything (protection-attribute transitions, §3.2).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NONE;
        self.tail = NONE;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(v: &[u8]) -> CacheEntry {
        CacheEntry::value(Bytes::copy_from_slice(v))
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = LruCache::new(1024);
        c.insert(b"k", entry(b"v"));
        assert_eq!(c.get(b"k").unwrap().value.as_ref(), b"v");
        assert!(c.get(b"missing").is_none());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(6); // each entry: 1-byte key + 2-byte value = 3
        c.insert(b"a", entry(b"11"));
        c.insert(b"b", entry(b"22"));
        assert_eq!(c.len(), 2);
        // Touch "a" so "b" is LRU.
        c.get(b"a");
        c.insert(b"c", entry(b"33"));
        assert!(c.peek(b"a").is_some());
        assert!(c.peek(b"b").is_none(), "b should have been evicted");
        assert!(c.peek(b"c").is_some());
        assert!(c.bytes() <= 6);
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = LruCache::new(100);
        c.insert(b"k", entry(b"123456789"));
        assert_eq!(c.bytes(), 10);
        c.insert(b"k", entry(b"1"));
        assert_eq!(c.bytes(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_entry_not_cached_and_invalidates_stale() {
        let mut c = LruCache::new(10);
        c.insert(b"k", entry(b"small"));
        assert!(c.peek(b"k").is_some());
        c.insert(b"k", entry(&[0u8; 100]));
        assert!(c.peek(b"k").is_none(), "stale entry must be dropped");
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn invalidate_works() {
        let mut c = LruCache::new(100);
        c.insert(b"x", entry(b"1"));
        assert!(c.invalidate(b"x"));
        assert!(!c.invalidate(b"x"));
        assert!(c.get(b"x").is_none());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn tombstone_entries_cached() {
        let mut c = LruCache::new(100);
        c.insert(b"dead", CacheEntry::tombstone());
        let e = c.get(b"dead").unwrap();
        assert!(e.tombstone);
        assert!(e.value.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(100);
        for i in 0..10u8 {
            c.insert(&[i], entry(&[i; 3]));
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        // Reusable after clear.
        c.insert(b"z", entry(b"9"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        let mut c = LruCache::new(1000);
        for i in 0..10_000u32 {
            let k = format!("key-{}", i % 300);
            c.insert(k.as_bytes(), entry(&i.to_le_bytes()));
            assert!(c.bytes() <= 1000);
        }
        assert!(!c.is_empty());
        // Recency: the most recently inserted key (i = 9999 -> 9999 % 300)
        // must be present.
        assert!(c.peek(b"key-99").is_some());
    }

    #[test]
    fn slot_recycling_bounds_arena() {
        let mut c = LruCache::new(30);
        for i in 0..1000u32 {
            c.insert(format!("{i:04}").as_bytes(), entry(b"v"));
        }
        // Capacity 30 with 5-byte entries -> at most 6 live + freed slots
        // recycled; the arena must stay small.
        assert!(c.slots.len() <= 16, "arena grew to {}", c.slots.len());
    }
}
