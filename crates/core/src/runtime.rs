//! The PapyrusKV runtime: per-rank execution context, background threads,
//! and the environment API (`papyruskv_init` / `papyruskv_finalize`).
//!
//! Per rank, the runtime owns (paper §2.4):
//!
//! * a **compaction thread** — dequeues immutable local MemTables from the
//!   flushing queue, writes SSTables, performs SSID-triggered merge
//!   compaction, and executes asynchronous checkpoint transfers;
//! * a **message dispatcher thread** — dequeues immutable remote MemTables
//!   from the migration queue, sorts their pairs by owner rank, and ships
//!   per-owner batches over the interconnect;
//! * a **message handler thread** — services MIGRATE / PUT_SYNC / GET_REQ /
//!   BARRIER_MARK requests from other ranks "without remote MPI ranks'
//!   intervention".
//!
//! The runtime duplicates independent communicators at init so its internal
//! traffic never collides with application messages.

use std::sync::Arc;

// Protocol atomics go through the sanity facade (modelcheck-shimmed under
// `--cfg modelcheck`); see papyrus_sanity::atomic.
use papyrus_sanity::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

use papyrus_faultinject as fi;
use papyrus_mpi::{Communicator, Message, RankCtx, RankStatus, RecvSrc, RecvTag};
use papyrus_nvm::{NvmStore, StorageMap, SystemProfile};
use papyrus_simtime::{Clock, SimNs};
use parking_lot::{Condvar, Mutex};

use crate::db::{Db, DbInner};
use crate::error::{Error, Result};
use crate::memtable::MemTable;
use crate::msg::{self, tags};
use crate::options::{OpenFlags, Options};
use crate::queue::BlockingQueue;
use crate::sstable::SstReader;

/// The simulated machine a job runs on: system profile plus the shared
/// storage fabric. Build once per job and share (`Arc`) across all ranks.
pub struct Platform {
    /// The machine description (Table 2 entry).
    pub profile: SystemProfile,
    /// Physical rank → NVM-store mapping plus the shared PFS.
    pub storage: StorageMap,
    /// Number of ranks this platform was built for.
    pub n_ranks: usize,
    /// Job-wide promotion arbiter for the replication subsystem (DESIGN
    /// §11): survivors that discover a rank death race to claim primary
    /// ownership of its ranges here, and the first claim wins. Lives on the
    /// platform so all ranks of a job share one table while concurrent
    /// jobs/tests stay isolated.
    pub repl: papyrus_replica::PromotionTable,
}

impl Platform {
    /// Platform for `n_ranks` ranks with the system's *physical* NVM sharing
    /// (ranks-per-node for local NVM, everyone for dedicated NVM).
    pub fn new(profile: SystemProfile, n_ranks: usize) -> Arc<Self> {
        let storage = StorageMap::with_default_groups(&profile, n_ranks);
        Arc::new(Self { profile, storage, n_ranks, repl: papyrus_replica::PromotionTable::new() })
    }

    /// Platform with an explicit physical sharing factor (tests).
    pub fn with_physical_groups(
        profile: SystemProfile,
        n_ranks: usize,
        group_size: usize,
    ) -> Arc<Self> {
        let storage = StorageMap::new(&profile, n_ranks, group_size);
        Arc::new(Self { profile, storage, n_ranks, repl: papyrus_replica::PromotionTable::new() })
    }

    /// Platform for a *new job* sharing the parallel file system of a
    /// previous one. This is how coupled applications in different jobs —
    /// possibly with different rank counts — hand snapshots to each other
    /// (paper Figure 5(b)-(c)): the NVM scratch is fresh, the PFS persists.
    pub fn new_job(profile: SystemProfile, n_ranks: usize, pfs_of: &Arc<Platform>) -> Arc<Self> {
        let group = profile.default_group_size(n_ranks);
        let storage = StorageMap::with_pfs(&profile, n_ranks, group, pfs_of.storage.pfs().clone());
        Arc::new(Self { profile, storage, n_ranks, repl: papyrus_replica::PromotionTable::new() })
    }
}

/// Which store backs the repository path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepoKind {
    /// Node-local / burst-buffer NVM (the normal case).
    Nvm,
    /// The parallel file system — the artifact's "Lustre" configurations
    /// (`PAPYRUSKV_REPOSITORY=$SCRATCH/...`).
    Pfs,
}

/// Parsed repository reference.
#[derive(Debug, Clone)]
pub(crate) struct RepoRef {
    pub kind: RepoKind,
    pub prefix: String,
}

impl RepoRef {
    /// Parse `"nvm://path"`, `"pfs://path"`, or a bare path (defaults to
    /// NVM, like `PAPYRUSKV_REPOSITORY` pointing at the scratch NVM mount).
    fn parse(repository: &str) -> Result<Self> {
        let (kind, rest) = if let Some(rest) = repository.strip_prefix("nvm://") {
            (RepoKind::Nvm, rest)
        } else if let Some(rest) = repository.strip_prefix("pfs://") {
            (RepoKind::Pfs, rest)
        } else {
            (RepoKind::Nvm, repository)
        };
        let prefix = rest.trim_matches('/').to_string();
        if prefix.is_empty() {
            return Err(Error::InvalidArgument("empty repository path"));
        }
        Ok(Self { kind, prefix })
    }
}

/// An asynchronous-operation handle (`papyruskv_event_t`): returned by
/// checkpoint/restart/destroy; completed by the background thread that
/// finishes the work.
#[derive(Clone)]
pub struct Event {
    inner: Arc<EventInner>,
    clock: Clock,
}

struct EventInner {
    /// Completion stamp plus the typed error, if the operation failed. The
    /// stamp is always present on completion so `wait` keeps its legacy
    /// "returns a stamp" contract even for failed operations.
    done: Mutex<Option<(SimNs, Option<Error>)>>,
    cv: Condvar,
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event").field("done", &self.is_done()).finish()
    }
}

impl Event {
    pub(crate) fn new(clock: Clock) -> Self {
        Self { inner: Arc::new(EventInner { done: Mutex::new(None), cv: Condvar::new() }), clock }
    }

    /// An already-completed event at the given stamp (synchronous fallback).
    pub(crate) fn completed(clock: Clock, stamp: SimNs) -> Self {
        let e = Self::new(clock);
        e.complete(stamp);
        e
    }

    pub(crate) fn complete(&self, stamp: SimNs) {
        let mut g = self.inner.done.lock();
        *g = Some((stamp, None));
        self.inner.cv.notify_all();
    }

    /// Complete the event with a typed failure (e.g. `StorageFull` from a
    /// checkpoint transfer that hit `ENOSPC`). `wait` still returns the
    /// stamp; `wait_result` surfaces the error.
    pub(crate) fn complete_err(&self, stamp: SimNs, err: Error) {
        let mut g = self.inner.done.lock();
        *g = Some((stamp, Some(err)));
        self.inner.cv.notify_all();
    }

    /// Whether the pending operation finished.
    pub fn is_done(&self) -> bool {
        self.inner.done.lock().is_some()
    }

    fn wait_inner(&self) -> (SimNs, Option<Error>) {
        let mut g = self.inner.done.lock();
        let done = loop {
            if let Some(ref done) = *g {
                break done.clone();
            }
            self.inner.cv.wait(&mut g);
        };
        drop(g);
        self.clock.merge(done.0);
        done
    }

    /// `papyruskv_wait`: block until the pending operation completes, merge
    /// its completion stamp into the rank clock, and return the stamp.
    pub fn wait(&self) -> SimNs {
        self.wait_inner().0
    }

    /// Like [`Event::wait`] but surfacing the typed outcome: `Ok(stamp)` on
    /// success, the operation's error (e.g. [`Error::StorageFull`]) on
    /// failure. The stamp is merged into the rank clock either way.
    pub fn wait_result(&self) -> Result<SimNs> {
        let (stamp, err) = self.wait_inner();
        match err {
            None => Ok(stamp),
            Some(e) => Err(e),
        }
    }
}

/// Work items for the compaction thread.
pub(crate) enum CompactJob {
    /// Flush an immutable local MemTable into a new SSTable.
    Flush { db: Arc<DbInner>, mt: Arc<MemTable>, stamp: SimNs },
    /// Copy a snapshot of SSTables to the parallel file system (§4.2).
    Checkpoint {
        db: Arc<DbInner>,
        dest: String,
        snapshot: Vec<SstReader>,
        event: Event,
        stamp: SimNs,
    },
    /// Terminate the thread (finalize).
    Shutdown,
}

/// Work items for the message dispatcher thread.
pub(crate) enum MigrateJob {
    /// Migrate an immutable remote MemTable to its owner ranks.
    Migrate { db: Arc<DbInner>, mt: Arc<MemTable>, stamp: SimNs },
    /// Copy a dead rank's promoted ranges to their new successor ranks so
    /// the ring returns to `R` copies (DESIGN §11). Queued by the rank that
    /// won the promotion claim; counted in `migration_inflight` so `fence`
    /// doubles as the re-replication drain point.
    Rereplicate { db: Arc<DbInner>, origin: usize, stamp: SimNs },
    /// Terminate the thread (finalize).
    Shutdown,
}

pub(crate) struct CtxInner {
    pub rank: RankCtx,
    pub platform: Arc<Platform>,
    pub repo: RepoRef,
    /// Logical storage-group size (`PAPYRUSKV_GROUP_SIZE`).
    pub sg_size: usize,
    /// Requests into message handlers.
    pub comm_req: Communicator,
    /// Replies back to waiting callers.
    pub comm_rep: Communicator,
    /// Runtime collectives (open/close/barrier release).
    pub comm_ctl: Communicator,
    /// Application-level signals (§3.1).
    pub comm_sig: Communicator,
    pub dbs: Mutex<Vec<Arc<DbInner>>>,
    pub compact_q: Arc<BlockingQueue<CompactJob>>,
    pub migrate_q: Arc<BlockingQueue<MigrateJob>>,
    /// RPC sequence numbers for this rank's outgoing requests (app thread
    /// and dispatcher thread share the space; replies echo the seq so stale
    /// replies from timed-out attempts are discarded).
    rpc_seq: AtomicU64,
    threads: Mutex<Vec<JoinHandle<()>>>,
    finalized: AtomicBool,
}

impl CtxInner {
    /// The store backing `rank`'s repository objects.
    pub fn repo_store_for(&self, rank: usize) -> NvmStore {
        match self.repo.kind {
            RepoKind::Nvm => self.platform.storage.nvm_of(rank).clone(),
            RepoKind::Pfs => self.platform.storage.pfs().clone(),
        }
    }

    /// This rank's repository store.
    pub fn repo_store(&self) -> NvmStore {
        self.repo_store_for(self.rank.rank())
    }

    /// Logical storage-group id of a rank.
    pub fn group_of(&self, rank: usize) -> u32 {
        (rank / self.sg_size.max(1)) as u32
    }

    /// Whether `a` can directly read `b`'s SSTables: logically grouped AND
    /// physically sharing a store (always true on the PFS).
    pub fn shares_storage(&self, a: usize, b: usize) -> bool {
        if self.group_of(a) != self.group_of(b) {
            return false;
        }
        match self.repo.kind {
            RepoKind::Pfs => true,
            RepoKind::Nvm => self.platform.storage.same_group(a, b),
        }
    }

    pub fn db_by_id(&self, id: u32) -> Result<Arc<DbInner>> {
        self.dbs.lock().get(id as usize).cloned().ok_or(Error::InvalidDb)
    }

    pub fn clock(&self) -> &Clock {
        self.rank.clock()
    }

    /// Next RPC sequence number (unique per rank; never 0).
    pub(crate) fn next_rpc_seq(&self) -> msg::RpcSeq {
        // ordering: unique-ID allocator; only the atomicity of the RMW
        // matters, the value publishes no other data.
        self.rpc_seq.fetch_add(1, Ordering::Relaxed) + 1
    }
}

// ---------------------------------------------------------------------------
// Failure-aware RPC
// ---------------------------------------------------------------------------

/// Virtual backoff before an RPC retry: first delay ~100 µs, doubling to a
/// 50 ms cap (with deterministic seeded jitter from `papyrus_faultinject`).
const RPC_BACKOFF_BASE_NS: u64 = 100_000;
const RPC_BACKOFF_CAP_NS: u64 = 50_000_000;
/// Real-time receive deadline for the first attempt; doubles per retry. The
/// deadline is wall-clock because it bounds how long the thread parks before
/// suspecting the peer — protocol time stays virtual.
const RPC_TIMEOUT_INIT: Duration = Duration::from_millis(20);
/// Attempts before giving up with `Error::Timeout` on a peer that is slow
/// but not confirmed dead.
const RPC_MAX_ATTEMPTS: u32 = 5;

/// The echoed sequence number leading every reply payload (`encode_ack` and
/// `encode_get_resp` both start with the seq, little-endian).
fn peek_seq(payload: &bytes::Bytes) -> Option<msg::RpcSeq> {
    payload.first_chunk::<8>().map(|b| u64::from_le_bytes(*b))
}

/// Send a request and await its seq-matched reply, with deadline, bounded
/// retry, and failure detection (fault plane on only; callers keep the
/// plain send/recv fast path when the gate is off).
///
/// Per attempt: send with a fresh seq, then wait up to the deadline for a
/// reply echoing that seq (stale replies from earlier attempts are
/// discarded). On timeout, run a failure-detector confirmation round
/// against the owner — a confirmed-dead owner yields
/// [`Error::RankUnavailable`] — otherwise charge a deterministic virtual
/// backoff and retry with a doubled deadline, up to [`RPC_MAX_ATTEMPTS`]
/// ([`Error::Timeout`] after that).
///
/// Retries are safe: PUT_SYNC / MIGRATE re-apply the same records
/// idempotently and GET_REQ is read-only.
pub(crate) fn rpc_with_retry(
    ctx: &CtxInner,
    tel: &crate::tel::CoreTel,
    owner: usize,
    req_tag: u32,
    resp_tag: u32,
    what: &str,
    encode: &mut dyn FnMut(msg::RpcSeq) -> bytes::Bytes,
) -> Result<Message> {
    let me = ctx.rank.rank();
    let mut backoff = fi::Backoff::new(
        fi::mix(me as u64, fi::mix(owner as u64, u64::from(req_tag))),
        RPC_BACKOFF_BASE_NS,
        RPC_BACKOFF_CAP_NS,
    );
    let mut deadline = RPC_TIMEOUT_INIT;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let seq = ctx.next_rpc_seq();
        ctx.comm_req.send(owner, req_tag, encode(seq));
        if fi::planted_bug() == Some(fi::PlantedBug::Hang) {
            // Planted bug (chaos `--seed-bug hang`): a blocking receive
            // where a deadline belongs. With the request black-holed this
            // never returns; the soak watchdog must catch it.
            let m = ctx.comm_rep.recv(RecvSrc::Rank(owner), RecvTag::Tag(resp_tag));
            return Ok(m);
        }
        let reply = loop {
            match ctx.comm_rep.recv_timeout(RecvSrc::Rank(owner), RecvTag::Tag(resp_tag), deadline)
            {
                Some(m) if peek_seq(&m.payload) == Some(seq) => break Some(m),
                Some(_stale) => continue, // reply to a timed-out attempt
                None => break None,
            }
        };
        if let Some(m) = reply {
            return Ok(m);
        }
        if tel.on() {
            tel.rpc_timeouts.inc();
        }
        if fi::planted_bug() == Some(fi::PlantedBug::LostAck) && resp_tag != tags::GET_RESP {
            // Planted bug (chaos `--seed-bug lost-ack`): treat the timeout
            // as success. The write was never applied; the soak oracle must
            // flag the acked-write loss.
            return Ok(Message {
                src: owner,
                tag: resp_tag,
                payload: msg::encode_ack(seq),
                stamp: ctx.clock().now(),
            });
        }
        if ctx.comm_rep.confirm_rank(owner) == RankStatus::Dead {
            return Err(Error::RankUnavailable(owner));
        }
        if attempt >= RPC_MAX_ATTEMPTS {
            return Err(Error::Timeout(format!("{what} to rank {owner} after {attempt} attempts")));
        }
        if tel.on() {
            tel.rpc_retries.inc();
        }
        let delay = backoff.next_delay();
        ctx.clock().advance(delay);
        if tel.on() {
            tel.backoff_ns.record(delay);
        }
        deadline *= 2;
    }
}

/// Per-rank PapyrusKV execution context (`papyruskv_init`).
///
/// `Context` is cheap to clone (shared handle). Every rank of the SPMD job
/// must create one (collective), and every rank must call
/// [`Context::finalize`] before the job ends.
#[derive(Clone)]
pub struct Context {
    pub(crate) inner: Arc<CtxInner>,
}

impl Context {
    /// Initialise the runtime on this rank with the system's default
    /// logical storage-group size. Collective.
    pub fn init(rank: RankCtx, platform: Arc<Platform>, repository: &str) -> Result<Context> {
        let sg = platform.profile.default_group_size(rank.size());
        Self::init_with_group(rank, platform, repository, sg)
    }

    /// Initialise with an explicit logical storage-group size
    /// (`PAPYRUSKV_GROUP_SIZE`; 1 disables the storage-group optimisation).
    /// Collective.
    pub fn init_with_group(
        rank: RankCtx,
        platform: Arc<Platform>,
        repository: &str,
        sg_size: usize,
    ) -> Result<Context> {
        if sg_size == 0 {
            return Err(Error::InvalidArgument("storage group size must be >= 1"));
        }
        if platform.n_ranks != rank.size() {
            return Err(Error::InvalidArgument("platform built for a different rank count"));
        }
        let repo = RepoRef::parse(repository)?;
        // Independent runtime communicators (§2.4) — collective creation.
        let world = rank.world();
        let comm_req = world.dup();
        let comm_rep = world.dup();
        let comm_ctl = world.dup();
        let comm_sig = world.dup();

        let inner = Arc::new(CtxInner {
            rank,
            platform,
            repo,
            sg_size,
            comm_req,
            comm_rep,
            comm_ctl,
            comm_sig,
            dbs: Mutex::new(Vec::new()),
            compact_q: BlockingQueue::new(256),
            migrate_q: BlockingQueue::new(256),
            rpc_seq: AtomicU64::new(0),
            threads: Mutex::new(Vec::new()),
            finalized: AtomicBool::new(false),
        });

        let spawn_err =
            |what: &str, e: std::io::Error| Error::Internal(format!("spawn {what} thread: {e}"));
        let mut threads = Vec::with_capacity(3);
        {
            let ctx = inner.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pkv-compact-{}", inner.rank.rank()))
                    .stack_size(1 << 20)
                    .spawn(move || compaction_thread(ctx))
                    .map_err(|e| spawn_err("compaction", e))?,
            );
        }
        {
            let ctx = inner.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pkv-dispatch-{}", inner.rank.rank()))
                    .stack_size(1 << 20)
                    .spawn(move || dispatcher_thread(ctx))
                    .map_err(|e| spawn_err("dispatcher", e))?,
            );
        }
        {
            let ctx = inner.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pkv-handler-{}", inner.rank.rank()))
                    .stack_size(1 << 20)
                    .spawn(move || handler_thread(ctx))
                    .map_err(|e| spawn_err("handler", e))?,
            );
        }
        *inner.threads.lock() = threads;
        Ok(Context { inner })
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.inner.rank.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.inner.rank.size()
    }

    /// The rank's virtual clock.
    pub fn clock(&self) -> &Clock {
        self.inner.clock()
    }

    /// Current virtual time on this rank.
    pub fn now(&self) -> SimNs {
        self.inner.clock().now()
    }

    /// `papyruskv_open`: open or create database `name`. Collective — every
    /// rank must call with the same name/flags. If SSTables for `name`
    /// already exist in the repository, the database is *composed* from them
    /// with empty MemTables, no communication and no file I/O beyond
    /// manifest reads: the §4.1 zero-copy workflow.
    pub fn open(&self, name: &str, flags: OpenFlags, opt: Options) -> Result<Db> {
        if self.inner.finalized.load(Ordering::Acquire) {
            return Err(Error::InvalidDb);
        }
        if name.is_empty() || name.contains('/') {
            return Err(Error::InvalidArgument("database name must be a non-empty path segment"));
        }
        let id = self.inner.dbs.lock().len() as u32;
        let db = DbInner::open(&self.inner, id, name, flags, opt)?;
        self.inner.dbs.lock().push(db.clone());
        // Collective: all ranks agree the db exists before any messages
        // referencing its id can fly.
        self.inner.comm_ctl.barrier();
        Ok(Db::new(self.inner.clone(), db))
    }

    /// A runtime-level collective barrier over all ranks (independent of any
    /// database). Useful for phase changes in coupled-application workflows.
    pub fn barrier_all(&self) {
        self.inner.comm_ctl.barrier();
    }

    /// `papyruskv_signal_notify`: send signal `signum` to `ranks`.
    pub fn signal_notify(&self, signum: u32, ranks: &[usize]) -> Result<()> {
        for &r in ranks {
            if r >= self.size() {
                return Err(Error::InvalidArgument("signal target out of range"));
            }
            self.inner.comm_sig.send(r, signum, bytes::Bytes::new());
        }
        Ok(())
    }

    /// `papyruskv_signal_wait`: block until `signum` arrives from every rank
    /// in `ranks`.
    pub fn signal_wait(&self, signum: u32, ranks: &[usize]) -> Result<()> {
        for &r in ranks {
            if r >= self.size() {
                return Err(Error::InvalidArgument("signal source out of range"));
            }
            self.inner.comm_sig.recv(RecvSrc::Rank(r), RecvTag::Tag(signum));
        }
        Ok(())
    }

    /// `papyruskv_finalize`: shut down the runtime on this rank. Collective.
    /// Open databases are closed (flushing their contents to SSTables).
    pub fn finalize(&self) -> Result<()> {
        if self.inner.finalized.swap(true, Ordering::AcqRel) {
            return Err(Error::InvalidDb);
        }
        // Close any still-open databases (collective, same order everywhere).
        let dbs: Vec<Arc<DbInner>> = self.inner.dbs.lock().clone();
        for db in dbs {
            let _ = crate::db::close_inner(&self.inner, &db);
        }
        // Everyone must be done sending before handlers go away.
        self.inner.comm_ctl.barrier();
        // Stop own helper threads.
        let me = self.rank();
        self.inner.comm_req.send(me, tags::SHUTDOWN, bytes::Bytes::new());
        self.inner.compact_q.push(CompactJob::Shutdown);
        self.inner.migrate_q.push(MigrateJob::Shutdown);
        let threads = std::mem::take(&mut *self.inner.threads.lock());
        for t in threads {
            t.join().map_err(|_| Error::Internal("runtime thread panicked".into()))?;
        }
        self.inner.comm_ctl.barrier();
        Ok(())
    }
}

/// Compaction thread main loop (§2.4 "flushing", §2.5 "compaction",
/// §4.2 checkpoint transfer).
fn compaction_thread(ctx: Arc<CtxInner>) {
    loop {
        match ctx.compact_q.pop() {
            CompactJob::Flush { db, mt, stamp } => {
                crate::db::run_flush(&ctx, &db, mt, stamp);
            }
            CompactJob::Checkpoint { db, dest, snapshot, event, stamp } => {
                match crate::ckpt::run_checkpoint_transfer(&ctx, &db, &dest, &snapshot, stamp) {
                    Ok(done) => event.complete(done),
                    // Typed failure (ENOSPC on the PFS): recoverable — the
                    // snapshot's SSTables are untouched on NVM, so the
                    // caller can retry once space is reclaimed.
                    Err((done, e)) => event.complete_err(done, e),
                }
            }
            CompactJob::Shutdown => return,
        }
    }
}

/// Message dispatcher main loop (§2.4 "migration").
fn dispatcher_thread(ctx: Arc<CtxInner>) {
    loop {
        match ctx.migrate_q.pop() {
            MigrateJob::Migrate { db, mt, stamp } => {
                crate::db::run_migration(&ctx, &db, mt, stamp);
            }
            MigrateJob::Rereplicate { db, origin, stamp } => {
                crate::db::run_rereplication(&ctx, &db, origin, stamp);
            }
            MigrateJob::Shutdown => return,
        }
    }
}

/// Message handler main loop (§2.4, §2.6, §2.7).
fn handler_thread(ctx: Arc<CtxInner>) {
    loop {
        let m = ctx.comm_req.recv_unstamped(RecvSrc::Any, RecvTag::Any);
        match m.tag {
            tags::SHUTDOWN => return,
            tags::MIGRATE => {
                if let Err(e) = handle_migrate(&ctx, m.src, m.payload, m.stamp) {
                    report_handler_error(&ctx, "migrate", e);
                }
            }
            tags::PUT_SYNC => {
                if let Err(e) = handle_put_sync(&ctx, m.src, m.payload, m.stamp) {
                    report_handler_error(&ctx, "put_sync", e);
                }
            }
            tags::GET_REQ => {
                if let Err(e) = handle_get_req(&ctx, m.src, m.payload, m.stamp) {
                    report_handler_error(&ctx, "get_req", e);
                }
            }
            tags::BARRIER_MARK => {
                if let Err(e) = handle_barrier_mark(&ctx, m.payload, m.stamp) {
                    report_handler_error(&ctx, "barrier_mark", e);
                }
            }
            tags::REPL_PUT => {
                if let Err(e) = handle_repl_put(&ctx, m.src, m.payload, m.stamp) {
                    report_handler_error(&ctx, "repl_put", e);
                }
            }
            tags::REPL_GET => {
                if let Err(e) = handle_repl_get(&ctx, m.src, m.payload, m.stamp) {
                    report_handler_error(&ctx, "repl_get", e);
                }
            }
            other => report_handler_error(
                &ctx,
                "dispatch",
                Error::Internal(format!("unknown request tag {other}")),
            ),
        }
    }
}

fn report_handler_error(ctx: &CtxInner, what: &str, e: Error) {
    // Handler errors indicate wire corruption or internal bugs; surface them
    // loudly (they fail tests) without killing the handler.
    eprintln!("papyruskv[rank {}] handler {what} error: {e}", ctx.rank.rank());
}

fn handle_migrate(ctx: &CtxInner, src: usize, payload: bytes::Bytes, stamp: SimNs) -> Result<()> {
    let (db_id, seq, records) = msg::decode_migrate(payload)?;
    let db = ctx.db_by_id(db_id)?;
    let done = crate::db::apply_incoming_records(ctx, &db, &records, stamp);
    // Migration is fire-and-forget on the happy path; under the fault plane
    // the dispatcher awaits this ack so a black-holed batch is detected and
    // resent (the gate is process-global, so sender and receiver agree).
    if fi::enabled() {
        ctx.comm_rep.send_at(src, tags::MIGRATE_ACK, msg::encode_ack(seq), done);
    }
    Ok(())
}

fn handle_put_sync(ctx: &CtxInner, src: usize, payload: bytes::Bytes, stamp: SimNs) -> Result<()> {
    let (db_id, seq, record) = msg::decode_put_sync(payload)?;
    let db = ctx.db_by_id(db_id)?;
    let done = crate::db::apply_incoming_records(ctx, &db, std::slice::from_ref(&record), stamp);
    // Acknowledge with the service-completion stamp; the caller blocks on it
    // ("the caller MPI rank halts its execution until ... the completion of
    // migration", §3.1).
    ctx.comm_rep.send_at(src, tags::PUT_ACK, msg::encode_ack(seq), done);
    Ok(())
}

fn handle_get_req(ctx: &CtxInner, src: usize, payload: bytes::Bytes, stamp: SimNs) -> Result<()> {
    let (db_id, caller_group, seq, key) = msg::decode_get_req(payload)?;
    let db = ctx.db_by_id(db_id)?;
    let (resp, done) = crate::db::serve_remote_get(ctx, &db, &key, caller_group, src, stamp);
    ctx.comm_rep.send_at(src, tags::GET_RESP, msg::encode_get_resp(seq, &resp), done);
    Ok(())
}

fn handle_barrier_mark(ctx: &CtxInner, payload: bytes::Bytes, stamp: SimNs) -> Result<()> {
    let (db_id, epoch) = msg::decode_barrier_mark(payload)?;
    let db = ctx.db_by_id(db_id)?;
    crate::db::note_barrier_mark(&db, epoch, stamp);
    Ok(())
}

fn handle_repl_put(ctx: &CtxInner, src: usize, payload: bytes::Bytes, stamp: SimNs) -> Result<()> {
    let (db_id, origin, want_ack, seq, records) = msg::decode_repl_put(payload)?;
    let db = ctx.db_by_id(db_id)?;
    let done = crate::db::apply_replica_records(ctx, &db, origin as usize, &records, stamp);
    // The handler never blocks on other ranks here (replica ingest is
    // purely local), so synchronous writers awaiting this ack cannot form
    // a cross-rank handler cycle.
    if want_ack {
        ctx.comm_rep.send_at(src, tags::REPL_ACK, msg::encode_ack(seq), done);
    }
    Ok(())
}

fn handle_repl_get(ctx: &CtxInner, src: usize, payload: bytes::Bytes, stamp: SimNs) -> Result<()> {
    let (db_id, origin, seq, key) = msg::decode_repl_get(payload)?;
    let db = ctx.db_by_id(db_id)?;
    // A failover get is proof a reader saw `origin` confirmed dead: if this
    // rank is origin's first live successor, claim the promotion now.
    crate::db::maybe_promote(ctx, &db, origin as usize);
    let (resp, done) = crate::db::serve_replica_get(ctx, &db, origin as usize, &key, stamp);
    ctx.comm_rep.send_at(src, tags::REPL_RESP, msg::encode_get_resp(seq, &resp), done);
    Ok(())
}
