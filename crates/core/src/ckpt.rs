//! Persistence support: manifests, asynchronous checkpoint/restart, and
//! restart with redistribution (paper §4).
//!
//! NVM scratch is trimmed at job end, so databases that must outlive a job
//! are checkpointed to the parallel file system and restored — either
//! verbatim (same rank count: the SSTables "can be reused as they are") or
//! by re-putting every pair under the new hash distribution (different rank
//! count).
//!
//! Snapshot layout on the PFS:
//!
//! ```text
//! <dest>/<db>/META            nranks
//! <dest>/<db>/r<k>/MANIFEST   next_ssid + live SSID list of rank k
//! <dest>/<db>/r<k>/sst<id>.*  the SSTable triples
//! ```
//!
//! Replica tables (DESIGN.md §11, `rep<origin>-sst*` files) are
//! deliberately excluded: a checkpoint already contains every primary's
//! ranges exactly once, so snapshotting the copies would multiply PFS
//! traffic by the replication factor to preserve data the restart path
//! re-derives anyway — a restarted job rebuilds its replica stacks from
//! fresh puts, the same way an `R`-upgrade of an existing database would.

use std::sync::Arc;

use bytes::Bytes;
use papyrus_nvm::NvmStore;
use papyrus_simtime::SimNs;

use crate::db::{barrier_inner, Db, DbInner};
use crate::error::{Error, Result};
use crate::options::{BarrierLevel, OpenFlags, Options};
use crate::runtime::{CompactJob, Context, CtxInner, Event};
use crate::sstable::{Ssid, SstReader};

/// Write a rank manifest at `now`; returns the completion stamp.
///
/// Format: line 1 `next:<ssid>`, line 2 space-separated live SSIDs, line 3
/// the `ok` end sentinel (a torn write is missing it and parses as
/// [`ManifestRead::Corrupt`] instead of a silently truncated live list).
///
/// The update is crash-atomic: fence the data writes the manifest commits,
/// write `MANIFEST.tmp`, rename it over the live manifest, fence again. A
/// crash at any point observes either the old manifest or the new one.
pub(crate) fn write_manifest_at(
    store: &NvmStore,
    prefix: &str,
    db: &str,
    rank: usize,
    next_ssid: Ssid,
    live: &[Ssid],
    now: SimNs,
) -> SimNs {
    let mut text = format!("next:{next_ssid}\n");
    for (i, s) in live.iter().enumerate() {
        if i > 0 {
            text.push(' ');
        }
        text.push_str(&s.to_string());
    }
    text.push_str("\nok\n");
    let path = manifest_path(prefix, db, rank);
    let tmp = format!("{path}.tmp");
    // Nothing the manifest references may be reordered past its commit.
    store.fence();
    let t = store.put_at(&tmp, Bytes::from(text), now);
    let (_, t) = store.rename_at(&tmp, &path, t);
    store.fence();
    t
}

/// Outcome of reading a rank manifest: absent (fresh database) is a
/// different situation from present-but-unparseable (torn or corrupt
/// write), which recovery must report rather than mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ManifestRead {
    /// No manifest object exists.
    Absent,
    /// A manifest object exists but cannot be parsed; the payload says why.
    Corrupt(String),
    /// Parsed: (`next_ssid`, live SSID list).
    Present(Ssid, Vec<Ssid>),
}

/// Read a rank manifest, distinguishing absence from corruption.
pub(crate) fn read_manifest(store: &NvmStore, prefix: &str, db: &str, rank: usize) -> ManifestRead {
    let path = manifest_path(prefix, db, rank);
    let Some(data) = store.backend().get_all(&path) else {
        return ManifestRead::Absent;
    };
    let corrupt = |why: &str| ManifestRead::Corrupt(format!("{path}: {why}"));
    let Ok(text) = std::str::from_utf8(&data) else {
        return corrupt("not utf-8");
    };
    let mut lines = text.lines();
    let next = match lines.next().and_then(|l| l.strip_prefix("next:")) {
        Some(v) => match v.trim().parse() {
            Ok(n) => n,
            Err(_) => return corrupt("unparseable next_ssid"),
        },
        None => return corrupt("missing next: line"),
    };
    let live = match lines.next() {
        Some(line) => {
            match line
                .split_whitespace()
                .map(str::parse)
                .collect::<std::result::Result<Vec<Ssid>, _>>()
            {
                Ok(v) => v,
                Err(_) => return corrupt("unparseable SSID list"),
            }
        }
        None => return corrupt("truncated before SSID list"),
    };
    if lines.next() != Some("ok") {
        return corrupt("missing end sentinel (torn write)");
    }
    ManifestRead::Present(next, live)
}

/// Report a crash-state anomaly found on a recovery path, when either
/// sanity gate is on. Recovery still proceeds (ignore-and-report); the
/// crashcheck driver fails the sweep on these.
pub(crate) fn report_recovery_anomaly(kind: papyrus_sanity::ViolationKind, detail: String) {
    if papyrus_sanity::enabled() || papyrus_sanity::crashcheck_enabled() {
        papyrus_sanity::record_violation(kind, detail);
    }
}

fn manifest_path(prefix: &str, db: &str, rank: usize) -> String {
    format!("{prefix}/{db}/r{rank}/MANIFEST")
}

fn meta_path(prefix: &str, db: &str) -> String {
    format!("{prefix}/{db}/META")
}

/// Start an asynchronous checkpoint (§4.2): barrier at SSTable level so the
/// snapshot is entirely on NVM, then hand the SSTable set to the compaction
/// thread for background transfer to the PFS.
pub(crate) fn checkpoint(ctx: &Arc<CtxInner>, db: &Arc<DbInner>, dest: &str) -> Result<Event> {
    let dest = dest.trim_matches('/').to_string();
    if dest.is_empty() {
        return Err(Error::InvalidArgument("empty checkpoint path"));
    }
    // "the runtime internally calls papyruskv_barrier() with the
    // PAPYRUSKV_SSTABLE parameter" — after this, all MemTables are flushed.
    barrier_inner(ctx, db, BarrierLevel::SsTable)?;
    let snapshot: Vec<SstReader> = db.ssts.read().clone();
    let event = Event::new(ctx.clock().clone());
    ctx.compact_q.push(CompactJob::Checkpoint {
        db: db.clone(),
        dest,
        snapshot,
        event: event.clone(),
        stamp: ctx.clock().now(),
    });
    // "After that, the MPI ranks continue their executions" — the caller
    // holds an event and may keep updating the database (updates create new
    // SSTables and cannot touch the snapshot).
    Ok(event)
}

/// Compaction-thread body of the checkpoint: copy each snapshot SSTable
/// NVM → PFS, then write this rank's snapshot manifest (and META on rank 0).
/// Returns the virtual completion stamp, or `(stamp, error)` on a typed
/// failure — `ENOSPC` on the destination aborts the transfer recoverably
/// (the snapshot's SSTables stay intact on NVM; a partial copy on the PFS
/// is debris without a committed manifest/META and can be retried over).
pub(crate) fn run_checkpoint_transfer(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    dest: &str,
    snapshot: &[SstReader],
    stamp: SimNs,
) -> std::result::Result<SimNs, (SimNs, Error)> {
    let fault_on = papyrus_faultinject::enabled();
    let src_store = ctx.repo_store();
    let pfs = ctx.platform.storage.pfs();
    let me = ctx.rank.rank();
    let mut t = stamp;
    let mut ssids = Vec::with_capacity(snapshot.len());
    for reader in snapshot {
        ssids.push(reader.ssid());
        for ext in ["data", "index", "bloom"] {
            let src = format!("{}.{ext}", reader.base());
            let dst = format!("{}/{}/r{me}/sst{:010}.{ext}", dest, db.name, reader.ssid());
            // Source reads go through the infallible path (transient faults
            // are ridden out inside the store); only destination ENOSPC is
            // surfaced as a typed, recoverable checkpoint failure.
            if let Some((bytes, read_done)) = src_store.read_all_at(&src, t) {
                if !fault_on {
                    t = pfs.put_at(&dst, bytes, read_done);
                    continue;
                }
                t = match pfs.try_put_at(&dst, bytes.clone(), read_done) {
                    Ok(done) => done,
                    Err(papyrus_nvm::IoFault::NoSpace) => {
                        return Err((
                            read_done,
                            Error::StorageFull(format!("checkpoint of db {} to {dest}", db.name)),
                        ));
                    }
                    Err(papyrus_nvm::IoFault::TransientEio) => pfs.put_at(&dst, bytes, read_done),
                };
            }
        }
    }
    ssids.sort_unstable();
    t = write_manifest_at(
        pfs,
        dest,
        &db.name,
        me,
        // ordering: SeqCst matches the allocator's fetch_add so the
        // manifest's next-SSID is never behind a table it references.
        db.next_ssid.load(std::sync::atomic::Ordering::SeqCst),
        &ssids,
        t,
    );
    if me == 0 {
        t = pfs.put_at(
            &meta_path(dest, &db.name),
            Bytes::from(format!("{}\n", ctx.rank.size())),
            t,
        );
        pfs.fence();
    }
    Ok(t)
}

/// `papyruskv_restart` (§4.2). See [`Context::restart`].
pub(crate) fn restart(
    ctx: &Context,
    path: &str,
    name: &str,
    flags: OpenFlags,
    opt: Options,
    force_redistribute: bool,
) -> Result<(Db, Event)> {
    let path = path.trim_matches('/').to_string();
    let inner = &ctx.inner;
    let pfs = inner.platform.storage.pfs();
    let me = inner.rank.rank();
    let n = inner.rank.size();

    let meta = pfs
        .backend()
        .get_all(&meta_path(&path, name))
        .ok_or_else(|| Error::InvalidSnapshot(format!("missing META under {path}/{name}")))?;
    let old_n: usize = std::str::from_utf8(&meta)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| Error::InvalidSnapshot("unparseable META".into()))?;

    if old_n == n && !force_redistribute {
        // Same rank count: "the SSTables in the snapshot can be reused as
        // they are, without any additional file manipulation" — copy them
        // back PFS → NVM and compose.
        //
        // Anomalies in the snapshot (missing/corrupt manifest, incomplete
        // SSTable triples) are reported and tolerated as an empty/partial
        // rank rather than returned as errors: restart is collective, and a
        // rank erroring out while its peers proceed to the collective open
        // would hang the job — strictly worse than recovering what exists.
        let dst_store = inner.repo_store();
        let mut t = inner.clock().now();
        let (next, ssids) = match read_manifest(pfs, &path, name, me) {
            ManifestRead::Present(next, ssids) => (next, ssids),
            ManifestRead::Absent => {
                report_recovery_anomaly(
                    papyrus_sanity::ViolationKind::ManifestCorrupt,
                    format!(
                        "restart {path}/{name}: snapshot manifest for rank {me} missing \
                         — restoring an empty rank"
                    ),
                );
                (1, Vec::new())
            }
            ManifestRead::Corrupt(why) => {
                report_recovery_anomaly(
                    papyrus_sanity::ViolationKind::ManifestCorrupt,
                    format!("restart {path}/{name}: {why} — restoring an empty rank"),
                );
                (1, Vec::new())
            }
        };
        let mut restored = Vec::with_capacity(ssids.len());
        for &ssid in &ssids {
            // Probe the whole triple before copying anything: a torn
            // snapshot must not be restored as a partial triple.
            let complete = ["data", "index", "bloom"]
                .iter()
                .all(|ext| pfs.exists(&format!("{path}/{name}/r{me}/sst{ssid:010}.{ext}")));
            if !complete {
                report_recovery_anomaly(
                    papyrus_sanity::ViolationKind::SstUnreadable,
                    format!(
                        "restart {path}/{name}: snapshot sst {ssid} of rank {me} incomplete \
                         — skipping it"
                    ),
                );
                continue;
            }
            for ext in ["data", "index", "bloom"] {
                let src = format!("{path}/{name}/r{me}/sst{ssid:010}.{ext}");
                let dst = format!("{}/{name}/r{me}/sst{ssid:010}.{ext}", inner.repo.prefix);
                if let Some((bytes, read_done)) = pfs.read_all_at(&src, t) {
                    t = dst_store.put_at(&dst, bytes, read_done);
                }
            }
            restored.push(ssid);
        }
        t = write_manifest_at(&dst_store, &inner.repo.prefix, name, me, next, &restored, t);
        // "When the file transfers complete, the runtime internally calls
        // papyruskv_open() to compose the database."
        let db = ctx.open(name, flags, opt)?;
        Ok((db, Event::completed(inner.clock().clone(), t)))
    } else {
        // Restart with redistribution (Figure 5(c)): each rank takes a
        // partition of the old ranks' SSTables and re-puts every pair; "the
        // workload of put operations is partitioned across all the MPI
        // ranks and executed in parallel". Snapshot anomalies are reported
        // and skipped for the same collective-divergence reason as above.
        let db = ctx.open(name, OpenFlags::create(), opt)?;
        let mut t = inner.clock().now();
        for old_rank in (me..old_n).step_by(n) {
            let ssids = match read_manifest(pfs, &path, name, old_rank) {
                ManifestRead::Present(_, ssids) => ssids,
                ManifestRead::Absent => {
                    report_recovery_anomaly(
                        papyrus_sanity::ViolationKind::ManifestCorrupt,
                        format!(
                            "restart {path}/{name}: snapshot manifest for old rank \
                             {old_rank} missing — skipping that rank"
                        ),
                    );
                    continue;
                }
                ManifestRead::Corrupt(why) => {
                    report_recovery_anomaly(
                        papyrus_sanity::ViolationKind::ManifestCorrupt,
                        format!("restart {path}/{name}: {why} — skipping old rank {old_rank}"),
                    );
                    continue;
                }
            };
            for ssid in ssids {
                let base = format!("{path}/{name}/r{old_rank}/sst{ssid:010}");
                let Some((reader, opened)) = SstReader::open_at(pfs, &base, ssid, t) else {
                    report_recovery_anomaly(
                        papyrus_sanity::ViolationKind::SstUnreadable,
                        format!(
                            "restart {path}/{name}: snapshot sst {ssid} of old rank \
                             {old_rank} unreadable — skipping it"
                        ),
                    );
                    continue;
                };
                t = opened;
                let entries = match reader.scan_all_at(t) {
                    Ok((entries, scanned)) => {
                        t = scanned;
                        entries
                    }
                    Err(_) => {
                        report_recovery_anomaly(
                            papyrus_sanity::ViolationKind::SstUnreadable,
                            format!(
                                "restart {path}/{name}: snapshot sst {ssid} of old rank \
                                 {old_rank} does not parse — skipping it"
                            ),
                        );
                        continue;
                    }
                };
                inner.clock().merge(t);
                for (key, entry) in entries {
                    if entry.tombstone {
                        db.delete(&key)?;
                    } else {
                        db.put(&key, &entry.value)?;
                    }
                }
                t = inner.clock().now();
            }
        }
        inner.clock().merge(t);
        db.barrier(BarrierLevel::SsTable)?;
        Ok((db.clone(), Event::completed(inner.clock().clone(), inner.clock().now())))
    }
}
