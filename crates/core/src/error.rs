//! Error codes mirroring the PapyrusKV C API's 32-bit return codes.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// PapyrusKV error conditions.
///
/// The C API returns `PAPYRUSKV_SUCCESS`, `PAPYRUSKV_INVALID_DB`,
/// `PAPYRUSKV_NOT_FOUND`, etc.; [`Error::code`] recovers those numeric codes
/// for API-compatibility tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Operation on a closed or unknown database handle.
    InvalidDb,
    /// `get`/`delete` on a key that does not exist (or is tombstoned).
    NotFound,
    /// Write attempted while the database is protected `PAPYRUSKV_RDONLY`,
    /// or read attempted under `PAPYRUSKV_WRONLY` where disallowed.
    Protected,
    /// Malformed argument (empty key, zero ranks, bad flag combination).
    InvalidArgument(&'static str),
    /// Checkpoint/restart could not find or parse a snapshot.
    InvalidSnapshot(String),
    /// Internal runtime failure (wire-format corruption, missing object).
    Internal(String),
    /// The rank owning the touched key range is dead (failure detector
    /// confirmed it). Local and surviving-rank keys stay serviceable;
    /// retrying against the same rank will keep failing until restart.
    RankUnavailable(usize),
    /// NVM device out of space (`ENOSPC`). Recoverable: the operation that
    /// surfaced it (checkpoint, flush, compaction) can be retried after
    /// space is reclaimed; no committed state was lost.
    StorageFull(String),
    /// A remote operation exhausted its retry/backoff budget without the
    /// peer being confirmed dead.
    Timeout(String),
}

impl Error {
    /// The C API's numeric code for this error. `PAPYRUSKV_SUCCESS` (0) is
    /// represented by `Ok(..)` and has no `Error` value.
    pub fn code(&self) -> i32 {
        match self {
            Error::InvalidDb => -1,
            Error::NotFound => -2,
            Error::Protected => -3,
            Error::InvalidArgument(_) => -4,
            Error::InvalidSnapshot(_) => -5,
            Error::Internal(_) => -6,
            Error::RankUnavailable(_) => -7,
            Error::StorageFull(_) => -8,
            Error::Timeout(_) => -9,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidDb => write!(f, "PAPYRUSKV_INVALID_DB"),
            Error::NotFound => write!(f, "PAPYRUSKV_NOT_FOUND"),
            Error::Protected => write!(f, "PAPYRUSKV_PROTECTED"),
            Error::InvalidArgument(what) => write!(f, "PAPYRUSKV_INVALID_ARGUMENT: {what}"),
            Error::InvalidSnapshot(what) => write!(f, "PAPYRUSKV_INVALID_SNAPSHOT: {what}"),
            Error::Internal(what) => write!(f, "PAPYRUSKV_INTERNAL: {what}"),
            Error::RankUnavailable(rank) => {
                write!(f, "PAPYRUSKV_RANK_UNAVAILABLE: rank {rank}")
            }
            Error::StorageFull(what) => write!(f, "PAPYRUSKV_STORAGE_FULL: {what}"),
            Error::Timeout(what) => write!(f, "PAPYRUSKV_TIMEOUT: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_negative() {
        let errs = [
            Error::InvalidDb,
            Error::NotFound,
            Error::Protected,
            Error::InvalidArgument("x"),
            Error::InvalidSnapshot("y".into()),
            Error::Internal("z".into()),
            Error::RankUnavailable(3),
            Error::StorageFull("w".into()),
            Error::Timeout("t".into()),
        ];
        let mut codes: Vec<i32> = errs.iter().map(Error::code).collect();
        assert!(codes.iter().all(|&c| c < 0));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
    }

    #[test]
    fn display_names_match_c_api() {
        assert_eq!(Error::NotFound.to_string(), "PAPYRUSKV_NOT_FOUND");
        assert_eq!(Error::InvalidDb.to_string(), "PAPYRUSKV_INVALID_DB");
        assert_eq!(Error::RankUnavailable(2).to_string(), "PAPYRUSKV_RANK_UNAVAILABLE: rank 2");
        assert_eq!(Error::StorageFull("ckpt".into()).to_string(), "PAPYRUSKV_STORAGE_FULL: ckpt");
    }
}
