//! Database options, flags, and modes (`papyruskv_option_t` and friends).

use crate::hashfn::HashFn;

/// Memory consistency mode (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// `PAPYRUSKV_SEQUENTIAL`: every remote put/delete migrates to the owner
    /// immediately and synchronously; every such operation is a
    /// synchronisation point.
    Sequential,
    /// `PAPYRUSKV_RELAXED`: remote puts stage in the remote MemTable and
    /// migrate asynchronously; data visible to different ranks may differ
    /// except at fence/barrier synchronisation points.
    Relaxed,
}

/// Protection attribute (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// `PAPYRUSKV_RDWR`: reads and writes allowed; local cache enabled,
    /// remote cache disabled.
    ReadWrite,
    /// `PAPYRUSKV_WRONLY`: write-only phase; the local cache is invalidated
    /// and disabled so puts skip cache maintenance.
    WriteOnly,
    /// `PAPYRUSKV_RDONLY`: read-only phase; the remote cache is enabled and
    /// entries stay valid until the database becomes writable again.
    ReadOnly,
}

/// Flushing level for `papyruskv_barrier` (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierLevel {
    /// `PAPYRUSKV_MEMTABLE`: all remote data migrated; local MemTables may
    /// stay in memory.
    MemTable,
    /// `PAPYRUSKV_SSTABLE`: additionally flush every local MemTable (and the
    /// immutable queue) to SSTables on NVM.
    SsTable,
}

/// Open flags for `papyruskv_open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Create the database if it does not exist.
    pub create: bool,
    /// Fail if SSTables for this database already exist in the repository
    /// (otherwise an existing database is *composed* from the retained
    /// SSTables — the §4.1 zero-copy workflow).
    pub exclusive: bool,
}

impl OpenFlags {
    /// Create-if-missing (the common case).
    pub fn create() -> Self {
        Self { create: true, exclusive: false }
    }

    /// Create-and-must-be-new.
    pub fn create_new() -> Self {
        Self { create: true, exclusive: true }
    }
}

/// Database configuration (`papyruskv_option_t` plus the artifact's
/// environment knobs `PAPYRUSKV_*`).
#[derive(Clone)]
pub struct Options {
    /// MemTable capacity in bytes before it freezes and flushes
    /// (`PAPYRUSKV_MEMTABLE`-threshold; the paper's evaluation used 1 GB).
    pub memtable_capacity: u64,
    /// Remote MemTable capacity in bytes before it migrates.
    pub remote_memtable_capacity: u64,
    /// Flushing/migration queue depth (fixed-size lock-free FIFO, §2.4).
    pub flush_queue_len: usize,
    /// Enable the local cache (key-value pairs fetched from SSTables).
    pub local_cache: bool,
    /// Local cache capacity in bytes.
    pub local_cache_capacity: u64,
    /// Enable the remote cache even outside `Protection::ReadOnly`
    /// (`PAPYRUSKV_CACHE_REMOTE=1` in the artifact).
    pub remote_cache: bool,
    /// Remote cache capacity in bytes.
    pub remote_cache_capacity: u64,
    /// Initial consistency mode (`PAPYRUSKV_CONSISTENCY`).
    pub consistency: Consistency,
    /// Initial protection attribute.
    pub protection: Protection,
    /// Use SSTable binary search (`PAPYRUSKV_BIN_SEARCH`; Figure 8's "B").
    pub bin_search: bool,
    /// Consult per-SSTable bloom filters before probing SSData (§2.4).
    /// Disabling is an ablation knob: every get then probes every table.
    pub bloom_filter: bool,
    /// Merge-compact whenever a new SSID is a multiple of this (§2.5);
    /// 0 disables compaction.
    pub compaction_trigger: u64,
    /// Application-supplied hash for key → owner-rank distribution (§2.4
    /// load balancing; §5.2 Meraculous affinity). `None` = built-in hash.
    pub custom_hash: Option<HashFn>,
    /// Total copies of each key on the ring: the owner plus `replicas - 1`
    /// successor ranks (DESIGN §11). `1` (the default) is the paper's
    /// behaviour — no replica traffic, bit-identical to builds before the
    /// replication subsystem existed. Clamped to the job size at open.
    pub replicas: usize,
}

impl std::fmt::Debug for Options {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Options")
            .field("memtable_capacity", &self.memtable_capacity)
            .field("flush_queue_len", &self.flush_queue_len)
            .field("local_cache", &self.local_cache)
            .field("remote_cache", &self.remote_cache)
            .field("consistency", &self.consistency)
            .field("protection", &self.protection)
            .field("bin_search", &self.bin_search)
            .field("compaction_trigger", &self.compaction_trigger)
            .field("custom_hash", &self.custom_hash.is_some())
            .field("replicas", &self.replicas)
            .finish()
    }
}

impl Default for Options {
    fn default() -> Self {
        Self {
            memtable_capacity: 64 << 20,
            remote_memtable_capacity: 64 << 20,
            flush_queue_len: 4,
            local_cache: true,
            local_cache_capacity: 16 << 20,
            remote_cache: false,
            remote_cache_capacity: 16 << 20,
            consistency: Consistency::Relaxed,
            protection: Protection::ReadWrite,
            bin_search: true,
            bloom_filter: true,
            compaction_trigger: 4,
            custom_hash: None,
            replicas: 1,
        }
    }
}

impl Options {
    /// Options sized for unit tests: small MemTables so flush/migration
    /// paths trigger quickly.
    pub fn small() -> Self {
        Self {
            memtable_capacity: 4 << 10,
            remote_memtable_capacity: 4 << 10,
            local_cache_capacity: 4 << 10,
            remote_cache_capacity: 4 << 10,
            ..Self::default()
        }
    }

    /// Builder-style: set consistency.
    pub fn with_consistency(mut self, c: Consistency) -> Self {
        self.consistency = c;
        self
    }

    /// Builder-style: set MemTable capacities.
    pub fn with_memtable_capacity(mut self, bytes: u64) -> Self {
        self.memtable_capacity = bytes;
        self.remote_memtable_capacity = bytes;
        self
    }

    /// Builder-style: set the custom hash.
    pub fn with_custom_hash(mut self, hash: HashFn) -> Self {
        self.custom_hash = Some(hash);
        self
    }

    /// Builder-style: toggle SSTable binary search.
    pub fn with_bin_search(mut self, on: bool) -> Self {
        self.bin_search = on;
        self
    }

    /// Builder-style: toggle the per-SSTable bloom filters (ablation).
    pub fn with_bloom_filter(mut self, on: bool) -> Self {
        self.bloom_filter = on;
        self
    }

    /// Builder-style: enable the remote cache unconditionally.
    pub fn with_remote_cache(mut self, on: bool) -> Self {
        self.remote_cache = on;
        self
    }

    /// Builder-style: set the replication factor (total copies per key).
    pub fn with_replicas(mut self, r: usize) -> Self {
        self.replicas = r;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn defaults_match_paper_defaults() {
        let o = Options::default();
        assert_eq!(o.consistency, Consistency::Relaxed);
        assert_eq!(o.protection, Protection::ReadWrite);
        assert!(o.bin_search);
        assert!(o.bloom_filter);
        assert!(o.local_cache);
        assert!(!o.remote_cache);
        assert!(o.custom_hash.is_none());
        assert_eq!(o.flush_queue_len, 4);
        assert_eq!(o.replicas, 1);
    }

    #[test]
    fn builders_compose() {
        let o = Options::default()
            .with_consistency(Consistency::Sequential)
            .with_memtable_capacity(1 << 30)
            .with_bin_search(false)
            .with_remote_cache(true)
            .with_replicas(2)
            .with_custom_hash(Arc::new(|_k: &[u8]| 0));
        assert_eq!(o.consistency, Consistency::Sequential);
        assert_eq!(o.memtable_capacity, 1 << 30);
        assert_eq!(o.remote_memtable_capacity, 1 << 30);
        assert!(!o.bin_search);
        assert!(o.remote_cache);
        assert!(o.custom_hash.is_some());
        assert_eq!(o.replicas, 2);
    }

    #[test]
    fn open_flags_constructors() {
        assert!(OpenFlags::create().create);
        assert!(!OpenFlags::create().exclusive);
        assert!(OpenFlags::create_new().exclusive);
        assert_eq!(OpenFlags::default(), OpenFlags { create: false, exclusive: false });
    }

    #[test]
    fn debug_impl_does_not_leak_hash_fn() {
        let o = Options::default().with_custom_hash(Arc::new(|_k: &[u8]| 1));
        let s = format!("{o:?}");
        assert!(s.contains("custom_hash: true"));
    }
}
