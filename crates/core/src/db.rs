//! The database object: put/get/delete, consistency control, storage
//! groups, fence/barrier, protection attributes (paper §2-§3).
//!
//! Set `PKV_TRACE=1` in the environment to stream a per-event protocol
//! trace (puts, migrations, handler ingests, fences, barrier marks, remote
//! get decisions) to stderr — invaluable when debugging consistency
//! interleavings across ranks.

use std::collections::HashMap;
use std::sync::Arc;

// Protocol atomics go through the sanity facade, which swaps in the model
// checker's shimmed types under `--cfg modelcheck` so `cargo xtask
// modelcheck` can explore SSID/barrier-epoch interleavings.
use papyrus_sanity::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use papyrus_faultinject as fi;
use papyrus_simtime::{Clock, OpStats, SimNs};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::ckpt;
use crate::error::{Error, Result};
use crate::hashfn::Distributor;
use crate::lru::{CacheEntry, LruCache};
use crate::memtable::{Entry, MemTable};
use crate::msg::{self, tags, GetResp, KvRecord};
use crate::options::{BarrierLevel, Consistency, OpenFlags, Options, Protection};
use crate::runtime::{CompactJob, Context, CtxInner, Event, MigrateJob};
use crate::sstable::{self, Ssid, SstGet, SstReader};
use crate::tel::CoreTel;
use papyrus_telemetry::{TID_APP, TID_COMPACT, TID_DISPATCH, TID_HANDLER};

macro_rules! pkv_trace {
    ($($arg:tt)*) => {
        if std::env::var_os("PKV_TRACE").is_some() {
            eprintln!($($arg)*);
        }
    };
}

/// Mutable database attributes (changed by the collective
/// `papyruskv_consistency` / `papyruskv_protect`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DbState {
    pub consistency: Consistency,
    pub protection: Protection,
}

/// Condvar-guarded synchronisation state.
pub(crate) struct DbSync {
    /// Immutable local MemTables queued or being flushed.
    pub pending_flushes: usize,
    /// Immutable remote MemTables queued or being migrated.
    pub migration_inflight: usize,
    /// Barrier-mark bookkeeping: epoch -> (marks received, max stamp).
    pub barrier_marks: HashMap<u64, (usize, SimNs)>,
    /// Set by close; all subsequent operations fail with `InvalidDb`.
    pub closed: bool,
}

/// Replica data held on behalf of one origin rank (DESIGN §11): a
/// MemTable fed by `REPL_PUT` batches plus the replica SSTables it flushes
/// into. Kept per origin and entirely separate from the primary stack so
/// compaction, the manifest, `audit_db`, and checkpoint never mix primary
/// and replica data. Replica tables are deliberately *not* manifested:
/// they are re-derivable from the ring (a successor that lost them
/// re-receives via re-replication), so crash debris is harmless and
/// reopen composes primaries only.
pub(crate) struct ReplicaStack {
    pub(crate) mem: MemTable,
    /// Replica SSTables, ascending SSID.
    pub(crate) ssts: Vec<SstReader>,
    pub(crate) next_ssid: Ssid,
}

impl ReplicaStack {
    pub(crate) fn new() -> Self {
        Self { mem: MemTable::new(), ssts: Vec::new(), next_ssid: 1 }
    }
}

/// Internal database representation shared by the application thread and
/// the runtime's helper threads.
pub struct DbInner {
    pub(crate) id: u32,
    pub(crate) name: String,
    pub(crate) opt: Options,
    /// Effective replication factor: `opt.replicas` clamped to the job
    /// size. `1` means replication is off and every replica code path is
    /// skipped (bit-compatible with pre-replication builds).
    pub(crate) repl_n: usize,
    pub(crate) state: RwLock<DbState>,
    pub(crate) dist: Distributor,

    pub(crate) local: RwLock<MemTable>,
    pub(crate) imm_local: RwLock<Vec<Arc<MemTable>>>,
    pub(crate) remote: Mutex<MemTable>,
    pub(crate) imm_remote: RwLock<Vec<Arc<MemTable>>>,

    pub(crate) local_cache: Mutex<LruCache>,
    pub(crate) remote_cache: Mutex<LruCache>,

    /// Live SSTables, ascending SSID.
    pub(crate) ssts: RwLock<Vec<SstReader>>,
    pub(crate) next_ssid: AtomicU64,

    /// Per-origin replica stacks (R >= 2 only; empty otherwise). Fed by
    /// the handler thread, read by failover gets and re-replication.
    pub(crate) repl: Mutex<HashMap<u32, ReplicaStack>>,

    pub(crate) sync: Mutex<DbSync>,
    pub(crate) sync_cv: Condvar,

    /// Completion stamps of background work, reconciled at fences/barriers.
    pub(crate) flush_backlog: Clock,
    pub(crate) migrate_backlog: Clock,
    pub(crate) ingest_backlog: Clock,

    pub(crate) barrier_epoch: AtomicU64,

    /// Cached readers for *other* ranks' SSTables in the shared storage
    /// (storage-group fast path, §2.7). Keyed by (owner rank, SSID).
    pub(crate) peer_readers: Mutex<HashMap<(usize, Ssid), SstReader>>,

    /// Operation statistics.
    pub(crate) put_stats: OpStats,
    pub(crate) get_stats: OpStats,

    /// Typed errors raised by background threads (migration to a dead
    /// owner, `ENOSPC` during flush/compaction) that have no caller to
    /// return to. Drained by [`Db::take_io_errors`]; under the fault plane
    /// the chaos oracle uses this to check every failure is typed.
    pub(crate) io_errors: Mutex<Vec<Error>>,

    /// Telemetry handles (interned per rank; near-zero cost when disabled).
    pub(crate) tel: CoreTel,
}

/// Search result inside one storage level.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Lookup {
    Found(Bytes),
    Tombstone,
    Miss,
}

impl From<&Entry> for Lookup {
    fn from(e: &Entry) -> Self {
        if e.tombstone {
            Lookup::Tombstone
        } else {
            Lookup::Found(e.value.clone())
        }
    }
}

impl DbInner {
    /// Open or create (compose) the database. See [`Context::open`].
    pub(crate) fn open(
        ctx: &Arc<CtxInner>,
        id: u32,
        name: &str,
        flags: OpenFlags,
        opt: Options,
    ) -> Result<Arc<DbInner>> {
        let clock = ctx.clock();
        let store = ctx.repo_store();
        let me = ctx.rank.rank();
        store.open(clock); // repository metadata touch

        let manifest = ckpt::read_manifest(&store, &ctx.repo.prefix, name, me);
        let (next_ssid, readers) = match manifest {
            ckpt::ManifestRead::Present(next, ssids) => {
                if flags.exclusive {
                    return Err(Error::InvalidArgument("database already exists"));
                }
                // Zero-copy compose (§4.1): empty MemTables + retained
                // SSTables; only manifest/index/bloom metadata is read.
                let mut readers = Vec::with_capacity(ssids.len());
                let mut unreadable: Vec<Ssid> = Vec::new();
                for ssid in ssids {
                    let base = sstable::sst_base(&ctx.repo.prefix, name, me, ssid);
                    if let Some((r, done)) = SstReader::open_at(&store, &base, ssid, clock.now()) {
                        clock.merge(done);
                        readers.push(r);
                    } else {
                        unreadable.push(ssid);
                    }
                }
                readers.sort_by_key(SstReader::ssid);
                if !unreadable.is_empty() {
                    // A committed manifest references tables that are gone:
                    // acknowledged data was lost. Compose without them and
                    // repair the manifest so it matches what actually opened.
                    ckpt::report_recovery_anomaly(
                        papyrus_sanity::ViolationKind::SstUnreadable,
                        format!(
                            "db {name} rank {me}: manifest-listed SSTables {unreadable:?} \
                             missing or unreadable — composing without them"
                        ),
                    );
                    let live: Vec<Ssid> = readers.iter().map(SstReader::ssid).collect();
                    let done = ckpt::write_manifest_at(
                        &store,
                        &ctx.repo.prefix,
                        name,
                        me,
                        next,
                        &live,
                        clock.now(),
                    );
                    clock.merge(done);
                }
                (next, readers)
            }
            ckpt::ManifestRead::Corrupt(why) => {
                if flags.exclusive {
                    return Err(Error::InvalidArgument("database already exists"));
                }
                // Torn or corrupt manifest: report, then salvage every
                // complete SSTable triple left in the repository instead of
                // masking the damage as a fresh database.
                ckpt::report_recovery_anomaly(
                    papyrus_sanity::ViolationKind::ManifestCorrupt,
                    format!("db {name} rank {me}: {why} — salvaging from SSTable files"),
                );
                let (next, readers) = Self::salvage_ssts(ctx, name, me, &store, clock);
                let live: Vec<Ssid> = readers.iter().map(SstReader::ssid).collect();
                let done = ckpt::write_manifest_at(
                    &store,
                    &ctx.repo.prefix,
                    name,
                    me,
                    next,
                    &live,
                    clock.now(),
                );
                clock.merge(done);
                (next, readers)
            }
            ckpt::ManifestRead::Absent => {
                if !flags.create {
                    return Err(Error::NotFound);
                }
                // Orphan SSTable triples without any manifest are possible
                // crash debris (a flush cut down before its first manifest
                // commit) — tolerated: new SSIDs start at 1 and overwrite
                // whole triples, so debris can never become visible.
                (1, Vec::new())
            }
        };

        let dist = Distributor::new(opt.custom_hash.clone(), ctx.rank.size());
        let repl_n = papyrus_replica::effective_factor(opt.replicas, ctx.rank.size());
        let db = Arc::new(DbInner {
            id,
            name: name.to_string(),
            repl_n,
            state: RwLock::new(DbState {
                consistency: opt.consistency,
                protection: opt.protection,
            }),
            dist,
            local: RwLock::new(MemTable::new()),
            imm_local: RwLock::new(Vec::new()),
            remote: Mutex::new(MemTable::new()),
            imm_remote: RwLock::new(Vec::new()),
            local_cache: Mutex::new(LruCache::new(opt.local_cache_capacity)),
            remote_cache: Mutex::new(LruCache::new(opt.remote_cache_capacity)),
            ssts: RwLock::new(readers),
            next_ssid: AtomicU64::new(next_ssid),
            repl: Mutex::new(HashMap::new()),
            sync: Mutex::new(DbSync {
                pending_flushes: 0,
                migration_inflight: 0,
                barrier_marks: HashMap::new(),
                closed: false,
            }),
            sync_cv: Condvar::new(),
            flush_backlog: Clock::new(),
            migrate_backlog: Clock::new(),
            ingest_backlog: Clock::new(),
            barrier_epoch: AtomicU64::new(0),
            peer_readers: Mutex::new(HashMap::new()),
            put_stats: OpStats::new(),
            get_stats: OpStats::new(),
            io_errors: Mutex::new(Vec::new()),
            tel: CoreTel::new(me),
            opt,
        });
        Ok(db)
    }

    /// Best-effort salvage when the manifest is unusable: adopt every
    /// complete, readable SSTable triple left in this rank's repository
    /// directory. Incomplete triples (crash debris) are skipped.
    fn salvage_ssts(
        ctx: &Arc<CtxInner>,
        name: &str,
        me: usize,
        store: &papyrus_nvm::NvmStore,
        clock: &Clock,
    ) -> (Ssid, Vec<SstReader>) {
        let dir = format!("{}/{}/r{}/", ctx.repo.prefix, name, me);
        let mut readers = Vec::new();
        let mut next: Ssid = 1;
        for obj in store.list(&dir) {
            let Some(ssid) = obj
                .strip_prefix(&dir)
                .and_then(|f| f.strip_prefix("sst"))
                .and_then(|f| f.strip_suffix(".data"))
                .and_then(|digits| digits.parse::<Ssid>().ok())
            else {
                continue;
            };
            let base = sstable::sst_base(&ctx.repo.prefix, name, me, ssid);
            if let Some((r, done)) = SstReader::open_at(store, &base, ssid, clock.now()) {
                clock.merge(done);
                next = next.max(ssid + 1);
                readers.push(r);
            }
        }
        readers.sort_by_key(SstReader::ssid);
        (next, readers)
    }

    fn check_open(&self) -> Result<()> {
        if self.sync.lock().closed {
            Err(Error::InvalidDb)
        } else {
            Ok(())
        }
    }

    /// Live SSIDs, newest first (for SearchShared responses).
    fn live_ssids_desc(&self) -> Vec<Ssid> {
        let mut v: Vec<Ssid> = self.ssts.read().iter().map(SstReader::ssid).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

/// Insert an entry into the *local* stack of this rank (used by local puts
/// and by the handler ingesting migrated / sync-put records).
fn insert_local_entry(ctx: &CtxInner, db: &Arc<DbInner>, key: &[u8], entry: Entry, clock: &Clock) {
    let prot = db.state.read().protection;
    // DRAM cost of the tree insert + copy.
    clock.advance(ctx.platform.profile.mem.op_ns((key.len() + entry.value.len()) as u64));
    // "a stale cache entry that has the same key as the new key-value pair
    // is evicted from the local cache" (§2.4) — skipped under WRONLY (§3.2).
    if db.opt.local_cache && prot != Protection::WriteOnly {
        db.local_cache.lock().invalidate(key);
    }
    let over_capacity = {
        let mut local = db.local.write();
        local.insert(key, entry);
        local.bytes() >= db.opt.memtable_capacity
    };
    if over_capacity {
        freeze_local(ctx, db, clock.now());
    }
}

/// Freeze the local MemTable into the flushing queue (§2.4). Blocks while
/// the fixed-size queue is full — the paper's DRAM/NVM backpressure.
fn freeze_local(ctx: &CtxInner, db: &Arc<DbInner>, stamp: SimNs) {
    {
        let mut sync = db.sync.lock();
        if sync.pending_flushes >= db.opt.flush_queue_len {
            db.tel.freeze_stall.inc();
        }
        while sync.pending_flushes >= db.opt.flush_queue_len {
            db.sync_cv.wait(&mut sync);
        }
        sync.pending_flushes += 1;
    }
    let frozen = {
        let mut local = db.local.write();
        if local.is_empty() {
            let mut sync = db.sync.lock();
            sync.pending_flushes -= 1;
            db.sync_cv.notify_all();
            return;
        }
        let frozen = Arc::new(local.freeze());
        db.imm_local.write().push(frozen.clone());
        frozen
    };
    db.tel.freeze_local.inc();
    db.tel.rec.instant("core", "freeze.local", TID_APP, stamp);
    ctx.compact_q.push(CompactJob::Flush { db: db.clone(), mt: frozen, stamp });
}

/// Freeze the remote MemTable into the migration queue (§2.4).
fn freeze_remote(ctx: &CtxInner, db: &Arc<DbInner>, stamp: SimNs) {
    {
        let mut sync = db.sync.lock();
        if sync.migration_inflight >= db.opt.flush_queue_len {
            db.tel.freeze_stall.inc();
        }
        while sync.migration_inflight >= db.opt.flush_queue_len {
            db.sync_cv.wait(&mut sync);
        }
        sync.migration_inflight += 1;
    }
    let frozen = {
        let mut remote = db.remote.lock();
        if remote.is_empty() {
            let mut sync = db.sync.lock();
            sync.migration_inflight -= 1;
            db.sync_cv.notify_all();
            return;
        }
        let frozen = Arc::new(remote.freeze());
        db.imm_remote.write().push(frozen.clone());
        frozen
    };
    db.tel.freeze_remote.inc();
    db.tel.rec.instant("core", "freeze.remote", TID_APP, stamp);
    ctx.migrate_q.push(MigrateJob::Migrate { db: db.clone(), mt: frozen, stamp });
}

/// Compaction-thread body for one flush job: build the SSTable, register
/// it, retire the immutable MemTable, and run SSID-triggered merge
/// compaction (§2.4 "flushing", §2.5 "compaction").
pub(crate) fn run_flush(ctx: &CtxInner, db: &Arc<DbInner>, mt: Arc<MemTable>, stamp: SimNs) {
    let store = ctx.repo_store();
    let me = ctx.rank.rank();
    let entries: Vec<(Vec<u8>, Entry)> = mt.iter().map(|(k, e)| (k.to_vec(), e.clone())).collect();

    // ordering: SSID allocation is SeqCst so manifest writers reading the
    // counter (run_flush/compaction/checkpoint) totally agree on which ids
    // are spoken for; audit relies on registered id < next_ssid.
    let ssid = db.next_ssid.fetch_add(1, Ordering::SeqCst);
    let base = sstable::sst_base(&ctx.repo.prefix, &db.name, me, ssid);
    let (reader, done) = if fi::enabled() {
        match sstable::try_build_at(&store, &base, ssid, &entries, stamp) {
            Ok(built) => built,
            Err(fault) => {
                // Record the typed failure, then fall back to the riding-out
                // build: flushes must not drop acked data, and the store's
                // infallible path escapes the fault window deterministically
                // (a partial triple left by the failed attempt is overwritten
                // whole). `ENOSPC` is surfaced; transient EIO is just retried.
                if fault == papyrus_nvm::IoFault::NoSpace {
                    db.io_errors
                        .lock()
                        .push(Error::StorageFull(format!("flush sst{ssid} of db {}", db.name)));
                }
                sstable::build_at(&store, &base, ssid, &entries, stamp)
            }
        }
    } else {
        sstable::build_at(&store, &base, ssid, &entries, stamp)
    };
    db.ssts.write().push(reader);

    // Retire the immutable MemTable only after the SSTable is visible, so
    // concurrent gets never observe a gap.
    db.imm_local.write().retain(|m| !Arc::ptr_eq(m, &mt));

    let done = ckpt::write_manifest_at(
        &store,
        &ctx.repo.prefix,
        &db.name,
        me,
        // ordering: SeqCst pairs with the allocator's fetch_add above.
        db.next_ssid.load(Ordering::SeqCst),
        &db.ssts.read().iter().map(SstReader::ssid).collect::<Vec<_>>(),
        done,
    );
    db.flush_backlog.merge(done);
    db.tel.flush_count.inc();
    db.tel.flush_ns.record(done.saturating_sub(stamp));
    db.tel.rec.span("core", "flush", TID_COMPACT, stamp, done);

    // Merge compaction "whenever the SSID of a new SSTable is a multiple of
    // the predefined number" (§2.5).
    let trigger = db.opt.compaction_trigger;
    if trigger > 0 && ssid.is_multiple_of(trigger) && db.ssts.read().len() > 1 {
        run_merge_compaction(ctx, db, done);
    }

    let mut sync = db.sync.lock();
    sync.pending_flushes -= 1;
    db.sync_cv.notify_all();
}

/// Merge all live SSTables into one (compaction thread only).
fn run_merge_compaction(ctx: &CtxInner, db: &Arc<DbInner>, stamp: SimNs) {
    let store = ctx.repo_store();
    let me = ctx.rank.rank();
    let snapshot: Vec<SstReader> = db.ssts.read().clone();
    if snapshot.len() <= 1 {
        return;
    }
    // ordering: same SeqCst SSID allocator as run_flush.
    let new_ssid = db.next_ssid.fetch_add(1, Ordering::SeqCst);
    let base = sstable::sst_base(&ctx.repo.prefix, &db.name, me, new_ssid);
    // Merging ALL live tables: tombstones can be dropped outright.
    let merge_res = if fi::enabled() {
        // `ENOSPC` aborts the compaction with a typed error: the inputs stay
        // live and referenced by the manifest, so nothing is lost and the
        // merge re-triggers at the next SSID multiple. Debris from a partial
        // merged triple is unreferenced and harmless.
        sstable::try_merge_at(&store, &snapshot, &base, new_ssid, true, stamp)
    } else {
        sstable::merge_at(&store, &snapshot, &base, new_ssid, true, stamp)
    };
    let (merged, done) = match merge_res {
        Ok(ok) => ok,
        Err(e @ Error::StorageFull(_)) => {
            db.io_errors.lock().push(e);
            return;
        }
        Err(_) => return,
    };
    {
        let mut ssts = db.ssts.write();
        ssts.clear();
        ssts.push(merged);
    }
    // Commit the manifest before deleting the merged inputs: a crash
    // between the two steps leaves unreferenced debris, never a manifest
    // pointing at deleted tables.
    let mut t = ckpt::write_manifest_at(
        &store,
        &ctx.repo.prefix,
        &db.name,
        me,
        // ordering: SeqCst pairs with the allocator's fetch_add above.
        db.next_ssid.load(Ordering::SeqCst),
        &[new_ssid],
        done,
    );
    // "When the compaction is finished, the old SSTables are deleted to
    // save storage space" (§2.5).
    for old in &snapshot {
        t = old.delete_files_at(t);
    }
    db.flush_backlog.merge(t);
    db.tel.compact_count.inc();
    db.tel.compact_ns.record(t.saturating_sub(stamp));
    db.tel.rec.span("core", "compact", TID_COMPACT, stamp, t);
}

/// Dispatcher-thread body for one migration job: sort the frozen remote
/// MemTable's pairs by owner, accumulate per-rank chunks, and send them
/// (§2.4 "migration").
pub(crate) fn run_migration(ctx: &CtxInner, db: &Arc<DbInner>, mt: Arc<MemTable>, stamp: SimNs) {
    let mut per_owner: HashMap<usize, Vec<KvRecord>> = HashMap::new();
    for (k, e) in mt.iter() {
        per_owner.entry(e.owner as usize).or_default().push(KvRecord {
            key: k.to_vec(),
            value: e.value.clone(),
            tombstone: e.tombstone,
        });
    }
    let mut owners: Vec<usize> = per_owner.keys().copied().collect();
    owners.sort_unstable();
    let fault_on = fi::enabled();
    let me = ctx.rank.rank();
    let mut last_arrive = stamp;
    for owner in owners {
        let records = &per_owner[&owner];
        // An `owner == me` group exists only under R >= 2: local puts are
        // staged here purely so their replica copies ride the batched path.
        // The primary copy is already in the local stack — no self-migrate.
        if owner != me {
            pkv_trace!("[r{me}] migrate {} records -> r{owner}", records.len());
            if !fault_on {
                let payload = msg::encode_migrate(db.id, 0, records);
                let arrive = ctx.comm_req.send_at(owner, tags::MIGRATE, payload, stamp);
                last_arrive = last_arrive.max(arrive);
                db.migrate_backlog.merge(arrive);
            } else {
                // Fault plane on: the batch is acked by the owner's handler
                // so a black-holed send is detected and resent (re-applying
                // a batch is idempotent). A confirmed-dead owner's records
                // are dropped with a typed error in the sink — their keys
                // are unavailable until restart, which the chaos oracle
                // accounts for.
                match crate::runtime::rpc_with_retry(
                    ctx,
                    &db.tel,
                    owner,
                    tags::MIGRATE,
                    tags::MIGRATE_ACK,
                    "migrate",
                    &mut |seq| msg::encode_migrate(db.id, seq, records),
                ) {
                    Ok(ack) => {
                        last_arrive = last_arrive.max(ack.stamp);
                        db.migrate_backlog.merge(ack.stamp);
                    }
                    Err(e) => {
                        if let Error::RankUnavailable(dead) = e {
                            maybe_promote(ctx, db, dead);
                        }
                        db.io_errors.lock().push(e);
                    }
                }
            }
        }
        // Replica fan-out (R >= 2): every batch is also copied to the
        // owner's successor ranks on the ring. Replica batches ride the
        // same FIFO request channel as barrier marks, so a successful
        // barrier proves every replica copy sent before it was ingested —
        // the "bounded replication queue drained at barrier/fence".
        if db.repl_n >= 2 {
            match forward_replicas(ctx, db, owner, records, stamp, false) {
                Ok(arrive) => {
                    last_arrive = last_arrive.max(arrive);
                    db.migrate_backlog.merge(arrive);
                }
                Err(e) => db.io_errors.lock().push(e),
            }
        }
    }
    db.tel.migrate_count.inc();
    db.tel.migrate_ns.record(last_arrive.saturating_sub(stamp));
    db.tel.rec.span("core", "migrate", TID_DISPATCH, stamp, last_arrive);
    db.imm_remote.write().retain(|m| !Arc::ptr_eq(m, &mt));
    let mut sync = db.sync.lock();
    sync.migration_inflight -= 1;
    db.sync_cv.notify_all();
}

/// Handler-side ingestion of migrated / sync-put records into the owner's
/// local stack. Returns the service-completion stamp.
pub(crate) fn apply_incoming_records(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    records: &[KvRecord],
    stamp: SimNs,
) -> SimNs {
    let clk = Clock::starting_at(stamp);
    for r in records {
        pkv_trace!("[r{}] ingest key={:?}", ctx.rank.rank(), String::from_utf8_lossy(&r.key));
        let entry = if r.tombstone { Entry::tombstone() } else { Entry::value(r.value.clone()) };
        insert_local_entry(ctx, db, &r.key, entry, &clk);
    }
    let done = clk.now();
    db.ingest_backlog.merge(done);
    db.tel.ingest_records.add(records.len() as u64);
    db.tel.rec.span("core", "ingest", TID_HANDLER, stamp, done);
    done
}

// ---------------------------------------------------------------------------
// Replication (DESIGN §11)
// ---------------------------------------------------------------------------
//
// Replication is writer-driven: the application thread (sequential mode)
// or the dispatcher thread (relaxed mode) fans a put batch out to the
// owner's successor ranks. The message handler only ever ingests replica
// batches locally — it never forwards or blocks on another rank's ack —
// so synchronous writers waiting on `REPL_ACK` cannot close a cross-rank
// cycle of blocked handlers.

/// Copy `records` (owned by `origin`) to one successor rank. Fire-and-
/// forget on the happy path; deadline/retry/failure-detection RPC under
/// the fault plane. Returns the arrive/ack stamp.
fn send_repl_batch(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    dst: usize,
    origin: usize,
    records: &[KvRecord],
    stamp: SimNs,
) -> Result<SimNs> {
    if !fi::enabled() {
        let payload = msg::encode_repl_put(db.id, origin as u32, false, 0, records);
        return Ok(ctx.comm_req.send_at(dst, tags::REPL_PUT, payload, stamp));
    }
    let ack = crate::runtime::rpc_with_retry(
        ctx,
        &db.tel,
        dst,
        tags::REPL_PUT,
        tags::REPL_ACK,
        "replica forward",
        &mut |seq| msg::encode_repl_put(db.id, origin as u32, true, seq, records),
    )?;
    Ok(ack.stamp)
}

/// Fan `records` out to every successor of `owner` (self-copies are
/// applied locally). With `sync` set (sequential-consistency writers) a
/// non-fatal delivery failure other than a confirmed-dead successor
/// aborts the put so the caller never acks an under-replicated write;
/// without it (dispatcher batches) every failure lands in `io_errors`
/// and the remaining successors still get their copy. A confirmed-dead
/// successor is always non-fatal: the primary copy is intact and the
/// ring is merely degraded until re-replication heals it.
fn forward_replicas(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    owner: usize,
    records: &[KvRecord],
    stamp: SimNs,
    sync: bool,
) -> Result<SimNs> {
    let me = ctx.rank.rank();
    let n = ctx.rank.size();
    let mut last = stamp;
    for s in papyrus_replica::successors(owner, n, db.repl_n) {
        if s == me {
            last = last.max(apply_replica_records(ctx, db, owner, records, stamp));
            continue;
        }
        match send_repl_batch(ctx, db, s, owner, records, stamp) {
            Ok(arrive) => {
                last = last.max(arrive);
                if db.tel.on() {
                    db.tel.repl_forwards.inc();
                    db.tel.repl_lag_ns.record(arrive.saturating_sub(stamp));
                }
            }
            Err(e @ Error::RankUnavailable(_)) => {
                if let Error::RankUnavailable(dead) = e {
                    maybe_promote(ctx, db, dead);
                }
                db.io_errors.lock().push(e);
            }
            Err(e) if sync => return Err(e),
            Err(e) => db.io_errors.lock().push(e),
        }
    }
    Ok(last)
}

/// Handler-side (or self-copy) ingestion of a replica batch into the
/// per-origin replica stack. Purely local: inserts into the replica
/// MemTable and flushes it inline to a replica SSTable when over
/// capacity. Returns the service-completion stamp.
pub(crate) fn apply_replica_records(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    origin: usize,
    records: &[KvRecord],
    stamp: SimNs,
) -> SimNs {
    let clk = Clock::starting_at(stamp);
    let mem = &ctx.platform.profile.mem;
    {
        let mut repl = db.repl.lock();
        let stack = repl.entry(origin as u32).or_insert_with(ReplicaStack::new);
        for r in records {
            clk.advance(mem.op_ns((r.key.len() + r.value.len()) as u64));
            let entry =
                if r.tombstone { Entry::tombstone() } else { Entry::value(r.value.clone()) };
            stack.mem.insert(&r.key, entry);
        }
        if stack.mem.bytes() >= db.opt.memtable_capacity {
            flush_replica_stack(ctx, db, origin, stack, &clk); // lint:allow(blocking-under-lock): flush must stay atomic with ingest — `stack` borrows from the `repl` map, and readers must never observe the memtable/SSTable gap
        }
    }
    let done = clk.now();
    db.ingest_backlog.merge(done);
    if db.tel.on() {
        db.tel.ingest_records.add(records.len() as u64);
        db.tel.rec.span("core", "repl.ingest", TID_HANDLER, stamp, done);
    }
    done
}

/// Flush a replica MemTable into a replica SSTable (inline on the calling
/// thread — replica stacks skip the flush queue and the manifest: they
/// are re-derivable via re-replication, so crash debris is harmless).
fn flush_replica_stack(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    origin: usize,
    stack: &mut ReplicaStack,
    clk: &Clock,
) {
    if stack.mem.is_empty() {
        return;
    }
    let store = ctx.repo_store();
    let me = ctx.rank.rank();
    let entries: Vec<(Vec<u8>, Entry)> =
        stack.mem.iter().map(|(k, e)| (k.to_vec(), e.clone())).collect();
    let ssid = stack.next_ssid;
    stack.next_ssid += 1;
    let base = sstable::repl_sst_base(&ctx.repo.prefix, &db.name, me, origin, ssid);
    let (reader, done) = if fi::enabled() {
        match sstable::try_build_at(&store, &base, ssid, &entries, clk.now()) {
            Ok(built) => built,
            Err(fault) => {
                // Same ride-out as `run_flush`: replica data backs acked
                // writes, so the build must not drop it; `ENOSPC` is
                // surfaced as a typed error first.
                if fault == papyrus_nvm::IoFault::NoSpace {
                    db.io_errors.lock().push(Error::StorageFull(format!(
                        "replica flush rep{origin}-sst{ssid} of db {}",
                        db.name
                    )));
                }
                sstable::build_at(&store, &base, ssid, &entries, clk.now())
            }
        }
    } else {
        sstable::build_at(&store, &base, ssid, &entries, clk.now())
    };
    clk.merge(done);
    stack.ssts.push(reader);
    stack.mem = MemTable::new();
}

/// Search the replica stack held for `origin`: replica MemTable first,
/// then replica SSTables newest-first.
fn replica_lookup(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    origin: usize,
    key: &[u8],
    clk: &Clock,
) -> Lookup {
    let mem = &ctx.platform.profile.mem;
    let repl = db.repl.lock();
    let Some(stack) = repl.get(&(origin as u32)) else { return Lookup::Miss };
    clk.advance(mem.op_ns(key.len() as u64));
    if let Some(e) = stack.mem.get(key) {
        return Lookup::from(e);
    }
    for reader in stack.ssts.iter().rev() {
        if db.opt.bloom_filter {
            if !reader.maybe_contains(key) {
                db.tel.bloom_neg.inc();
                continue;
            }
            db.tel.bloom_pass.inc();
        }
        let (res, done) = reader.get_at(key, db.opt.bin_search, clk.now());
        clk.merge(done);
        match res {
            SstGet::Found(v) => return Lookup::Found(v),
            SstGet::Tombstone => return Lookup::Tombstone,
            SstGet::NotFound => continue,
        }
    }
    Lookup::Miss
}

/// Handler-side service of a failover get against the replica stack for
/// `origin`. Returns the response and the service-completion stamp.
pub(crate) fn serve_replica_get(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    origin: usize,
    key: &[u8],
    stamp: SimNs,
) -> (GetResp, SimNs) {
    let clk = Clock::starting_at(stamp);
    let resp = match replica_lookup(ctx, db, origin, key, &clk) {
        Lookup::Found(v) => GetResp::Found(v),
        Lookup::Tombstone | Lookup::Miss => GetResp::NotFound,
    };
    let end = clk.now();
    if db.tel.on() {
        db.tel.serve_gets.inc();
        db.tel.rec.span("core", "repl.serve_get", TID_HANDLER, stamp, end);
    }
    (resp, end)
}

/// Read failover (R >= 2): the owner is confirmed dead, so walk its
/// successors in ring order and serve the get from the first live
/// replica. A self-copy is read directly from the local replica stack.
fn failover_get(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    key: &[u8],
    owner: usize,
    clock: &Clock,
) -> Result<Lookup> {
    let me = ctx.rank.rank();
    let n = ctx.rank.size();
    if db.tel.on() {
        db.tel.repl_failovers.inc();
    }
    pkv_trace!("[r{me}] failover get key={:?} dead owner={owner}", String::from_utf8_lossy(key));
    let remote_cache_on = db.opt.remote_cache || db.state.read().protection == Protection::ReadOnly;
    let mut last_err = Error::RankUnavailable(owner);
    for s in papyrus_replica::successors(owner, n, db.repl_n) {
        if s == me {
            // This rank holds a replica itself: promote if first-live, then
            // answer from the local replica stack.
            maybe_promote(ctx, db, owner);
            return Ok(replica_lookup(ctx, db, owner, key, clock));
        }
        if ctx.comm_req.rank_known_dead(s) {
            continue;
        }
        match crate::runtime::rpc_with_retry(
            ctx,
            &db.tel,
            s,
            tags::REPL_GET,
            tags::REPL_RESP,
            "failover get",
            &mut |seq| msg::encode_repl_get(db.id, owner as u32, seq, key),
        ) {
            Ok(m) => {
                let resp = msg::decode_get_resp(m.payload).ok().map(|(_, r)| r);
                return Ok(match resp {
                    Some(GetResp::Found(v)) => {
                        if remote_cache_on {
                            db.remote_cache.lock().insert(key, CacheEntry::value(v.clone()));
                        }
                        Lookup::Found(v)
                    }
                    _ => Lookup::Miss,
                });
            }
            Err(e @ Error::RankUnavailable(_)) => {
                last_err = e;
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err)
}

/// Promotion check, called wherever a rank discovers `dead` is gone
/// (failed barrier, failover get, RPC failure, incoming `REPL_GET`). If
/// this rank is the first live successor of `dead` it claims primary
/// ownership of the dead rank's ranges in the job-wide promotion table
/// (first claim wins) and queues background re-replication to bring the
/// ring back to `R` copies. Free when replication is off.
pub(crate) fn maybe_promote(ctx: &CtxInner, db: &Arc<DbInner>, dead: usize) {
    if db.repl_n < 2 {
        return;
    }
    let me = ctx.rank.rank();
    if dead == me || dead >= ctx.rank.size() {
        return;
    }
    let n = ctx.rank.size();
    let is_dead = |r: usize| r == dead || ctx.comm_req.rank_known_dead(r);
    if papyrus_replica::first_live_successor(dead, n, &is_dead) != Some(me) {
        return;
    }
    if ctx.platform.repl.claim(db.id, dead, me) != papyrus_replica::Claim::Won {
        return;
    }
    if db.tel.on() {
        db.tel.repl_promotions.inc();
    }
    pkv_trace!("[r{me}] promoted to primary for dead rank {dead} (db {})", db.name);
    // Counted in `migration_inflight` so `fence` doubles as the
    // re-replication drain point.
    db.sync.lock().migration_inflight += 1;
    ctx.migrate_q.push(MigrateJob::Rereplicate {
        db: db.clone(),
        origin: dead,
        stamp: ctx.clock().now(),
    });
}

/// Everything this rank replicates for `origin`, merged newest-wins
/// across the replica MemTable and replica SSTables. Tombstones are kept
/// as records — re-replication must propagate deletions.
fn replica_records(db: &Arc<DbInner>, origin: usize) -> Vec<KvRecord> {
    use std::collections::BTreeMap;
    let repl = db.repl.lock();
    let Some(stack) = repl.get(&(origin as u32)) else { return Vec::new() };
    let mut merged: BTreeMap<Vec<u8>, (Bytes, bool)> = BTreeMap::new();
    // Oldest layer first so newer layers overwrite.
    for reader in stack.ssts.iter() {
        if let Some(records) = reader.records_uncharged() {
            for (k, e) in records {
                merged.insert(k, (e.value, e.tombstone));
            }
        }
    }
    for (k, e) in stack.mem.iter() {
        merged.insert(k.to_vec(), (e.value.clone(), e.tombstone));
    }
    merged.into_iter().map(|(key, (value, tombstone))| KvRecord { key, value, tombstone }).collect()
}

/// Dispatcher-thread body for one re-replication job: copy the promoted
/// ranges of `origin` to the new successor set so the ring holds `R`
/// copies again (DESIGN §11). Runs only after a promotion claim, i.e.
/// always under the fault plane.
pub(crate) fn run_rereplication(ctx: &CtxInner, db: &Arc<DbInner>, origin: usize, stamp: SimNs) {
    let me = ctx.rank.rank();
    let n = ctx.rank.size();
    let records = replica_records(db, origin);
    let is_dead = |r: usize| r == origin || ctx.comm_req.rank_known_dead(r);
    let targets: Vec<usize> = papyrus_replica::heal_set(origin, n, db.repl_n, &is_dead)
        .into_iter()
        .filter(|&r| r != me)
        .collect();
    let bytes: u64 = records.iter().map(|r| (r.key.len() + r.value.len()) as u64).sum();
    let mut last = stamp;
    if !records.is_empty() {
        for t in targets {
            pkv_trace!("[r{me}] rereplicate {} records of r{origin} -> r{t}", records.len());
            match send_repl_batch(ctx, db, t, origin, &records, stamp) {
                Ok(done) => {
                    last = last.max(done);
                    db.migrate_backlog.merge(done);
                    if db.tel.on() {
                        db.tel.repl_forwards.inc();
                        db.tel.repl_rereplicated_bytes.add(bytes);
                        db.tel.repl_lag_ns.record(done.saturating_sub(stamp));
                    }
                }
                Err(e) => db.io_errors.lock().push(e),
            }
        }
    }
    if db.tel.on() {
        db.tel.rec.span("core", "rereplicate", TID_DISPATCH, stamp, last);
    }
    let mut sync = db.sync.lock();
    sync.migration_inflight -= 1;
    db.sync_cv.notify_all();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

/// Search this rank's in-memory structures: local MemTable, immutable local
/// MemTables (newest first), then the local cache (§2.6, Figure 3).
fn search_local_memory(ctx: &CtxInner, db: &DbInner, key: &[u8], clock: &Clock) -> Lookup {
    let mem = &ctx.platform.profile.mem;
    clock.advance(mem.op_ns(key.len() as u64));
    if let Some(e) = db.local.read().get(key) {
        return Lookup::from(e);
    }
    {
        let imm = db.imm_local.read();
        for mt in imm.iter().rev() {
            clock.advance(mem.op_ns(key.len() as u64));
            if let Some(e) = mt.get(key) {
                return Lookup::from(e);
            }
        }
    }
    let prot = db.state.read().protection;
    if db.opt.local_cache && prot != Protection::WriteOnly {
        if let Some(hit) = db.local_cache.lock().get(key) {
            clock.advance(mem.op_ns((key.len() + hit.value.len()) as u64));
            db.get_stats.hit();
            return if hit.tombstone { Lookup::Tombstone } else { Lookup::Found(hit.value) };
        }
        db.get_stats.miss();
    }
    Lookup::Miss
}

/// Walk this rank's SSTables newest-SSID-first (§2.6), consulting each
/// bloom filter first, and populate the local cache on a hit.
fn search_local_ssts(_ctx: &CtxInner, db: &DbInner, key: &[u8], clock: &Clock) -> Lookup {
    let prot = db.state.read().protection;
    let cache_ok = db.opt.local_cache && prot != Protection::WriteOnly;
    let ssts = db.ssts.read();
    for reader in ssts.iter().rev() {
        if db.opt.bloom_filter {
            if !reader.maybe_contains(key) {
                db.tel.bloom_neg.inc();
                continue;
            }
            db.tel.bloom_pass.inc();
        }
        let (res, done) = reader.get_at(key, db.opt.bin_search, clock.now());
        clock.merge(done);
        match res {
            SstGet::Found(v) => {
                if cache_ok {
                    db.local_cache.lock().insert(key, CacheEntry::value(v.clone()));
                }
                return Lookup::Found(v);
            }
            SstGet::Tombstone => {
                if cache_ok {
                    db.local_cache.lock().insert(key, CacheEntry::tombstone());
                }
                return Lookup::Tombstone;
            }
            SstGet::NotFound => continue,
        }
    }
    Lookup::Miss
}

/// Full local get: memory then SSTables.
fn local_get(ctx: &CtxInner, db: &DbInner, key: &[u8], clock: &Clock) -> Lookup {
    match search_local_memory(ctx, db, key, clock) {
        Lookup::Miss => search_local_ssts(ctx, db, key, clock),
        hit => hit,
    }
}

/// Handler-side service of a remote get (§2.6; storage-group fast path
/// §2.7). Returns the response and the service-completion stamp.
pub(crate) fn serve_remote_get(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    key: &[u8],
    caller_group: u32,
    caller_rank: usize,
    stamp: SimNs,
) -> (GetResp, SimNs) {
    let clk = Clock::starting_at(stamp);
    let me = ctx.rank.rank();
    let shared = caller_group != msg::NO_GROUP
        && caller_group == ctx.group_of(me)
        && ctx.shares_storage(me, caller_rank);
    let resp = if shared {
        // Same storage group: "the message handler looks into the local
        // MemTable, immutable local MemTables, and local cache only" (§2.7).
        match search_local_memory(ctx, db, key, &clk) {
            Lookup::Found(v) => GetResp::Found(v),
            Lookup::Tombstone => GetResp::NotFound,
            Lookup::Miss => GetResp::SearchShared(db.live_ssids_desc()),
        }
    } else {
        match local_get(ctx, db, key, &clk) {
            Lookup::Found(v) => GetResp::Found(v),
            _ => GetResp::NotFound,
        }
    };
    let end = clk.now();
    if db.tel.on() {
        db.tel.serve_gets.inc();
        db.tel.rec.span("core", "serve_get", TID_HANDLER, stamp, end);
    }
    (resp, end)
}

/// Caller-side remote get. Delegates to the primary-owner path and, with
/// replication on, falls over to the owner's successor replicas when the
/// owner is confirmed dead (DESIGN §11) — an acked write stays readable
/// through a single rank kill.
fn remote_get(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    key: &[u8],
    owner: usize,
    clock: &Clock,
) -> Result<Lookup> {
    if db.repl_n >= 2 && ctx.comm_req.rank_known_dead(owner) {
        // The fabric already returned a sticky dead verdict for the owner;
        // skip the doomed primary round trip entirely.
        maybe_promote(ctx, db, owner);
        return failover_get(ctx, db, key, owner, clock);
    }
    match remote_get_primary(ctx, db, key, owner, clock) {
        Err(Error::RankUnavailable(dead)) if db.repl_n >= 2 && dead == owner => {
            maybe_promote(ctx, db, dead);
            failover_get(ctx, db, key, owner, clock)
        }
        other => other,
    }
}

/// Primary-owner remote get: remote MemTable / migration queue / remote
/// cache, then a request message, then (storage group) shared-SSTable
/// search (§2.6-§2.7, Figure 3).
fn remote_get_primary(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    key: &[u8],
    owner: usize,
    clock: &Clock,
) -> Result<Lookup> {
    let mem = &ctx.platform.profile.mem;
    let state = *db.state.read();
    if state.consistency == Consistency::Relaxed {
        clock.advance(mem.op_ns(key.len() as u64));
        if let Some(e) = db.remote.lock().get(key) {
            return Ok(Lookup::from(e));
        }
        let imm = db.imm_remote.read();
        for mt in imm.iter().rev() {
            clock.advance(mem.op_ns(key.len() as u64));
            if let Some(e) = mt.get(key) {
                return Ok(Lookup::from(e));
            }
        }
    }
    let remote_cache_on = db.opt.remote_cache || state.protection == Protection::ReadOnly;
    if remote_cache_on {
        if let Some(hit) = db.remote_cache.lock().get(key) {
            clock.advance(mem.op_ns((key.len() + hit.value.len()) as u64));
            db.get_stats.hit();
            return Ok(if hit.tombstone { Lookup::Tombstone } else { Lookup::Found(hit.value) });
        }
        db.get_stats.miss();
    }

    // Request/response round trip through the owner's message handler. The
    // fast path (fault plane off) is a plain blocking exchange; under the
    // fault plane the request gets a deadline, seq-matched retries, and
    // failure detection — a confirmed-dead owner surfaces as
    // `Error::RankUnavailable` instead of a hang, while local and
    // surviving-rank keys stay serviceable (degraded mode).
    let me = ctx.rank.rank();
    let round_trip = |group: u32| -> Result<Option<GetResp>> {
        if !fi::enabled() {
            let payload = msg::encode_get_req(db.id, group, 0, key);
            ctx.comm_req.send(owner, tags::GET_REQ, payload);
            let m = ctx
                .comm_rep
                .recv(papyrus_mpi::RecvSrc::Rank(owner), papyrus_mpi::RecvTag::Tag(tags::GET_RESP));
            return Ok(msg::decode_get_resp(m.payload).ok().map(|(_, resp)| resp));
        }
        let m = crate::runtime::rpc_with_retry(
            ctx,
            &db.tel,
            owner,
            tags::GET_REQ,
            tags::GET_RESP,
            "remote get",
            &mut |seq| msg::encode_get_req(db.id, group, seq, key),
        )?;
        Ok(msg::decode_get_resp(m.payload).ok().map(|(_, resp)| resp))
    };
    let Some(resp) = round_trip(ctx.group_of(me))? else { return Ok(Lookup::Miss) };
    pkv_trace!("[r{me}] remote_get key={:?} -> {:?}", String::from_utf8_lossy(key), resp);
    Ok(match resp {
        GetResp::Found(v) => {
            if remote_cache_on {
                db.remote_cache.lock().insert(key, CacheEntry::value(v.clone()));
            }
            Lookup::Found(v)
        }
        GetResp::NotFound => Lookup::Miss,
        GetResp::SearchShared(ssids) => {
            match search_peer_ssts(ctx, db, key, owner, &ssids, remote_cache_on, clock) {
                Lookup::Miss => {
                    // The owner's compaction may have merged and deleted the
                    // listed SSTables while we were probing them. Retry with
                    // the storage-group fast path disabled (FULL_GROUP
                    // sentinel): the owner searches its own SSTables under
                    // its registry lock, which compaction cannot race.
                    match round_trip(msg::NO_GROUP)? {
                        Some(GetResp::Found(v)) => {
                            if remote_cache_on {
                                db.remote_cache.lock().insert(key, CacheEntry::value(v.clone()));
                            }
                            Lookup::Found(v)
                        }
                        _ => Lookup::Miss,
                    }
                }
                hit => hit,
            }
        }
    })
}

/// Storage-group shared-SSTable search: read the owner's SSTables directly
/// from the shared NVM "as if it were a local get operation" (§2.7).
fn search_peer_ssts(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    key: &[u8],
    owner: usize,
    ssids_desc: &[Ssid],
    cache_ok: bool,
    clock: &Clock,
) -> Lookup {
    let store = ctx.repo_store_for(owner);
    for &ssid in ssids_desc {
        // Probe the cache, then open OUTSIDE the lock: `open_at` is charged
        // NVM I/O, and holding `peer_readers` across it would serialise
        // every cross-rank read behind one device stall. Two threads may
        // race to open the same SSTable; the loser's insert overwrites an
        // identical reader.
        let cached = db.peer_readers.lock().get(&(owner, ssid)).cloned();
        let reader = match cached {
            Some(r) => r,
            None => {
                let base = sstable::sst_base(&ctx.repo.prefix, &db.name, owner, ssid);
                match SstReader::open_at(&store, &base, ssid, clock.now()) {
                    Some((r, done)) => {
                        clock.merge(done);
                        db.peer_readers.lock().insert((owner, ssid), r.clone());
                        r
                    }
                    // Deleted by the owner's compaction meanwhile: skip.
                    None => continue,
                }
            }
        };
        if db.opt.bloom_filter {
            if !reader.maybe_contains(key) {
                db.tel.bloom_neg.inc();
                continue;
            }
            db.tel.bloom_pass.inc();
        }
        let (res, done) = reader.get_at(key, db.opt.bin_search, clock.now());
        clock.merge(done);
        match res {
            SstGet::Found(v) => {
                if cache_ok {
                    db.remote_cache.lock().insert(key, CacheEntry::value(v.clone()));
                }
                return Lookup::Found(v);
            }
            SstGet::Tombstone => return Lookup::Tombstone,
            SstGet::NotFound => continue,
        }
    }
    Lookup::Miss
}

/// Record a barrier mark received by the handler.
pub(crate) fn note_barrier_mark(db: &Arc<DbInner>, epoch: u64, stamp: SimNs) {
    let mut sync = db.sync.lock();
    let slot = sync.barrier_marks.entry(epoch).or_insert((0, 0));
    slot.0 += 1;
    pkv_trace!("[db {}] mark epoch={epoch} count={}", db.id, slot.0);
    slot.1 = slot.1.max(stamp);
    db.tel.rec.instant("core", "barrier.mark", TID_HANDLER, stamp);
    db.sync_cv.notify_all();
}

/// Collective close: synchronise, flush everything to SSTables, and mark
/// the handle invalid. SSTables are retained for zero-copy reopen (§4.1).
pub(crate) fn close_inner(ctx: &Arc<CtxInner>, db: &Arc<DbInner>) -> Result<()> {
    if db.sync.lock().closed {
        return Ok(());
    }
    barrier_inner(ctx, db, BarrierLevel::SsTable)?;
    let mut sync = db.sync.lock();
    if papyrus_sanity::enabled() {
        // After the close barrier every epoch this rank entered has
        // completed, so any mark entry for an already-completed epoch means
        // a reconciliation round failed to consume exactly n marks.
        // ordering: SeqCst pairs with the barrier's epoch fetch_add; the
        // audit must see every epoch a completed barrier entered.
        let epoch = db.barrier_epoch.load(Ordering::SeqCst);
        for (&e, &(count, _)) in sync.barrier_marks.iter().filter(|(&e, _)| e < epoch) {
            papyrus_sanity::record_violation(
                papyrus_sanity::ViolationKind::BarrierEpochMismatch,
                format!(
                    "db {}: rank {} closing with leftover barrier marks for completed \
                     epoch {e} (count {count})",
                    db.name,
                    ctx.rank.rank()
                ),
            );
        }
    }
    sync.closed = true;
    Ok(())
}

/// Fence (§3.1): migrate the remote MemTable and every immutable remote
/// MemTable to the owner ranks immediately; returns when the migration
/// queue has drained.
pub(crate) fn fence_inner(ctx: &CtxInner, db: &Arc<DbInner>) -> Result<()> {
    let clock = ctx.clock();
    let start = clock.now();
    pkv_trace!("[r{}] fence start", ctx.rank.rank());
    freeze_remote(ctx, db, start);
    {
        let mut sync = db.sync.lock();
        while sync.migration_inflight > 0 {
            db.sync_cv.wait(&mut sync);
        }
    }
    clock.merge(db.migrate_backlog.now());
    if db.tel.on() {
        let end = clock.now();
        db.tel.fence_wait_ns.record(end.saturating_sub(start));
        db.tel.rec.span("core", "fence.wait", TID_APP, start, end);
    }
    pkv_trace!("[r{}] fence done", ctx.rank.rank());
    Ok(())
}

/// Collective barrier (§3.1): after it, all ranks see the same data; with
/// `BarrierLevel::SsTable` the whole database is flushed to SSTables.
pub(crate) fn barrier_inner(ctx: &CtxInner, db: &Arc<DbInner>, level: BarrierLevel) -> Result<()> {
    let clock = ctx.clock();
    let barrier_start = clock.now();
    fence_inner(ctx, db)?;

    // FIFO barrier marks: per-sender channel ordering guarantees every data
    // message sent before the mark is ingested before the mark is counted.
    // ordering: barrier epochs form a single global sequence; SeqCst keeps
    // every rank's mark accounting and the close-time audit on one total
    // order of epochs.
    let epoch = db.barrier_epoch.fetch_add(1, Ordering::SeqCst);
    let n = ctx.rank.size();
    let mark = msg::encode_barrier_mark(db.id, epoch);
    for r in 0..n {
        ctx.comm_req.send(r, tags::BARRIER_MARK, mark.clone());
    }
    let mark_stamp = if !fi::enabled() {
        let mut sync = db.sync.lock();
        loop {
            if let Some(&(count, stamp)) = sync.barrier_marks.get(&epoch) {
                if count == n {
                    sync.barrier_marks.remove(&epoch);
                    break stamp;
                }
            }
            db.sync_cv.wait(&mut sync);
        }
    } else {
        // Fault plane on: a dead rank never sends its mark, so the wait is
        // timed and probes the failure detector between slices (outside the
        // sync lock so the handler can keep recording marks). The dead rank
        // is reported by number instead of hanging the barrier.
        await_barrier_marks_faulty(ctx, db, epoch, n).map_err(|e| {
            if let Error::RankUnavailable(dead) = e {
                maybe_promote(ctx, db, dead);
            }
            e
        })?
    };
    clock.merge(mark_stamp);
    clock.merge(db.ingest_backlog.now());

    if level == BarrierLevel::SsTable {
        freeze_local(ctx, db, clock.now());
        let mut sync = db.sync.lock();
        while sync.pending_flushes > 0 {
            db.sync_cv.wait(&mut sync);
        }
        drop(sync);
        clock.merge(db.flush_backlog.now());
    }

    if fi::enabled() {
        ctx.comm_ctl.try_barrier().map_err(|dead| {
            maybe_promote(ctx, db, dead);
            Error::RankUnavailable(dead)
        })?;
    } else {
        ctx.comm_ctl.barrier();
    }
    if db.tel.on() {
        let end = clock.now();
        db.tel.barrier_wait_ns.record(end.saturating_sub(barrier_start));
        db.tel.rec.span("core", "barrier.wait", TID_APP, barrier_start, end);
    }
    Ok(())
}

/// Timed wait for all `n` barrier marks of `epoch`, probing the failure
/// detector on each timeout slice. Returns the max mark stamp, or
/// `Error::RankUnavailable` naming the first confirmed-dead rank.
fn await_barrier_marks_faulty(
    ctx: &CtxInner,
    db: &Arc<DbInner>,
    epoch: u64,
    n: usize,
) -> Result<SimNs> {
    loop {
        {
            let mut sync = db.sync.lock();
            if let Some(&(count, stamp)) = sync.barrier_marks.get(&epoch) {
                if count == n {
                    sync.barrier_marks.remove(&epoch);
                    return Ok(stamp);
                }
            }
            if !db.sync_cv.wait_for(&mut sync, Duration::from_millis(10)).timed_out() {
                continue; // woken by a new mark: re-check under the lock
            }
        }
        // Slice expired with marks missing: waiting burns virtual time too
        // (without this a waiter whose clock lags the plan's kill times
        // would probe "alive" forever), then suspect a dead sender. Self
        // counts — see `Communicator::any_dead_member`. Only with the
        // plane armed: an unconditional advance would bill fault-free
        // runs for wall-clock scheduling noise.
        if fi::enabled() {
            ctx.clock().advance(fi::PROBE_DEADLINE_CAP_NS);
        }
        if let Some((_, world)) = ctx.comm_req.any_dead_member() {
            return Err(Error::RankUnavailable(world));
        }
    }
}

// ---------------------------------------------------------------------------
// Public handle
// ---------------------------------------------------------------------------

/// A PapyrusKV database handle (`papyruskv_db_t`).
///
/// Obtained from [`Context::open`]; cheap to clone. Operations map 1:1 to
/// the paper's Table 1 API. `put`/`get`/`delete`/`fence` are per-rank;
/// `barrier`, `set_consistency`, `protect`, `checkpoint`, `close`, and
/// `destroy` are collective.
#[derive(Clone)]
pub struct Db {
    ctx: Arc<CtxInner>,
    inner: Arc<DbInner>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("name", &self.inner.name)
            .field("rank", &self.ctx.rank.rank())
            .field("sstables", &self.inner.ssts.read().len())
            .finish()
    }
}

impl Db {
    pub(crate) fn new(ctx: Arc<CtxInner>, inner: Arc<DbInner>) -> Self {
        Self { ctx, inner }
    }

    /// Internal handles for the invariant auditor (`crate::sanity`).
    pub(crate) fn sanity_parts(&self) -> (&Arc<CtxInner>, &Arc<DbInner>) {
        (&self.ctx, &self.inner)
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Owner rank of a key under this database's hash.
    pub fn owner_of(&self, key: &[u8]) -> usize {
        self.inner.dist.owner(key)
    }

    /// `papyruskv_put`: insert or update a key-value pair.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write_entry(key, Bytes::copy_from_slice(value), false)
    }

    /// `papyruskv_delete`: delete a key (a put of a zero-length value with
    /// the tombstone bit set, §2.5).
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        self.write_entry(key, Bytes::new(), true)
    }

    fn write_entry(&self, key: &[u8], value: Bytes, tombstone: bool) -> Result<()> {
        self.inner.check_open()?;
        if key.is_empty() {
            return Err(Error::InvalidArgument("empty key"));
        }
        let state = *self.inner.state.read();
        if state.protection == Protection::ReadOnly {
            return Err(Error::Protected);
        }
        let ctx = &self.ctx;
        let db = &self.inner;
        let clock = ctx.clock();
        db.put_stats.record((key.len() + value.len()) as u64);
        let start = clock.now();

        let owner = db.dist.owner(key);
        let me = ctx.rank.rank();
        if owner == me {
            pkv_trace!("[r{me}] put local key={:?}", String::from_utf8_lossy(key));
            let repl_val = if db.repl_n >= 2 { Some(value.clone()) } else { None };
            let entry = if tombstone { Entry::tombstone() } else { Entry::value(value) };
            insert_local_entry(ctx, db, key, entry, clock);
            if let Some(v) = repl_val {
                match state.consistency {
                    Consistency::Sequential => {
                        // Synchronous fan-out: the put does not return until
                        // every live successor holds the record (DESIGN §11).
                        let rec = KvRecord { key: key.to_vec(), value: v, tombstone };
                        forward_replicas(
                            ctx,
                            db,
                            me,
                            std::slice::from_ref(&rec),
                            clock.now(),
                            true,
                        )?;
                    }
                    Consistency::Relaxed => {
                        // Stage the copy in the remote MemTable under owner =
                        // me — the bounded replication queue. The dispatcher's
                        // migration pass fans owner==me groups out to the
                        // successors, and the FIFO barrier mark proves they
                        // are ingested before the barrier completes.
                        let mem = &ctx.platform.profile.mem;
                        clock.advance(mem.op_ns((key.len() + v.len()) as u64));
                        let over = {
                            let mut remote = db.remote.lock();
                            remote.insert(key, Entry::remote(v, tombstone, me as u32));
                            remote.bytes() >= db.opt.remote_memtable_capacity
                        };
                        if over {
                            freeze_remote(ctx, db, clock.now());
                        }
                    }
                }
            }
            if db.tel.on() {
                db.tel.put_local.inc();
                db.tel.put_ns.record(clock.now().saturating_sub(start));
            }
            return Ok(());
        }
        match state.consistency {
            Consistency::Relaxed => {
                let mem = &ctx.platform.profile.mem;
                clock.advance(mem.op_ns((key.len() + value.len()) as u64));
                if db.opt.remote_cache {
                    db.remote_cache.lock().invalidate(key);
                }
                pkv_trace!(
                    "[r{me}] put remote key={:?} owner={owner}",
                    String::from_utf8_lossy(key)
                );
                let over = {
                    let mut remote = db.remote.lock();
                    remote.insert(key, Entry::remote(value, tombstone, owner as u32));
                    remote.bytes() >= db.opt.remote_memtable_capacity
                };
                if over {
                    freeze_remote(ctx, db, clock.now());
                }
                if db.tel.on() {
                    db.tel.put_remote.inc();
                    db.tel.put_ns.record(clock.now().saturating_sub(start));
                }
                Ok(())
            }
            Consistency::Sequential => {
                // "sent to the remote owner rank synchronously and directly
                // without staging in the remote MemTable" (§3.1). Under the
                // fault plane the synchronous put is deadline-guarded and
                // retried (idempotent re-apply); a confirmed-dead owner
                // surfaces as `Error::RankUnavailable`.
                let rec = KvRecord { key: key.to_vec(), value, tombstone };
                if fi::enabled() {
                    crate::runtime::rpc_with_retry(
                        ctx,
                        &db.tel,
                        owner,
                        tags::PUT_SYNC,
                        tags::PUT_ACK,
                        "synchronous put",
                        &mut |seq| msg::encode_put_sync(db.id, seq, &rec),
                    )
                    .map_err(|e| {
                        if let Error::RankUnavailable(dead) = e {
                            maybe_promote(ctx, db, dead);
                        }
                        e
                    })?;
                } else {
                    ctx.comm_req.send(owner, tags::PUT_SYNC, msg::encode_put_sync(db.id, 0, &rec));
                    ctx.comm_rep.recv(
                        papyrus_mpi::RecvSrc::Rank(owner),
                        papyrus_mpi::RecvTag::Tag(tags::PUT_ACK),
                    );
                }
                if db.repl_n >= 2 {
                    // The owner has acked; its successors must hold the
                    // record before this put returns, so a single rank kill
                    // cannot lose an acked sequential write.
                    forward_replicas(
                        ctx,
                        db,
                        owner,
                        std::slice::from_ref(&rec),
                        clock.now(),
                        true,
                    )?;
                }
                if db.tel.on() {
                    db.tel.put_sync.inc();
                    db.tel.put_ns.record(clock.now().saturating_sub(start));
                }
                Ok(())
            }
        }
    }

    /// `papyruskv_get`: retrieve the value for `key`. Returns
    /// `Err(Error::NotFound)` if absent or deleted (the C API's
    /// `PAPYRUSKV_NOT_FOUND`).
    pub fn get(&self, key: &[u8]) -> Result<Bytes> {
        self.inner.check_open()?;
        if key.is_empty() {
            return Err(Error::InvalidArgument("empty key"));
        }
        let ctx = &self.ctx;
        let db = &self.inner;
        let clock = ctx.clock();
        db.get_stats.record(key.len() as u64);
        let start = clock.now();
        let owner = db.dist.owner(key);
        let me = ctx.rank.rank();
        let res = if owner == me {
            let res = local_get(ctx, db, key, clock);
            if db.tel.on() {
                db.tel.get_local.inc();
                db.tel.get_local_ns.record(clock.now().saturating_sub(start));
            }
            res
        } else {
            let res = remote_get(ctx, db, key, owner, clock);
            if db.tel.on() {
                db.tel.get_remote.inc();
                db.tel.get_remote_ns.record(clock.now().saturating_sub(start));
            }
            res?
        };
        match res {
            Lookup::Found(v) => Ok(v),
            Lookup::Tombstone | Lookup::Miss => Err(Error::NotFound),
        }
    }

    /// Convenience: `get` with `Option` instead of `NotFound` errors.
    pub fn get_opt(&self, key: &[u8]) -> Result<Option<Bytes>> {
        match self.get(key) {
            Ok(v) => Ok(Some(v)),
            Err(Error::NotFound) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// `papyruskv_fence`: drain this rank's remote MemTables to the owners.
    pub fn fence(&self) -> Result<()> {
        self.inner.check_open()?;
        fence_inner(&self.ctx, &self.inner)
    }

    /// `papyruskv_barrier`: collective memory fence with a flushing level.
    pub fn barrier(&self, level: BarrierLevel) -> Result<()> {
        self.inner.check_open()?;
        barrier_inner(&self.ctx, &self.inner, level)
    }

    /// `papyruskv_consistency`: collectively switch consistency mode (§3.1).
    pub fn set_consistency(&self, mode: Consistency) -> Result<()> {
        self.inner.check_open()?;
        barrier_inner(&self.ctx, &self.inner, BarrierLevel::MemTable)?;
        self.inner.state.write().consistency = mode;
        Ok(())
    }

    /// Current consistency mode.
    pub fn consistency(&self) -> Consistency {
        self.inner.state.read().consistency
    }

    /// `papyruskv_protect`: collectively switch the protection attribute
    /// (§3.2). Entering `WriteOnly` invalidates and disables the local
    /// cache; leaving `ReadOnly` evicts and disables the remote cache.
    pub fn protect(&self, prot: Protection) -> Result<()> {
        self.inner.check_open()?;
        barrier_inner(&self.ctx, &self.inner, BarrierLevel::MemTable)?;
        let prev = {
            let mut st = self.inner.state.write();
            let prev = st.protection;
            st.protection = prot;
            prev
        };
        if prot == Protection::WriteOnly {
            self.inner.local_cache.lock().clear();
        }
        if prev == Protection::ReadOnly && prot != Protection::ReadOnly {
            self.inner.remote_cache.lock().clear();
        }
        Ok(())
    }

    /// Current protection attribute.
    pub fn protection(&self) -> Protection {
        self.inner.state.read().protection
    }

    /// `papyruskv_close`: collective close; all data is flushed to SSTables
    /// which remain in the repository for zero-copy reopen (§4.1).
    pub fn close(&self) -> Result<()> {
        close_inner(&self.ctx, &self.inner)
    }

    /// `papyruskv_checkpoint`: asynchronously snapshot the database to
    /// `dest` on the parallel file system (§4.2). Collective. The returned
    /// [`Event`] completes when this rank's transfer finishes.
    pub fn checkpoint(&self, dest: &str) -> Result<Event> {
        self.inner.check_open()?;
        ckpt::checkpoint(&self.ctx, &self.inner, dest)
    }

    /// `papyruskv_destroy`: collectively remove the database and all its
    /// data from NVM.
    pub fn destroy(&self) -> Result<Event> {
        self.inner.check_open()?;
        close_inner(&self.ctx, &self.inner)?;
        let clock = self.ctx.clock();
        let store = self.ctx.repo_store();
        let me = self.ctx.rank.rank();
        let prefix = format!("{}/{}/r{}/", self.ctx.repo.prefix, self.inner.name, me);
        let mut t = clock.now();
        for obj in store.list(&prefix) {
            let (_, done) = store.delete_at(&obj, t);
            t = done;
        }
        self.ctx.comm_ctl.barrier();
        Ok(Event::completed(clock.clone(), t))
    }

    /// Put-side statistics (ops, bytes).
    pub fn put_stats(&self) -> &OpStats {
        &self.inner.put_stats
    }

    /// Get-side statistics (ops, bytes, cache hits/misses).
    pub fn get_stats(&self) -> &OpStats {
        &self.inner.get_stats
    }

    /// Drain the typed errors raised by background threads (migration to a
    /// confirmed-dead owner, `ENOSPC` during flush or compaction). Empty in
    /// a healthy run; under the fault plane applications poll this after
    /// fences/barriers to learn about degraded-mode data.
    pub fn take_io_errors(&self) -> Vec<Error> {
        std::mem::take(&mut *self.inner.io_errors.lock())
    }

    /// Number of live SSTables on this rank (diagnostics).
    pub fn sstable_count(&self) -> usize {
        self.inner.ssts.read().len()
    }

    /// Bytes currently staged in the local MemTable (diagnostics).
    pub fn memtable_bytes(&self) -> u64 {
        self.inner.local.read().bytes()
    }

    /// Whether `key` is still staged on this rank awaiting migration —
    /// in the mutable remote MemTable or a frozen immutable one
    /// (diagnostics). The serve plane's durability oracle asserts this is
    /// `false` at write-ack time: a fenced record has left the staging
    /// area and been ingested by its owner (the FIFO-channel argument
    /// behind `BARRIER_MARK` then extends ingestion to durability).
    pub fn staged_remote_contains(&self, key: &[u8]) -> bool {
        if self.inner.remote.lock().get(key).is_some() {
            return true;
        }
        self.inner.imm_remote.read().iter().any(|m| m.get(key).is_some())
    }
}

/// `papyruskv_restart` lives on [`Context`] since it creates the database.
impl Context {
    /// Revert database `name` from the snapshot at `path` (§4.2). If the
    /// snapshot was taken with the same number of ranks (and
    /// `force_redistribute` is off), SSTables are copied back verbatim;
    /// otherwise every key-value pair is re-put under the new distribution
    /// ("restart with redistribution", Figure 5(c)).
    ///
    /// Collective. Returns the database and an [`Event`] carrying the
    /// virtual completion time of the transfer.
    pub fn restart(
        &self,
        path: &str,
        name: &str,
        flags: OpenFlags,
        opt: Options,
        force_redistribute: bool,
    ) -> Result<(Db, Event)> {
        ckpt::restart(self, path, name, flags, opt, force_redistribute)
    }
}
