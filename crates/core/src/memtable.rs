//! MemTables: the in-memory write staging structure (paper §2.3-§2.4).
//!
//! A database owns four kinds of MemTable — local, immutable local, remote,
//! and immutable remote. All four share this one structure: a red-black tree
//! of entries plus byte accounting. "Immutable" is a usage mode: a frozen
//! table is wrapped in `Arc` and only read (by gets walking the flushing /
//! migration queues, and by the compaction or dispatcher thread consuming
//! it).

use bytes::Bytes;

use crate::rbtree::RbTree;

/// Fixed per-entry metadata overhead counted against the MemTable capacity
/// (tree node links, tombstone flag, owner rank).
pub const ENTRY_OVERHEAD: u64 = 24;

/// Marker for entries in local MemTables, which carry no owner rank.
pub const NO_OWNER: u32 = u32::MAX;

/// One key's state in a MemTable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Value bytes; empty for tombstones.
    pub value: Bytes,
    /// Deletion marker: "PapyrusKV regards a delete operation as a put
    /// operation with zero-length value and a tombstone bit set to one"
    /// (§2.5).
    pub tombstone: bool,
    /// Owner rank — only meaningful in *remote* MemTables, where each pair
    /// records which rank it must migrate to (§2.4). [`NO_OWNER`] otherwise.
    pub owner: u32,
}

impl Entry {
    /// A live local value.
    pub fn value(v: Bytes) -> Self {
        Self { value: v, tombstone: false, owner: NO_OWNER }
    }

    /// A local tombstone.
    pub fn tombstone() -> Self {
        Self { value: Bytes::new(), tombstone: true, owner: NO_OWNER }
    }

    /// A remote entry destined for `owner`.
    pub fn remote(v: Bytes, tombstone: bool, owner: u32) -> Self {
        Self { value: v, tombstone, owner }
    }
}

/// An in-memory, byte-accounted, key-sorted table of [`Entry`]s.
#[derive(Debug, Default)]
pub struct MemTable {
    tree: RbTree<Entry>,
    bytes: u64,
}

impl MemTable {
    /// Empty table.
    pub fn new() -> Self {
        Self { tree: RbTree::new(), bytes: 0 }
    }

    /// Number of entries (tombstones included).
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Approximate memory footprint in bytes; compared against the MemTable
    /// capacity to decide freezing (§2.4 "when the local MemTable's size
    /// reaches its capacity limit...").
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn entry_size(key: &[u8], e: &Entry) -> u64 {
        key.len() as u64 + e.value.len() as u64 + ENTRY_OVERHEAD
    }

    /// Insert or replace. "If another key-value pair that has the same key
    /// already exists, PapyrusKV deletes the old one before it inserts the
    /// new one" (§2.4).
    pub fn insert(&mut self, key: &[u8], entry: Entry) {
        let new_size = Self::entry_size(key, &entry);
        match self.tree.insert(key, entry) {
            Some(old) => {
                self.bytes = self.bytes - Self::entry_size(key, &old) + new_size;
            }
            None => self.bytes += new_size,
        }
    }

    /// Look up an entry (tombstones are returned — the caller decides what a
    /// tombstone means at its level of the search).
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        self.tree.get(key)
    }

    /// Remove an entry outright (used when draining remote MemTables, not by
    /// the delete API — deletes insert tombstones).
    pub fn remove(&mut self, key: &[u8]) -> Option<Entry> {
        let old = self.tree.remove(key)?;
        self.bytes -= Self::entry_size(key, &old);
        Some(old)
    }

    /// Key-sorted iteration.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &Entry)> {
        self.tree.iter()
    }

    /// Consume into a key-sorted vector (SSTable flush input; SSData "stored
    /// data are sorted by key").
    pub fn into_sorted_entries(self) -> Vec<(Vec<u8>, Entry)> {
        self.tree.into_sorted_vec()
    }

    /// Freeze: take the current contents out, leaving this table empty. The
    /// returned table becomes the immutable MemTable; "a new MemTable is
    /// created to handle new writes" (§2.4).
    pub fn freeze(&mut self) -> MemTable {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn insert_and_get() {
        let mut m = MemTable::new();
        m.insert(b"k1", Entry::value(bv(b"v1")));
        assert_eq!(m.get(b"k1").unwrap().value.as_ref(), b"v1");
        assert!(m.get(b"nope").is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn byte_accounting_on_insert_replace_remove() {
        let mut m = MemTable::new();
        m.insert(b"key", Entry::value(bv(b"12345")));
        assert_eq!(m.bytes(), 3 + 5 + ENTRY_OVERHEAD);
        m.insert(b"key", Entry::value(bv(b"1")));
        assert_eq!(m.bytes(), 3 + 1 + ENTRY_OVERHEAD);
        m.remove(b"key");
        assert_eq!(m.bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn tombstone_is_an_entry() {
        let mut m = MemTable::new();
        m.insert(b"k", Entry::value(bv(b"v")));
        m.insert(b"k", Entry::tombstone());
        let e = m.get(b"k").unwrap();
        assert!(e.tombstone);
        assert!(e.value.is_empty());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remote_entry_carries_owner() {
        let mut m = MemTable::new();
        m.insert(b"k", Entry::remote(bv(b"v"), false, 7));
        assert_eq!(m.get(b"k").unwrap().owner, 7);
        assert_eq!(Entry::value(bv(b"v")).owner, NO_OWNER);
    }

    #[test]
    fn freeze_leaves_empty_table() {
        let mut m = MemTable::new();
        for i in 0..10u8 {
            m.insert(&[i], Entry::value(bv(&[i; 4])));
        }
        let frozen = m.freeze();
        assert_eq!(frozen.len(), 10);
        assert!(frozen.bytes() > 0);
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
        // The live table keeps working after a freeze.
        m.insert(b"new", Entry::value(bv(b"x")));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn into_sorted_entries_sorted_by_key() {
        let mut m = MemTable::new();
        for k in [&b"zz"[..], b"aa", b"mm", b"bb"] {
            m.insert(k, Entry::value(bv(b"v")));
        }
        let v = m.into_sorted_entries();
        let keys: Vec<&[u8]> = v.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"aa"[..], b"bb", b"mm", b"zz"]);
    }

    #[test]
    fn iter_sees_tombstones() {
        let mut m = MemTable::new();
        m.insert(b"a", Entry::value(bv(b"1")));
        m.insert(b"b", Entry::tombstone());
        let tombs: Vec<bool> = m.iter().map(|(_, e)| e.tombstone).collect();
        assert_eq!(tombs, vec![false, true]);
    }
}
