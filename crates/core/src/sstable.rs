//! SSTables: immutable sorted on-NVM tables (paper §2.4-§2.6).
//!
//! Each SSTable consists of three files:
//!
//! * **SSData** — the key-value records, sorted by key:
//!   `[keylen: u32][vallen: u32][tombstone: u8][key][value]*`
//! * **SSIndex** — "the offsets and lengths of keys of the key-value pairs
//!   in SSData": `[count: u64][record offset: u64]*` (lengths live in the
//!   record headers the offsets point at).
//! * **bloom** — the serialized [`crate::bloom::Bloom`] filter.
//!
//! Gets consult the bloom filter first; on a maybe-hit, either **binary
//! search** SSData via the in-memory SSIndex (O(log n) random NVM reads —
//! the §2.6 optimisation exploiting NVM's fast random access) or **linear
//! scan** SSData from the start (the Figure 8 "Default" baseline).
//!
//! SSTables are immutable: updates and deletes go to new SSTables with
//! higher SSIDs; [`merge`] implements the §2.5 compaction that folds a set
//! of SSTables into one, newest-SSID-wins.

use std::collections::BTreeMap;

use bytes::Bytes;
use papyrus_nvm::NvmStore;
use papyrus_simtime::{AccessPattern, SimNs};

use crate::bloom::Bloom;
use crate::error::{Error, Result};
use crate::memtable::Entry;

/// Per-database, per-rank, unique increasing SSTable number, starting at 1.
pub type Ssid = u64;

/// Parsed SSTable records: (key, entry) pairs in file order.
pub type Records = Vec<(Vec<u8>, Entry)>;

const RECORD_HEADER: u64 = 9; // keylen u32 + vallen u32 + tombstone u8

/// Outcome of searching one SSTable for a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SstGet {
    /// Key found with a live value.
    Found(Bytes),
    /// Key found but tombstoned (search stops: the key is deleted).
    Tombstone,
    /// Key not in this SSTable (search continues in older tables).
    NotFound,
}

/// The three object names of an SSTable at `base` (no extension).
fn paths(base: &str) -> (String, String, String) {
    (format!("{base}.data"), format!("{base}.index"), format!("{base}.bloom"))
}

/// Canonical base path of an SSTable:
/// `<repo>/<db>/r<rank>/sst<ssid, zero padded>`.
pub fn sst_base(repo: &str, db: &str, rank: usize, ssid: Ssid) -> String {
    format!("{repo}/{db}/r{rank}/sst{ssid:010}")
}

/// Base path of a *replica* SSTable held by `rank` for `origin`'s ranges
/// (DESIGN §11). The `rep<origin>-` prefix keeps replica tables in a
/// namespace disjoint from primary `sst*` files: salvage, the manifest,
/// and checkpoint all match on the `sst` prefix and therefore never see
/// replica data, while `destroy` removes the whole `r<rank>/` directory
/// and takes replica files with it.
pub fn repl_sst_base(repo: &str, db: &str, rank: usize, origin: usize, ssid: Ssid) -> String {
    format!("{repo}/{db}/r{rank}/rep{origin:04}-sst{ssid:010}")
}

/// Build one SSTable from key-sorted entries, writing its three files with
/// one sequential submission each starting at `now`.
///
/// Returns `(reader, completion stamp)`. Entries must be sorted by key
/// (MemTables iterate in key order, so flushes satisfy this by
/// construction); this is asserted in debug builds.
pub fn build_at(
    store: &NvmStore,
    base: &str,
    ssid: Ssid,
    entries: &[(Vec<u8>, Entry)],
    now: SimNs,
) -> (SstReader, SimNs) {
    debug_assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "SSTable input must be strictly key-sorted"
    );
    let (data_path, index_path, bloom_path) = paths(base);

    let mut data = Vec::new();
    let mut offsets: Vec<u64> = Vec::with_capacity(entries.len());
    let mut bloom = Bloom::with_capacity(entries.len(), 10);
    for (key, e) in entries {
        offsets.push(data.len() as u64);
        bloom.insert(key);
        data.extend_from_slice(&(key.len() as u32).to_le_bytes());
        data.extend_from_slice(&(e.value.len() as u32).to_le_bytes());
        data.push(u8::from(e.tombstone));
        data.extend_from_slice(key);
        data.extend_from_slice(&e.value);
    }
    let mut index = Vec::with_capacity(8 + offsets.len() * 8);
    index.extend_from_slice(&(offsets.len() as u64).to_le_bytes());
    for off in &offsets {
        index.extend_from_slice(&off.to_le_bytes());
    }

    let data_len = data.len() as u64;
    let t1 = store.put_at(&data_path, Bytes::from(data), now);
    let t2 = store.put_at(&index_path, Bytes::from(index), t1);
    let done = store.put_at(&bloom_path, Bytes::from(bloom.to_bytes()), t2);

    let reader =
        SstReader { store: store.clone(), base: base.to_string(), ssid, offsets, bloom, data_len };
    (reader, done)
}

/// Fallible [`build_at`]: the three file writes surface injected NVM faults
/// (`PAPYRUS_FAULTS`) instead of riding them out. On `Err` a partial triple
/// may remain — it is unreferenced debris (the manifest is only updated
/// after a successful build) and whole-file rewrites overwrite it cleanly.
pub fn try_build_at(
    store: &NvmStore,
    base: &str,
    ssid: Ssid,
    entries: &[(Vec<u8>, Entry)],
    now: SimNs,
) -> std::result::Result<(SstReader, SimNs), papyrus_nvm::IoFault> {
    debug_assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "SSTable input must be strictly key-sorted"
    );
    let (data_path, index_path, bloom_path) = paths(base);

    let mut data = Vec::new();
    let mut offsets: Vec<u64> = Vec::with_capacity(entries.len());
    let mut bloom = Bloom::with_capacity(entries.len(), 10);
    for (key, e) in entries {
        offsets.push(data.len() as u64);
        bloom.insert(key);
        data.extend_from_slice(&(key.len() as u32).to_le_bytes());
        data.extend_from_slice(&(e.value.len() as u32).to_le_bytes());
        data.push(u8::from(e.tombstone));
        data.extend_from_slice(key);
        data.extend_from_slice(&e.value);
    }
    let mut index = Vec::with_capacity(8 + offsets.len() * 8);
    index.extend_from_slice(&(offsets.len() as u64).to_le_bytes());
    for off in &offsets {
        index.extend_from_slice(&off.to_le_bytes());
    }

    let data_len = data.len() as u64;
    let t1 = store.try_put_at(&data_path, Bytes::from(data), now)?;
    let t2 = store.try_put_at(&index_path, Bytes::from(index), t1)?;
    let done = store.try_put_at(&bloom_path, Bytes::from(bloom.to_bytes()), t2)?;

    let reader =
        SstReader { store: store.clone(), base: base.to_string(), ssid, offsets, bloom, data_len };
    Ok((reader, done))
}

/// An open SSTable: bloom filter and SSIndex held in memory ("PapyrusKV
/// loads the SSIndex in memory and searches SSData", §2.6); SSData probed
/// through the cost-accounted store.
#[derive(Debug, Clone)]
pub struct SstReader {
    store: NvmStore,
    base: String,
    ssid: Ssid,
    offsets: Vec<u64>,
    bloom: Bloom,
    data_len: u64,
}

impl SstReader {
    /// Open an SSTable at `base`, charging the open/metadata and
    /// bloom+index read costs starting at `now`. Returns `None` if the
    /// SSTable's files are missing (e.g. deleted by a concurrent compaction
    /// in the owner rank — callers skip it).
    pub fn open_at(store: &NvmStore, base: &str, ssid: Ssid, now: SimNs) -> Option<(Self, SimNs)> {
        let (data_path, index_path, bloom_path) = paths(base);
        let t = store.open_at(now);
        let (bloom_bytes, t) = store.read_all_at(&bloom_path, t)?;
        let bloom = Bloom::from_bytes(&bloom_bytes)?;
        let (index_bytes, t) = store.read_all_at(&index_path, t)?;
        if index_bytes.len() < 8 {
            return None;
        }
        let count = u64::from_le_bytes(index_bytes[0..8].try_into().ok()?) as usize;
        if index_bytes.len() != 8 + count * 8 {
            return None;
        }
        let offsets = index_bytes[8..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap())) // lint:allow(panic-path): chunks_exact(8) yields exactly-8-byte chunks
            .collect();
        let data_len = store.len(&data_path)?;
        Some((
            Self { store: store.clone(), base: base.to_string(), ssid, offsets, bloom, data_len },
            t,
        ))
    }

    /// This table's SSID.
    pub fn ssid(&self) -> Ssid {
        self.ssid
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// SSData size in bytes.
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Base object path.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// Bloom-filter membership pre-test (in-memory, free): "given an
    /// arbitrary key, it identifies whether the key may exist or definitely
    /// does not exist in the SSData" (§2.4).
    pub fn maybe_contains(&self, key: &[u8]) -> bool {
        self.bloom.maybe_contains(key)
    }

    // Read and parse the record at offset `off`. Returns
    // (key, value, tombstone, modelled-bytes-touched). `None` on missing
    // or corrupt data.
    fn read_record(&self, off: u64) -> Option<(Bytes, Bytes, bool, u64)> {
        let backend = self.store.backend();
        let (data_path, _, _) = paths(&self.base);
        let header = backend.get(&data_path, off, RECORD_HEADER)?;
        if header.len() < RECORD_HEADER as usize {
            return None;
        }
        let keylen = u32::from_le_bytes(header[0..4].try_into().ok()?) as u64;
        let vallen = u32::from_le_bytes(header[4..8].try_into().ok()?) as u64;
        let tomb = header[8] != 0;
        let key = backend.get(&data_path, off + RECORD_HEADER, keylen)?;
        let value = backend.get(&data_path, off + RECORD_HEADER + keylen, vallen)?;
        if key.len() as u64 != keylen || value.len() as u64 != vallen {
            return None;
        }
        Some((key, value, tomb, RECORD_HEADER + keylen + vallen))
    }

    /// Search for `key` starting at `now`.
    ///
    /// `bin_search = true`: O(log n) random-access probes of SSData guided
    /// by the in-memory SSIndex. `false`: sequential scan of SSData from the
    /// start (the cost contrast behind Figure 8).
    pub fn get_at(&self, key: &[u8], bin_search: bool, now: SimNs) -> (SstGet, SimNs) {
        if !self.maybe_contains(key) {
            return (SstGet::NotFound, now);
        }
        if bin_search {
            self.get_binary(key, now)
        } else {
            self.get_linear(key, now)
        }
    }

    fn get_binary(&self, key: &[u8], now: SimNs) -> (SstGet, SimNs) {
        let mut t = now;
        let mut lo = 0usize;
        let mut hi = self.offsets.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let Some((k, v, tomb, _)) = self.read_record(self.offsets[mid]) else {
                return (SstGet::NotFound, t);
            };
            // One random probe touches the header + key (+ value on hit).
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => {
                    let touched = RECORD_HEADER + k.len() as u64 + v.len() as u64;
                    t = self.charge_read(touched, AccessPattern::Random, t);
                    return if tomb { (SstGet::Tombstone, t) } else { (SstGet::Found(v), t) };
                }
                std::cmp::Ordering::Less => hi = mid,
                std::cmp::Ordering::Greater => lo = mid + 1,
            }
            t = self.charge_read(RECORD_HEADER + k.len() as u64, AccessPattern::Random, t);
        }
        (SstGet::NotFound, t)
    }

    fn get_linear(&self, key: &[u8], now: SimNs) -> (SstGet, SimNs) {
        let mut scanned = 0u64;
        for &off in &self.offsets {
            let Some((k, v, tomb, rec_bytes)) = self.read_record(off) else {
                break;
            };
            scanned += rec_bytes;
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => {
                    let t = self.charge_read(scanned, AccessPattern::Sequential, now);
                    return if tomb { (SstGet::Tombstone, t) } else { (SstGet::Found(v), t) };
                }
                // Records are sorted: once past the key, it's absent.
                std::cmp::Ordering::Less => break,
                std::cmp::Ordering::Greater => {}
            }
        }
        (SstGet::NotFound, self.charge_read(scanned.max(1), AccessPattern::Sequential, now))
    }

    fn charge_read(&self, bytes: u64, pattern: AccessPattern, now: SimNs) -> SimNs {
        let cost = self.store.device().read_ns(bytes, pattern);
        self.store.queue().submit_shared(now, cost, self.store.device().parallelism)
    }

    /// Sequentially read and parse every record (compaction, restart with
    /// redistribution). Charges one full sequential read.
    pub fn scan_all_at(&self, now: SimNs) -> Result<(Records, SimNs)> {
        let (data_path, _, _) = paths(&self.base);
        let Some(data) = self.store.backend().get_all(&data_path) else {
            return Err(Error::Internal(format!("SSData missing: {data_path}")));
        };
        let t = self.charge_read(data.len().max(1) as u64, AccessPattern::Sequential, now);
        let mut out = Vec::with_capacity(self.offsets.len());
        let mut pos = 0usize;
        while pos + RECORD_HEADER as usize <= data.len() {
            let (keylen, vallen) =
                match (data[pos..pos + 4].try_into(), data[pos + 4..pos + 8].try_into()) {
                    (Ok(k), Ok(v)) => {
                        (u32::from_le_bytes(k) as usize, u32::from_le_bytes(v) as usize)
                    }
                    _ => return Err(Error::Internal(format!("corrupt SSData: {data_path}"))),
                };
            let tomb = data[pos + 8] != 0;
            pos += RECORD_HEADER as usize;
            if pos + keylen + vallen > data.len() {
                return Err(Error::Internal(format!("corrupt SSData: {data_path}")));
            }
            let key = data[pos..pos + keylen].to_vec();
            let value = data.slice(pos + keylen..pos + keylen + vallen);
            pos += keylen + vallen;
            out.push((key, Entry { value, tombstone: tomb, owner: crate::memtable::NO_OWNER }));
        }
        Ok((out, t))
    }

    /// Read and parse every record WITHOUT charging virtual time — for the
    /// `papyruskv::sanity` auditor, which must observe the store without
    /// perturbing the simulation's cost model. `None` on missing/corrupt
    /// SSData (the auditor reports that as a finding, not a panic).
    pub fn records_uncharged(&self) -> Option<Records> {
        let (data_path, _, _) = paths(&self.base);
        let data = self.store.backend().get_all(&data_path)?;
        let mut out = Vec::with_capacity(self.offsets.len());
        let mut pos = 0usize;
        while pos + RECORD_HEADER as usize <= data.len() {
            let keylen = u32::from_le_bytes(data[pos..pos + 4].try_into().ok()?) as usize;
            let vallen = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().ok()?) as usize;
            let tomb = data[pos + 8] != 0;
            pos += RECORD_HEADER as usize;
            if pos + keylen + vallen > data.len() {
                return None;
            }
            let key = data[pos..pos + keylen].to_vec();
            let value = data.slice(pos + keylen..pos + keylen + vallen);
            pos += keylen + vallen;
            out.push((key, Entry { value, tombstone: tomb, owner: crate::memtable::NO_OWNER }));
        }
        Some(out)
    }

    /// Delete this SSTable's three files starting at `now` (post-compaction
    /// cleanup, §2.5 "the old SSTables are deleted to save storage space").
    pub fn delete_files_at(&self, now: SimNs) -> SimNs {
        let (d, i, b) = paths(&self.base);
        let (_, t) = self.store.delete_at(&d, now);
        let (_, t) = self.store.delete_at(&i, t);
        let (_, t) = self.store.delete_at(&b, t);
        t
    }
}

/// Merge a set of SSTables into one new table with SSID `new_ssid`
/// (§2.5 compaction). `tables` in any order; for duplicate keys "the
/// key-value pair in the newest SSTable that has the highest SSID is
/// inserted in the new merged SSTable". When `drop_tombstones` is set
/// (legal when merging *all* live tables), deleted keys vanish entirely.
///
/// Returns the merged reader and the completion stamp. The inputs are NOT
/// deleted — the caller swaps the live set first, then deletes.
pub fn merge_at(
    store: &NvmStore,
    tables: &[SstReader],
    new_base: &str,
    new_ssid: Ssid,
    drop_tombstones: bool,
    now: SimNs,
) -> Result<(SstReader, SimNs)> {
    // "The compaction needs sequential file read because the key-value pairs
    // in each SSTable are sorted by the key" (§2.5).
    let mut t = now;
    let mut by_ssid: Vec<&SstReader> = tables.iter().collect();
    by_ssid.sort_by_key(|r| std::cmp::Reverse(r.ssid()));
    let mut merged: BTreeMap<Vec<u8>, Entry> = BTreeMap::new();
    for reader in by_ssid {
        let (entries, done) = reader.scan_all_at(t)?;
        t = done;
        for (k, e) in entries {
            // Newest-first insertion: existing keys already hold newer data.
            merged.entry(k).or_insert(e);
        }
    }
    if drop_tombstones {
        merged.retain(|_, e| !e.tombstone);
    }
    let sorted: Vec<(Vec<u8>, Entry)> = merged.into_iter().collect();
    let (reader, done) = build_at(store, new_base, new_ssid, &sorted, t);
    Ok((reader, done))
}

/// Fault-aware [`merge_at`] (fault plane on): the merged table is built
/// through [`try_build_at`]. `ENOSPC` aborts with [`Error::StorageFull`]
/// (the caller keeps the inputs live, so nothing is lost); transient EIO is
/// ridden out by falling back to the infallible build, which escapes the
/// fault window deterministically.
pub fn try_merge_at(
    store: &NvmStore,
    tables: &[SstReader],
    new_base: &str,
    new_ssid: Ssid,
    drop_tombstones: bool,
    now: SimNs,
) -> Result<(SstReader, SimNs)> {
    let mut t = now;
    let mut by_ssid: Vec<&SstReader> = tables.iter().collect();
    by_ssid.sort_by_key(|r| std::cmp::Reverse(r.ssid()));
    let mut merged: BTreeMap<Vec<u8>, Entry> = BTreeMap::new();
    for reader in by_ssid {
        let (entries, done) = reader.scan_all_at(t)?;
        t = done;
        for (k, e) in entries {
            merged.entry(k).or_insert(e);
        }
    }
    if drop_tombstones {
        merged.retain(|_, e| !e.tombstone);
    }
    let sorted: Vec<(Vec<u8>, Entry)> = merged.into_iter().collect();
    match try_build_at(store, new_base, new_ssid, &sorted, t) {
        Ok(built) => Ok(built),
        Err(papyrus_nvm::IoFault::NoSpace) => {
            Err(Error::StorageFull(format!("compaction into {new_base}")))
        }
        Err(papyrus_nvm::IoFault::TransientEio) => {
            Ok(build_at(store, new_base, new_ssid, &sorted, t))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papyrus_simtime::DeviceModel;

    fn store() -> NvmStore {
        NvmStore::in_memory(DeviceModel::nvme_summitdev())
    }

    fn entries(pairs: &[(&str, &str)]) -> Vec<(Vec<u8>, Entry)> {
        let mut v: Vec<(Vec<u8>, Entry)> = pairs
            .iter()
            .map(|(k, val)| {
                (k.as_bytes().to_vec(), Entry::value(Bytes::copy_from_slice(val.as_bytes())))
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    #[test]
    fn build_creates_three_files() {
        let s = store();
        let (r, done) = build_at(&s, "repo/db/r0/sst0000000001", 1, &entries(&[("a", "1")]), 0);
        assert!(done > 0);
        assert!(s.exists("repo/db/r0/sst0000000001.data"));
        assert!(s.exists("repo/db/r0/sst0000000001.index"));
        assert!(s.exists("repo/db/r0/sst0000000001.bloom"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn get_binary_and_linear_agree() {
        let s = store();
        let pairs: Vec<(String, String)> =
            (0..200).map(|i| (format!("key{i:04}"), format!("val{i}"))).collect();
        let refs: Vec<(&str, &str)> = pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let (r, _) = build_at(&s, "b", 1, &entries(&refs), 0);
        for i in (0..200).step_by(17) {
            let k = format!("key{i:04}");
            let (bin, _) = r.get_at(k.as_bytes(), true, 0);
            let (lin, _) = r.get_at(k.as_bytes(), false, 0);
            assert_eq!(bin, SstGet::Found(Bytes::from(format!("val{i}"))));
            assert_eq!(bin, lin);
        }
        let (bin, _) = r.get_at(b"missing", true, 0);
        let (lin, _) = r.get_at(b"missing", false, 0);
        assert_eq!(bin, SstGet::NotFound);
        assert_eq!(lin, SstGet::NotFound);
    }

    #[test]
    fn binary_search_cheaper_than_linear_for_large_tables() {
        let s = store();
        let value = "x".repeat(200);
        let pairs: Vec<(String, String)> =
            (0..20_000).map(|i| (format!("key{i:06}"), value.clone())).collect();
        let refs: Vec<(&str, &str)> = pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let (r, _) = build_at(&s, "b", 1, &entries(&refs), 0);
        s.queue().reset();
        let (_, t_bin) = r.get_at(b"key019999", true, 0);
        s.queue().reset();
        let (_, t_lin) = r.get_at(b"key019999", false, 0);
        assert!(t_bin < t_lin / 2, "binary {t_bin} should beat linear {t_lin} on a deep key");
    }

    #[test]
    fn tombstones_surface_as_tombstone() {
        let s = store();
        let mut es = entries(&[("a", "1")]);
        es.push((b"dead".to_vec(), Entry::tombstone()));
        es.sort_by(|a, b| a.0.cmp(&b.0));
        let (r, _) = build_at(&s, "b", 1, &es, 0);
        assert_eq!(r.get_at(b"dead", true, 0).0, SstGet::Tombstone);
        assert_eq!(r.get_at(b"dead", false, 0).0, SstGet::Tombstone);
    }

    #[test]
    fn open_roundtrip() {
        let s = store();
        let (built, _) = build_at(&s, "x/y", 3, &entries(&[("k1", "v1"), ("k2", "v2")]), 0);
        let (opened, t) = SstReader::open_at(&s, "x/y", 3, 0).unwrap();
        assert!(t > 0, "open must charge I/O");
        assert_eq!(opened.len(), built.len());
        assert_eq!(opened.ssid(), 3);
        assert_eq!(opened.get_at(b"k2", true, 0).0, SstGet::Found(Bytes::from_static(b"v2")));
    }

    #[test]
    fn open_missing_is_none() {
        let s = store();
        assert!(SstReader::open_at(&s, "nope", 1, 0).is_none());
    }

    #[test]
    fn scan_all_returns_everything_in_order() {
        let s = store();
        let es = entries(&[("c", "3"), ("a", "1"), ("b", "2")]);
        let (r, _) = build_at(&s, "b", 1, &es, 0);
        let (scanned, t) = r.scan_all_at(0).unwrap();
        assert!(t > 0);
        let keys: Vec<&[u8]> = scanned.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"a"[..], b"b", b"c"]);
    }

    #[test]
    fn empty_sstable_is_legal() {
        let s = store();
        let (r, _) = build_at(&s, "b", 1, &[], 0);
        assert!(r.is_empty());
        assert_eq!(r.get_at(b"k", true, 0).0, SstGet::NotFound);
        let (opened, _) = SstReader::open_at(&s, "b", 1, 0).unwrap();
        assert!(opened.is_empty());
    }

    #[test]
    fn merge_newest_ssid_wins_and_drops_tombstones() {
        let s = store();
        // sst1: a=old, b=1, dead=x
        let (t1, _) =
            build_at(&s, "r/sst1", 1, &entries(&[("a", "old"), ("b", "1"), ("dead", "x")]), 0);
        // sst2: a=new, dead tombstoned
        let mut es2 = entries(&[("a", "new")]);
        es2.push((b"dead".to_vec(), Entry::tombstone()));
        es2.sort_by(|x, y| x.0.cmp(&y.0));
        let (t2, _) = build_at(&s, "r/sst2", 2, &es2, 0);

        let (merged, _) = merge_at(&s, &[t1, t2], "r/sst3", 3, true, 0).unwrap();
        assert_eq!(merged.ssid(), 3);
        assert_eq!(merged.get_at(b"a", true, 0).0, SstGet::Found(Bytes::from_static(b"new")));
        assert_eq!(merged.get_at(b"b", true, 0).0, SstGet::Found(Bytes::from_static(b"1")));
        assert_eq!(merged.get_at(b"dead", true, 0).0, SstGet::NotFound);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_keeps_tombstones_when_asked() {
        let s = store();
        let mut es = entries(&[("a", "1")]);
        es.push((b"dead".to_vec(), Entry::tombstone()));
        es.sort_by(|x, y| x.0.cmp(&y.0));
        let (t1, _) = build_at(&s, "r/sst1", 1, &es, 0);
        let (merged, _) = merge_at(&s, &[t1], "r/sst2", 2, false, 0).unwrap();
        assert_eq!(merged.get_at(b"dead", true, 0).0, SstGet::Tombstone);
    }

    #[test]
    fn delete_files_removes_all_three() {
        let s = store();
        let (r, _) = build_at(&s, "b", 1, &entries(&[("a", "1")]), 0);
        r.delete_files_at(0);
        assert!(!s.exists("b.data"));
        assert!(!s.exists("b.index"));
        assert!(!s.exists("b.bloom"));
    }

    #[test]
    fn sst_base_layout() {
        assert_eq!(sst_base("repo", "mydb", 7, 42), "repo/mydb/r7/sst0000000042");
    }

    #[test]
    fn large_values_roundtrip() {
        let s = store();
        let big = "v".repeat(1 << 20);
        let (r, _) = build_at(&s, "b", 1, &entries(&[("k", big.as_str())]), 0);
        match r.get_at(b"k", true, 0).0 {
            SstGet::Found(v) => assert_eq!(v.len(), 1 << 20),
            other => panic!("unexpected {other:?}"),
        }
    }
}
