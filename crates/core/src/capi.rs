//! C-API compatibility layer: the exact `papyruskv_*` surface of the
//! paper's Table 1, with integer handles, flag words, and 32-bit return
//! codes — a porting aid for applications written against the original C
//! library (each call forwards to the idiomatic Rust API).
//!
//! Handles are per-rank: a [`PapyrusKv`] owns the rank's context plus the
//! descriptor tables for databases and events. Functions return
//! [`PAPYRUSKV_SUCCESS`] or a negative error code, writing results through
//! out-parameters, exactly like the C signatures.

use std::sync::Arc;

use papyrus_mpi::RankCtx;
use parking_lot::Mutex;

use crate::db::Db;
use crate::error::Error;
use crate::options::{BarrierLevel, Consistency, OpenFlags, Options, Protection};
use crate::runtime::{Context, Event, Platform};

/// Operation completed successfully.
pub const PAPYRUSKV_SUCCESS: i32 = 0;
/// Bad database descriptor (or use after close/finalize).
pub const PAPYRUSKV_INVALID_DB: i32 = -1;
/// Key not found (or deleted).
pub const PAPYRUSKV_NOT_FOUND: i32 = -2;
/// Write rejected by the protection attribute.
pub const PAPYRUSKV_PROTECTED: i32 = -3;
/// Malformed argument.
pub const PAPYRUSKV_INVALID_ARGUMENT: i32 = -4;
/// Missing or unparseable snapshot.
pub const PAPYRUSKV_INVALID_SNAPSHOT: i32 = -5;
/// Internal runtime failure.
pub const PAPYRUSKV_INTERNAL: i32 = -6;
/// Bad event descriptor.
pub const PAPYRUSKV_INVALID_EVENT: i32 = -7;

/// `papyruskv_open` flag: create the database if missing.
pub const PAPYRUSKV_CREATE: i32 = 0x1;
/// `papyruskv_open` flag: fail if the database already exists.
pub const PAPYRUSKV_EXCL: i32 = 0x2;

/// Sequential consistency mode (`papyruskv_consistency`).
pub const PAPYRUSKV_SEQUENTIAL: i32 = 1;
/// Relaxed consistency mode.
pub const PAPYRUSKV_RELAXED: i32 = 2;

/// Read-write protection (`papyruskv_protect`).
pub const PAPYRUSKV_RDWR: i32 = 0;
/// Write-only protection.
pub const PAPYRUSKV_WRONLY: i32 = 1;
/// Read-only protection.
pub const PAPYRUSKV_RDONLY: i32 = 2;

/// `papyruskv_barrier` level: migrate remote data only.
pub const PAPYRUSKV_MEMTABLE: i32 = 0;
/// `papyruskv_barrier` level: additionally flush everything to SSTables.
pub const PAPYRUSKV_SSTABLE: i32 = 1;

/// The C `papyruskv_option_t`: database configuration knobs.
#[derive(Clone, Default)]
#[allow(non_camel_case_types)]
pub struct papyruskv_option_t {
    /// Expected key length hint (advisory in this implementation).
    pub keylen: usize,
    /// Expected value length hint (advisory).
    pub vallen: usize,
    /// MemTable capacity in bytes (0 = default).
    pub memtable_size: u64,
    /// Local cache capacity in bytes (0 = default).
    pub cache_size: u64,
    /// Custom hash function (the §2.4 load-balancing hook).
    pub hash: Option<crate::hashfn::HashFn>,
}

/// Database descriptor (`papyruskv_db_t`).
#[allow(non_camel_case_types)]
pub type papyruskv_db_t = i32;
/// Event descriptor (`papyruskv_event_t`).
#[allow(non_camel_case_types)]
pub type papyruskv_event_t = i32;

fn code_of(e: &Error) -> i32 {
    e.code()
}

/// Per-rank C-API state: the context plus descriptor tables.
pub struct PapyrusKv {
    ctx: Context,
    dbs: Mutex<Vec<Option<Db>>>,
    events: Mutex<Vec<Option<Event>>>,
}

impl PapyrusKv {
    /// `papyruskv_init(&argc, &argv, repository)`. Collective.
    pub fn papyruskv_init(
        rank: RankCtx,
        platform: Arc<Platform>,
        repository: &str,
    ) -> Result<PapyrusKv, i32> {
        match Context::init(rank, platform, repository) {
            Ok(ctx) => {
                Ok(PapyrusKv { ctx, dbs: Mutex::new(Vec::new()), events: Mutex::new(Vec::new()) })
            }
            Err(e) => Err(code_of(&e)),
        }
    }

    /// `papyruskv_finalize()`. Collective.
    pub fn papyruskv_finalize(&self) -> i32 {
        self.dbs.lock().iter_mut().for_each(|d| {
            d.take();
        });
        match self.ctx.finalize() {
            Ok(()) => PAPYRUSKV_SUCCESS,
            Err(e) => code_of(&e),
        }
    }

    /// The underlying idiomatic context (escape hatch for mixed code).
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    fn with_db<T>(
        &self,
        db: papyruskv_db_t,
        f: impl FnOnce(&Db) -> Result<T, i32>,
    ) -> Result<T, i32> {
        let guard = self.dbs.lock();
        match guard.get(db as usize).and_then(Option::as_ref) {
            Some(handle) => {
                let handle = handle.clone();
                drop(guard);
                f(&handle)
            }
            None => Err(PAPYRUSKV_INVALID_DB),
        }
    }

    fn register_event(&self, ev: Event) -> papyruskv_event_t {
        let mut events = self.events.lock();
        events.push(Some(ev));
        (events.len() - 1) as papyruskv_event_t
    }

    /// `papyruskv_open(name, flags, opt, &db)`. Collective.
    pub fn papyruskv_open(
        &self,
        name: &str,
        flags: i32,
        opt: Option<&papyruskv_option_t>,
        db_out: &mut papyruskv_db_t,
    ) -> i32 {
        let open_flags = OpenFlags {
            create: flags & PAPYRUSKV_CREATE != 0,
            exclusive: flags & PAPYRUSKV_EXCL != 0,
        };
        let mut options = Options::default();
        if let Some(o) = opt {
            if o.memtable_size > 0 {
                options.memtable_capacity = o.memtable_size;
                options.remote_memtable_capacity = o.memtable_size;
            }
            if o.cache_size > 0 {
                options.local_cache_capacity = o.cache_size;
                options.remote_cache_capacity = o.cache_size;
            }
            options.custom_hash = o.hash.clone();
        }
        match self.ctx.open(name, open_flags, options) {
            Ok(handle) => {
                let mut dbs = self.dbs.lock();
                dbs.push(Some(handle));
                *db_out = (dbs.len() - 1) as papyruskv_db_t;
                PAPYRUSKV_SUCCESS
            }
            Err(e) => code_of(&e),
        }
    }

    /// `papyruskv_close(db)`. Collective.
    pub fn papyruskv_close(&self, db: papyruskv_db_t) -> i32 {
        let res = self.with_db(db, |d| d.close().map_err(|e| code_of(&e)));
        if res.is_ok() {
            self.dbs.lock()[db as usize] = None;
        }
        res.err().unwrap_or(PAPYRUSKV_SUCCESS)
    }

    /// `papyruskv_put(db, key, keylen, value, valuelen)`.
    pub fn papyruskv_put(&self, db: papyruskv_db_t, key: &[u8], value: &[u8]) -> i32 {
        self.with_db(db, |d| d.put(key, value).map_err(|e| code_of(&e)))
            .err()
            .unwrap_or(PAPYRUSKV_SUCCESS)
    }

    /// `papyruskv_get(db, key, keylen, &value, &valuelen)`: on success the
    /// value is written into `value_out` ("PapyrusKV allocates a new heap
    /// region from the PapyrusKV memory pool" — here: the `Vec` is the
    /// pool allocation, freed by `papyruskv_free`, i.e. `drop`).
    pub fn papyruskv_get(&self, db: papyruskv_db_t, key: &[u8], value_out: &mut Vec<u8>) -> i32 {
        match self.with_db(db, |d| d.get(key).map_err(|e| code_of(&e))) {
            Ok(v) => {
                value_out.clear();
                value_out.extend_from_slice(&v);
                PAPYRUSKV_SUCCESS
            }
            Err(code) => code,
        }
    }

    /// `papyruskv_delete(db, key, keylen)`.
    pub fn papyruskv_delete(&self, db: papyruskv_db_t, key: &[u8]) -> i32 {
        self.with_db(db, |d| d.delete(key).map_err(|e| code_of(&e)))
            .err()
            .unwrap_or(PAPYRUSKV_SUCCESS)
    }

    /// `papyruskv_free(&value)`: release a value buffer. (A no-op beyond
    /// dropping — ownership-based memory management replaces the pool.)
    pub fn papyruskv_free(&self, value: &mut Vec<u8>) -> i32 {
        value.clear();
        value.shrink_to_fit();
        PAPYRUSKV_SUCCESS
    }

    /// `papyruskv_signal_notify(signum, ranks, count)`.
    pub fn papyruskv_signal_notify(&self, signum: u32, ranks: &[usize]) -> i32 {
        match self.ctx.signal_notify(signum, ranks) {
            Ok(()) => PAPYRUSKV_SUCCESS,
            Err(e) => code_of(&e),
        }
    }

    /// `papyruskv_signal_wait(signum, ranks, count)`.
    pub fn papyruskv_signal_wait(&self, signum: u32, ranks: &[usize]) -> i32 {
        match self.ctx.signal_wait(signum, ranks) {
            Ok(()) => PAPYRUSKV_SUCCESS,
            Err(e) => code_of(&e),
        }
    }

    /// `papyruskv_fence(db)`.
    pub fn papyruskv_fence(&self, db: papyruskv_db_t) -> i32 {
        self.with_db(db, |d| d.fence().map_err(|e| code_of(&e))).err().unwrap_or(PAPYRUSKV_SUCCESS)
    }

    /// `papyruskv_barrier(db, level)`. Collective.
    pub fn papyruskv_barrier(&self, db: papyruskv_db_t, level: i32) -> i32 {
        let level = match level {
            PAPYRUSKV_MEMTABLE => BarrierLevel::MemTable,
            PAPYRUSKV_SSTABLE => BarrierLevel::SsTable,
            _ => return PAPYRUSKV_INVALID_ARGUMENT,
        };
        self.with_db(db, |d| d.barrier(level).map_err(|e| code_of(&e)))
            .err()
            .unwrap_or(PAPYRUSKV_SUCCESS)
    }

    /// `papyruskv_consistency(db, mode)`. Collective.
    pub fn papyruskv_consistency(&self, db: papyruskv_db_t, mode: i32) -> i32 {
        let mode = match mode {
            PAPYRUSKV_SEQUENTIAL => Consistency::Sequential,
            PAPYRUSKV_RELAXED => Consistency::Relaxed,
            _ => return PAPYRUSKV_INVALID_ARGUMENT,
        };
        self.with_db(db, |d| d.set_consistency(mode).map_err(|e| code_of(&e)))
            .err()
            .unwrap_or(PAPYRUSKV_SUCCESS)
    }

    /// `papyruskv_protect(db, prot)`. Collective.
    pub fn papyruskv_protect(&self, db: papyruskv_db_t, prot: i32) -> i32 {
        let prot = match prot {
            PAPYRUSKV_RDWR => Protection::ReadWrite,
            PAPYRUSKV_WRONLY => Protection::WriteOnly,
            PAPYRUSKV_RDONLY => Protection::ReadOnly,
            _ => return PAPYRUSKV_INVALID_ARGUMENT,
        };
        self.with_db(db, |d| d.protect(prot).map_err(|e| code_of(&e)))
            .err()
            .unwrap_or(PAPYRUSKV_SUCCESS)
    }

    /// `papyruskv_checkpoint(db, path, &event)`. Collective; asynchronous
    /// when `event_out` is provided, otherwise waits.
    pub fn papyruskv_checkpoint(
        &self,
        db: papyruskv_db_t,
        path: &str,
        event_out: Option<&mut papyruskv_event_t>,
    ) -> i32 {
        match self.with_db(db, |d| d.checkpoint(path).map_err(|e| code_of(&e))) {
            Ok(ev) => {
                match event_out {
                    Some(out) => *out = self.register_event(ev),
                    None => {
                        ev.wait();
                    }
                }
                PAPYRUSKV_SUCCESS
            }
            Err(code) => code,
        }
    }

    /// `papyruskv_restart(path, name, flags, opt, &db, &event)`. Collective.
    pub fn papyruskv_restart(
        &self,
        path: &str,
        name: &str,
        flags: i32,
        opt: Option<&papyruskv_option_t>,
        db_out: &mut papyruskv_db_t,
        event_out: Option<&mut papyruskv_event_t>,
    ) -> i32 {
        let open_flags = OpenFlags {
            create: flags & PAPYRUSKV_CREATE != 0,
            exclusive: flags & PAPYRUSKV_EXCL != 0,
        };
        let mut options = Options::default();
        if let Some(o) = opt {
            if o.memtable_size > 0 {
                options.memtable_capacity = o.memtable_size;
            }
            options.custom_hash = o.hash.clone();
        }
        match self.ctx.restart(path, name, open_flags, options, false) {
            Ok((handle, ev)) => {
                let mut dbs = self.dbs.lock();
                dbs.push(Some(handle));
                *db_out = (dbs.len() - 1) as papyruskv_db_t;
                drop(dbs);
                match event_out {
                    Some(out) => *out = self.register_event(ev),
                    None => {
                        ev.wait();
                    }
                }
                PAPYRUSKV_SUCCESS
            }
            Err(e) => code_of(&e),
        }
    }

    /// `papyruskv_destroy(db, &event)`. Collective.
    pub fn papyruskv_destroy(
        &self,
        db: papyruskv_db_t,
        event_out: Option<&mut papyruskv_event_t>,
    ) -> i32 {
        match self.with_db(db, |d| d.destroy().map_err(|e| code_of(&e))) {
            Ok(ev) => {
                self.dbs.lock()[db as usize] = None;
                match event_out {
                    Some(out) => *out = self.register_event(ev),
                    None => {
                        ev.wait();
                    }
                }
                PAPYRUSKV_SUCCESS
            }
            Err(code) => code,
        }
    }

    /// `papyruskv_wait(db, event)`.
    pub fn papyruskv_wait(&self, _db: papyruskv_db_t, event: papyruskv_event_t) -> i32 {
        let ev = {
            let events = self.events.lock();
            events.get(event as usize).and_then(Clone::clone)
        };
        match ev {
            Some(ev) => {
                ev.wait();
                PAPYRUSKV_SUCCESS
            }
            None => PAPYRUSKV_INVALID_EVENT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papyrus_mpi::{World, WorldConfig};
    use papyrus_nvm::SystemProfile;

    #[test]
    fn c_api_full_lifecycle() {
        let platform = Platform::new(SystemProfile::test_profile(), 2);
        World::run(WorldConfig::for_tests(2), move |rank| {
            let me = rank.rank();
            let pkv = PapyrusKv::papyruskv_init(rank, platform.clone(), "nvm://capi").unwrap();

            let mut db: papyruskv_db_t = -1;
            assert_eq!(
                pkv.papyruskv_open("db", PAPYRUSKV_CREATE, None, &mut db),
                PAPYRUSKV_SUCCESS
            );
            assert!(db >= 0);

            let key = format!("k{me}");
            assert_eq!(pkv.papyruskv_put(db, key.as_bytes(), b"hello"), PAPYRUSKV_SUCCESS);
            assert_eq!(pkv.papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);

            let mut value = Vec::new();
            for r in 0..2 {
                assert_eq!(
                    pkv.papyruskv_get(db, format!("k{r}").as_bytes(), &mut value),
                    PAPYRUSKV_SUCCESS
                );
                assert_eq!(&value[..], b"hello");
            }
            assert_eq!(pkv.papyruskv_free(&mut value), PAPYRUSKV_SUCCESS);
            assert!(value.is_empty());

            // Relaxed consistency: close the read phase collectively before
            // anyone deletes, or a fast rank's tombstone could race a slow
            // rank's reads (which is legal divergence between sync points).
            assert_eq!(pkv.papyruskv_barrier(db, PAPYRUSKV_MEMTABLE), PAPYRUSKV_SUCCESS);

            assert_eq!(pkv.papyruskv_get(db, b"missing", &mut value), PAPYRUSKV_NOT_FOUND);
            assert_eq!(pkv.papyruskv_delete(db, key.as_bytes()), PAPYRUSKV_SUCCESS);
            assert_eq!(pkv.papyruskv_barrier(db, PAPYRUSKV_SSTABLE), PAPYRUSKV_SUCCESS);
            assert_eq!(pkv.papyruskv_get(db, key.as_bytes(), &mut value), PAPYRUSKV_NOT_FOUND);

            assert_eq!(pkv.papyruskv_consistency(db, PAPYRUSKV_SEQUENTIAL), PAPYRUSKV_SUCCESS);
            assert_eq!(pkv.papyruskv_protect(db, PAPYRUSKV_RDONLY), PAPYRUSKV_SUCCESS);
            assert_eq!(pkv.papyruskv_put(db, b"x", b"y"), PAPYRUSKV_PROTECTED);
            assert_eq!(pkv.papyruskv_protect(db, PAPYRUSKV_RDWR), PAPYRUSKV_SUCCESS);

            // Signals.
            if me == 0 {
                assert_eq!(pkv.papyruskv_signal_notify(3, &[1]), PAPYRUSKV_SUCCESS);
            } else {
                assert_eq!(pkv.papyruskv_signal_wait(3, &[0]), PAPYRUSKV_SUCCESS);
            }

            // Asynchronous checkpoint + wait.
            let mut ev: papyruskv_event_t = -1;
            assert_eq!(pkv.papyruskv_checkpoint(db, "snap/capi", Some(&mut ev)), PAPYRUSKV_SUCCESS);
            assert_eq!(pkv.papyruskv_wait(db, ev), PAPYRUSKV_SUCCESS);
            assert_eq!(pkv.papyruskv_wait(db, 999), PAPYRUSKV_INVALID_EVENT);

            // Destroy, restart.
            assert_eq!(pkv.papyruskv_destroy(db, None), PAPYRUSKV_SUCCESS);
            assert_eq!(pkv.papyruskv_put(db, b"a", b"b"), PAPYRUSKV_INVALID_DB);

            let mut db2: papyruskv_db_t = -1;
            assert_eq!(
                pkv.papyruskv_restart("snap/capi", "db", PAPYRUSKV_CREATE, None, &mut db2, None),
                PAPYRUSKV_SUCCESS
            );
            assert_eq!(pkv.papyruskv_close(db2), PAPYRUSKV_SUCCESS);
            assert_eq!(pkv.papyruskv_finalize(), PAPYRUSKV_SUCCESS);
        });
    }

    #[test]
    fn c_api_error_codes() {
        let platform = Platform::new(SystemProfile::test_profile(), 1);
        World::run(WorldConfig::for_tests(1), move |rank| {
            let pkv = PapyrusKv::papyruskv_init(rank, platform.clone(), "nvm://capi-err").unwrap();
            // Operations on bad descriptors.
            assert_eq!(pkv.papyruskv_put(42, b"k", b"v"), PAPYRUSKV_INVALID_DB);
            assert_eq!(pkv.papyruskv_close(42), PAPYRUSKV_INVALID_DB);
            assert_eq!(pkv.papyruskv_fence(0), PAPYRUSKV_INVALID_DB);
            // Bad flag/mode words.
            let mut db: papyruskv_db_t = -1;
            assert_eq!(
                pkv.papyruskv_open("db", PAPYRUSKV_CREATE, None, &mut db),
                PAPYRUSKV_SUCCESS
            );
            assert_eq!(pkv.papyruskv_barrier(db, 99), PAPYRUSKV_INVALID_ARGUMENT);
            assert_eq!(pkv.papyruskv_consistency(db, 99), PAPYRUSKV_INVALID_ARGUMENT);
            assert_eq!(pkv.papyruskv_protect(db, 99), PAPYRUSKV_INVALID_ARGUMENT);
            // Exclusive open of existing database.
            pkv.papyruskv_put(db, b"k", b"v");
            pkv.papyruskv_close(db);
            let mut db2: papyruskv_db_t = -1;
            assert_eq!(
                pkv.papyruskv_open("db", PAPYRUSKV_CREATE | PAPYRUSKV_EXCL, None, &mut db2),
                PAPYRUSKV_INVALID_ARGUMENT
            );
            // Restart from nowhere.
            assert_eq!(
                pkv.papyruskv_restart("nope", "db", PAPYRUSKV_CREATE, None, &mut db2, None),
                PAPYRUSKV_INVALID_SNAPSHOT
            );
            assert_eq!(pkv.papyruskv_finalize(), PAPYRUSKV_SUCCESS);
        });
    }

    #[test]
    fn c_api_custom_hash_option() {
        let platform = Platform::new(SystemProfile::test_profile(), 2);
        World::run(WorldConfig::for_tests(2), move |rank| {
            let pkv = PapyrusKv::papyruskv_init(rank, platform.clone(), "nvm://capi-hash").unwrap();
            let opt = papyruskv_option_t {
                keylen: 16,
                vallen: 64,
                memtable_size: 1 << 20,
                cache_size: 1 << 16,
                hash: Some(Arc::new(|_k: &[u8]| 1)), // everything on rank 1
            };
            let mut db: papyruskv_db_t = -1;
            assert_eq!(
                pkv.papyruskv_open("db", PAPYRUSKV_CREATE, Some(&opt), &mut db),
                PAPYRUSKV_SUCCESS
            );
            pkv.papyruskv_put(db, b"anything", b"v");
            pkv.papyruskv_barrier(db, PAPYRUSKV_MEMTABLE);
            let mut value = Vec::new();
            assert_eq!(pkv.papyruskv_get(db, b"anything", &mut value), PAPYRUSKV_SUCCESS);
            pkv.papyruskv_close(db);
            assert_eq!(pkv.papyruskv_finalize(), PAPYRUSKV_SUCCESS);
        });
    }
}
