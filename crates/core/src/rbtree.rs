//! Arena-based red-black tree: the MemTable index structure.
//!
//! The paper (§2.4): "The MemTable is implemented as a red-black tree indexed
//! by key. A red-black tree is a self-balancing binary tree. Thus, insert,
//! lookup, and delete operations take O(log n) time."
//!
//! The implementation is a CLRS red-black tree over an index arena (no
//! `unsafe`, no per-node allocation): nodes live in a `Vec`, links are `u32`
//! indices, and a shared sentinel at index 0 plays the role of NIL. In-order
//! iteration (needed to flush a MemTable into a sorted SSTable) uses parent
//! pointers, so it allocates nothing.

/// Sentinel index standing in for NIL. Slot 0 of the arena.
const NIL: u32 = 0;

#[derive(Debug)]
struct Node<V> {
    key: Vec<u8>,
    val: Option<V>,
    left: u32,
    right: u32,
    parent: u32,
    red: bool,
}

/// A map from byte-string keys to `V`, ordered by key.
#[derive(Debug)]
pub struct RbTree<V> {
    nodes: Vec<Node<V>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<V> Default for RbTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> RbTree<V> {
    /// Empty tree.
    pub fn new() -> Self {
        // Slot 0 is the shared NIL sentinel: black, self-linked.
        let nil =
            Node { key: Vec::new(), val: None, left: NIL, right: NIL, parent: NIL, red: false };
        Self { nodes: vec![nil], free: Vec::new(), root: NIL, len: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn n(&self, i: u32) -> &Node<V> {
        &self.nodes[i as usize]
    }

    #[inline]
    fn nm(&mut self, i: u32) -> &mut Node<V> {
        &mut self.nodes[i as usize]
    }

    fn alloc(&mut self, key: Vec<u8>, val: V, parent: u32) -> u32 {
        let node = Node { key, val: Some(val), left: NIL, right: NIL, parent, red: true };
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn find(&self, key: &[u8]) -> u32 {
        let mut x = self.root;
        while x != NIL {
            match key.cmp(&self.n(x).key) {
                std::cmp::Ordering::Less => x = self.n(x).left,
                std::cmp::Ordering::Greater => x = self.n(x).right,
                std::cmp::Ordering::Equal => return x,
            }
        }
        NIL
    }

    /// Look up `key`.
    pub fn get(&self, key: &[u8]) -> Option<&V> {
        let i = self.find(key);
        if i == NIL {
            None
        } else {
            self.n(i).val.as_ref()
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        let i = self.find(key);
        if i == NIL {
            None
        } else {
            self.nm(i).val.as_mut()
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.find(key) != NIL
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&mut self, key: &[u8], val: V) -> Option<V> {
        let mut parent = NIL;
        let mut x = self.root;
        while x != NIL {
            parent = x;
            match key.cmp(&self.n(x).key) {
                std::cmp::Ordering::Less => x = self.n(x).left,
                std::cmp::Ordering::Greater => x = self.n(x).right,
                std::cmp::Ordering::Equal => {
                    return self.nm(x).val.replace(val);
                }
            }
        }
        let z = self.alloc(key.to_vec(), val, parent);
        if parent == NIL {
            self.root = z;
        } else if key < self.n(parent).key.as_slice() {
            self.nm(parent).left = z;
        } else {
            self.nm(parent).right = z;
        }
        self.len += 1;
        self.insert_fixup(z);
        None
    }

    fn rotate_left(&mut self, x: u32) {
        let y = self.n(x).right;
        let yl = self.n(y).left;
        self.nm(x).right = yl;
        if yl != NIL {
            self.nm(yl).parent = x;
        }
        let xp = self.n(x).parent;
        self.nm(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.n(xp).left == x {
            self.nm(xp).left = y;
        } else {
            self.nm(xp).right = y;
        }
        self.nm(y).left = x;
        self.nm(x).parent = y;
    }

    fn rotate_right(&mut self, x: u32) {
        let y = self.n(x).left;
        let yr = self.n(y).right;
        self.nm(x).left = yr;
        if yr != NIL {
            self.nm(yr).parent = x;
        }
        let xp = self.n(x).parent;
        self.nm(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.n(xp).right == x {
            self.nm(xp).right = y;
        } else {
            self.nm(xp).left = y;
        }
        self.nm(y).right = x;
        self.nm(x).parent = y;
    }

    fn insert_fixup(&mut self, mut z: u32) {
        while self.n(self.n(z).parent).red {
            let zp = self.n(z).parent;
            let zpp = self.n(zp).parent;
            if zp == self.n(zpp).left {
                let y = self.n(zpp).right; // uncle
                if self.n(y).red {
                    self.nm(zp).red = false;
                    self.nm(y).red = false;
                    self.nm(zpp).red = true;
                    z = zpp;
                } else {
                    if z == self.n(zp).right {
                        z = zp;
                        self.rotate_left(z);
                    }
                    let zp = self.n(z).parent;
                    let zpp = self.n(zp).parent;
                    self.nm(zp).red = false;
                    self.nm(zpp).red = true;
                    self.rotate_right(zpp);
                }
            } else {
                let y = self.n(zpp).left;
                if self.n(y).red {
                    self.nm(zp).red = false;
                    self.nm(y).red = false;
                    self.nm(zpp).red = true;
                    z = zpp;
                } else {
                    if z == self.n(zp).left {
                        z = zp;
                        self.rotate_right(z);
                    }
                    let zp = self.n(z).parent;
                    let zpp = self.n(zp).parent;
                    self.nm(zp).red = false;
                    self.nm(zpp).red = true;
                    self.rotate_left(zpp);
                }
            }
        }
        let r = self.root;
        self.nm(r).red = false;
    }

    fn minimum(&self, mut x: u32) -> u32 {
        while self.n(x).left != NIL {
            x = self.n(x).left;
        }
        x
    }

    fn transplant(&mut self, u: u32, v: u32) {
        let up = self.n(u).parent;
        if up == NIL {
            self.root = v;
        } else if u == self.n(up).left {
            self.nm(up).left = v;
        } else {
            self.nm(up).right = v;
        }
        // CLRS relies on setting NIL's parent; the sentinel slot makes this
        // legal here too.
        self.nm(v).parent = up;
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let z = self.find(key);
        if z == NIL {
            return None;
        }
        let val = self.nm(z).val.take();
        let mut y = z;
        let mut y_was_red = self.n(y).red;
        let x;
        if self.n(z).left == NIL {
            x = self.n(z).right;
            self.transplant(z, x);
        } else if self.n(z).right == NIL {
            x = self.n(z).left;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.n(z).right);
            y_was_red = self.n(y).red;
            x = self.n(y).right;
            if self.n(y).parent == z {
                self.nm(x).parent = y;
            } else {
                self.transplant(y, x);
                let zr = self.n(z).right;
                self.nm(y).right = zr;
                self.nm(zr).parent = y;
            }
            self.transplant(z, y);
            let zl = self.n(z).left;
            self.nm(y).left = zl;
            self.nm(zl).parent = y;
            let z_red = self.n(z).red;
            self.nm(y).red = z_red;
        }
        if !y_was_red {
            self.delete_fixup(x);
        }
        // Keep the sentinel pristine for future transplants.
        self.nm(NIL).parent = NIL;
        self.nm(NIL).red = false;
        // Recycle the arena slot.
        self.nm(z).key = Vec::new();
        self.free.push(z);
        self.len -= 1;
        val
    }

    fn delete_fixup(&mut self, mut x: u32) {
        while x != self.root && !self.n(x).red {
            let xp = self.n(x).parent;
            if x == self.n(xp).left {
                let mut w = self.n(xp).right;
                if self.n(w).red {
                    self.nm(w).red = false;
                    self.nm(xp).red = true;
                    self.rotate_left(xp);
                    w = self.n(self.n(x).parent).right;
                }
                if !self.n(self.n(w).left).red && !self.n(self.n(w).right).red {
                    self.nm(w).red = true;
                    x = self.n(x).parent;
                } else {
                    if !self.n(self.n(w).right).red {
                        let wl = self.n(w).left;
                        self.nm(wl).red = false;
                        self.nm(w).red = true;
                        self.rotate_right(w);
                        w = self.n(self.n(x).parent).right;
                    }
                    let xp = self.n(x).parent;
                    let xp_red = self.n(xp).red;
                    self.nm(w).red = xp_red;
                    self.nm(xp).red = false;
                    let wr = self.n(w).right;
                    self.nm(wr).red = false;
                    self.rotate_left(xp);
                    x = self.root;
                }
            } else {
                let mut w = self.n(xp).left;
                if self.n(w).red {
                    self.nm(w).red = false;
                    self.nm(xp).red = true;
                    self.rotate_right(xp);
                    w = self.n(self.n(x).parent).left;
                }
                if !self.n(self.n(w).left).red && !self.n(self.n(w).right).red {
                    self.nm(w).red = true;
                    x = self.n(x).parent;
                } else {
                    if !self.n(self.n(w).left).red {
                        let wr = self.n(w).right;
                        self.nm(wr).red = false;
                        self.nm(w).red = true;
                        self.rotate_left(w);
                        w = self.n(self.n(x).parent).left;
                    }
                    let xp = self.n(x).parent;
                    let xp_red = self.n(xp).red;
                    self.nm(w).red = xp_red;
                    self.nm(xp).red = false;
                    let wl = self.n(w).left;
                    self.nm(wl).red = false;
                    self.rotate_right(xp);
                    x = self.root;
                }
            }
        }
        self.nm(x).red = false;
    }

    fn successor(&self, x: u32) -> u32 {
        if self.n(x).right != NIL {
            return self.minimum(self.n(x).right);
        }
        let mut x = x;
        let mut y = self.n(x).parent;
        while y != NIL && x == self.n(y).right {
            x = y;
            y = self.n(y).parent;
        }
        y
    }

    /// In-order (key-sorted) iterator over `(key, value)` pairs.
    pub fn iter(&self) -> Iter<'_, V> {
        let first = if self.root == NIL { NIL } else { self.minimum(self.root) };
        Iter { tree: self, next: first }
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        let nil =
            Node { key: Vec::new(), val: None, left: NIL, right: NIL, parent: NIL, red: false };
        self.nodes = vec![nil];
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    /// Consume the tree into a key-sorted vector.
    pub fn into_sorted_vec(mut self) -> Vec<(Vec<u8>, V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut x = if self.root == NIL { NIL } else { self.minimum(self.root) };
        while x != NIL {
            let nxt = self.successor(x);
            let key = std::mem::take(&mut self.nm(x).key);
            let val = self.nm(x).val.take().expect("live node without value");
            out.push((key, val));
            x = nxt;
        }
        out
    }

    /// Validate red-black invariants (tests/diagnostics): root black, no
    /// red-red parent/child, equal black height on every path, and ordered
    /// keys. Returns the tree's black height.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> usize {
        assert!(!self.n(NIL).red, "sentinel must stay black");
        if self.root == NIL {
            return 0;
        }
        assert!(!self.n(self.root).red, "root must be black");
        fn walk<V>(t: &RbTree<V>, x: u32, lo: Option<&[u8]>, hi: Option<&[u8]>) -> usize {
            if x == NIL {
                return 1;
            }
            let n = t.n(x);
            if let Some(lo) = lo {
                assert!(n.key.as_slice() > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(n.key.as_slice() < hi, "BST order violated");
            }
            if n.red {
                assert!(!t.n(n.left).red && !t.n(n.right).red, "red-red violation");
            }
            let lh = walk(t, n.left, lo, Some(&n.key));
            let rh = walk(t, n.right, Some(&n.key), hi);
            assert_eq!(lh, rh, "black-height mismatch");
            lh + usize::from(!n.red)
        }
        walk(self, self.root, None, None)
    }
}

/// In-order iterator over an [`RbTree`].
pub struct Iter<'a, V> {
    tree: &'a RbTree<V>,
    next: u32,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (&'a [u8], &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next == NIL {
            return None;
        }
        let i = self.next;
        self.next = self.tree.successor(i);
        let n = self.tree.n(i);
        // lint:allow(panic-path): iterator only visits live nodes, which always hold a value
        Some((n.key.as_slice(), n.val.as_ref().expect("live node without value")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: RbTree<u32> = RbTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(b"x"), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants();
    }

    #[test]
    fn insert_get_replace() {
        let mut t = RbTree::new();
        assert_eq!(t.insert(b"a", 1), None);
        assert_eq!(t.insert(b"b", 2), None);
        assert_eq!(t.insert(b"a", 10), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b"a"), Some(&10));
        assert_eq!(t.get(b"b"), Some(&2));
        assert_eq!(t.get(b"c"), None);
        t.check_invariants();
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = RbTree::new();
        t.insert(b"k", 5);
        *t.get_mut(b"k").unwrap() += 1;
        assert_eq!(t.get(b"k"), Some(&6));
    }

    #[test]
    fn iteration_is_key_sorted() {
        let mut t = RbTree::new();
        for k in [b"m", b"c", b"z", b"a", b"q"] {
            t.insert(k, ());
        }
        let keys: Vec<&[u8]> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&b"a"[..], b"c", b"m", b"q", b"z"]);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut t: RbTree<i32> = RbTree::new();
        t.insert(b"a", 1);
        assert_eq!(t.remove(b"zz"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_leaf_root_and_internal() {
        let mut t = RbTree::new();
        for i in 0..32u32 {
            t.insert(format!("{i:02}").as_bytes(), i);
            t.check_invariants();
        }
        assert_eq!(t.remove(b"00"), Some(0));
        assert_eq!(t.remove(b"31"), Some(31));
        assert_eq!(t.remove(b"15"), Some(15));
        t.check_invariants();
        assert_eq!(t.len(), 29);
        assert!(!t.contains(b"15"));
        assert!(t.contains(b"16"));
    }

    #[test]
    fn slots_are_recycled() {
        let mut t = RbTree::new();
        for round in 0..10 {
            for i in 0..100u32 {
                t.insert(format!("k{i}").as_bytes(), i + round);
            }
            for i in 0..100u32 {
                assert!(t.remove(format!("k{i}").as_bytes()).is_some());
            }
        }
        assert!(t.is_empty());
        // Arena should not have grown past one round's worth (+ sentinel).
        assert!(t.nodes.len() <= 101, "arena grew to {}", t.nodes.len());
    }

    #[test]
    fn into_sorted_vec_drains_everything() {
        let mut t = RbTree::new();
        for i in (0..50u32).rev() {
            t.insert(format!("{i:03}").as_bytes(), i);
        }
        let v = t.into_sorted_vec();
        assert_eq!(v.len(), 50);
        for (i, (k, val)) in v.iter().enumerate() {
            assert_eq!(k, format!("{i:03}").as_bytes());
            assert_eq!(*val as usize, i);
        }
    }

    #[test]
    fn clear_resets() {
        let mut t = RbTree::new();
        for i in 0..20u8 {
            t.insert(&[i], i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(&[3]), None);
        t.insert(b"x", 1);
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    // Hot loops / many threads: minutes under Miri's interpreter, covered
    // natively; Miri still runs the small structural tests in this module.
    #[cfg_attr(miri, ignore)]
    fn sequential_and_reverse_insertions_stay_balanced() {
        // Degenerate insertion orders must still give O(log n) height; the
        // invariant checker proves balance (black height consistency).
        let mut fwd = RbTree::new();
        let mut rev = RbTree::new();
        for i in 0..1024u32 {
            fwd.insert(format!("{i:06}").as_bytes(), i);
            rev.insert(format!("{:06}", 1023 - i).as_bytes(), i);
        }
        let bh_f = fwd.check_invariants();
        let bh_r = rev.check_invariants();
        // Black height of a 1024-node RB tree is at most ~log2(n)+1.
        assert!(bh_f <= 11 && bh_r <= 11);
    }

    #[test]
    // Hot loops / many threads: minutes under Miri's interpreter, covered
    // natively; Miri still runs the small structural tests in this module.
    #[cfg_attr(miri, ignore)]
    fn interleaved_insert_remove_invariants_hold() {
        let mut t = RbTree::new();
        let mut model = std::collections::BTreeMap::new();
        // Deterministic pseudo-random workload.
        let mut x = 0x12345678u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = format!("{:03}", (x >> 33) % 500);
            if (x >> 20).is_multiple_of(3) {
                assert_eq!(t.remove(k.as_bytes()), model.remove(k.as_bytes()));
            } else {
                let v = (x % 1000) as u32;
                assert_eq!(t.insert(k.as_bytes(), v), model.insert(k.clone().into_bytes(), v));
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), model.len());
        let got: Vec<_> = t.iter().map(|(k, v)| (k.to_vec(), *v)).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(got, want);
    }
}

/// Schedule-exhaustive model of the MemTable read path: the arena tree has
/// no internal synchronization — concurrent readers are only safe behind
/// the `RwLock` the MemTable wraps it in. This model drives that exact
/// wrapping (the workspace `parking_lot::RwLock`, which under `--cfg
/// modelcheck` is the explorer's shimmed lock) with a writer rebalancing
/// the tree while readers traverse it, over every DPOR-distinct schedule.
#[cfg(all(test, modelcheck))]
mod modelcheck_tests {
    use super::*;
    use papyrus_modelcheck as mc;
    use std::sync::Arc;

    #[test]
    fn modelcheck_rwlock_readers_vs_writer() {
        let report = mc::explore(|| {
            let tree = Arc::new(parking_lot::RwLock::new(RbTree::new()));
            tree.write().insert(b"a", 1u64);
            tree.write().insert(b"c", 3u64);
            let writer = {
                let tree = Arc::clone(&tree);
                mc::thread::spawn(move || {
                    // Forces a recolour/rotation between the existing keys.
                    tree.write().insert(b"b", 2u64);
                })
            };
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let tree = Arc::clone(&tree);
                    mc::thread::spawn(move || {
                        let t = tree.read();
                        // Readers must always see a structurally valid tree
                        // and a consistent prefix of the writer's work.
                        t.check_invariants();
                        assert_eq!(t.get(b"a"), Some(&1));
                        let n = t.len();
                        assert!(n == 2 || n == 3, "len is pre- or post-insert, never torn");
                        if t.contains(b"b") {
                            assert_eq!(t.get(b"b"), Some(&2));
                        }
                    })
                })
                .collect();
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
            assert_eq!(tree.read().len(), 3);
        });
        assert!(report.ok(), "rbtree readers model must be clean: {:?}", report.violations);
        assert_eq!(report.interleavings, PINNED_RBTREE_READERS, "see EXPERIMENTS.md");
    }

    const PINNED_RBTREE_READERS: u64 = 39;
}
