//! Property-based tests for PapyrusKV's core data structures and formats.

use bytes::Bytes;
use papyruskv::bloom::Bloom;
use papyruskv::lru::{CacheEntry, LruCache};
use papyruskv::memtable::{Entry, MemTable};
use papyruskv::msg;
use papyruskv::queue::BoundedQueue;
use papyruskv::rbtree::RbTree;
use papyruskv::sstable;
use proptest::collection::vec;
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    vec(any::<u8>(), 1..24)
}

proptest! {
    /// The red-black tree behaves exactly like BTreeMap under arbitrary
    /// insert/remove interleavings, and its invariants hold throughout.
    #[test]
    fn rbtree_matches_btreemap(ops in vec((key_strategy(), any::<Option<u32>>()), 0..300)) {
        let mut tree = RbTree::new();
        let mut model = std::collections::BTreeMap::new();
        for (key, op) in &ops {
            match op {
                Some(v) => {
                    prop_assert_eq!(tree.insert(key, *v), model.insert(key.clone(), *v));
                }
                None => {
                    prop_assert_eq!(tree.remove(key), model.remove(key));
                }
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len());
        let got: Vec<_> = tree.iter().map(|(k, v)| (k.to_vec(), *v)).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Bloom filters never report a false negative, under any key set.
    #[test]
    fn bloom_no_false_negatives(keys in vec(key_strategy(), 0..200), bits in 4usize..16) {
        let mut bloom = Bloom::with_capacity(keys.len(), bits);
        for k in &keys {
            bloom.insert(k);
        }
        for k in &keys {
            prop_assert!(bloom.maybe_contains(k));
        }
        // And serialisation is lossless.
        let reparsed = Bloom::from_bytes(&bloom.to_bytes()).unwrap();
        prop_assert_eq!(bloom, reparsed);
    }

    /// The LRU cache never exceeds its byte capacity and always retains the
    /// most recently inserted small entry.
    #[test]
    fn lru_capacity_invariant(
        capacity in 16u64..256,
        ops in vec((key_strategy(), vec(any::<u8>(), 0..64)), 1..200),
    ) {
        let mut cache = LruCache::new(capacity);
        for (k, v) in &ops {
            cache.insert(k, CacheEntry::value(Bytes::copy_from_slice(v)));
            prop_assert!(cache.bytes() <= capacity, "bytes {} > cap {}", cache.bytes(), capacity);
            if (k.len() + v.len()) as u64 <= capacity {
                prop_assert!(cache.peek(k).is_some(), "fitting entry must be cached");
            } else {
                prop_assert!(cache.peek(k).is_none(), "oversized entry must not be cached");
            }
        }
    }

    /// The lock-free bounded queue is FIFO under single-threaded use for
    /// arbitrary push/pop interleavings.
    #[test]
    fn queue_fifo(ops in vec(any::<bool>(), 0..400)) {
        let q = BoundedQueue::new(16);
        let mut model = std::collections::VecDeque::new();
        let mut next = 0u32;
        for push in ops {
            if push {
                if q.try_push(next).is_ok() {
                    model.push_back(next);
                }
                next += 1;
            } else {
                prop_assert_eq!(q.try_pop(), model.pop_front());
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }

    /// MemTable byte accounting is exact under arbitrary workloads.
    #[test]
    fn memtable_byte_accounting(ops in vec((key_strategy(), vec(any::<u8>(), 0..32), any::<bool>()), 0..200)) {
        let mut mt = MemTable::new();
        let mut model: std::collections::BTreeMap<Vec<u8>, (Vec<u8>, bool)> = Default::default();
        for (k, v, tomb) in &ops {
            let entry = if *tomb {
                Entry::tombstone()
            } else {
                Entry::value(Bytes::copy_from_slice(v))
            };
            mt.insert(k, entry);
            model.insert(k.clone(), (if *tomb { vec![] } else { v.clone() }, *tomb));
        }
        let expected: u64 = model
            .iter()
            .map(|(k, (v, _))| (k.len() + v.len()) as u64 + papyruskv::memtable::ENTRY_OVERHEAD)
            .sum();
        prop_assert_eq!(mt.bytes(), expected);
        prop_assert_eq!(mt.len(), model.len());
    }

    /// SSTables roundtrip arbitrary entry sets: build then read back every
    /// key via both search modes, and scan_all returns the input.
    #[test]
    fn sstable_roundtrip(entries_in in prop::collection::btree_map(key_strategy(), (vec(any::<u8>(), 0..64), any::<bool>()), 0..60)) {
        let store = papyrus_nvm::NvmStore::in_memory(papyrus_simtime::DeviceModel::dram());
        let entries: Vec<(Vec<u8>, Entry)> = entries_in
            .iter()
            .map(|(k, (v, tomb))| {
                let e = if *tomb {
                    Entry::tombstone()
                } else {
                    Entry::value(Bytes::copy_from_slice(v))
                };
                (k.clone(), e)
            })
            .collect();
        let (reader, _) = sstable::build_at(&store, "prop/sst", 1, &entries, 0);
        for (k, (v, tomb)) in &entries_in {
            for bin in [true, false] {
                let (got, _) = reader.get_at(k, bin, 0);
                if *tomb {
                    prop_assert_eq!(got, sstable::SstGet::Tombstone);
                } else {
                    prop_assert_eq!(got, sstable::SstGet::Found(Bytes::copy_from_slice(v)));
                }
            }
        }
        let (scanned, _) = reader.scan_all_at(0).unwrap();
        prop_assert_eq!(scanned.len(), entries.len());
        // Reopen from storage and confirm identity.
        let (reopened, _) = sstable::SstReader::open_at(&store, "prop/sst", 1, 0).unwrap();
        prop_assert_eq!(reopened.len(), reader.len());
    }

    /// Wire-format messages roundtrip arbitrary payloads, and corrupt
    /// buffers never panic (they error).
    #[test]
    fn msg_roundtrip_and_fuzz(
        records in vec((key_strategy(), vec(any::<u8>(), 0..64), any::<bool>()), 0..20),
        junk in vec(any::<u8>(), 0..64),
    ) {
        let kv: Vec<msg::KvRecord> = records
            .iter()
            .map(|(k, v, t)| msg::KvRecord {
                key: k.clone(),
                value: Bytes::copy_from_slice(v),
                tombstone: *t,
            })
            .collect();
        let (db, seq, got) = msg::decode_migrate(msg::encode_migrate(9, 41, &kv)).unwrap();
        prop_assert_eq!((db, seq), (9, 41));
        prop_assert_eq!(got, kv);
        // Fuzz all decoders with junk: must not panic.
        let b = Bytes::from(junk);
        let _ = msg::decode_migrate(b.clone());
        let _ = msg::decode_put_sync(b.clone());
        let _ = msg::decode_get_req(b.clone());
        let _ = msg::decode_get_resp(b.clone());
        let _ = msg::decode_barrier_mark(b);
    }

    /// The built-in hash distributor assigns every key to a valid rank and
    /// is stable.
    #[test]
    fn distributor_total_and_stable(keys in vec(key_strategy(), 1..100), n in 1usize..64) {
        let d = papyruskv::hashfn::Distributor::new(None, n);
        for k in &keys {
            let owner = d.owner(k);
            prop_assert!(owner < n);
            prop_assert_eq!(owner, d.owner(k));
        }
    }
}
