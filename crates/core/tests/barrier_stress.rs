//! Stress test for barrier visibility: many fresh worlds, one key per
//! rank, relaxed mode — the exact pattern that exposed a rare race in the
//! C-API lifecycle test.

use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{BarrierLevel, Context, OpenFlags, Options, Platform};

#[test]
fn barrier_visibility_stress() {
    for round in 0..300 {
        let platform = Platform::new(SystemProfile::test_profile(), 2);
        World::run(WorldConfig::for_tests(2), move |rank| {
            let ctx = Context::init(rank, platform.clone(), "nvm://bstress").unwrap();
            let db = ctx.open("db", OpenFlags::create(), Options::default()).unwrap();
            let me = ctx.rank();
            let key = format!("k{me}");
            db.put(key.as_bytes(), b"hello").unwrap();
            db.barrier(BarrierLevel::MemTable).unwrap();
            for r in 0..2 {
                let k = format!("k{r}");
                if let Err(e) = db.get(k.as_bytes()) {
                    panic!(
                        "round {round}: rank {me} missing {k} (owner {}): {e}",
                        db.owner_of(k.as_bytes())
                    );
                }
            }
            db.close().unwrap();
            ctx.finalize().unwrap();
        });
    }
}
