//! End-to-end tests of the PapyrusKV runtime: SPMD worlds of thread-ranks
//! exercising the full put/get/delete, consistency, storage-group,
//! zero-copy, and checkpoint/restart machinery.

use std::sync::Arc;

use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{
    BarrierLevel, Consistency, Context, Error, OpenFlags, Options, Platform, Protection,
};

/// Run `f` on an `n`-rank test world with free cost models.
fn run_world<T, F>(n: usize, repo: &str, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(&Context, &papyruskv::Db) -> T + Send + Sync + 'static,
{
    let platform = Platform::new(SystemProfile::test_profile(), n);
    let repo = format!("nvm://{repo}");
    World::run(WorldConfig::for_tests(n), move |rank| {
        let ctx = Context::init(rank, platform.clone(), &repo).unwrap();
        let db = ctx.open("testdb", OpenFlags::create(), Options::small()).unwrap();
        let out = f(&ctx, &db);
        db.close().unwrap();
        ctx.finalize().unwrap();
        out
    })
}

#[test]
fn put_get_single_rank() {
    run_world(1, "t-single", |_ctx, db| {
        db.put(b"hello", b"world").unwrap();
        assert_eq!(&db.get(b"hello").unwrap()[..], b"world");
        assert_eq!(db.get(b"missing").unwrap_err(), Error::NotFound);
    });
}

#[test]
fn put_get_across_ranks_relaxed_with_barrier() {
    run_world(4, "t-relaxed", |ctx, db| {
        // Every rank writes 50 keys; ownership is hash-scattered.
        for i in 0..50 {
            let k = format!("r{}-k{}", ctx.rank(), i);
            let v = format!("value-{}-{}", ctx.rank(), i);
            db.put(k.as_bytes(), v.as_bytes()).unwrap();
        }
        db.barrier(BarrierLevel::MemTable).unwrap();
        // Every rank reads every key, local or remote.
        for r in 0..ctx.size() {
            for i in 0..50 {
                let k = format!("r{r}-k{i}");
                let want = format!("value-{r}-{i}");
                assert_eq!(&db.get(k.as_bytes()).unwrap()[..], want.as_bytes(), "key {k}");
            }
        }
    });
}

#[test]
fn sequential_mode_immediately_visible() {
    let platform = Platform::new(SystemProfile::test_profile(), 3);
    World::run(WorldConfig::for_tests(3), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-seq").unwrap();
        let opt = Options::small().with_consistency(Consistency::Sequential);
        let db = ctx.open("db", OpenFlags::create(), opt).unwrap();
        // Rank 0 writes everything synchronously, then signals; other ranks
        // wait and read — no barrier needed in sequential mode.
        if ctx.rank() == 0 {
            for i in 0..40 {
                db.put(format!("sk{i}").as_bytes(), format!("sv{i}").as_bytes()).unwrap();
            }
            ctx.signal_notify(7, &[1, 2]).unwrap();
        } else {
            ctx.signal_wait(7, &[0]).unwrap();
            for i in 0..40 {
                assert_eq!(
                    &db.get(format!("sk{i}").as_bytes()).unwrap()[..],
                    format!("sv{i}").as_bytes()
                );
            }
        }
        db.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn delete_tombstones_across_ranks() {
    run_world(4, "t-del", |ctx, db| {
        if ctx.rank() == 0 {
            for i in 0..30 {
                db.put(format!("d{i}").as_bytes(), b"alive").unwrap();
            }
        }
        db.barrier(BarrierLevel::MemTable).unwrap();
        if ctx.rank() == 1 {
            for i in 0..30 {
                if i % 2 == 0 {
                    db.delete(format!("d{i}").as_bytes()).unwrap();
                }
            }
        }
        db.barrier(BarrierLevel::MemTable).unwrap();
        for i in 0..30 {
            let r = db.get(format!("d{i}").as_bytes());
            if i % 2 == 0 {
                assert_eq!(r.unwrap_err(), Error::NotFound, "d{i} should be deleted");
            } else {
                assert_eq!(&r.unwrap()[..], b"alive", "d{i} should survive");
            }
        }
    });
}

#[test]
fn flushes_create_sstables_and_reads_survive() {
    run_world(2, "t-flush", |ctx, db| {
        // Options::small has a 4 KiB MemTable; write ~40 KiB per rank.
        let value = vec![b'x'; 200];
        for i in 0..200 {
            db.put(format!("r{}-f{i}", ctx.rank()).as_bytes(), &value).unwrap();
        }
        db.barrier(BarrierLevel::SsTable).unwrap();
        assert!(db.sstable_count() >= 1, "flushes must have produced SSTables");
        assert_eq!(db.memtable_bytes(), 0, "SSTable barrier must empty the MemTable");
        for r in 0..ctx.size() {
            for i in (0..200).step_by(13) {
                let got = db.get(format!("r{r}-f{i}").as_bytes()).unwrap();
                assert_eq!(got.len(), 200);
            }
        }
    });
}

#[test]
fn updates_overwrite_across_sstables() {
    run_world(1, "t-update", |_ctx, db| {
        for round in 0..5 {
            for i in 0..50 {
                let v = format!("round{round}-{}", "p".repeat(100));
                db.put(format!("u{i}").as_bytes(), v.as_bytes()).unwrap();
            }
            db.barrier(BarrierLevel::SsTable).unwrap();
        }
        for i in 0..50 {
            let got = db.get(format!("u{i}").as_bytes()).unwrap();
            assert!(got.starts_with(b"round4-"), "latest round must win");
        }
    });
}

#[test]
fn compaction_merges_sstables() {
    let platform = Platform::new(SystemProfile::test_profile(), 1);
    World::run(WorldConfig::for_tests(1), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-compact").unwrap();
        let mut opt = Options::small();
        opt.compaction_trigger = 4;
        let db = ctx.open("db", OpenFlags::create(), opt).unwrap();
        let value = vec![b'y'; 400];
        for i in 0..400 {
            db.put(format!("c{i:04}").as_bytes(), &value).unwrap();
        }
        db.barrier(BarrierLevel::SsTable).unwrap();
        // With trigger 4 and many flushes, merges must have kept the live
        // set well below the total number of flushes.
        assert!(
            db.sstable_count() < 8,
            "compaction should bound live SSTables, got {}",
            db.sstable_count()
        );
        for i in (0..400).step_by(37) {
            assert_eq!(db.get(format!("c{i:04}").as_bytes()).unwrap().len(), 400);
        }
        db.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn zero_copy_reopen_same_job() {
    // Figure 5(a): two application phases in one job reuse the SSTables.
    let platform = Platform::new(SystemProfile::test_profile(), 2);
    World::run(WorldConfig::for_tests(2), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-zerocopy").unwrap();
        // "Application 1": write and close.
        let db = ctx.open("shared", OpenFlags::create(), Options::small()).unwrap();
        for i in 0..60 {
            db.put(format!("z{i}").as_bytes(), format!("zv{i}").as_bytes()).unwrap();
        }
        db.close().unwrap();
        // "Application 2": reopen by name; data composed from SSTables.
        let db2 = ctx.open("shared", OpenFlags::create(), Options::small()).unwrap();
        assert!(db2.sstable_count() >= 1, "reopen must compose from SSTables");
        for i in 0..60 {
            assert_eq!(
                &db2.get(format!("z{i}").as_bytes()).unwrap()[..],
                format!("zv{i}").as_bytes()
            );
        }
        db2.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn exclusive_open_of_existing_db_fails() {
    let platform = Platform::new(SystemProfile::test_profile(), 1);
    World::run(WorldConfig::for_tests(1), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-excl").unwrap();
        let db = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        db.put(b"k", b"v").unwrap();
        db.close().unwrap();
        let err = ctx.open("db", OpenFlags::create_new(), Options::small()).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
        ctx.finalize().unwrap();
    });
}

#[test]
fn open_missing_without_create_fails() {
    let platform = Platform::new(SystemProfile::test_profile(), 1);
    World::run(WorldConfig::for_tests(1), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-nocreate").unwrap();
        let err = ctx.open("ghost", OpenFlags::default(), Options::small()).unwrap_err();
        assert_eq!(err, Error::NotFound);
        ctx.finalize().unwrap();
    });
}

#[test]
fn checkpoint_restart_same_ranks() {
    let platform = Platform::new(SystemProfile::test_profile(), 3);
    World::run(WorldConfig::for_tests(3), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-cr").unwrap();
        let db = ctx.open("cr", OpenFlags::create(), Options::small()).unwrap();
        for i in 0..90 {
            db.put(format!("cr{i}").as_bytes(), format!("crv{i}").as_bytes()).unwrap();
        }
        let ev = db.checkpoint("pfs-snap").unwrap();
        ev.wait();
        assert!(ev.is_done());
        db.destroy().unwrap();

        // Simulate the job-end NVM trim (§4): scratch is gone, PFS survives.
        // One rank trims, fenced by collective barriers so the trim cannot
        // race other ranks' restart copies.
        ctx.barrier_all();
        if ctx.rank() == 0 {
            platform.storage.trim_nvm();
        }
        ctx.barrier_all();

        let (db2, ev2) =
            ctx.restart("pfs-snap", "cr", OpenFlags::create(), Options::small(), false).unwrap();
        ev2.wait();
        for i in 0..90 {
            assert_eq!(
                &db2.get(format!("cr{i}").as_bytes()).unwrap()[..],
                format!("crv{i}").as_bytes()
            );
        }
        db2.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn checkpoint_restart_with_forced_redistribution() {
    let platform = Platform::new(SystemProfile::test_profile(), 4);
    World::run(WorldConfig::for_tests(4), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-rd").unwrap();
        let db = ctx.open("rd", OpenFlags::create(), Options::small()).unwrap();
        for i in 0..80 {
            let k = format!("rd-{}-{i}", ctx.rank());
            db.put(k.as_bytes(), format!("val{i}").as_bytes()).unwrap();
        }
        // Include deletions so tombstones survive the snapshot correctly.
        db.barrier(BarrierLevel::MemTable).unwrap();
        if ctx.rank() == 0 {
            db.delete(b"rd-1-0").unwrap();
        }
        let ev = db.checkpoint("rd-snap").unwrap();
        ev.wait();
        db.destroy().unwrap();
        ctx.barrier_all();
        if ctx.rank() == 0 {
            platform.storage.trim_nvm();
        }
        ctx.barrier_all();

        // Same rank count but force the redistribution path (the paper's
        // Figure 10 "RD" evaluation forces it too).
        let (db2, ev2) =
            ctx.restart("rd-snap", "rd", OpenFlags::create(), Options::small(), true).unwrap();
        ev2.wait();
        for r in 0..4 {
            for i in 0..80 {
                let k = format!("rd-{r}-{i}");
                let res = db2.get(k.as_bytes());
                if k == "rd-1-0" {
                    assert_eq!(res.unwrap_err(), Error::NotFound);
                } else {
                    assert_eq!(&res.unwrap()[..], format!("val{i}").as_bytes(), "key {k}");
                }
            }
        }
        db2.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn protect_readonly_rejects_writes_and_enables_remote_cache() {
    let platform = Platform::new(SystemProfile::test_profile(), 2);
    World::run(WorldConfig::for_tests(2), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-prot").unwrap();
        let db = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        for i in 0..20 {
            db.put(format!("p{i}").as_bytes(), b"v").unwrap();
        }
        db.barrier(BarrierLevel::MemTable).unwrap();
        db.protect(Protection::ReadOnly).unwrap();
        assert_eq!(db.protection(), Protection::ReadOnly);
        assert_eq!(db.put(b"new", b"x").unwrap_err(), Error::Protected);
        assert_eq!(db.delete(b"p0").unwrap_err(), Error::Protected);
        // Repeated remote reads: the second pass must hit the remote cache.
        for _pass in 0..2 {
            for i in 0..20 {
                assert_eq!(&db.get(format!("p{i}").as_bytes()).unwrap()[..], b"v");
            }
        }
        let hits_ro = db.get_stats().hits();
        db.protect(Protection::ReadWrite).unwrap();
        db.put(b"new", b"x").unwrap();
        assert!(hits_ro > 0, "read-only phase must produce remote-cache hits");
        db.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn protect_writeonly_skips_cache() {
    run_world(1, "t-wronly", |_ctx, db| {
        db.put(b"w", b"1").unwrap();
        db.protect(Protection::WriteOnly).unwrap();
        for i in 0..10 {
            db.put(format!("w{i}").as_bytes(), b"2").unwrap();
        }
        db.protect(Protection::ReadWrite).unwrap();
        assert_eq!(&db.get(b"w5").unwrap()[..], b"2");
    });
}

#[test]
fn consistency_switch_mid_run() {
    run_world(2, "t-switch", |ctx, db| {
        assert_eq!(db.consistency(), Consistency::Relaxed);
        for i in 0..10 {
            db.put(format!("a{i}").as_bytes(), b"1").unwrap();
        }
        db.set_consistency(Consistency::Sequential).unwrap();
        assert_eq!(db.consistency(), Consistency::Sequential);
        // The switch is a barrier: relaxed-phase data is now visible.
        for i in 0..10 {
            assert_eq!(&db.get(format!("a{i}").as_bytes()).unwrap()[..], b"1");
        }
        for i in 0..10 {
            db.put(format!("b{}-{i}", ctx.rank()).as_bytes(), b"2").unwrap();
        }
        db.barrier(BarrierLevel::MemTable).unwrap();
        for r in 0..ctx.size() {
            for i in 0..10 {
                assert_eq!(&db.get(format!("b{r}-{i}").as_bytes()).unwrap()[..], b"2");
            }
        }
    });
}

#[test]
fn custom_hash_controls_ownership() {
    let platform = Platform::new(SystemProfile::test_profile(), 4);
    World::run(WorldConfig::for_tests(4), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-hash").unwrap();
        // Key "k<r>" is owned by rank r: hash = first digit.
        let opt = Options::small().with_custom_hash(Arc::new(|key: &[u8]| (key[1] - b'0') as u64));
        let db = ctx.open("db", OpenFlags::create(), opt).unwrap();
        for r in 0..4 {
            assert_eq!(db.owner_of(format!("k{r}").as_bytes()), r);
        }
        if ctx.rank() == 0 {
            for r in 0..4 {
                db.put(format!("k{r}").as_bytes(), b"owned").unwrap();
            }
        }
        db.barrier(BarrierLevel::MemTable).unwrap();
        // Each rank holds exactly its own key in its local stack.
        let k = format!("k{}", ctx.rank());
        assert_eq!(&db.get(k.as_bytes()).unwrap()[..], b"owned");
        db.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn storage_group_shared_sstable_reads() {
    // All 4 ranks in one physical+logical storage group: remote gets of
    // flushed data take the SearchShared path (§2.7).
    let platform = Platform::with_physical_groups(SystemProfile::test_profile(), 4, 4);
    World::run(WorldConfig::for_tests(4), move |rank| {
        let ctx = Context::init_with_group(rank, platform.clone(), "nvm://t-sg", 4).unwrap();
        let db = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        let value = vec![b'g'; 300];
        for i in 0..100 {
            db.put(format!("sg{}-{i}", ctx.rank()).as_bytes(), &value).unwrap();
        }
        // Flush everything to SSTables so gets must go through storage.
        db.barrier(BarrierLevel::SsTable).unwrap();
        for r in 0..ctx.size() {
            for i in (0..100).step_by(9) {
                let got = db.get(format!("sg{r}-{i}").as_bytes()).unwrap();
                assert_eq!(got.len(), 300);
            }
        }
        db.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn fence_makes_remote_puts_visible_to_owner() {
    let platform = Platform::new(SystemProfile::test_profile(), 2);
    World::run(WorldConfig::for_tests(2), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-fence").unwrap();
        let opt = Options::small().with_custom_hash(Arc::new(|_k: &[u8]| 1)); // rank 1 owns all
        let db = ctx.open("db", OpenFlags::create(), opt).unwrap();
        if ctx.rank() == 0 {
            db.put(b"fenced", b"yes").unwrap();
            db.fence().unwrap(); // push it to rank 1 now
            ctx.signal_notify(1, &[1]).unwrap();
        } else {
            ctx.signal_wait(1, &[0]).unwrap();
            // Owner-local read sees the migrated pair; handler ingestion is
            // ordered before the signal by the fence + FIFO channels... the
            // migration races the signal only in *virtual* time, so poll.
            let mut tries = 0;
            loop {
                match db.get(b"fenced") {
                    Ok(v) => {
                        assert_eq!(&v[..], b"yes");
                        break;
                    }
                    Err(Error::NotFound) if tries < 100 => {
                        tries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
        }
        db.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn operations_after_close_fail() {
    let platform = Platform::new(SystemProfile::test_profile(), 1);
    World::run(WorldConfig::for_tests(1), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-closed").unwrap();
        let db = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        db.put(b"k", b"v").unwrap();
        db.close().unwrap();
        assert_eq!(db.put(b"k", b"v").unwrap_err(), Error::InvalidDb);
        assert_eq!(db.get(b"k").unwrap_err(), Error::InvalidDb);
        assert_eq!(db.fence().unwrap_err(), Error::InvalidDb);
        // Double close is idempotent.
        db.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn empty_keys_rejected() {
    run_world(1, "t-emptykey", |_ctx, db| {
        assert!(matches!(db.put(b"", b"v").unwrap_err(), Error::InvalidArgument(_)));
        assert!(matches!(db.get(b"").unwrap_err(), Error::InvalidArgument(_)));
    });
}

#[test]
fn multiple_databases_independent() {
    let platform = Platform::new(SystemProfile::test_profile(), 2);
    World::run(WorldConfig::for_tests(2), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-multi").unwrap();
        let a = ctx.open("alpha", OpenFlags::create(), Options::small()).unwrap();
        let b = ctx
            .open(
                "beta",
                OpenFlags::create(),
                Options::small().with_consistency(Consistency::Sequential),
            )
            .unwrap();
        a.put(format!("k{}", ctx.rank()).as_bytes(), b"A").unwrap();
        b.put(format!("k{}", ctx.rank()).as_bytes(), b"B").unwrap();
        a.barrier(BarrierLevel::MemTable).unwrap();
        b.barrier(BarrierLevel::MemTable).unwrap();
        for r in 0..2 {
            assert_eq!(&a.get(format!("k{r}").as_bytes()).unwrap()[..], b"A");
            assert_eq!(&b.get(format!("k{r}").as_bytes()).unwrap()[..], b"B");
        }
        assert_eq!(a.consistency(), Consistency::Relaxed);
        assert_eq!(b.consistency(), Consistency::Sequential);
        a.close().unwrap();
        b.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn get_opt_maps_not_found_to_none() {
    run_world(1, "t-getopt", |_ctx, db| {
        db.put(b"present", b"1").unwrap();
        assert!(db.get_opt(b"present").unwrap().is_some());
        assert!(db.get_opt(b"absent").unwrap().is_none());
    });
}

#[test]
fn large_values_roundtrip_remote() {
    run_world(2, "t-large", |ctx, db| {
        let big = vec![0xAB; 128 * 1024];
        if ctx.rank() == 0 {
            for i in 0..4 {
                db.put(format!("big{i}").as_bytes(), &big).unwrap();
            }
        }
        db.barrier(BarrierLevel::MemTable).unwrap();
        for i in 0..4 {
            let got = db.get(format!("big{i}").as_bytes()).unwrap();
            assert_eq!(got.len(), 128 * 1024);
            assert!(got.iter().all(|&b| b == 0xAB));
        }
    });
}

#[test]
fn virtual_time_advances_with_work() {
    // Real device models: puts and barriers must cost virtual time.
    let platform = Platform::new(SystemProfile::summitdev(), 2);
    let cfg = WorldConfig::new(2, SystemProfile::summitdev().net);
    let times = World::run(cfg, move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://t-time").unwrap();
        let db = ctx
            .open("db", OpenFlags::create(), Options::default().with_memtable_capacity(1 << 20))
            .unwrap();
        let value = vec![1u8; 64 * 1024];
        for i in 0..100 {
            db.put(format!("t{}-{i}", ctx.rank()).as_bytes(), &value).unwrap();
        }
        let before_barrier = ctx.now();
        db.barrier(BarrierLevel::SsTable).unwrap();
        let after_barrier = ctx.now();
        db.close().unwrap();
        ctx.finalize().unwrap();
        (before_barrier, after_barrier)
    });
    for (before, after) in times {
        assert!(before > 0, "puts must cost virtual time");
        assert!(after > before, "SSTable barrier must add flush I/O time");
    }
}
