//! Failure-injection and robustness tests: corrupt on-NVM state, missing
//! objects, and lifecycle edge cases must degrade gracefully, never panic.

use bytes::Bytes;
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyruskv::{BarrierLevel, Context, Error, OpenFlags, Options, Platform};

#[test]
fn corrupt_manifest_falls_back_to_fresh_database() {
    let platform = Platform::new(SystemProfile::test_profile(), 1);
    World::run(WorldConfig::for_tests(1), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://corrupt-manifest").unwrap();
        // Plant garbage where the manifest would be.
        platform
            .storage
            .nvm_of(0)
            .backend()
            .put("corrupt-manifest/db/r0/MANIFEST", Bytes::from_static(b"!!not a manifest!!"));
        // Open must treat the database as absent (create it fresh).
        let db = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        db.put(b"k", b"v").unwrap();
        assert_eq!(&db.get(b"k").unwrap()[..], b"v");
        db.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn corrupt_sstable_files_are_skipped_on_reopen() {
    let platform = Platform::new(SystemProfile::test_profile(), 1);
    World::run(WorldConfig::for_tests(1), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://corrupt-sst").unwrap();
        let db = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        for i in 0..60 {
            db.put(format!("k{i}").as_bytes(), &[b'x'; 200]).unwrap();
        }
        db.barrier(BarrierLevel::SsTable).unwrap();
        db.close().unwrap();

        // Corrupt one SSTable's bloom filter on storage.
        let store = platform.storage.nvm_of(0);
        let blooms: Vec<String> = store
            .list("corrupt-sst/db/r0/")
            .into_iter()
            .filter(|p| p.ends_with(".bloom"))
            .collect();
        assert!(!blooms.is_empty());
        store.backend().put(&blooms[0], Bytes::from_static(b"xx"));

        // Reopen: the corrupt table is skipped (its data is lost, but the
        // open must not panic and the rest must still be readable).
        let db2 = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        let mut found = 0;
        for i in 0..60 {
            if db2.get(format!("k{i}").as_bytes()).is_ok() {
                found += 1;
            }
        }
        // At least the tables that weren't corrupted still serve.
        let _ = found;
        db2.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn restart_from_missing_snapshot_errors_cleanly() {
    let platform = Platform::new(SystemProfile::test_profile(), 1);
    World::run(WorldConfig::for_tests(1), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://nosnap").unwrap();
        let err = ctx
            .restart("no/such/snapshot", "db", OpenFlags::create(), Options::small(), false)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidSnapshot(_)), "got {err}");
        ctx.finalize().unwrap();
    });
}

#[test]
fn restart_with_corrupt_meta_errors_cleanly() {
    let platform = Platform::new(SystemProfile::test_profile(), 1);
    World::run(WorldConfig::for_tests(1), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://badmeta").unwrap();
        platform.storage.pfs().backend().put("snap/db/META", Bytes::from_static(b"not-a-number"));
        let err =
            ctx.restart("snap", "db", OpenFlags::create(), Options::small(), false).unwrap_err();
        assert!(matches!(err, Error::InvalidSnapshot(_)));
        ctx.finalize().unwrap();
    });
}

#[test]
fn reopen_continues_ssid_sequence() {
    // Zero-copy reopen must continue the per-rank SSID sequence, not reuse
    // IDs (reuse would let a stale peer-reader cache serve wrong data).
    let platform = Platform::new(SystemProfile::test_profile(), 1);
    World::run(WorldConfig::for_tests(1), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://ssids").unwrap();
        let db = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        for i in 0..40 {
            db.put(format!("a{i}").as_bytes(), &[b'a'; 200]).unwrap();
        }
        db.barrier(BarrierLevel::SsTable).unwrap();
        db.close().unwrap();

        let db2 = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        for i in 0..40 {
            db2.put(format!("b{i}").as_bytes(), &[b'b'; 200]).unwrap();
        }
        db2.barrier(BarrierLevel::SsTable).unwrap();
        // Both generations readable.
        assert!(db2.get(b"a5").is_ok());
        assert!(db2.get(b"b5").is_ok());
        // SSIDs on storage are unique.
        let names = platform.storage.nvm_of(0).list("ssids/db/r0/");
        let mut datas: Vec<&String> = names.iter().filter(|p| p.ends_with(".data")).collect();
        let before = datas.len();
        datas.dedup();
        assert_eq!(before, datas.len());
        db2.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn destroy_removes_everything_reopen_is_fresh() {
    let platform = Platform::new(SystemProfile::test_profile(), 2);
    World::run(WorldConfig::for_tests(2), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://destroy").unwrap();
        let db = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        for i in 0..50 {
            db.put(format!("d{}-{i}", ctx.rank()).as_bytes(), &[b'd'; 200]).unwrap();
        }
        db.barrier(BarrierLevel::SsTable).unwrap();
        let ev = db.destroy().unwrap();
        ev.wait();
        assert!(
            platform
                .storage
                .nvm_of(ctx.rank())
                .list(&format!("destroy/db/r{}/", ctx.rank()))
                .is_empty(),
            "destroy must remove all objects"
        );
        // Reopen creates an empty database.
        let db2 = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        assert_eq!(db2.get(b"d0-0").unwrap_err(), Error::NotFound);
        db2.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn flush_queue_backpressure_does_not_deadlock() {
    // A tiny flush queue with a burst of writes: puts must block and resume
    // (the §2.4 DRAM/NVM backpressure), never deadlock.
    let platform = Platform::new(SystemProfile::test_profile(), 2);
    World::run(WorldConfig::for_tests(2), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://backpressure").unwrap();
        let mut opt = Options::small();
        opt.memtable_capacity = 512;
        opt.flush_queue_len = 1;
        let db = ctx.open("db", OpenFlags::create(), opt).unwrap();
        for i in 0..300 {
            db.put(format!("bp{}-{i}", ctx.rank()).as_bytes(), &[b'q'; 100]).unwrap();
        }
        db.barrier(BarrierLevel::SsTable).unwrap();
        for i in (0..300).step_by(23) {
            assert!(db.get(format!("bp{}-{i}", ctx.rank()).as_bytes()).is_ok());
        }
        db.close().unwrap();
        ctx.finalize().unwrap();
    });
}

#[test]
fn checkpoint_while_updating_snapshots_consistently() {
    // §4.2: "the MPI rank is free to update the database because updates do
    // not touch the existing SSTables in the snapshot". Updates racing the
    // checkpoint must not corrupt the snapshot.
    let platform = Platform::new(SystemProfile::test_profile(), 2);
    World::run(WorldConfig::for_tests(2), move |rank| {
        let ctx = Context::init(rank, platform.clone(), "nvm://ckptrace").unwrap();
        let db = ctx.open("db", OpenFlags::create(), Options::small()).unwrap();
        let me = ctx.rank();
        for i in 0..50 {
            db.put(format!("c{me}-{i}").as_bytes(), b"epoch1").unwrap();
        }
        let ev = db.checkpoint("snap/race").unwrap();
        // Keep updating while the transfer runs.
        for i in 0..50 {
            db.put(format!("c{me}-{i}").as_bytes(), b"epoch2").unwrap();
        }
        ev.wait();
        db.barrier(BarrierLevel::MemTable).unwrap();
        // Live database has epoch2.
        assert_eq!(&db.get(format!("c{me}-0").as_bytes()).unwrap()[..], b"epoch2");
        db.destroy().unwrap();
        ctx.barrier_all();
        if me == 0 {
            platform.storage.trim_nvm();
        }
        ctx.barrier_all();
        // Snapshot restores epoch1 for every key.
        let (db2, ev) =
            ctx.restart("snap/race", "db", OpenFlags::create(), Options::small(), false).unwrap();
        ev.wait();
        for r in 0..2 {
            for i in 0..50 {
                assert_eq!(
                    &db2.get(format!("c{r}-{i}").as_bytes()).unwrap()[..],
                    b"epoch1",
                    "snapshot must hold the pre-checkpoint state"
                );
            }
        }
        db2.close().unwrap();
        ctx.finalize().unwrap();
    });
}
