//! Open-loop memtier-style load generator.
//!
//! Each simulated connection fires a configured number of *bursts* at
//! arrival times drawn uniformly over the run window — open-loop: the
//! arrival schedule is fixed up front and does not slow down when the
//! server queues, so measured latency includes queueing delay, exactly
//! the failure mode closed-loop generators hide. A burst writes
//! `pipeline` encoded commands back-to-back onto the connection (RESP
//! pipelining), so the server sees partial frames and multi-frame reads
//! on every poll.
//!
//! Command content is drawn from a single rank-level RNG at emission
//! time. Arrival order is a pre-sorted `(time, conn, seq)` schedule, so
//! the draw sequence — and therefore every key, value, and command —
//! is a pure function of the seed.
//!
//! Key discipline: reads (GET/MGET/EXISTS/RANGE) draw from the *full*
//! loaded keyspace through a [`KeyChooser`], so dispatch exercises
//! cross-rank routing (ownership is hash-partitioned). Writes
//! (SET/DEL/MSET) draw from this rank's *disjoint* key slice — skewed
//! within the slice so the same hot keys repeat inside one group-commit
//! backlog (visible fold coalescing) — which keeps the read-your-writes
//! oracle exact without cross-rank last-writer ambiguity.

use papyrus_bench::workload::{ordered_key, KeyChooser, KeyDist, ZIPF_THETA};
use rand::rngs::StdRng;
use rand::Rng;

use crate::cmd::Command;
use crate::resp::{encode_command, encode_inline};

/// Command mix presets (shares per mille).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMix {
    /// 80% reads / 16% writes / 4% admin.
    ReadHeavy,
    /// 32% reads / 67% writes / 1% admin.
    WriteHeavy,
    /// Roughly even reads and writes.
    Balanced,
}

impl LoadMix {
    /// Stable label used in reports and perfline row ids.
    pub fn label(self) -> &'static str {
        match self {
            LoadMix::ReadHeavy => "read_heavy",
            LoadMix::WriteHeavy => "write_heavy",
            LoadMix::Balanced => "balanced",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "read_heavy" | "read-heavy" => Some(LoadMix::ReadHeavy),
            "write_heavy" | "write-heavy" => Some(LoadMix::WriteHeavy),
            "balanced" => Some(LoadMix::Balanced),
            _ => None,
        }
    }

    /// Per-mille cumulative thresholds:
    /// (get, mget, exists, range, set, del, mset, ping) — INFO takes the
    /// remainder to 1000.
    fn thresholds(self) -> [u32; 8] {
        match self {
            LoadMix::ReadHeavy => [650, 730, 780, 800, 950, 960, 990, 998],
            LoadMix::WriteHeavy => [250, 280, 300, 320, 820, 870, 990, 998],
            LoadMix::Balanced => [420, 470, 500, 530, 880, 910, 990, 998],
        }
    }
}

/// Key-skew presets for the read side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSkew {
    /// Uniform over the keyspace.
    Uniform,
    /// Zipfian with the YCSB theta (0.99).
    Zipfian,
}

impl LoadSkew {
    /// Stable label used in reports and perfline row ids.
    pub fn label(self) -> &'static str {
        match self {
            LoadSkew::Uniform => "uniform",
            LoadSkew::Zipfian => "zipfian",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "uniform" => Some(LoadSkew::Uniform),
            "zipfian" => Some(LoadSkew::Zipfian),
            _ => None,
        }
    }

    fn dist(self) -> KeyDist {
        match self {
            LoadSkew::Uniform => KeyDist::Uniform,
            LoadSkew::Zipfian => KeyDist::Zipfian { theta: ZIPF_THETA },
        }
    }
}

/// One scheduled burst: `at` is a virtual-time offset from the window
/// start (delta-anchored — never an absolute stamp), `conn` the local
/// connection index.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Offset from window start, ns.
    pub at: u64,
    /// Local connection index.
    pub conn: u32,
}

/// Build the open-loop arrival schedule: `bursts` arrivals per
/// connection, uniform over `[0, duration_ns)`, sorted by
/// `(time, conn)` so the single-threaded window loop consumes them in a
/// deterministic order.
pub fn build_schedule(conns: u32, bursts: u32, duration_ns: u64, rng: &mut StdRng) -> Vec<Arrival> {
    let mut schedule = Vec::with_capacity(conns as usize * bursts as usize);
    for conn in 0..conns {
        for _ in 0..bursts {
            schedule.push(Arrival { at: rng.gen_range(0..duration_ns.max(1)), conn });
        }
    }
    schedule.sort_by_key(|a| (a.at, a.conn));
    schedule
}

/// Deterministic command source for one rank's window.
pub struct Generator {
    mix: LoadMix,
    /// Reads: full keyspace, configured skew.
    read_chooser: KeyChooser,
    /// Writes: this rank's slice, always zipfian (hot keys repeat within
    /// one backlog, making the group-commit fold visible).
    write_chooser: KeyChooser,
    /// First key index of this rank's write slice.
    write_base: u64,
    /// Total loaded keys (RANGE clamps against this).
    total_keys: u64,
    vallen: usize,
    /// Monotone per-rank write sequence; embedded in every written value
    /// so any two writes produce distinct bytes (the dropped-write
    /// oracle needs last-writer values to be distinguishable).
    write_seq: u64,
}

impl Generator {
    /// A generator for `rank`'s window over a keyspace of
    /// `keys_per_rank * ranks` keys.
    pub fn new(
        rank: usize,
        ranks: usize,
        keys_per_rank: u64,
        mix: LoadMix,
        skew: LoadSkew,
        vallen: usize,
    ) -> Self {
        let total_keys = keys_per_rank * ranks as u64;
        Self {
            mix,
            read_chooser: KeyChooser::new(skew.dist(), total_keys),
            write_chooser: KeyChooser::new(KeyDist::Zipfian { theta: ZIPF_THETA }, keys_per_rank),
            write_base: rank as u64 * keys_per_rank,
            total_keys,
            vallen,
            write_seq: 0,
        }
    }

    fn read_key(&self, rng: &mut StdRng) -> Vec<u8> {
        ordered_key(self.read_chooser.next(rng))
    }

    fn write_key(&self, rng: &mut StdRng) -> Vec<u8> {
        ordered_key(self.write_base + self.write_chooser.next(rng))
    }

    /// The value for write number `seq`: a unique header padded to
    /// `vallen` bytes.
    fn value(&mut self) -> Vec<u8> {
        let seq = self.write_seq;
        self.write_seq += 1;
        let mut v = format!("v{seq:016x}").into_bytes();
        v.resize(self.vallen.max(v.len()), b'.');
        v
    }

    /// Draw the next command.
    pub fn next_command(&mut self, rng: &mut StdRng) -> Command {
        let roll: u32 = rng.gen_range(0..1000);
        let t = self.mix.thresholds();
        if roll < t[0] {
            Command::Get { key: self.read_key(rng) }
        } else if roll < t[1] {
            let n = 2 + rng.gen_range(0..3usize);
            Command::MGet { keys: (0..n).map(|_| self.read_key(rng)).collect() }
        } else if roll < t[2] {
            Command::Exists { key: self.read_key(rng) }
        } else if roll < t[3] {
            let count = 2 + rng.gen_range(0..7u64);
            let start = self.read_chooser.next(rng).min(self.total_keys.saturating_sub(count));
            Command::Range { start, count }
        } else if roll < t[4] {
            let key = self.write_key(rng);
            let value = self.value();
            Command::Set { key, value }
        } else if roll < t[5] {
            Command::Del { key: self.write_key(rng) }
        } else if roll < t[6] {
            let n = 2 + rng.gen_range(0..2usize);
            let pairs = (0..n)
                .map(|_| {
                    let key = self.write_key(rng);
                    let value = self.value();
                    (key, value)
                })
                .collect();
            Command::MSet { pairs }
        } else if roll < t[7] {
            Command::Ping
        } else {
            Command::Info
        }
    }

    /// Encode `cmd` as the client would send it. PINGs flip a coin
    /// between the canonical array form and the bare inline line, so the
    /// server's inline path sees real traffic.
    pub fn encode(&self, cmd: &Command, rng: &mut StdRng, out: &mut Vec<u8>) {
        let words = command_words(cmd);
        if matches!(cmd, Command::Ping) && rng.gen_bool(0.5) {
            encode_inline(&words, out);
        } else {
            encode_command(&words, out);
        }
    }
}

/// The wire words for a command (client-side encoding).
pub fn command_words(cmd: &Command) -> Vec<Vec<u8>> {
    match cmd {
        Command::Ping => vec![b"PING".to_vec()],
        Command::Info => vec![b"INFO".to_vec()],
        Command::Get { key } => vec![b"GET".to_vec(), key.clone()],
        Command::Set { key, value } => vec![b"SET".to_vec(), key.clone(), value.clone()],
        Command::Del { key } => vec![b"DEL".to_vec(), key.clone()],
        Command::Exists { key } => vec![b"EXISTS".to_vec(), key.clone()],
        Command::MGet { keys } => {
            let mut w = vec![b"MGET".to_vec()];
            w.extend(keys.iter().cloned());
            w
        }
        Command::MSet { pairs } => {
            let mut w = vec![b"MSET".to_vec()];
            for (k, v) in pairs {
                w.push(k.clone());
                w.push(v.clone());
            }
            w
        }
        Command::Range { start, count } => {
            vec![b"RANGE".to_vec(), start.to_string().into_bytes(), count.to_string().into_bytes()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::parse_command;
    use crate::resp::Decoder;
    use rand::SeedableRng;

    #[test]
    fn schedule_is_sorted_and_seed_stable() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = build_schedule(100, 3, 1_000_000, &mut rng);
        assert_eq!(a.len(), 300);
        assert!(a.windows(2).all(|w| (w[0].at, w[0].conn) <= (w[1].at, w[1].conn)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let b = build_schedule(100, 3, 1_000_000, &mut rng2);
        assert!(a.iter().zip(&b).all(|(x, y)| (x.at, x.conn) == (y.at, y.conn)));
    }

    #[test]
    fn generated_commands_survive_their_own_encoding() {
        let mut gen = Generator::new(1, 4, 512, LoadMix::Balanced, LoadSkew::Zipfian, 64);
        let mut rng = StdRng::seed_from_u64(42);
        let mut d = Decoder::new();
        for _ in 0..500 {
            let cmd = gen.next_command(&mut rng);
            let mut wire = Vec::new();
            gen.encode(&cmd, &mut rng, &mut wire);
            d.feed(&wire);
            let frame = d.next_frame().expect("valid").expect("complete");
            assert_eq!(parse_command(&frame), Ok(cmd));
        }
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn writes_stay_in_the_rank_slice_and_values_are_unique() {
        let keys_per_rank = 256u64;
        let mut gen =
            Generator::new(2, 4, keys_per_rank, LoadMix::WriteHeavy, LoadSkew::Uniform, 32);
        let mut rng = StdRng::seed_from_u64(9);
        let mut values = std::collections::HashSet::new();
        for _ in 0..2000 {
            match gen.next_command(&mut rng) {
                Command::Set { key, value } => {
                    let idx: u64 = String::from_utf8_lossy(&key[4..]).parse().expect("ordered key");
                    assert!((512..768).contains(&idx), "write outside rank slice: {idx}");
                    assert!(values.insert(value), "duplicate written value");
                }
                Command::MSet { pairs } => {
                    for (key, value) in pairs {
                        let idx: u64 =
                            String::from_utf8_lossy(&key[4..]).parse().expect("ordered key");
                        assert!((512..768).contains(&idx));
                        assert!(values.insert(value));
                    }
                }
                _ => {}
            }
        }
        assert!(!values.is_empty());
    }
}
