//! papyrus-serve: a deterministic RESP front end over PapyrusKV.
//!
//! The ROADMAP's "serves heavy traffic" claim needs a network face. This
//! crate layers a RESP2-subset protocol server
//! (GET/SET/DEL/MGET/MSET/EXISTS/RANGE/PING/INFO) on [`papyruskv::Db`],
//! running entirely inside the simtime World so a 4-rank, 10k-connection
//! load test produces *bit-identical* virtual-time numbers for a given
//! seed — CI gates on the numbers themselves, not on noise envelopes.
//!
//! Pieces, bottom up:
//!
//! - [`resp`] — zero-copy incremental RESP codec (inline + bulk frames,
//!   pipelining-safe partial-read resumption, typed errors, no panics).
//! - [`cmd`] — frame → typed command parsing, typed replies.
//! - [`loadgen`] — open-loop memtier-style generator: fixed arrival
//!   schedule, pipelined bursts, skewed keys via
//!   `papyrus_bench::workload::KeyChooser`.
//! - [`server`] — the per-rank serving window: hash-sharded dispatch
//!   queues (shard = owner rank), greedy group commit (fold backlog →
//!   one relaxed batch → one fence → ack), plus durability,
//!   read-your-writes, and protocol oracles.
//! - [`report`] — per-rank rows, exact percentiles, canonical
//!   byte-stable rendering for the determinism self-test.
//!
//! [`run_serve`] wires them into a full World run; `cargo xtask serve`
//! drives it, and [`perf_rows`] exports `serve` row families into
//! perfline's `BENCH_<sha>.json` regression gate.

pub mod cmd;
pub mod loadgen;
pub mod report;
pub mod resp;
pub mod server;
pub mod tel;

use papyrus_bench::value_of;
use papyrus_bench::workload::ordered_key;
use papyrus_mpi::{World, WorldConfig};
use papyrus_nvm::SystemProfile;
use papyrus_telemetry::{LatencySummary, WorkloadPerf};
use papyruskv::{BarrierLevel, Consistency, Context, OpenFlags, Options, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use loadgen::{LoadMix, LoadSkew};
pub use report::{LatSummary, RankRow, ServeReport};
pub use server::{serve_window, WindowStats};

/// Defects the self-test can plant; each must be convicted by its oracle
/// (`cargo xtask serve --seed-bug all`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedBug {
    /// Ack writes (and run the durability probe) *before* the round's
    /// fence: clients are told "durable" while their records still sit in
    /// the staging MemTables. Convicted by the durability oracle.
    AckBeforeFence,
    /// Fold duplicate keys first-writer-wins, silently dropping the later
    /// client write from the batch. Convicted by the read-your-writes
    /// sweep.
    DroppedWrite,
}

impl SeedBug {
    /// All plantable defects.
    pub const ALL: [SeedBug; 2] = [SeedBug::AckBeforeFence, SeedBug::DroppedWrite];

    /// Stable CLI/report label.
    pub fn label(self) -> &'static str {
        match self {
            SeedBug::AckBeforeFence => "ack-before-fence",
            SeedBug::DroppedWrite => "dropped-write",
        }
    }

    /// Parse a CLI flag value (`all` is handled by the caller).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ack-before-fence" | "ack_before_fence" => Some(SeedBug::AckBeforeFence),
            "dropped-write" | "dropped_write" => Some(SeedBug::DroppedWrite),
            _ => None,
        }
    }
}

/// Configuration for one serve run.
#[derive(Debug, Clone)]
pub struct ServeCfg {
    /// World size.
    pub ranks: usize,
    /// Simulated connections per rank's window.
    pub conns_per_rank: u32,
    /// Commands per pipelined burst.
    pub pipeline: u32,
    /// Bursts per connection (open-loop arrivals).
    pub bursts: u32,
    /// Arrival window length, virtual milliseconds.
    pub duration_ms: u64,
    /// Pre-loaded keys per rank (the RANGE/GET keyspace).
    pub keys_per_rank: u64,
    /// Value length for loads and SETs.
    pub vallen: usize,
    /// Command mix.
    pub mix: LoadMix,
    /// Read-key skew.
    pub skew: LoadSkew,
    /// Run seed; same seed ⇒ byte-identical report.
    pub seed: u64,
    /// Planted defect, if any.
    pub seed_bug: Option<SeedBug>,
}

impl ServeCfg {
    /// The acceptance-gate sizing: 4 ranks × 10k connections, pipelined
    /// GET/SET mix.
    pub fn full() -> Self {
        Self {
            ranks: 4,
            conns_per_rank: 10_000,
            pipeline: 4,
            bursts: 2,
            duration_ms: 200,
            keys_per_rank: 4096,
            vallen: 64,
            mix: LoadMix::Balanced,
            skew: LoadSkew::Zipfian,
            seed: 42,
            seed_bug: None,
        }
    }

    /// Reduced sizing for unit/integration tests and perfline rows.
    pub fn quick() -> Self {
        Self { conns_per_rank: 512, keys_per_rank: 1024, duration_ms: 40, ..Self::full() }
    }
}

/// MemTable capacity for serve worlds: large enough that no flush (and
/// hence no compaction-thread device activity) ever races a serving
/// window — the windows' determinism argument needs all device traffic
/// causally ordered by the single driving rank.
const SERVE_MEMTABLE_CAPACITY: u64 = 256 << 20;

/// Run a full serve world: load the keyspace, settle it into SSTables,
/// then serve each rank's window in turn (round-robin, barrier-fenced)
/// and aggregate the per-rank stats.
///
/// Rank windows are sequential by design: one rank drives client traffic
/// while every other rank's handler thread answers its remote reads and
/// ingests its migrations. That makes every submission to a shared
/// simtime resource causally ordered — the whole run is a pure function
/// of `cfg.seed`.
pub fn run_serve(cfg: &ServeCfg) -> ServeReport {
    assert!(cfg.ranks > 0 && cfg.conns_per_rank > 0 && cfg.pipeline > 0 && cfg.bursts > 0);
    let profile = SystemProfile::summitdev();
    // group_size 1: each rank owns its NVM device, so within a window a
    // device is touched by exactly one thread (driver locally, owner's
    // handler remotely) — no cross-thread stamp races.
    let platform = Platform::with_physical_groups(profile.clone(), cfg.ranks, 1);
    let mem = profile.mem.clone();
    let cfg2 = cfg.clone();
    let per_rank = World::run(WorldConfig::new(cfg.ranks, profile.net.clone()), move |rank| {
        let ctx = Context::init_with_group(rank, platform.clone(), "nvm://serve", 1).unwrap();
        let opt = Options::default()
            .with_consistency(Consistency::Relaxed)
            .with_memtable_capacity(SERVE_MEMTABLE_CAPACITY);
        let db = ctx.open("serve", OpenFlags::create(), opt).unwrap();
        let r = ctx.rank();

        // Load: contiguous ordered-key chunk per rank, then settle it all
        // into SSTables so the measured windows start quiescent.
        let value = value_of(cfg2.vallen, b'i');
        let base = r as u64 * cfg2.keys_per_rank;
        for i in base..base + cfg2.keys_per_rank {
            db.put(&ordered_key(i), &value).unwrap();
        }
        db.barrier(BarrierLevel::SsTable).unwrap();

        if r == 0 {
            papyrus_telemetry::reset();
            papyrus_telemetry::enable();
        }
        ctx.barrier_all();

        let mut rng = StdRng::seed_from_u64(cfg2.seed ^ ((r as u64) << 32));
        let mut stats = None;
        for turn in 0..ctx.size() {
            if turn == r {
                stats = Some(serve_window(&ctx, &db, &cfg2, &mem, &mut rng));
            }
            // Parked ranks sit here while their handler threads serve the
            // driver's remote traffic.
            ctx.barrier_all();
        }

        ctx.barrier_all();
        if r == 0 {
            papyrus_telemetry::disable();
        }
        ctx.barrier_all();
        db.close().unwrap();
        ctx.finalize().unwrap();
        stats.expect("every rank serves exactly one window")
    });
    ServeReport::build(cfg, per_rank)
}

/// Approximate payload bytes a report moved (keys + values per store op).
fn bytes_moved(report: &ServeReport, vallen: usize) -> u64 {
    let ops: u64 = report.rows.iter().map(|r| r.store_ops).sum();
    ops * (16 + vallen as u64)
}

fn to_latency_summary(l: &LatSummary) -> LatencySummary {
    LatencySummary {
        count: l.count,
        mean_ns: l.mean_ns as f64,
        p50_ns: l.p50_ns,
        p95_ns: l.p95_ns,
        p99_ns: l.p99_ns,
        max_ns: l.max_ns,
    }
}

/// Perfline integration: run the serve plane at reduced sizing and
/// export one `serve` row per command mix. Rows are deterministic (no
/// repeat envelope needed): `put` carries write-command latency, `get`
/// read-command latency, and `qps` commands per virtual second — all
/// under the same >10% regression gate as the engine rows.
pub fn perf_rows(seed: u64) -> Vec<WorkloadPerf> {
    [LoadMix::ReadHeavy, LoadMix::Balanced]
        .into_iter()
        .map(|mix| {
            let cfg = ServeCfg { mix, seed, ..ServeCfg::quick() };
            let report = run_serve(&cfg);
            assert!(report.clean(), "serve perf row ran dirty: {:?}", report.violation_example);
            WorkloadPerf {
                id: format!("serve_{}/{}/r{}", report.mix, report.skew, report.ranks),
                mix: format!("serve_{}", report.mix),
                skew: report.skew.clone(),
                ranks: report.ranks,
                replicas: 1,
                ops: report.total_cmds(),
                elapsed_ns: report.total_elapsed_ns(),
                qps: report.qps(),
                bytes_moved: bytes_moved(&report, cfg.vallen),
                flushes: 0,
                compactions: 0,
                put: report.write.as_ref().map(to_latency_summary),
                get: report.read.as_ref().map(to_latency_summary),
                scan: None,
                repl_lag: None,
            }
        })
        .collect()
}
