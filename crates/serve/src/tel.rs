//! Per-rank telemetry handles for the serve plane.
//!
//! One [`ServeTel`] is created per serving rank and caches interned
//! handles from the global [`papyrus_telemetry`] registry (same pattern
//! as the engine's `CoreTel`), so the request path never takes the
//! registry lock. The pid lane is the rank, matching every other plane,
//! so Chrome-trace output shows serve counters alongside the engine's
//! flush/migration spans for the same rank.

use papyrus_telemetry::{Counter, Histogram};

/// Interned serve-plane metric handles for one rank.
pub struct ServeTel {
    /// Connections opened on this rank.
    pub conns: Counter,
    /// Commands fully executed (including PING/INFO).
    pub cmds: Counter,
    /// Protocol/command errors replied with `-ERR`.
    pub errors: Counter,
    /// Poll visits that found readable bytes on a connection.
    pub polls: Counter,
    /// Sum of decoded-frames-per-poll-visit; with [`ServeTel::polls`]
    /// this gives the observed pipeline depth.
    pub pipeline_depth: Counter,
    /// Group-commit rounds that reached the store (at least one write).
    pub batch_count: Counter,
    /// Store writes folded across all group-commit rounds; mean batch
    /// size = `batch_size / batch_count`, and the acceptance gate demands
    /// it be > 1 under backlog.
    pub batch_size: Counter,
    /// Writes whose folded batch entry was overwritten by a later write
    /// to the same key in the same round (the fold actually coalescing).
    pub folded_dups: Counter,
    /// End-to-end request latency, arrival to ack (queueing included).
    pub req_ns: Histogram,
    /// Read-command slice of `serve.req.ns` (GET/MGET/EXISTS/RANGE).
    pub req_read_ns: Histogram,
    /// Write-command slice of `serve.req.ns` (SET/DEL/MSET) — acked only
    /// after the group-commit fence.
    pub req_write_ns: Histogram,
}

impl ServeTel {
    /// Intern this rank's serve-plane handles.
    pub fn new(rank: usize) -> Self {
        let reg = papyrus_telemetry::global();
        let pid = rank as u32;
        Self {
            conns: reg.counter(pid, "serve.conns"),
            cmds: reg.counter(pid, "serve.cmds"),
            errors: reg.counter(pid, "serve.errors"),
            polls: reg.counter(pid, "serve.polls"),
            pipeline_depth: reg.counter(pid, "serve.pipeline.depth"),
            batch_count: reg.counter(pid, "serve.batch.count"),
            batch_size: reg.counter(pid, "serve.batch.size"),
            folded_dups: reg.counter(pid, "serve.folded.dups"),
            req_ns: reg.histogram(pid, "serve.req.ns"),
            req_read_ns: reg.histogram(pid, "serve.req.read.ns"),
            req_write_ns: reg.histogram(pid, "serve.req.write.ns"),
        }
    }

    /// Whether recording is live (one relaxed load; callers guard blocks
    /// of telemetry work with this to skip even the handle-level checks).
    #[inline]
    pub fn on(&self) -> bool {
        papyrus_telemetry::is_enabled()
    }
}
