//! The serve run report: per-rank rows, aggregate percentiles, oracle
//! verdicts, and a canonical byte-stable rendering.
//!
//! Every number here is derived from virtual-time deltas and counts, so
//! two runs with the same seed produce byte-identical
//! [`ServeReport::canonical`] strings — the self-test compares them
//! directly to prove determinism.

use crate::server::WindowStats;
use crate::ServeCfg;

/// Exact percentile summary over a latency sample set (virtual ns). All
/// fields are integers (mean truncates) so the canonical rendering is
/// trivially byte-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatSummary {
    /// Samples.
    pub count: u64,
    /// Truncated arithmetic mean.
    pub mean_ns: u64,
    /// Median (nearest-rank on the sorted samples).
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Observed maximum.
    pub max_ns: u64,
}

impl LatSummary {
    /// Summarise `samples` (consumed and sorted); `None` when empty.
    pub fn from_samples(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u64 = samples.iter().sum();
        let pick = |q: u64| samples[((samples.len() - 1) * q as usize) / 100];
        Some(Self {
            count,
            mean_ns: sum / count,
            p50_ns: pick(50),
            p95_ns: pick(95),
            p99_ns: pick(99),
            max_ns: samples[samples.len() - 1],
        })
    }

    fn canon(&self) -> String {
        format!(
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count, self.mean_ns, self.p50_ns, self.p95_ns, self.p99_ns, self.max_ns
        )
    }
}

/// One rank's window, summarised.
#[derive(Debug, Clone)]
pub struct RankRow {
    /// Serving rank.
    pub rank: usize,
    /// Connections served.
    pub conns: u32,
    /// Commands executed.
    pub cmds: u64,
    /// Store ops those commands expanded to.
    pub store_ops: u64,
    /// Write ops routed through group commit.
    pub writes: u64,
    /// Group-commit rounds.
    pub batch_rounds: u64,
    /// Write ops drained across rounds.
    pub batch_records: u64,
    /// Duplicate-key folds within rounds.
    pub folded_dups: u64,
    /// Poll visits that decoded at least one frame.
    pub polls: u64,
    /// Frames decoded.
    pub frames: u64,
    /// Window serving time, virtual ns.
    pub elapsed_ns: u64,
    /// Read-command latency (GET/MGET/EXISTS/RANGE).
    pub read: Option<LatSummary>,
    /// Write-command latency (SET/DEL/MSET; fence included).
    pub write: Option<LatSummary>,
    /// Durability-oracle violations.
    pub durability_violations: u64,
    /// Read-your-writes sweep violations.
    pub ryw_violations: u64,
    /// Protocol-oracle violations.
    pub protocol_violations: u64,
}

impl RankRow {
    /// Commands per virtual second in this rank's window.
    pub fn qps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.cmds as f64 * 1e9 / self.elapsed_ns as f64
        }
    }
}

/// Full run report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// World size.
    pub ranks: usize,
    /// Simulated connections per rank.
    pub conns_per_rank: u32,
    /// Commands per burst.
    pub pipeline: u32,
    /// Bursts per connection.
    pub bursts: u32,
    /// Command mix label.
    pub mix: String,
    /// Read-skew label.
    pub skew: String,
    /// Run seed.
    pub seed: u64,
    /// Planted defect, if any.
    pub seed_bug: Option<&'static str>,
    /// Per-rank rows, rank order.
    pub rows: Vec<RankRow>,
    /// All-rank read latency.
    pub read: Option<LatSummary>,
    /// All-rank write latency.
    pub write: Option<LatSummary>,
    /// All-rank admin (PING/INFO) latency.
    pub admin: Option<LatSummary>,
    /// First oracle violation, if any.
    pub violation_example: Option<String>,
}

impl ServeReport {
    /// Build the report from per-rank window stats (consumes the latency
    /// sample vectors).
    pub fn build(cfg: &ServeCfg, per_rank: Vec<WindowStats>) -> Self {
        let mut all_read = Vec::new();
        let mut all_write = Vec::new();
        let mut all_admin = Vec::new();
        let mut example = None;
        let rows = per_rank
            .into_iter()
            .map(|mut w| {
                all_read.extend_from_slice(&w.lat_read);
                all_write.extend_from_slice(&w.lat_write);
                all_admin.extend_from_slice(&w.lat_admin);
                if example.is_none() {
                    example = w.violation_example.take();
                }
                RankRow {
                    rank: w.rank,
                    conns: w.conns,
                    cmds: w.cmds,
                    store_ops: w.store_ops,
                    writes: w.writes,
                    batch_rounds: w.batch_rounds,
                    batch_records: w.batch_records,
                    folded_dups: w.folded_dups,
                    polls: w.polls,
                    frames: w.frames,
                    elapsed_ns: w.elapsed_ns,
                    read: LatSummary::from_samples(std::mem::take(&mut w.lat_read)),
                    write: LatSummary::from_samples(std::mem::take(&mut w.lat_write)),
                    durability_violations: w.durability_violations,
                    ryw_violations: w.ryw_violations,
                    protocol_violations: w.protocol_violations,
                }
            })
            .collect();
        Self {
            ranks: cfg.ranks,
            conns_per_rank: cfg.conns_per_rank,
            pipeline: cfg.pipeline,
            bursts: cfg.bursts,
            mix: cfg.mix.label().to_string(),
            skew: cfg.skew.label().to_string(),
            seed: cfg.seed,
            seed_bug: cfg.seed_bug.map(|b| b.label()),
            rows,
            read: LatSummary::from_samples(all_read),
            write: LatSummary::from_samples(all_write),
            admin: LatSummary::from_samples(all_admin),
            violation_example: example,
        }
    }

    /// Total commands across ranks.
    pub fn total_cmds(&self) -> u64 {
        self.rows.iter().map(|r| r.cmds).sum()
    }

    /// Total serving time across the (sequential) windows.
    pub fn total_elapsed_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.elapsed_ns).sum()
    }

    /// Commands per virtual second over the summed windows.
    pub fn qps(&self) -> f64 {
        let ns = self.total_elapsed_ns();
        if ns == 0 {
            0.0
        } else {
            self.total_cmds() as f64 * 1e9 / ns as f64
        }
    }

    /// Mean group-commit batch size (write ops per round).
    pub fn batch_mean(&self) -> f64 {
        let rounds: u64 = self.rows.iter().map(|r| r.batch_rounds).sum();
        let records: u64 = self.rows.iter().map(|r| r.batch_records).sum();
        if rounds == 0 {
            0.0
        } else {
            records as f64 / rounds as f64
        }
    }

    /// Total oracle violations (durability, read-your-writes, protocol).
    pub fn violations(&self) -> (u64, u64, u64) {
        let d = self.rows.iter().map(|r| r.durability_violations).sum();
        let w = self.rows.iter().map(|r| r.ryw_violations).sum();
        let p = self.rows.iter().map(|r| r.protocol_violations).sum();
        (d, w, p)
    }

    /// Whether every oracle came back clean.
    pub fn clean(&self) -> bool {
        self.violations() == (0, 0, 0)
    }

    /// Byte-stable canonical form: every integer quantity of every row.
    /// Two runs with the same seed must produce identical strings — the
    /// determinism self-test compares these directly.
    pub fn canonical(&self) -> String {
        let mut s = format!(
            "serve ranks={} conns={} pipeline={} bursts={} mix={} skew={} seed={} bug={}\n",
            self.ranks,
            self.conns_per_rank,
            self.pipeline,
            self.bursts,
            self.mix,
            self.skew,
            self.seed,
            self.seed_bug.unwrap_or("none"),
        );
        for r in &self.rows {
            s.push_str(&format!(
                "rank={} cmds={} ops={} writes={} rounds={} records={} dups={} polls={} \
                 frames={} elapsed={} read=[{}] write=[{}] viol={}/{}/{}\n",
                r.rank,
                r.cmds,
                r.store_ops,
                r.writes,
                r.batch_rounds,
                r.batch_records,
                r.folded_dups,
                r.polls,
                r.frames,
                r.elapsed_ns,
                r.read.as_ref().map(|l| l.canon()).unwrap_or_default(),
                r.write.as_ref().map(|l| l.canon()).unwrap_or_default(),
                r.durability_violations,
                r.ryw_violations,
                r.protocol_violations,
            ));
        }
        s
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let (d, w, p) = self.violations();
        let mut s = format!(
            "serve: {} ranks x {} conns, pipeline {}, bursts {}, mix {}, skew {}, seed {}{}\n",
            self.ranks,
            self.conns_per_rank,
            self.pipeline,
            self.bursts,
            self.mix,
            self.skew,
            self.seed,
            self.seed_bug.map(|b| format!(", seeded bug: {b}")).unwrap_or_default(),
        );
        s.push_str(&format!(
            "  total: {} cmds in {:.3} ms virtual -> {:.0} cmds/s, batch mean {:.2}\n",
            self.total_cmds(),
            self.total_elapsed_ns() as f64 / 1e6,
            self.qps(),
            self.batch_mean(),
        ));
        for lat in [("read", &self.read), ("write", &self.write), ("admin", &self.admin)] {
            if let (name, Some(l)) = lat {
                s.push_str(&format!(
                    "  {name:<5} n={:<8} p50={:>8} ns  p95={:>8} ns  p99={:>8} ns  max={} ns\n",
                    l.count, l.p50_ns, l.p95_ns, l.p99_ns, l.max_ns
                ));
            }
        }
        for r in &self.rows {
            s.push_str(&format!(
                "  rank {}: {} cmds, {:.0} cmds/s, {} rounds, batch mean {:.2}, dups {}\n",
                r.rank,
                r.cmds,
                r.qps(),
                r.batch_rounds,
                if r.batch_rounds == 0 {
                    0.0
                } else {
                    r.batch_records as f64 / r.batch_rounds as f64
                },
                r.folded_dups,
            ));
        }
        s.push_str(&format!("  oracles: durability {d}, read-your-writes {w}, protocol {p}\n"));
        if let Some(e) = &self.violation_example {
            s.push_str(&format!("  first violation: {e}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let l = LatSummary::from_samples((1..=100).collect()).unwrap();
        assert_eq!(l.count, 100);
        assert_eq!(l.p50_ns, 50);
        assert_eq!(l.p95_ns, 95);
        assert_eq!(l.p99_ns, 99);
        assert_eq!(l.max_ns, 100);
        assert_eq!(l.mean_ns, 50);
        assert_eq!(LatSummary::from_samples(vec![]), None);
    }
}
