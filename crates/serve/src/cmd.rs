//! Command layer: decoded RESP frames → typed commands, and typed replies
//! → wire bytes.
//!
//! The serve plane speaks a RESP2 subset. Requests arrive either as the
//! canonical array-of-bulk-strings form (`*3\r\n$3\r\nSET\r\n..`) or as
//! inline lines (`PING\r\n`); both reduce to a word list here. Two
//! documented deviations from Redis keep the store semantics honest:
//!
//! - `DEL key` always replies `:1` — PapyrusKV's delete is a tombstone
//!   write, so the store does not report whether the key existed.
//! - `RANGE start count` is index-addressed over the canonical
//!   `user%012d` keyspace (the same `ordered_key` scheme the bench plane
//!   uses) rather than taking raw key bounds; it maps to `count`
//!   ordered point reads starting at index `start` and replies with an
//!   array of values. This keeps SCAN-style traffic expressible without
//!   widening the store API.
//!
//! Like the codec, this file is swept by the panic-path lint: parsing a
//! hostile word list must return a typed [`CmdError`], never panic.

use crate::resp::Frame;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `PING` → `+PONG`.
    Ping,
    /// `INFO` → bulk string of server stats.
    Info,
    /// `GET key` → bulk value or nil.
    Get {
        /// Key to read.
        key: Vec<u8>,
    },
    /// `SET key value` → `+OK` once durable.
    Set {
        /// Key to write.
        key: Vec<u8>,
        /// Value to write.
        value: Vec<u8>,
    },
    /// `DEL key` → `:1` once the tombstone is durable.
    Del {
        /// Key to delete.
        key: Vec<u8>,
    },
    /// `EXISTS key` → `:0` / `:1`.
    Exists {
        /// Key to probe.
        key: Vec<u8>,
    },
    /// `MGET k1 .. kn` → array of bulk-or-nil.
    MGet {
        /// Keys to read, in reply order.
        keys: Vec<Vec<u8>>,
    },
    /// `MSET k1 v1 .. kn vn` → `+OK` once all writes are durable.
    MSet {
        /// Pairs to write.
        pairs: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// `RANGE start count` → array of bulk-or-nil over the ordered
    /// keyspace.
    Range {
        /// First key index.
        start: u64,
        /// Number of consecutive keys.
        count: u64,
    },
}

/// Largest accepted `RANGE` count.
pub const MAX_RANGE_COUNT: u64 = 1024;

/// Typed command-parse failures; each renders as a RESP `-ERR` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmdError {
    /// The frame is not a command shape (e.g. a bare integer).
    BadFrame,
    /// An array element was not a non-nil bulk string.
    NotBulk,
    /// Empty command (array of zero words).
    Empty,
    /// Verb not in the served subset.
    UnknownCommand(String),
    /// Wrong argument count for the verb.
    WrongArity(&'static str),
    /// A numeric argument did not parse or broke its limit.
    BadInt(&'static str),
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmdError::BadFrame => write!(f, "ERR protocol: expected command frame"),
            CmdError::NotBulk => write!(f, "ERR protocol: command words must be bulk strings"),
            CmdError::Empty => write!(f, "ERR protocol: empty command"),
            CmdError::UnknownCommand(v) => write!(f, "ERR unknown command '{v}'"),
            CmdError::WrongArity(verb) => {
                write!(f, "ERR wrong number of arguments for '{verb}'")
            }
            CmdError::BadInt(what) => write!(f, "ERR value is not a valid {what}"),
        }
    }
}

impl std::error::Error for CmdError {}

/// Parse a decoded frame into a command.
pub fn parse_command(frame: &Frame) -> Result<Command, CmdError> {
    let words: Vec<&[u8]> = match frame {
        Frame::Inline(words) => words.iter().map(|w| w.as_slice()).collect(),
        Frame::Array(Some(items)) => {
            let mut words = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Frame::Bulk(Some(w)) => words.push(w.as_slice()),
                    _ => return Err(CmdError::NotBulk),
                }
            }
            words
        }
        _ => return Err(CmdError::BadFrame),
    };
    let Some((verb, args)) = words.split_first() else {
        return Err(CmdError::Empty);
    };
    let verb = verb.to_ascii_uppercase();
    match verb.as_slice() {
        b"PING" => match args {
            [] => Ok(Command::Ping),
            _ => Err(CmdError::WrongArity("ping")),
        },
        b"INFO" => match args {
            [] => Ok(Command::Info),
            _ => Err(CmdError::WrongArity("info")),
        },
        b"GET" => match args {
            [key] => Ok(Command::Get { key: key.to_vec() }),
            _ => Err(CmdError::WrongArity("get")),
        },
        b"SET" => match args {
            [key, value] => Ok(Command::Set { key: key.to_vec(), value: value.to_vec() }),
            _ => Err(CmdError::WrongArity("set")),
        },
        b"DEL" => match args {
            [key] => Ok(Command::Del { key: key.to_vec() }),
            _ => Err(CmdError::WrongArity("del")),
        },
        b"EXISTS" => match args {
            [key] => Ok(Command::Exists { key: key.to_vec() }),
            _ => Err(CmdError::WrongArity("exists")),
        },
        b"MGET" => {
            if args.is_empty() {
                return Err(CmdError::WrongArity("mget"));
            }
            Ok(Command::MGet { keys: args.iter().map(|k| k.to_vec()).collect() })
        }
        b"MSET" => {
            if args.is_empty() || args.len() % 2 != 0 {
                return Err(CmdError::WrongArity("mset"));
            }
            let pairs = args.chunks_exact(2).filter_map(chunk_pair).collect();
            Ok(Command::MSet { pairs })
        }
        b"RANGE" => match args {
            [start, count] => {
                let start = parse_u64(start, "range start")?;
                let count = parse_u64(count, "range count")?;
                if count > MAX_RANGE_COUNT {
                    return Err(CmdError::BadInt("range count"));
                }
                Ok(Command::Range { start, count })
            }
            _ => Err(CmdError::WrongArity("range")),
        },
        _ => Err(CmdError::UnknownCommand(String::from_utf8_lossy(&verb).into_owned())),
    }
}

/// `chunks_exact(2)` guarantees pairs; expressed as `Option` so the hot
/// path stays panic-free for the lint sweep.
fn chunk_pair(chunk: &[&[u8]]) -> Option<(Vec<u8>, Vec<u8>)> {
    match chunk {
        [k, v] => Some((k.to_vec(), v.to_vec())),
        _ => None,
    }
}

fn parse_u64(word: &[u8], what: &'static str) -> Result<u64, CmdError> {
    if word.is_empty() {
        return Err(CmdError::BadInt(what));
    }
    let mut v: u64 = 0;
    for &b in word {
        if !b.is_ascii_digit() {
            return Err(CmdError::BadInt(what));
        }
        v = v
            .checked_mul(10)
            .and_then(|v| v.checked_add((b - b'0') as u64))
            .ok_or(CmdError::BadInt(what))?;
    }
    Ok(v)
}

/// Number of individual store operations a command expands to; `RANGE`
/// counts one per key it touches.
pub fn op_count(cmd: &Command) -> u64 {
    match cmd {
        Command::Ping | Command::Info => 0,
        Command::Get { .. }
        | Command::Set { .. }
        | Command::Del { .. }
        | Command::Exists { .. } => 1,
        Command::MGet { keys } => keys.len() as u64,
        Command::MSet { pairs } => pairs.len() as u64,
        Command::Range { count, .. } => *count,
    }
}

/// A typed server reply; encoded onto the wire by [`encode_reply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+OK`.
    Ok,
    /// `+PONG`.
    Pong,
    /// Bulk value or `$-1` nil.
    Bulk(Option<Vec<u8>>),
    /// `:n`.
    Int(i64),
    /// Array of bulk-or-nil (MGET/RANGE).
    Arr(Vec<Option<Vec<u8>>>),
    /// `-ERR ..`.
    Err(String),
    /// INFO text, encoded as one bulk string.
    Info(String),
}

/// Encode a reply onto `out` in RESP form.
pub fn encode_reply(reply: &Reply, out: &mut Vec<u8>) {
    match reply {
        Reply::Ok => out.extend_from_slice(b"+OK\r\n"),
        Reply::Pong => out.extend_from_slice(b"+PONG\r\n"),
        Reply::Bulk(v) => crate::resp::encode_frame(&Frame::Bulk(v.clone()), out),
        Reply::Int(n) => crate::resp::encode_frame(&Frame::Integer(*n), out),
        Reply::Arr(items) => {
            out.push(b'*');
            out.extend_from_slice(items.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            for v in items {
                crate::resp::encode_frame(&Frame::Bulk(v.clone()), out);
            }
        }
        Reply::Err(msg) => {
            out.push(b'-');
            out.extend_from_slice(msg.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Reply::Info(text) => {
            crate::resp::encode_frame(&Frame::Bulk(Some(text.as_bytes().to_vec())), out)
        }
    }
}

/// Decode a reply frame back into the typed form — the loadgen's client
/// side uses this to check reply shape and ordering.
pub fn reply_from_frame(frame: &Frame) -> Result<Reply, CmdError> {
    match frame {
        Frame::Simple(s) if s == b"OK" => Ok(Reply::Ok),
        Frame::Simple(s) if s == b"PONG" => Ok(Reply::Pong),
        Frame::Error(msg) => Ok(Reply::Err(String::from_utf8_lossy(msg).into_owned())),
        Frame::Integer(n) => Ok(Reply::Int(*n)),
        Frame::Bulk(v) => Ok(Reply::Bulk(v.clone())),
        Frame::Array(Some(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Frame::Bulk(v) => out.push(v.clone()),
                    _ => return Err(CmdError::BadFrame),
                }
            }
            Ok(Reply::Arr(out))
        }
        _ => Err(CmdError::BadFrame),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resp::{encode_command, Decoder};

    fn parse_words(words: &[&[u8]]) -> Result<Command, CmdError> {
        let mut wire = Vec::new();
        encode_command(words, &mut wire);
        let mut d = Decoder::new();
        d.feed(&wire);
        let frame = d.next_frame().unwrap().unwrap();
        parse_command(&frame)
    }

    #[test]
    fn parses_the_served_subset() {
        assert_eq!(parse_words(&[b"PING"]), Ok(Command::Ping));
        assert_eq!(parse_words(&[b"info"]), Ok(Command::Info));
        assert_eq!(parse_words(&[b"get", b"k"]), Ok(Command::Get { key: b"k".to_vec() }));
        assert_eq!(
            parse_words(&[b"SeT", b"k", b"v"]),
            Ok(Command::Set { key: b"k".to_vec(), value: b"v".to_vec() })
        );
        assert_eq!(parse_words(&[b"DEL", b"k"]), Ok(Command::Del { key: b"k".to_vec() }));
        assert_eq!(parse_words(&[b"EXISTS", b"k"]), Ok(Command::Exists { key: b"k".to_vec() }));
        assert_eq!(
            parse_words(&[b"MGET", b"a", b"b"]),
            Ok(Command::MGet { keys: vec![b"a".to_vec(), b"b".to_vec()] })
        );
        assert_eq!(
            parse_words(&[b"MSET", b"a", b"1", b"b", b"2"]),
            Ok(Command::MSet {
                pairs: vec![(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), b"2".to_vec())]
            })
        );
        assert_eq!(
            parse_words(&[b"RANGE", b"10", b"4"]),
            Ok(Command::Range { start: 10, count: 4 })
        );
    }

    #[test]
    fn inline_form_parses_too() {
        let frame = Frame::Inline(vec![b"GET".to_vec(), b"k".to_vec()]);
        assert_eq!(parse_command(&frame), Ok(Command::Get { key: b"k".to_vec() }));
    }

    #[test]
    fn rejects_malformed_commands_with_typed_errors() {
        assert_eq!(parse_words(&[b"GET"]), Err(CmdError::WrongArity("get")));
        assert_eq!(parse_words(&[b"SET", b"k"]), Err(CmdError::WrongArity("set")));
        assert_eq!(parse_words(&[b"MSET", b"k", b"v", b"x"]), Err(CmdError::WrongArity("mset")));
        assert_eq!(parse_words(&[b"MGET"]), Err(CmdError::WrongArity("mget")));
        assert_eq!(parse_words(&[b"FLUSHALL"]), Err(CmdError::UnknownCommand("FLUSHALL".into())));
        assert_eq!(parse_words(&[b"RANGE", b"x", b"4"]), Err(CmdError::BadInt("range start")));
        assert_eq!(
            parse_words(&[b"RANGE", b"0", b"99999999"]),
            Err(CmdError::BadInt("range count"))
        );
        assert_eq!(parse_command(&Frame::Integer(3)), Err(CmdError::BadFrame));
        assert_eq!(
            parse_command(&Frame::Array(Some(vec![Frame::Integer(1)]))),
            Err(CmdError::NotBulk)
        );
        assert_eq!(parse_command(&Frame::Array(Some(vec![]))), Err(CmdError::Empty));
    }

    #[test]
    fn replies_round_trip_through_the_codec() {
        let replies = vec![
            Reply::Ok,
            Reply::Pong,
            Reply::Bulk(None),
            Reply::Bulk(Some(b"value".to_vec())),
            Reply::Int(1),
            Reply::Arr(vec![Some(b"a".to_vec()), None, Some(b"c".to_vec())]),
            Reply::Err("ERR wrong number of arguments for 'get'".into()),
        ];
        let mut wire = Vec::new();
        for r in &replies {
            encode_reply(r, &mut wire);
        }
        let mut d = Decoder::new();
        d.feed(&wire);
        let mut got = Vec::new();
        while let Some(f) = d.next_frame().unwrap() {
            got.push(reply_from_frame(&f).unwrap());
        }
        assert_eq!(got, replies);
    }

    #[test]
    fn info_encodes_as_bulk() {
        let mut wire = Vec::new();
        encode_reply(&Reply::Info("serve_version:1".into()), &mut wire);
        let mut d = Decoder::new();
        d.feed(&wire);
        assert_eq!(
            d.next_frame().unwrap().unwrap(),
            Frame::Bulk(Some(b"serve_version:1".to_vec()))
        );
    }
}
