//! `cargo xtask serve` — the serve-plane driver and seeded self-test.
//!
//! ```text
//! serve [--ranks N] [--conns N] [--pipeline N] [--bursts N]
//!       [--duration-ms N] [--keys N] [--vallen N]
//!       [--mix read_heavy|write_heavy|balanced] [--skew uniform|zipfian]
//!       [--seed N] [--quick] [--no-repeat] [--telemetry PATH]
//!       [--seed-bug all|ack-before-fence|dropped-write]
//! ```
//!
//! The default run is the acceptance gate: a 4-rank world serving 10k
//! simulated connections per rank with pipelined GET/SET mixes. It runs
//! the world TWICE and demands byte-identical canonical reports (same
//! seed ⇒ same virtual-time numbers), clean oracles, and a group-commit
//! batch-size mean > 1 — group commit must be measurably batching, not
//! degenerating to one fence per write.
//!
//! `--seed-bug` plants a known defect and demands its oracle convicts:
//! `ack-before-fence` must be caught by the durability probe,
//! `dropped-write` by the read-your-writes sweep. CI runs `--seed-bug
//! all` (2/2 convictions required) alongside the clean gate.

use std::process::ExitCode;

use papyrus_serve::{run_serve, LoadMix, LoadSkew, SeedBug, ServeCfg};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeCfg::full();
    let mut repeat = true;
    let mut telemetry: Option<String> = None;
    let mut seed_bug_arg: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().map(String::as_str).map(str::to_string).ok_or_else(|| {
                eprintln!("serve: {name} needs a value");
            })
        };
        match a.as_str() {
            "--ranks" => match val("--ranks").map(|v| v.parse()) {
                Ok(Ok(n)) if n > 0 => cfg.ranks = n,
                _ => return usage(),
            },
            "--conns" => match val("--conns").map(|v| v.parse()) {
                Ok(Ok(n)) if n > 0 => cfg.conns_per_rank = n,
                _ => return usage(),
            },
            "--pipeline" => match val("--pipeline").map(|v| v.parse()) {
                Ok(Ok(n)) if n > 0 => cfg.pipeline = n,
                _ => return usage(),
            },
            "--bursts" => match val("--bursts").map(|v| v.parse()) {
                Ok(Ok(n)) if n > 0 => cfg.bursts = n,
                _ => return usage(),
            },
            "--duration-ms" => match val("--duration-ms").map(|v| v.parse()) {
                Ok(Ok(n)) if n > 0 => cfg.duration_ms = n,
                _ => return usage(),
            },
            "--keys" => match val("--keys").map(|v| v.parse()) {
                Ok(Ok(n)) if n > 0 => cfg.keys_per_rank = n,
                _ => return usage(),
            },
            "--vallen" => match val("--vallen").map(|v| v.parse()) {
                Ok(Ok(n)) if n > 0 => cfg.vallen = n,
                _ => return usage(),
            },
            "--seed" => match val("--seed").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.seed = n,
                _ => return usage(),
            },
            "--mix" => match val("--mix").ok().as_deref().and_then(LoadMix::parse) {
                Some(m) => cfg.mix = m,
                None => return usage(),
            },
            "--skew" => match val("--skew").ok().as_deref().and_then(LoadSkew::parse) {
                Some(s) => cfg.skew = s,
                None => return usage(),
            },
            "--quick" => {
                let quick = ServeCfg::quick();
                cfg.conns_per_rank = quick.conns_per_rank;
                cfg.keys_per_rank = quick.keys_per_rank;
                cfg.duration_ms = quick.duration_ms;
            }
            "--no-repeat" => repeat = false,
            "--telemetry" => match val("--telemetry") {
                Ok(p) => telemetry = Some(p),
                Err(()) => return usage(),
            },
            "--seed-bug" => match val("--seed-bug") {
                Ok(which) => seed_bug_arg = Some(which),
                Err(()) => return usage(),
            },
            other => {
                eprintln!("serve: unknown argument `{other}`");
                return usage();
            }
        }
    }

    if let Some(which) = seed_bug_arg {
        return run_seed_bugs(&cfg, &which);
    }
    run_clean(&cfg, repeat, telemetry.as_deref())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve [--ranks N] [--conns N] [--pipeline N] [--bursts N] [--duration-ms N] \
         [--keys N] [--vallen N] [--mix read_heavy|write_heavy|balanced] \
         [--skew uniform|zipfian] [--seed N] [--quick] [--no-repeat] [--telemetry PATH] \
         [--seed-bug all|ack-before-fence|dropped-write]"
    );
    ExitCode::FAILURE
}

/// The clean gate: run (twice unless `--no-repeat`), demand clean
/// oracles, visible batching, and byte-identical repeat reports.
fn run_clean(cfg: &ServeCfg, repeat: bool, telemetry: Option<&str>) -> ExitCode {
    println!(
        "serve: {} ranks x {} conns, pipeline {}, {} bursts, mix {}, skew {}, seed {}",
        cfg.ranks,
        cfg.conns_per_rank,
        cfg.pipeline,
        cfg.bursts,
        cfg.mix.label(),
        cfg.skew.label(),
        cfg.seed
    );
    let report = run_serve(cfg);
    print!("{}", report.render());
    if let Some(path) = telemetry {
        let snap = papyrus_telemetry::snapshot();
        match snap.write_chrome_trace(path) {
            Ok(()) => println!("serve: chrome trace -> {path}"),
            Err(e) => {
                eprintln!("serve: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut ok = true;
    if !report.clean() {
        let (d, w, p) = report.violations();
        println!("serve: FAIL — oracle violations (durability {d}, ryw {w}, protocol {p})");
        ok = false;
    }
    if report.batch_mean() <= 1.0 {
        println!(
            "serve: FAIL — group commit not batching (batch mean {:.2} <= 1)",
            report.batch_mean()
        );
        ok = false;
    }
    if repeat {
        let again = run_serve(cfg);
        if again.canonical() == report.canonical() {
            println!("serve: determinism OK — repeat run byte-identical");
        } else {
            println!("serve: FAIL — repeat run diverged (same seed, different report)");
            ok = false;
        }
    }
    if ok {
        println!("serve: PASS");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Plant each requested defect and demand the *right* oracle convicts it.
fn run_seed_bugs(cfg: &ServeCfg, which: &str) -> ExitCode {
    let bugs: Vec<SeedBug> = if which == "all" {
        SeedBug::ALL.to_vec()
    } else {
        match SeedBug::parse(which) {
            Some(b) => vec![b],
            None => {
                eprintln!("serve: unknown seed bug `{which}`");
                return usage();
            }
        }
    };
    // Seeded runs use the reduced sizing: conviction is about the oracle
    // firing, not about scale.
    let quick = ServeCfg::quick();
    let mut hit = 0;
    let total = bugs.len();
    for bug in bugs {
        let cfg = ServeCfg { seed_bug: Some(bug), seed: cfg.seed, mix: cfg.mix, ..quick.clone() };
        let report = run_serve(&cfg);
        let (durability, ryw, _) = report.violations();
        let convicted = match bug {
            SeedBug::AckBeforeFence => durability > 0,
            SeedBug::DroppedWrite => ryw > 0,
        };
        if convicted {
            hit += 1;
            println!(
                "serve: seed {} CONVICTED\n  {}",
                bug.label(),
                report.violation_example.as_deref().unwrap_or("(no example captured)")
            );
        } else {
            println!(
                "serve: seed {} MISSED — oracles saw durability={durability} ryw={ryw}",
                bug.label()
            );
        }
    }
    println!("serve: {hit}/{total} seeded defects convicted");
    if hit == total {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
