//! The per-rank serving window: sharded dispatch, group commit, and the
//! two built-in correctness oracles.
//!
//! # Determinism
//!
//! The serve plane measures a network server under 10k+ concurrent
//! connections, yet must produce bit-identical numbers for a given seed.
//! Naive concurrent cross-rank traffic cannot do that: simtime's shared
//! busy-until resources (NIC, backbone, NVM) stamp in OS-scheduler
//! order. The window protocol removes the race instead of averaging over
//! it — ranks take turns:
//!
//! ```text
//! for turn in 0..ranks { if turn == me { serve_window() } barrier_all() }
//! ```
//!
//! Exactly one rank drives client traffic at a time. The other ranks'
//! app threads park at the barrier while their handler threads serve the
//! driver's remote GETs and ingest its migrations — every submission to
//! a shared resource is causally ordered by the single driver. Absolute
//! window-start time still varies run to run (barrier marks), so nothing
//! absolute is ever reported: arrivals are scheduled relative to window
//! start `t0`, every resource is idle at `t0`, and all reported numbers
//! are deltas (`ack - arrival`, `t1 - t0`) — pure functions of the seed.
//!
//! # Group commit
//!
//! Writes are not applied at decode time. Dispatch hashes each write to
//! its owner shard (`db.owner_of`, so the shard map IS the remote
//! routing map) and queues it. Each wakeup the worker drains the whole
//! backlog: per shard it folds duplicate keys last-writer-wins into one
//! batch, applies the batch as relaxed puts, then issues a *single*
//! [`papyruskv::Db::fence`] for the round and only then acks every
//! queued client. Acked ⇒ durable rides the engine's `BARRIER_MARK`
//! proof: after the fence a record has left the staging MemTables and
//! been ingested by its owner. Reads are executed inline at decode time
//! through a read-through overlay of the still-queued writes, preserving
//! per-connection command order without waiting for the fence.
//!
//! # Oracles
//!
//! - **Durability**: at every write ack, remote-shard keys of the round
//!   must no longer be staged ([`papyruskv::Db::staged_remote_contains`]).
//!   The planted [`SeedBug::AckBeforeFence`] moves ack (and the probe)
//!   ahead of the fence and is convicted here.
//! - **Read-your-writes**: the window records every write's client-
//!   intended value at *enqueue* time (never the applied value); after
//!   the drain, every written key is read back and must match the last
//!   intent. The planted [`SeedBug::DroppedWrite`] folds duplicates
//!   first-writer-wins and is convicted here.
//! - **Protocol**: a loadgen-side decoder consumes every reply off the
//!   wire and checks shape and order against the issued commands.

use std::collections::{BTreeMap, HashMap, VecDeque};

use papyrus_bench::workload::ordered_key;
use papyrus_simtime::MemModel;
use papyruskv::{Context, Db};
use rand::rngs::StdRng;

use crate::cmd::{encode_reply, parse_command, Command, Reply};
use crate::loadgen::{build_schedule, Generator};
use crate::resp::Decoder;
use crate::tel::ServeTel;
use crate::{SeedBug, ServeCfg};

/// Bytes the server reads from one connection per poll visit; small
/// enough that pipelined bursts span visits, forcing partial-frame
/// resumption on the hot path.
const READ_CHUNK: usize = 512;

/// One simulated client connection and its server-side state.
struct Conn {
    /// Bytes the client has "sent"; `read_off` marks how far the server
    /// has consumed them.
    wire_in: Vec<u8>,
    read_off: usize,
    /// Server-side incremental decoder.
    dec: Decoder,
    /// In-order reply slots; a slot is flushed only once filled and at
    /// the queue front (pipelined replies never reorder).
    slots: VecDeque<Slot>,
    slot_base: u64,
    /// Arrival stamp per not-yet-decoded command, FIFO.
    stamps: VecDeque<u64>,
    /// Client-side reply expectations, FIFO.
    expected: VecDeque<Expect>,
    /// Client-side decoder draining the server's reply bytes.
    client_dec: Decoder,
}

impl Conn {
    fn new() -> Self {
        Self {
            wire_in: Vec::new(),
            read_off: 0,
            dec: Decoder::new(),
            slots: VecDeque::new(),
            slot_base: 0,
            stamps: VecDeque::new(),
            expected: VecDeque::new(),
            client_dec: Decoder::new(),
        }
    }

    fn drained(&self) -> bool {
        self.read_off == self.wire_in.len()
            && self.dec.buffered() == 0
            && self.slots.is_empty()
            && self.expected.is_empty()
    }
}

/// A reply slot. Reads fill immediately; writes fill when their last
/// part is acked after the group-commit fence.
struct Slot {
    reply: Option<Reply>,
    /// Store ops still pending before this slot's reply exists (MSET
    /// spans shards; SET/DEL have one part; reads have zero).
    parts_left: u32,
    /// What to reply once parts_left reaches zero.
    on_complete: Reply,
    arrival: u64,
}

/// One queued write: the shard index is the queue it sits in.
struct WriteOp {
    key: Vec<u8>,
    /// `None` is a DEL tombstone.
    val: Option<Vec<u8>>,
    conn: u32,
    slot: u64,
}

/// Client-side reply shape expectation (the protocol oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Ok,
    Pong,
    /// Exact integer (DEL always answers 1).
    Int(i64),
    /// 0-or-1 integer (EXISTS).
    Bool,
    BulkAny,
    ArrLen(usize),
}

fn expect_of(cmd: &Command) -> Expect {
    match cmd {
        Command::Ping => Expect::Pong,
        Command::Info => Expect::BulkAny,
        Command::Get { .. } => Expect::BulkAny,
        Command::Set { .. } | Command::MSet { .. } => Expect::Ok,
        Command::Del { .. } => Expect::Int(1),
        Command::Exists { .. } => Expect::Bool,
        Command::MGet { keys } => Expect::ArrLen(keys.len()),
        Command::Range { count, .. } => Expect::ArrLen(*count as usize),
    }
}

fn reply_matches(expect: Expect, reply: &Reply) -> bool {
    match (expect, reply) {
        (Expect::Ok, Reply::Ok) => true,
        (Expect::Pong, Reply::Pong) => true,
        (Expect::Int(n), Reply::Int(m)) => n == *m,
        (Expect::Bool, Reply::Int(m)) => *m == 0 || *m == 1,
        (Expect::BulkAny, Reply::Bulk(_) | Reply::Info(_)) => true,
        (Expect::ArrLen(n), Reply::Arr(items)) => items.len() == n,
        _ => false,
    }
}

/// Raw per-window measurement, returned from each rank's window. All
/// quantities are deltas or counts — nothing absolute — so identical
/// seeds produce identical stats bit for bit.
pub struct WindowStats {
    /// Serving rank.
    pub rank: usize,
    /// Connections served.
    pub conns: u32,
    /// Commands executed.
    pub cmds: u64,
    /// Store operations those commands expanded to.
    pub store_ops: u64,
    /// Write ops queued through group commit.
    pub writes: u64,
    /// Group-commit rounds that reached the store.
    pub batch_rounds: u64,
    /// Write ops drained across all rounds (mean batch = records/rounds).
    pub batch_records: u64,
    /// Duplicate-key folds (a later write coalesced onto an earlier one).
    pub folded_dups: u64,
    /// Poll visits that found readable bytes.
    pub polls: u64,
    /// Frames decoded across all polls.
    pub frames: u64,
    /// Window serving time (drain end − window start), virtual ns.
    pub elapsed_ns: u64,
    /// Per-request latency samples, arrival→ack, by command class.
    pub lat_read: Vec<u64>,
    /// SET/DEL/MSET latencies (acked only after the fence).
    pub lat_write: Vec<u64>,
    /// PING/INFO latencies.
    pub lat_admin: Vec<u64>,
    /// Durability-oracle violations (staged-at-ack).
    pub durability_violations: u64,
    /// Read-your-writes sweep mismatches.
    pub ryw_violations: u64,
    /// Reply shape/order mismatches seen by the client decoder.
    pub protocol_violations: u64,
    /// First violation, for the report.
    pub violation_example: Option<String>,
}

/// Serve one rank's window: all of this rank's simulated connections,
/// open-loop, until every burst is delivered, decoded, committed, acked,
/// and read back by the client decoders.
pub fn serve_window(
    ctx: &Context,
    db: &Db,
    cfg: &ServeCfg,
    mem: &MemModel,
    rng: &mut StdRng,
) -> WindowStats {
    Window::new(ctx, db, cfg, mem).run(rng)
}

struct Window<'a> {
    ctx: &'a Context,
    db: &'a Db,
    cfg: &'a ServeCfg,
    mem: &'a MemModel,
    tel: ServeTel,
    rank: usize,
    t0: u64,
    conns: Vec<Conn>,
    /// Shard-indexed dispatch queues (shard == owner rank).
    shards: Vec<VecDeque<WriteOp>>,
    /// Read-through overlay of queued-but-unapplied writes; cleared each
    /// commit round once the batch is applied.
    overlay: HashMap<Vec<u8>, Option<Vec<u8>>>,
    /// The oracle's intent map: last client-intended value per written
    /// key, recorded at enqueue time. BTreeMap so the final sweep walks
    /// keys in a deterministic order.
    intent: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    stats: WindowStats,
}

impl<'a> Window<'a> {
    fn new(ctx: &'a Context, db: &'a Db, cfg: &'a ServeCfg, mem: &'a MemModel) -> Self {
        let rank = ctx.rank();
        let tel = ServeTel::new(rank);
        if tel.on() {
            tel.conns.add(cfg.conns_per_rank as u64);
        }
        Self {
            ctx,
            db,
            cfg,
            mem,
            tel,
            rank,
            t0: ctx.now(),
            conns: (0..cfg.conns_per_rank).map(|_| Conn::new()).collect(),
            shards: (0..ctx.size()).map(|_| VecDeque::new()).collect(),
            overlay: HashMap::new(),
            intent: BTreeMap::new(),
            stats: WindowStats {
                rank,
                conns: cfg.conns_per_rank,
                cmds: 0,
                store_ops: 0,
                writes: 0,
                batch_rounds: 0,
                batch_records: 0,
                folded_dups: 0,
                polls: 0,
                frames: 0,
                elapsed_ns: 0,
                lat_read: Vec::new(),
                lat_write: Vec::new(),
                lat_admin: Vec::new(),
                durability_violations: 0,
                ryw_violations: 0,
                protocol_violations: 0,
                violation_example: None,
            },
        }
    }

    fn violation(&mut self, kind: &str, detail: String) {
        match kind {
            "durability" => self.stats.durability_violations += 1,
            "ryw" => self.stats.ryw_violations += 1,
            _ => self.stats.protocol_violations += 1,
        }
        if self.stats.violation_example.is_none() {
            self.stats.violation_example = Some(format!("rank {} {kind}: {detail}", self.rank));
        }
    }

    fn run(mut self, rng: &mut StdRng) -> WindowStats {
        let duration_ns = self.cfg.duration_ms * 1_000_000;
        let schedule = build_schedule(self.cfg.conns_per_rank, self.cfg.bursts, duration_ns, rng);
        let mut gen = Generator::new(
            self.rank,
            self.ctx.size(),
            self.cfg.keys_per_rank,
            self.cfg.mix,
            self.cfg.skew,
            self.cfg.vallen,
        );
        let mut next_arrival = 0usize;

        loop {
            let now = self.ctx.now();
            // Deliver every burst that has arrived by virtual now.
            let mut delivered = false;
            while next_arrival < schedule.len() && self.t0 + schedule[next_arrival].at <= now {
                let a = schedule[next_arrival];
                self.deliver_burst(a.conn, self.t0 + a.at, &mut gen, rng);
                next_arrival += 1;
                delivered = true;
            }

            // Poll: one bounded chunk per readable connection, decode and
            // dispatch everything that completed.
            let mut any_read = false;
            for c in 0..self.conns.len() {
                if self.poll_conn(c) {
                    any_read = true;
                }
            }

            // Group commit: drain the whole write backlog in one round.
            let committed = self.commit_round();

            // Flush in-order reply prefixes and run the client-side
            // protocol oracle over them.
            for c in 0..self.conns.len() {
                self.flush_conn(c);
            }

            let arrivals_done = next_arrival >= schedule.len();
            if arrivals_done && self.conns.iter().all(Conn::drained) {
                break;
            }
            if !delivered && !any_read && !committed {
                if arrivals_done {
                    // Nothing can make progress: account it rather than
                    // spinning forever.
                    self.violation("protocol", "window stalled before drain".into());
                    break;
                }
                // Idle: jump straight to the next arrival.
                let next = &schedule[next_arrival];
                self.ctx.clock().merge(self.t0 + next.at);
            }
        }
        self.stats.elapsed_ns = self.ctx.now().saturating_sub(self.t0);

        // Read-your-writes sweep: every written key must read back as its
        // last client-intended value (None = tombstone).
        let intent = std::mem::take(&mut self.intent);
        for (key, want) in &intent {
            let got = match self.db.get_opt(key) {
                Ok(v) => v.map(|b| b.to_vec()),
                Err(e) => {
                    self.violation("ryw", format!("get {key:?} failed: {e:?}"));
                    continue;
                }
            };
            if got.as_deref() != want.as_deref() {
                let detail = format!(
                    "key {:?}: store has {:?}, last acked write was {:?}",
                    String::from_utf8_lossy(key),
                    got.as_deref().map(String::from_utf8_lossy),
                    want.as_deref().map(String::from_utf8_lossy),
                );
                self.violation("ryw", detail);
            }
        }
        self.stats
    }

    /// Emit one open-loop burst onto `conn`: `pipeline` commands encoded
    /// back to back, all stamped with the burst's arrival time.
    fn deliver_burst(&mut self, conn: u32, at: u64, gen: &mut Generator, rng: &mut StdRng) {
        let c = &mut self.conns[conn as usize];
        for _ in 0..self.cfg.pipeline {
            let cmd = gen.next_command(rng);
            gen.encode(&cmd, rng, &mut c.wire_in);
            c.stamps.push_back(at);
            c.expected.push_back(expect_of(&cmd));
        }
    }

    /// Read one bounded chunk from connection `c` and execute every
    /// command that completed; returns whether any bytes were read.
    fn poll_conn(&mut self, c: usize) -> bool {
        let conn = &mut self.conns[c];
        let avail = conn.wire_in.len() - conn.read_off;
        if avail == 0 {
            return false;
        }
        let take = avail.min(READ_CHUNK);
        conn.dec.feed(&conn.wire_in[conn.read_off..conn.read_off + take]);
        conn.read_off += take;
        // Charge the copy from the (modelled) socket into server memory.
        self.ctx.clock().advance(self.mem.op_ns(take as u64));

        let mut frames = 0u64;
        loop {
            let frame = match self.conns[c].dec.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(e) => {
                    // Loadgen only emits well-formed frames; a decode
                    // error here is a server-side bug.
                    self.violation("protocol", format!("server decode error: {e}"));
                    break;
                }
            };
            frames += 1;
            self.dispatch(c, &frame);
        }
        if frames > 0 {
            self.stats.polls += 1;
            self.stats.frames += frames;
            if self.tel.on() {
                self.tel.polls.inc();
                self.tel.pipeline_depth.add(frames);
            }
        }
        true
    }

    /// Read a key through the overlay of queued writes, then the store.
    fn read_key(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(v) = self.overlay.get(key) {
            return v.clone();
        }
        match self.db.get_opt(key) {
            Ok(v) => v.map(|b| b.to_vec()),
            Err(e) => {
                self.violation("protocol", format!("store read failed: {e:?}"));
                None
            }
        }
    }

    /// Execute one decoded frame: reads inline, writes onto the shard
    /// queues, admin immediately.
    fn dispatch(&mut self, c: usize, frame: &crate::resp::Frame) {
        let arrival = self.conns[c].stamps.pop_front().unwrap_or(self.t0);
        let cmd = match parse_command(frame) {
            Ok(cmd) => cmd,
            Err(e) => {
                // Unreachable under loadgen traffic, but the server path
                // exists: reply -ERR in order.
                if self.tel.on() {
                    self.tel.errors.inc();
                }
                self.push_slot(
                    c,
                    Slot {
                        reply: Some(Reply::Err(e.to_string())),
                        parts_left: 0,
                        on_complete: Reply::Ok,
                        arrival,
                    },
                );
                return;
            }
        };
        self.stats.cmds += 1;
        self.stats.store_ops += crate::cmd::op_count(&cmd);
        if self.tel.on() {
            self.tel.cmds.inc();
        }
        let now = self.ctx.now();
        match cmd {
            Command::Ping => {
                self.ack_admin(now, arrival);
                self.push_filled(c, Reply::Pong, arrival);
            }
            Command::Info => {
                let text = format!(
                    "serve_version:1\nrank:{}\nconns:{}\ncmds:{}",
                    self.rank, self.stats.conns, self.stats.cmds
                );
                self.ack_admin(now, arrival);
                self.push_filled(c, Reply::Info(text), arrival);
            }
            Command::Get { key } => {
                let v = self.read_key(&key);
                self.ack_read(now, arrival);
                self.push_filled(c, Reply::Bulk(v), arrival);
            }
            Command::Exists { key } => {
                let v = self.read_key(&key);
                self.ack_read(now, arrival);
                self.push_filled(c, Reply::Int(v.is_some() as i64), arrival);
            }
            Command::MGet { keys } => {
                let items = keys.iter().map(|k| self.read_key(k)).collect();
                self.ack_read(now, arrival);
                self.push_filled(c, Reply::Arr(items), arrival);
            }
            Command::Range { start, count } => {
                let items = (start..start.saturating_add(count))
                    .map(|i| self.read_key(&ordered_key(i)))
                    .collect();
                self.ack_read(now, arrival);
                self.push_filled(c, Reply::Arr(items), arrival);
            }
            Command::Set { key, value } => {
                self.enqueue_write(c, arrival, Reply::Ok, vec![(key, Some(value))]);
            }
            Command::Del { key } => {
                self.enqueue_write(c, arrival, Reply::Int(1), vec![(key, None)]);
            }
            Command::MSet { pairs } => {
                let ops = pairs.into_iter().map(|(k, v)| (k, Some(v))).collect();
                self.enqueue_write(c, arrival, Reply::Ok, ops);
            }
        }
    }

    fn ack_read(&mut self, now: u64, arrival: u64) {
        let lat = now.saturating_sub(arrival);
        self.stats.lat_read.push(lat);
        if self.tel.on() {
            self.tel.req_ns.record(lat);
            self.tel.req_read_ns.record(lat);
        }
    }

    fn ack_admin(&mut self, now: u64, arrival: u64) {
        let lat = now.saturating_sub(arrival);
        self.stats.lat_admin.push(lat);
        if self.tel.on() {
            self.tel.req_ns.record(lat);
        }
    }

    fn push_filled(&mut self, c: usize, reply: Reply, arrival: u64) {
        self.push_slot(
            c,
            Slot { reply: Some(reply), parts_left: 0, on_complete: Reply::Ok, arrival },
        );
    }

    fn push_slot(&mut self, c: usize, slot: Slot) {
        self.conns[c].slots.push_back(slot);
    }

    /// Queue a write command's ops onto their owner shards; the reply
    /// slot completes when every part is acked post-fence.
    fn enqueue_write(
        &mut self,
        c: usize,
        arrival: u64,
        on_complete: Reply,
        ops: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    ) {
        let conn = &mut self.conns[c];
        let slot_id = conn.slot_base + conn.slots.len() as u64;
        conn.slots.push_back(Slot {
            reply: None,
            parts_left: ops.len() as u32,
            on_complete,
            arrival,
        });
        for (key, val) in ops {
            self.stats.writes += 1;
            let shard = self.db.owner_of(&key);
            // Intent is the CLIENT's value, recorded before any folding —
            // the read-your-writes oracle compares the store against this.
            self.intent.insert(key.clone(), val.clone());
            self.overlay.insert(key.clone(), val.clone());
            self.shards[shard].push_back(WriteOp { key, val, conn: c as u32, slot: slot_id });
        }
    }

    /// One group-commit round: drain every shard queue, fold duplicate
    /// keys last-writer-wins, apply each shard's batch as relaxed puts,
    /// fence ONCE for the whole round, then ack every drained client.
    /// Returns whether any work was done.
    fn commit_round(&mut self) -> bool {
        if self.shards.iter().all(VecDeque::is_empty) {
            return false;
        }
        let me = self.rank;
        let mut acks: Vec<(u32, u64)> = Vec::new();
        let mut remote_keys: Vec<Vec<u8>> = Vec::new();
        let mut records = 0u64;
        for shard in 0..self.shards.len() {
            let mut queue = std::mem::take(&mut self.shards[shard]);
            if queue.is_empty() {
                continue;
            }
            // Fold: one batch entry per key; later writes to the same key
            // replace the earlier value (last-writer-wins), every drained
            // op still gets its ack.
            let mut entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
            let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
            for op in queue.drain(..) {
                records += 1;
                match index.get(&op.key) {
                    Some(&i) => {
                        self.stats.folded_dups += 1;
                        if self.tel.on() {
                            self.tel.folded_dups.inc();
                        }
                        // SEEDED BUG (dropped-write): keep the FIRST value
                        // instead of the last — the later client write
                        // silently vanishes from the batch. Convicted by
                        // the read-your-writes sweep.
                        if self.cfg.seed_bug != Some(SeedBug::DroppedWrite) {
                            entries[i].1 = op.val;
                        }
                    }
                    None => {
                        index.insert(op.key.clone(), entries.len());
                        entries.push((op.key, op.val));
                    }
                }
                acks.push((op.conn, op.slot));
            }
            // Apply the folded batch in insertion order (the Vec is the
            // order authority; the index map is lookup only).
            for (key, val) in &entries {
                let r = match val {
                    Some(v) => self.db.put(key, v),
                    None => self.db.delete(key),
                };
                if let Err(e) = r {
                    self.violation("protocol", format!("batch apply failed: {e:?}"));
                }
            }
            if shard != me {
                remote_keys.extend(entries.into_iter().map(|(k, _)| k));
            }
        }
        // The batch is applied: queued writes are now visible through the
        // store itself, the overlay's job is done.
        self.overlay.clear();
        self.stats.batch_rounds += 1;
        self.stats.batch_records += records;
        if self.tel.on() {
            self.tel.batch_count.inc();
            self.tel.batch_size.add(records);
        }

        if self.cfg.seed_bug == Some(SeedBug::AckBeforeFence) {
            // SEEDED BUG (ack-before-fence): clients are acked while the
            // round's remote writes are still in the staging MemTables —
            // an NVM loss window the durability oracle convicts.
            self.ack_round(&acks, &remote_keys);
            if let Err(e) = self.db.fence() {
                self.violation("protocol", format!("fence failed: {e:?}"));
            }
        } else {
            if let Err(e) = self.db.fence() {
                self.violation("protocol", format!("fence failed: {e:?}"));
            }
            self.ack_round(&acks, &remote_keys);
        }
        true
    }

    /// Ack every write drained this round. The durability oracle runs
    /// here, AT ack time: any remote-shard key of the round still staged
    /// means an acked client could lose its write.
    fn ack_round(&mut self, acks: &[(u32, u64)], remote_keys: &[Vec<u8>]) {
        for key in remote_keys {
            if self.db.staged_remote_contains(key) {
                let detail = format!(
                    "acking write of {:?} while it is still staged (not yet owner-ingested)",
                    String::from_utf8_lossy(key)
                );
                self.violation("durability", detail);
            }
        }
        let now = self.ctx.now();
        for &(conn, slot) in acks {
            let c = &mut self.conns[conn as usize];
            let idx = (slot - c.slot_base) as usize;
            let Some(s) = c.slots.get_mut(idx) else { continue };
            s.parts_left = s.parts_left.saturating_sub(1);
            if s.parts_left == 0 && s.reply.is_none() {
                s.reply = Some(s.on_complete.clone());
                let lat = now.saturating_sub(s.arrival);
                self.stats.lat_write.push(lat);
                if self.tel.on() {
                    self.tel.req_ns.record(lat);
                    self.tel.req_write_ns.record(lat);
                }
            }
        }
    }

    /// Flush the filled prefix of `c`'s reply queue onto the wire and run
    /// the client-side protocol oracle over the bytes.
    fn flush_conn(&mut self, c: usize) {
        let conn = &mut self.conns[c];
        let mut out = Vec::new();
        while let Some(front) = conn.slots.front() {
            let Some(reply) = &front.reply else { break };
            encode_reply(reply, &mut out);
            conn.slots.pop_front();
            conn.slot_base += 1;
        }
        if out.is_empty() {
            return;
        }
        // Charge the reply copy out of server memory.
        self.ctx.clock().advance(self.mem.op_ns(out.len() as u64));
        conn.client_dec.feed(&out);
        loop {
            match self.conns[c].client_dec.next_frame() {
                Ok(Some(frame)) => {
                    let conn = &mut self.conns[c];
                    let Some(expect) = conn.expected.pop_front() else {
                        self.violation("protocol", "reply with no outstanding command".into());
                        continue;
                    };
                    match crate::cmd::reply_from_frame(&frame) {
                        Ok(reply) if reply_matches(expect, &reply) => {}
                        Ok(reply) => {
                            self.violation(
                                "protocol",
                                format!("expected {expect:?}, got {reply:?}"),
                            );
                        }
                        Err(e) => {
                            self.violation("protocol", format!("unparseable reply: {e}"));
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    self.violation("protocol", format!("client decode error: {e}"));
                    break;
                }
            }
        }
    }
}
