//! Incremental RESP2-subset codec.
//!
//! The wire format is the Redis serialisation protocol restricted to what
//! the serve plane speaks: simple strings (`+OK\r\n`), errors
//! (`-ERR ..\r\n`), integers (`:42\r\n`), bulk strings
//! (`$5\r\nhello\r\n`, `$-1\r\n` for nil), arrays (`*2\r\n..`, `*-1\r\n`
//! for nil), and *inline commands* — a bare space-separated line
//! (`PING\r\n`) that clients type by hand.
//!
//! The [`Decoder`] is incremental and pipelining-safe: bytes arrive in
//! arbitrary chunks via [`Decoder::feed`], and [`Decoder::next`] yields a
//! frame exactly when one is complete, `Ok(None)` when more bytes are
//! needed, and a typed [`RespError`] on malformed input — never a panic
//! (pinned by the `panic-path` lint, which sweeps this file's public
//! surface). Payloads are carved out of the receive buffer in a single
//! copy: resumption after a partial read re-scans only the frame header,
//! never the payload bytes, so a 1 MiB bulk split across a thousand reads
//! costs one memmove, not a thousand.
//!
//! Protocol errors poison the connection from the caller's point of view:
//! the decoder leaves its cursor where the error was found, and the serve
//! plane drops the connection (mirroring Redis, which closes on a
//! protocol error rather than trying to resynchronise).

/// Largest accepted bulk-string payload.
pub const MAX_BULK_LEN: i64 = 8 << 20;
/// Largest accepted array arity.
pub const MAX_ARRAY_LEN: i64 = 1024;
/// Deepest accepted array nesting.
pub const MAX_DEPTH: usize = 4;
/// Longest accepted header/inline line (excluding the CRLF).
pub const MAX_LINE_LEN: usize = 8 << 10;

/// One decoded RESP frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// `+..\r\n` simple string.
    Simple(Vec<u8>),
    /// `-..\r\n` error string.
    Error(Vec<u8>),
    /// `:n\r\n` integer.
    Integer(i64),
    /// `$n\r\n..\r\n` bulk string; `None` is the `$-1\r\n` nil.
    Bulk(Option<Vec<u8>>),
    /// `*n\r\n..` array; `None` is the `*-1\r\n` nil array.
    Array(Option<Vec<Frame>>),
    /// A bare command line, split into space-separated words.
    Inline(Vec<Vec<u8>>),
}

/// Typed decode failures. Every malformed input maps to one of these —
/// the decoder has no panicking path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespError {
    /// A length/integer line held something other than `-?[0-9]+`.
    BadInteger {
        /// Which header was being parsed (`"bulk length"`, ..).
        what: &'static str,
    },
    /// A declared length exceeded the codec's limit.
    LengthOverflow {
        /// Which header was being parsed.
        what: &'static str,
        /// The declared value.
        got: i64,
        /// The limit it broke.
        max: i64,
    },
    /// A declared length below `-1` (only `-1` encodes nil).
    NegativeLength {
        /// Which header was being parsed.
        what: &'static str,
        /// The declared value.
        got: i64,
    },
    /// A line terminated by a bare `\n`, a `\r` followed by something
    /// other than `\n`, or a bulk payload not followed by `\r\n`.
    MissingCrLf {
        /// What was being terminated.
        what: &'static str,
    },
    /// Array nesting beyond [`MAX_DEPTH`].
    DepthExceeded {
        /// The limit that was broken.
        max: usize,
    },
    /// A header or inline line longer than [`MAX_LINE_LEN`].
    LineTooLong {
        /// The limit that was broken.
        max: usize,
    },
    /// An inline (untyped) line inside an array, where only typed frames
    /// are legal.
    InlineInArray,
}

impl std::fmt::Display for RespError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RespError::BadInteger { what } => write!(f, "malformed integer in {what}"),
            RespError::LengthOverflow { what, got, max } => {
                write!(f, "{what} {got} exceeds limit {max}")
            }
            RespError::NegativeLength { what, got } => {
                write!(f, "{what} {got} is negative (only -1 encodes nil)")
            }
            RespError::MissingCrLf { what } => write!(f, "{what} not terminated by CRLF"),
            RespError::DepthExceeded { max } => write!(f, "array nesting deeper than {max}"),
            RespError::LineTooLong { max } => write!(f, "line longer than {max} bytes"),
            RespError::InlineInArray => write!(f, "inline command inside an array"),
        }
    }
}

impl std::error::Error for RespError {}

/// Outcome of one resumable parse attempt: the value and the cursor just
/// past it, or "need more bytes".
type Partial<T> = Result<Option<(T, usize)>, RespError>;

/// Incremental frame decoder over an internal receive buffer.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    pos: usize,
}

impl Decoder {
    /// Fresh decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append newly received bytes (any chunking).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet consumed by a completed frame.
    pub fn buffered(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Decode the next complete frame, if the buffer holds one. Empty
    /// inline lines (a bare `\r\n`) are skipped, as in Redis.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, RespError> {
        loop {
            match parse_frame(&self.buf, self.pos, 0)? {
                None => {
                    self.compact();
                    return Ok(None);
                }
                Some((Frame::Inline(words), end)) if words.is_empty() => {
                    self.pos = end;
                }
                Some((frame, end)) => {
                    self.pos = end;
                    self.compact();
                    return Ok(Some(frame));
                }
            }
        }
    }

    /// Reclaim consumed prefix once it dominates the buffer, so long-lived
    /// pipelined connections don't grow without bound.
    fn compact(&mut self) {
        if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Find the end of the line starting at `from`: returns the line body and
/// the cursor past its CRLF.
fn parse_line(buf: &[u8], from: usize, what: &'static str) -> Partial<std::ops::Range<usize>> {
    let mut i = from;
    loop {
        match buf.get(i) {
            None => {
                // No terminator yet. An over-long headerless tail is
                // rejected eagerly so a garbage stream cannot buffer 8 MiB
                // before erroring.
                if i - from > MAX_LINE_LEN {
                    return Err(RespError::LineTooLong { max: MAX_LINE_LEN });
                }
                return Ok(None);
            }
            Some(b'\n') => return Err(RespError::MissingCrLf { what }),
            Some(b'\r') => match buf.get(i + 1) {
                None => return Ok(None),
                Some(b'\n') => return Ok(Some((from..i, i + 2))),
                Some(_) => return Err(RespError::MissingCrLf { what }),
            },
            Some(_) if i - from > MAX_LINE_LEN => {
                return Err(RespError::LineTooLong { max: MAX_LINE_LEN })
            }
            Some(_) => i += 1,
        }
    }
}

/// Parse a `-?[0-9]+` line body.
fn parse_int(body: &[u8], what: &'static str) -> Result<i64, RespError> {
    let (neg, digits) = match body.split_first() {
        Some((b'-', rest)) => (true, rest),
        _ => (false, body),
    };
    if digits.is_empty() {
        return Err(RespError::BadInteger { what });
    }
    let mut v: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return Err(RespError::BadInteger { what });
        }
        v = v
            .checked_mul(10)
            .and_then(|v| v.checked_add((b - b'0') as i64))
            .ok_or(RespError::BadInteger { what })?;
    }
    Ok(if neg { -v } else { v })
}

/// Resumable frame parse starting at `pos`. `depth` counts array nesting.
fn parse_frame(buf: &[u8], pos: usize, depth: usize) -> Partial<Frame> {
    let Some(&first) = buf.get(pos) else { return Ok(None) };
    match first {
        b'+' | b'-' | b':' => {
            let what = match first {
                b'+' => "simple string",
                b'-' => "error string",
                _ => "integer",
            };
            let Some((body, end)) = parse_line(buf, pos + 1, what)? else { return Ok(None) };
            let body = buf.get(body).unwrap_or(&[]);
            let frame = match first {
                b'+' => Frame::Simple(body.to_vec()),
                b'-' => Frame::Error(body.to_vec()),
                _ => Frame::Integer(parse_int(body, what)?),
            };
            Ok(Some((frame, end)))
        }
        b'$' => {
            let what = "bulk length";
            let Some((body, end)) = parse_line(buf, pos + 1, what)? else { return Ok(None) };
            let n = parse_int(buf.get(body).unwrap_or(&[]), what)?;
            if n == -1 {
                return Ok(Some((Frame::Bulk(None), end)));
            }
            if n < -1 {
                return Err(RespError::NegativeLength { what, got: n });
            }
            if n > MAX_BULK_LEN {
                return Err(RespError::LengthOverflow { what, got: n, max: MAX_BULK_LEN });
            }
            let len = n as usize;
            // Single-copy carve-out: the payload is sliced straight from
            // the receive buffer once all its bytes (and the trailing
            // CRLF) have arrived.
            let Some(payload) = buf.get(end..end + len) else { return Ok(None) };
            match (buf.get(end + len), buf.get(end + len + 1)) {
                (Some(b'\r'), Some(b'\n')) => {
                    Ok(Some((Frame::Bulk(Some(payload.to_vec())), end + len + 2)))
                }
                (None, _) | (Some(b'\r'), None) => Ok(None),
                _ => Err(RespError::MissingCrLf { what: "bulk payload" }),
            }
        }
        b'*' => {
            let what = "array length";
            let Some((body, end)) = parse_line(buf, pos + 1, what)? else { return Ok(None) };
            let n = parse_int(buf.get(body).unwrap_or(&[]), what)?;
            if n == -1 {
                return Ok(Some((Frame::Array(None), end)));
            }
            if n < -1 {
                return Err(RespError::NegativeLength { what, got: n });
            }
            if n > MAX_ARRAY_LEN {
                return Err(RespError::LengthOverflow { what, got: n, max: MAX_ARRAY_LEN });
            }
            if depth + 1 > MAX_DEPTH {
                return Err(RespError::DepthExceeded { max: MAX_DEPTH });
            }
            let mut items = Vec::with_capacity(n as usize);
            let mut cursor = end;
            for _ in 0..n {
                // Array elements must be typed frames; a bare line here is
                // a protocol error, not an inline command.
                match buf.get(cursor) {
                    None => return Ok(None),
                    Some(b'+' | b'-' | b':' | b'$' | b'*') => {}
                    Some(_) => return Err(RespError::InlineInArray),
                }
                let Some((item, next)) = parse_frame(buf, cursor, depth + 1)? else {
                    return Ok(None);
                };
                items.push(item);
                cursor = next;
            }
            Ok(Some((Frame::Array(Some(items)), cursor)))
        }
        _ => {
            let Some((body, end)) = parse_line(buf, pos, "inline command")? else {
                return Ok(None);
            };
            let body = buf.get(body).unwrap_or(&[]);
            let words =
                body.split(|&b| b == b' ').filter(|w| !w.is_empty()).map(|w| w.to_vec()).collect();
            Ok(Some((Frame::Inline(words), end)))
        }
    }
}

/// Encode `frame` onto `out`. Inline frames encode as their bare line.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Simple(s) => {
            out.push(b'+');
            out.extend_from_slice(s);
            out.extend_from_slice(b"\r\n");
        }
        Frame::Error(s) => {
            out.push(b'-');
            out.extend_from_slice(s);
            out.extend_from_slice(b"\r\n");
        }
        Frame::Integer(n) => {
            out.push(b':');
            out.extend_from_slice(n.to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Frame::Bulk(None) => out.extend_from_slice(b"$-1\r\n"),
        Frame::Bulk(Some(payload)) => {
            out.push(b'$');
            out.extend_from_slice(payload.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            out.extend_from_slice(payload);
            out.extend_from_slice(b"\r\n");
        }
        Frame::Array(None) => out.extend_from_slice(b"*-1\r\n"),
        Frame::Array(Some(items)) => {
            out.push(b'*');
            out.extend_from_slice(items.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            for item in items {
                encode_frame(item, out);
            }
        }
        Frame::Inline(words) => encode_inline(words, out),
    }
}

/// Encode a client command in the canonical array-of-bulks form.
pub fn encode_command<W: AsRef<[u8]>>(words: &[W], out: &mut Vec<u8>) {
    out.push(b'*');
    out.extend_from_slice(words.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
    for w in words {
        let w = w.as_ref();
        out.push(b'$');
        out.extend_from_slice(w.len().to_string().as_bytes());
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(w);
        out.extend_from_slice(b"\r\n");
    }
}

/// Encode a client command in the inline (bare line) form.
pub fn encode_inline<W: AsRef<[u8]>>(words: &[W], out: &mut Vec<u8>) {
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            out.push(b' ');
        }
        out.extend_from_slice(w.as_ref());
    }
    out.extend_from_slice(b"\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8]) -> Vec<Frame> {
        let mut d = Decoder::new();
        d.feed(bytes);
        let mut frames = Vec::new();
        while let Some(f) = d.next_frame().expect("well-formed stream") {
            frames.push(f);
        }
        frames
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Simple(b"OK".to_vec()),
            Frame::Error(b"ERR wrong arity".to_vec()),
            Frame::Integer(0),
            Frame::Integer(-42),
            Frame::Integer(i64::MAX),
            Frame::Bulk(None),
            Frame::Bulk(Some(Vec::new())),
            Frame::Bulk(Some(b"hello\r\nworld".to_vec())), // CRLF inside payload
            Frame::Array(None),
            Frame::Array(Some(vec![])),
            Frame::Array(Some(vec![
                Frame::Bulk(Some(b"GET".to_vec())),
                Frame::Bulk(Some(b"user000000000042".to_vec())),
            ])),
            Frame::Array(Some(vec![
                Frame::Integer(7),
                Frame::Array(Some(vec![Frame::Simple(b"nested".to_vec())])),
                Frame::Bulk(None),
            ])),
        ]
    }

    #[test]
    fn round_trip_whole_buffer() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame(f, &mut wire);
        }
        assert_eq!(decode_all(&wire), frames);
    }

    /// The satellite's property test: encode a frame sequence, then for
    /// every split point feed the two halves separately — the decoder
    /// must produce the identical frames at every split, proving partial
    /// reads resume without loss or duplication.
    #[test]
    fn round_trip_split_at_every_byte() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame(f, &mut wire);
        }
        for split in 0..=wire.len() {
            let mut d = Decoder::new();
            let mut got = Vec::new();
            d.feed(&wire[..split]);
            while let Some(f) = d.next_frame().expect("prefix is a valid partial stream") {
                got.push(f);
            }
            d.feed(&wire[split..]);
            while let Some(f) = d.next_frame().expect("completed stream is valid") {
                got.push(f);
            }
            assert_eq!(got, frames, "split at byte {split}");
        }
    }

    /// Byte-at-a-time delivery: the pathological chunking every proxy
    /// eventually produces.
    #[test]
    fn round_trip_byte_at_a_time() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame(f, &mut wire);
        }
        let mut d = Decoder::new();
        let mut got = Vec::new();
        for &b in &wire {
            d.feed(&[b]);
            while let Some(f) = d.next_frame().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn inline_commands_decode_and_skip_blank_lines() {
        let frames = decode_all(b"PING\r\n\r\nGET  user000000000001\r\n");
        assert_eq!(
            frames,
            vec![
                Frame::Inline(vec![b"PING".to_vec()]),
                Frame::Inline(vec![b"GET".to_vec(), b"user000000000001".to_vec()]),
            ]
        );
    }

    #[test]
    fn incomplete_frames_return_none_not_errors() {
        for partial in [
            &b"$10\r\nhel"[..],
            b"*2\r\n$3\r\nGET\r\n",
            b"+OK\r",
            b":12",
            b"$4\r\nhey!",
            b"$4\r\nhey!\r",
            b"*1\r\n",
        ] {
            let mut d = Decoder::new();
            d.feed(partial);
            assert_eq!(d.next_frame().expect("incomplete, not malformed"), None, "{partial:?}");
        }
    }

    #[test]
    fn malformed_frames_yield_typed_errors() {
        let cases: Vec<(&[u8], RespError)> = vec![
            (b":12a\r\n", RespError::BadInteger { what: "integer" }),
            (b"$\r\n", RespError::BadInteger { what: "bulk length" }),
            (b"$--2\r\n", RespError::BadInteger { what: "bulk length" }),
            (b"$-2\r\n", RespError::NegativeLength { what: "bulk length", got: -2 }),
            (b"*-7\r\n", RespError::NegativeLength { what: "array length", got: -7 }),
            (
                b"$99999999999\r\n",
                RespError::LengthOverflow {
                    what: "bulk length",
                    got: 99_999_999_999,
                    max: MAX_BULK_LEN,
                },
            ),
            (
                b"*9999\r\n",
                RespError::LengthOverflow { what: "array length", got: 9999, max: MAX_ARRAY_LEN },
            ),
            (b"$3\r\nabcX\r\n", RespError::MissingCrLf { what: "bulk payload" }),
            (b"+OK\rX", RespError::MissingCrLf { what: "simple string" }),
            (b"PING\nPONG", RespError::MissingCrLf { what: "inline command" }),
            (b":9223372036854775808\r\n", RespError::BadInteger { what: "integer" }),
            (b"*2\r\n$1\r\na\r\nINLINE HERE\r\n", RespError::InlineInArray),
            (
                b"*1\r\n*1\r\n*1\r\n*1\r\n*1\r\n+deep\r\n",
                RespError::DepthExceeded { max: MAX_DEPTH },
            ),
        ];
        for (wire, want) in cases {
            let mut d = Decoder::new();
            d.feed(wire);
            let got = loop {
                match d.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => panic!("{wire:?}: expected an error, got incomplete"),
                    Err(e) => break e,
                }
            };
            assert_eq!(got, want, "{wire:?}");
        }
    }

    #[test]
    fn over_long_headerless_line_is_rejected_eagerly() {
        let mut d = Decoder::new();
        d.feed(&vec![b'x'; MAX_LINE_LEN + 2]);
        assert_eq!(d.next_frame(), Err(RespError::LineTooLong { max: MAX_LINE_LEN }));
    }

    /// The satellite's pipelining torture test: three connections, each
    /// with its own decoder, receive interleaved partial chunks of their
    /// own pipelined command streams — every connection must reassemble
    /// exactly its own frames in order.
    #[test]
    fn pipelining_torture_interleaves_partial_frames_across_three_connections() {
        let streams: Vec<Vec<Frame>> = (0..3)
            .map(|c| {
                (0..40)
                    .map(|i| match (c + i) % 4 {
                        0 => Frame::Array(Some(vec![
                            Frame::Bulk(Some(b"SET".to_vec())),
                            Frame::Bulk(Some(format!("user{:012}", c * 1000 + i).into_bytes())),
                            Frame::Bulk(Some(vec![b'a' + c as u8; 64 + i])),
                        ])),
                        1 => Frame::Inline(vec![b"PING".to_vec()]),
                        2 => Frame::Array(Some(vec![
                            Frame::Bulk(Some(b"GET".to_vec())),
                            Frame::Bulk(Some(format!("user{:012}", c * 1000 + i).into_bytes())),
                        ])),
                        _ => Frame::Bulk(Some(vec![b'z'; i])),
                    })
                    .collect()
            })
            .collect();
        let wires: Vec<Vec<u8>> = streams
            .iter()
            .map(|frames| {
                let mut w = Vec::new();
                for f in frames {
                    encode_frame(f, &mut w);
                }
                w
            })
            .collect();

        // Deterministic ragged interleave: connection c delivers chunks of
        // 1 + (step * 7 + c * 3) % 13 bytes, round-robin, so frame
        // boundaries land mid-chunk on every connection.
        let mut decoders = [Decoder::new(), Decoder::new(), Decoder::new()];
        let mut got: Vec<Vec<Frame>> = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut offsets = [0usize; 3];
        let mut step = 0usize;
        while offsets.iter().zip(&wires).any(|(&o, w)| o < w.len()) {
            for c in 0..3 {
                let wire = &wires[c];
                if offsets[c] >= wire.len() {
                    continue;
                }
                let chunk = 1 + (step * 7 + c * 3) % 13;
                let end = (offsets[c] + chunk).min(wire.len());
                decoders[c].feed(&wire[offsets[c]..end]);
                offsets[c] = end;
                while let Some(f) = decoders[c].next_frame().expect("valid stream") {
                    got[c].push(f);
                }
                step += 1;
            }
        }
        assert_eq!(got, streams);
        assert!(decoders.iter().all(|d| d.buffered() == 0));
    }

    #[test]
    fn command_encoders_produce_decodable_forms() {
        let mut wire = Vec::new();
        encode_command(&[b"SET".as_ref(), b"k", b"v"], &mut wire);
        encode_inline(&[b"PING".as_ref()], &mut wire);
        assert_eq!(
            decode_all(&wire),
            vec![
                Frame::Array(Some(vec![
                    Frame::Bulk(Some(b"SET".to_vec())),
                    Frame::Bulk(Some(b"k".to_vec())),
                    Frame::Bulk(Some(b"v".to_vec())),
                ])),
                Frame::Inline(vec![b"PING".to_vec()]),
            ]
        );
    }
}
