//! Rank-level replication primitives for PapyrusKV.
//!
//! PapyrusKV shards keys over ranks with a consistent-hash ring
//! (`Distributor`); this crate adds the replica-placement layer on top.
//! With a replication factor `R`, the owner of a key keeps the primary
//! copy and the next `R-1` ranks clockwise on the ring (the *successors*)
//! keep replica copies. When the owner dies, the first live successor is
//! *promoted* to primary for the dead rank's ranges and re-replicates the
//! promoted data to the next live ranks until the ring holds `R` copies
//! again.
//!
//! The crate is deliberately mechanism-free: it computes placement and
//! arbitrates promotion claims, while the actual data movement (replica
//! MemTables/SSTables, REPL_PUT/REPL_GET wire traffic, re-replication
//! jobs) lives in `papyruskv`. Keeping the math here makes it unit-testable
//! without a runtime and keeps core's dependency on it one-directional.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Clamp a configured replication factor to what the job can support:
/// at least 1 (primary only) and at most `n_ranks` distinct copies.
pub fn effective_factor(requested: usize, n_ranks: usize) -> usize {
    requested.max(1).min(n_ranks.max(1))
}

/// The `r - 1` successor ranks that hold replicas for `owner` on a ring of
/// `n` ranks, in ring (preference) order. Empty when `r <= 1` or the ring
/// is a single rank.
pub fn successors(owner: usize, n: usize, r: usize) -> Vec<usize> {
    if n < 2 || r < 2 {
        return Vec::new();
    }
    let copies = effective_factor(r, n) - 1;
    (1..=copies).map(|k| (owner + k) % n).collect()
}

/// Full holder set for `owner`'s ranges: the owner itself followed by its
/// successors, in preference order.
pub fn holders(owner: usize, n: usize, r: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(effective_factor(r, n));
    out.push(owner % n.max(1));
    out.extend(successors(owner, n, r));
    out
}

/// First rank clockwise from `dead` (exclusive) that `is_dead` reports
/// alive — the rank that must promote itself to primary for `dead`'s
/// ranges. `None` when every other rank is dead too.
pub fn first_live_successor(
    dead: usize,
    n: usize,
    is_dead: &dyn Fn(usize) -> bool,
) -> Option<usize> {
    (1..n).map(|k| (dead + k) % n).find(|&r| !is_dead(r))
}

/// The ranks that should hold copies of `dead`'s ranges once the ring has
/// healed: the first `r` live ranks clockwise from `dead` (exclusive).
/// The first entry is the promoted primary; the rest are the
/// re-replication targets.
pub fn heal_set(dead: usize, n: usize, r: usize, is_dead: &dyn Fn(usize) -> bool) -> Vec<usize> {
    let want = effective_factor(r, n);
    (1..n).map(|k| (dead + k) % n).filter(|&rank| !is_dead(rank)).take(want).collect()
}

/// Outcome of a promotion claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// The caller is the first claimant: it owns promotion and must run
    /// re-replication for the dead rank's ranges.
    Won,
    /// The caller already holds the claim (duplicate discovery path; no
    /// new re-replication work).
    AlreadyOwned,
    /// Another rank claimed first.
    Lost,
}

/// Job-wide promotion arbiter, shared by every rank of a job through the
/// platform. Promotion discovery is racy by nature — several survivors can
/// notice a death concurrently (failed barrier, failover get, RPC error) —
/// so the registry serialises claims per `(db, dead rank)` and the first
/// claimant wins. "Promoted ranges owned by exactly one live primary" is
/// thereby true by construction; `force_claim` exists so sanity tests can
/// seed the violated state and prove the auditor catches it.
#[derive(Default)]
pub struct PromotionTable {
    claims: Mutex<HashMap<(u32, usize), Vec<usize>>>,
}

impl PromotionTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim promotion of `(db, dead)` for `rank`. First claim wins.
    pub fn claim(&self, db: u32, dead: usize, rank: usize) -> Claim {
        let mut claims = self.claims.lock();
        let slot = claims.entry((db, dead)).or_default();
        match slot.first() {
            None => {
                slot.push(rank);
                Claim::Won
            }
            Some(&holder) if holder == rank => Claim::AlreadyOwned,
            Some(_) => Claim::Lost,
        }
    }

    /// The promoted primary for `(db, dead)`, if any rank has claimed it.
    pub fn claimant(&self, db: u32, dead: usize) -> Option<usize> {
        self.claims.lock().get(&(db, dead)).and_then(|v| v.first().copied())
    }

    /// All claims recorded for `db`, as `(dead rank, claimants)` pairs.
    /// A healthy table has exactly one claimant per entry.
    pub fn claims_for(&self, db: u32) -> Vec<(usize, Vec<usize>)> {
        let claims = self.claims.lock();
        let mut out: Vec<_> = claims
            .iter()
            .filter(|((d, _), _)| *d == db)
            .map(|((_, dead), v)| (*dead, v.clone()))
            .collect();
        out.sort_unstable_by_key(|(dead, _)| *dead);
        out
    }

    /// Record a claim unconditionally, even when another rank already holds
    /// it. Test-only seeding hook for the `audit_db` replica invariants —
    /// the normal `claim` path cannot produce a double claim.
    pub fn force_claim(&self, db: u32, dead: usize, rank: usize) {
        self.claims.lock().entry((db, dead)).or_default().push(rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_clamps_to_ring_size() {
        assert_eq!(effective_factor(0, 4), 1);
        assert_eq!(effective_factor(1, 4), 1);
        assert_eq!(effective_factor(3, 4), 3);
        assert_eq!(effective_factor(9, 4), 4);
        assert_eq!(effective_factor(2, 1), 1);
    }

    #[test]
    fn successors_walk_the_ring() {
        assert_eq!(successors(0, 4, 2), vec![1]);
        assert_eq!(successors(3, 4, 2), vec![0]);
        assert_eq!(successors(2, 4, 3), vec![3, 0]);
        assert!(successors(2, 4, 1).is_empty());
        assert!(successors(0, 1, 2).is_empty());
        // R larger than the ring degrades to n copies total.
        assert_eq!(successors(1, 3, 8), vec![2, 0]);
    }

    #[test]
    fn holders_lead_with_owner() {
        assert_eq!(holders(3, 4, 2), vec![3, 0]);
        assert_eq!(holders(1, 4, 1), vec![1]);
    }

    #[test]
    fn first_live_successor_skips_dead_ranks() {
        let dead = |r: usize| r == 0;
        assert_eq!(first_live_successor(3, 4, &dead), Some(1));
        let all_dead = |_: usize| true;
        assert_eq!(first_live_successor(3, 4, &all_dead), None);
        let none_dead = |_: usize| false;
        assert_eq!(first_live_successor(1, 4, &none_dead), Some(2));
    }

    #[test]
    fn heal_set_returns_promoted_primary_then_targets() {
        let dead = |r: usize| r == 3;
        assert_eq!(heal_set(3, 4, 2, &dead), vec![0, 1]);
        let dead2 = |r: usize| r == 3 || r == 0;
        assert_eq!(heal_set(3, 4, 2, &dead2), vec![1, 2]);
        // Ring of survivors smaller than R: take what exists.
        let most_dead = |r: usize| r != 2;
        assert_eq!(heal_set(3, 4, 3, &most_dead), vec![2]);
    }

    #[test]
    fn promotion_first_claim_wins() {
        let t = PromotionTable::new();
        assert_eq!(t.claim(1, 3, 0), Claim::Won);
        assert_eq!(t.claim(1, 3, 0), Claim::AlreadyOwned);
        assert_eq!(t.claim(1, 3, 2), Claim::Lost);
        assert_eq!(t.claimant(1, 3), Some(0));
        // Distinct db or dead rank: independent slots.
        assert_eq!(t.claim(2, 3, 2), Claim::Won);
        assert_eq!(t.claim(1, 0, 2), Claim::Won);
        assert_eq!(t.claims_for(1), vec![(0, vec![2]), (3, vec![0])]);
    }

    #[test]
    fn force_claim_seeds_double_ownership() {
        let t = PromotionTable::new();
        assert_eq!(t.claim(7, 2, 3), Claim::Won);
        t.force_claim(7, 2, 1);
        assert_eq!(t.claims_for(7), vec![(2, vec![3, 1])]);
        // claimant still reports the first winner.
        assert_eq!(t.claimant(7, 2), Some(3));
    }
}

/// Schedule-exploration models for the promotion arbiter. Built and run
/// only under `RUSTFLAGS="--cfg modelcheck"` (`cargo xtask modelcheck`);
/// the `parking_lot::Mutex` inside `PromotionTable` is then the shimmed
/// model-checker mutex, so claim races are explored exhaustively.
#[cfg(all(test, modelcheck))]
mod modelcheck_tests {
    use std::sync::Arc;

    use papyrus_modelcheck as mc;

    use super::*;

    /// Exhaustive interleavings of two concurrent claimants. Pinned so a
    /// scheduler or DPOR change that silently shrinks coverage fails loudly.
    const PINNED_PROMOTION_2CLAIM: u64 = 5;

    /// Two survivors discover the same dead rank concurrently and race to
    /// claim `(db=1, dead=3)`. In every interleaving exactly one must win,
    /// the other must lose, and `claimant` must report the winner.
    #[test]
    fn modelcheck_promotion_first_claim_exhaustive() {
        let report = mc::explore(|| {
            let t = Arc::new(PromotionTable::new());
            let ta = t.clone();
            let tb = t.clone();
            let a = mc::thread::spawn(move || ta.claim(1, 3, 0));
            let b = mc::thread::spawn(move || tb.claim(1, 3, 2));
            let ca = a.join().unwrap();
            let cb = b.join().unwrap();
            let wins = [ca, cb].iter().filter(|c| **c == Claim::Won).count();
            assert_eq!(wins, 1, "exactly one claimant must win, got {ca:?}/{cb:?}");
            let winner = if ca == Claim::Won { 0 } else { 2 };
            assert_eq!(t.claimant(1, 3), Some(winner));
            assert_eq!(t.claims_for(1), vec![(3, vec![winner])]);
        });
        assert!(report.ok(), "violation: {:?}", report.violations);
        assert_eq!(report.interleavings, PINNED_PROMOTION_2CLAIM, "DPOR coverage changed");
    }

    /// A broken arbiter that checks for an existing claimant and records
    /// its own claim under *separate* lock acquisitions — the classic
    /// check-then-act race the real `PromotionTable::claim` avoids by
    /// holding the mutex across both steps.
    struct RacyPromotionTable {
        claims: parking_lot::Mutex<std::collections::HashMap<(u32, usize), Vec<usize>>>,
    }

    impl RacyPromotionTable {
        fn claim(&self, db: u32, dead: usize, rank: usize) -> Claim {
            let vacant = self.claims.lock().get(&(db, dead)).map_or(true, |v| v.is_empty());
            // Lock dropped here: another claimant can interleave between
            // the check and the act.
            if vacant {
                self.claims.lock().entry((db, dead)).or_default().push(rank);
                Claim::Won
            } else {
                Claim::Lost
            }
        }
    }

    /// Seeded bug (b): the explorer must find the interleaving where both
    /// survivors observe an empty slot and both report `Won` — the
    /// double-promotion the serialised `claim` makes impossible.
    #[test]
    fn modelcheck_seedbug_promotion_check_then_act_detected() {
        let report = mc::Builder::new().check(|| {
            let t = Arc::new(RacyPromotionTable {
                claims: parking_lot::Mutex::new(std::collections::HashMap::new()),
            });
            let ta = t.clone();
            let tb = t.clone();
            let a = mc::thread::spawn(move || ta.claim(1, 3, 0));
            let b = mc::thread::spawn(move || tb.claim(1, 3, 2));
            let ca = a.join().unwrap();
            let cb = b.join().unwrap();
            let wins = [ca, cb].iter().filter(|c| **c == Claim::Won).count();
            assert!(wins <= 1, "double promotion: both survivors won");
        });
        let v = report
            .violations
            .first()
            .expect("explorer must detect the check-then-act double promotion");
        assert_eq!(v.kind, mc::ViolationKind::Panic, "{v:?}");
        assert!(v.detail.contains("double promotion"), "{v:?}");
        assert!(report.schedule.is_some(), "failing schedule must be reported");
    }
}
