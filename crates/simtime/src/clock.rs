//! Per-rank virtual clocks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::SimNs;

/// A monotonically advancing virtual clock.
///
/// A `Clock` is owned by one simulated MPI rank but is shared (via `Arc`
/// internally, so `Clock` is `Clone`) with that rank's background threads
/// (compaction, message dispatcher/handler). All operations are atomic;
/// `advance` is a fetch-add and `merge` a fetch-max, so concurrent use from
/// the owner and its helpers is safe.
///
/// Merging is how causality propagates: a message carries the sender's clock
/// at send time plus the modelled network delay, and the receiver merges that
/// stamp into its own clock on receipt.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Arc<AtomicU64>,
}

impl Clock {
    /// Create a clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a clock starting at `t`.
    pub fn starting_at(t: SimNs) -> Self {
        let c = Self::new();
        c.merge(t);
        c
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimNs {
        self.now.load(Ordering::Acquire)
    }

    /// Advance the clock by `dur` virtual ns, returning the new time.
    #[inline]
    pub fn advance(&self, dur: SimNs) -> SimNs {
        self.now.fetch_add(dur, Ordering::AcqRel) + dur
    }

    /// Merge an external timestamp: the clock becomes `max(now, t)`.
    /// Returns the (possibly unchanged) resulting time.
    #[inline]
    pub fn merge(&self, t: SimNs) -> SimNs {
        self.now.fetch_max(t, Ordering::AcqRel).max(t)
    }

    /// Convenience: merge `t` then advance by `dur`.
    #[inline]
    pub fn merge_advance(&self, t: SimNs, dur: SimNs) -> SimNs {
        self.merge(t);
        self.advance(dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), 0);
    }

    #[test]
    fn starting_at_sets_origin() {
        assert_eq!(Clock::starting_at(42).now(), 42);
    }

    #[test]
    fn advance_accumulates() {
        let c = Clock::new();
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn merge_is_max() {
        let c = Clock::new();
        c.advance(100);
        assert_eq!(c.merge(50), 100); // older stamp ignored
        assert_eq!(c.merge(200), 200); // newer stamp adopted
        assert_eq!(c.now(), 200);
    }

    #[test]
    fn merge_advance_combines() {
        let c = Clock::new();
        assert_eq!(c.merge_advance(30, 5), 35);
    }

    #[test]
    fn clone_shares_state() {
        let c = Clock::new();
        let c2 = c.clone();
        c.advance(7);
        assert_eq!(c2.now(), 7);
    }

    #[test]
    fn concurrent_advances_all_counted() {
        let c = Clock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now(), 8000);
    }

    #[test]
    fn concurrent_merges_monotonic() {
        let c = Clock::new();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let c = c.clone();
                thread::spawn(move || {
                    for j in 0..1000u64 {
                        c.merge(i * 1000 + j);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now(), 7999);
    }
}
