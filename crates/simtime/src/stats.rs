//! Throughput accounting helpers used by the benchmark harnesses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{SimNs, MIB, SEC};

/// Kilo-requests-per-second for `ops` operations over `ns` virtual ns — the
/// KRPS metric the paper reports for small values.
pub fn krps(ops: u64, ns: SimNs) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    (ops as f64 * SEC as f64 / ns as f64) / 1_000.0
}

/// Megabytes-per-second for `bytes` over `ns` virtual ns — the MBPS metric
/// the paper reports for large values.
pub fn mbps(bytes: u64, ns: SimNs) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    bytes as f64 / MIB as f64 * SEC as f64 / ns as f64
}

/// Thread-safe operation counters shared across a rank and its background
/// threads. Each counter is a monotone accumulator.
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    inner: Arc<OpStatsInner>,
}

#[derive(Debug, Default)]
struct OpStatsInner {
    ops: AtomicU64,
    bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl OpStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one operation moving `bytes`.
    #[inline]
    pub fn record(&self, bytes: u64) {
        // ordering: stat cells — atomic on their own, publishing nothing;
        // readers are display paths that tolerate tearing between cells.
        self.inner.ops.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a cache/bloom hit.
    #[inline]
    pub fn hit(&self) {
        // ordering: stat cell, see record().
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache/bloom miss.
    #[inline]
    pub fn miss(&self) {
        // ordering: stat cell, see record().
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        // ordering: display read; quiescent totals are ordered by joins.
        self.inner.ops.load(Ordering::Relaxed)
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        // ordering: display read; quiescent totals are ordered by joins.
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Total hits recorded.
    pub fn hits(&self) -> u64 {
        // ordering: display read; quiescent totals are ordered by joins.
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Total misses recorded.
    pub fn misses(&self) -> u64 {
        // ordering: display read; quiescent totals are ordered by joins.
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Hit ratio in `[0, 1]`; 0 when nothing recorded.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Point-in-time copy of all counters. Individual loads are relaxed, so
    /// under concurrent recording the fields are each individually accurate
    /// but not a single atomic cut — fine for reporting.
    pub fn snapshot(&self) -> OpStatsSnapshot {
        OpStatsSnapshot {
            ops: self.ops(),
            bytes: self.bytes(),
            hits: self.hits(),
            misses: self.misses(),
        }
    }

    /// Counters accumulated since `prev` was taken (interval accounting for
    /// phase-by-phase benchmark reporting). Saturates rather than wrapping
    /// if `prev` is newer than `self`.
    pub fn delta(&self, prev: &OpStatsSnapshot) -> OpStatsSnapshot {
        let cur = self.snapshot();
        OpStatsSnapshot {
            ops: cur.ops.saturating_sub(prev.ops),
            bytes: cur.bytes.saturating_sub(prev.bytes),
            hits: cur.hits.saturating_sub(prev.hits),
            misses: cur.misses.saturating_sub(prev.misses),
        }
    }

    /// Zero all counters (shared across every clone of this handle).
    pub fn reset(&self) {
        // ordering: reset is non-linearizable vs concurrent recorders by
        // contract; callers quiesce first.
        self.inner.ops.store(0, Ordering::Relaxed);
        self.inner.bytes.store(0, Ordering::Relaxed);
        self.inner.hits.store(0, Ordering::Relaxed);
        self.inner.misses.store(0, Ordering::Relaxed);
    }
}

/// An owned copy of [`OpStats`] counters at one instant; also the result
/// type of [`OpStats::delta`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStatsSnapshot {
    /// Operations recorded.
    pub ops: u64,
    /// Bytes recorded.
    pub bytes: u64,
    /// Cache/bloom hits recorded.
    pub hits: u64,
    /// Cache/bloom misses recorded.
    pub misses: u64,
}

impl OpStatsSnapshot {
    /// Hit ratio in `[0, 1]`; 0 when nothing recorded.
    pub fn hit_ratio(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// A per-rank series of (label, virtual-time) measurement points, used by the
/// figure harnesses to report avg/min/max across ranks like the paper's
/// output logs.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    points: Vec<(String, SimNs)>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a measurement.
    pub fn push(&mut self, label: impl Into<String>, t: SimNs) {
        self.points.push((label.into(), t));
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(String, SimNs)] {
        &self.points
    }

    /// Duration between two labelled points (first occurrence each);
    /// `None` if either label is missing or ordering is inverted.
    pub fn span(&self, from: &str, to: &str) -> Option<SimNs> {
        let a = self.points.iter().find(|(l, _)| l == from)?.1;
        let b = self.points.iter().find(|(l, _)| l == to)?.1;
        b.checked_sub(a)
    }
}

/// Summarise per-rank durations the way the paper's logs do: average,
/// minimum, and maximum.
pub fn avg_min_max(durations: &[SimNs]) -> (f64, SimNs, SimNs) {
    if durations.is_empty() {
        return (0.0, 0, 0);
    }
    let sum: u128 = durations.iter().map(|&d| d as u128).sum();
    let avg = sum as f64 / durations.len() as f64;
    let min = *durations.iter().min().unwrap();
    let max = *durations.iter().max().unwrap();
    (avg, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn krps_basic() {
        // 1000 ops in 1 second = 1 KRPS.
        assert!((krps(1000, SEC) - 1.0).abs() < 1e-9);
        assert_eq!(krps(1000, 0), 0.0);
    }

    #[test]
    fn mbps_basic() {
        assert!((mbps(MIB, SEC) - 1.0).abs() < 1e-9);
        assert_eq!(mbps(MIB, 0), 0.0);
    }

    #[test]
    fn opstats_accumulate() {
        let s = OpStats::new();
        s.record(10);
        s.record(20);
        assert_eq!(s.ops(), 2);
        assert_eq!(s.bytes(), 30);
    }

    #[test]
    fn opstats_shared_across_clones() {
        let s = OpStats::new();
        let s2 = s.clone();
        s.record(5);
        assert_eq!(s2.ops(), 1);
    }

    #[test]
    fn hit_ratio() {
        let s = OpStats::new();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hit();
        s.hit();
        s.miss();
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_delta_reset() {
        let s = OpStats::new();
        s.record(10);
        s.hit();
        let first = s.snapshot();
        assert_eq!(first, OpStatsSnapshot { ops: 1, bytes: 10, hits: 1, misses: 0 });
        s.record(20);
        s.miss();
        let d = s.delta(&first);
        assert_eq!(d, OpStatsSnapshot { ops: 1, bytes: 20, hits: 0, misses: 1 });
        assert_eq!(d.hit_ratio(), 0.0);
        s.reset();
        assert_eq!(s.snapshot(), OpStatsSnapshot::default());
        // A stale (pre-reset) snapshot saturates instead of wrapping.
        assert_eq!(s.delta(&first), OpStatsSnapshot::default());
    }

    #[test]
    fn timeline_span() {
        let mut t = Timeline::new();
        t.push("start", 100);
        t.push("end", 400);
        assert_eq!(t.span("start", "end"), Some(300));
        assert_eq!(t.span("end", "start"), None);
        assert_eq!(t.span("start", "nope"), None);
    }

    #[test]
    fn avg_min_max_basic() {
        let (avg, min, max) = avg_min_max(&[10, 20, 30]);
        assert!((avg - 20.0).abs() < 1e-9);
        assert_eq!(min, 10);
        assert_eq!(max, 30);
        assert_eq!(avg_min_max(&[]), (0.0, 0, 0));
    }
}
