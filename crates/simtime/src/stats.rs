//! Throughput accounting helpers used by the benchmark harnesses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{SimNs, MIB, SEC};

/// Kilo-requests-per-second for `ops` operations over `ns` virtual ns — the
/// KRPS metric the paper reports for small values.
pub fn krps(ops: u64, ns: SimNs) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    (ops as f64 * SEC as f64 / ns as f64) / 1_000.0
}

/// Megabytes-per-second for `bytes` over `ns` virtual ns — the MBPS metric
/// the paper reports for large values.
pub fn mbps(bytes: u64, ns: SimNs) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    bytes as f64 / MIB as f64 * SEC as f64 / ns as f64
}

/// Thread-safe operation counters shared across a rank and its background
/// threads. Each counter is a monotone accumulator.
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    inner: Arc<OpStatsInner>,
}

#[derive(Debug, Default)]
struct OpStatsInner {
    ops: AtomicU64,
    bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl OpStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one operation moving `bytes`.
    #[inline]
    pub fn record(&self, bytes: u64) {
        self.inner.ops.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a cache/bloom hit.
    #[inline]
    pub fn hit(&self) {
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache/bloom miss.
    #[inline]
    pub fn miss(&self) {
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.inner.ops.load(Ordering::Relaxed)
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Total hits recorded.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Total misses recorded.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Hit ratio in `[0, 1]`; 0 when nothing recorded.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// A per-rank series of (label, virtual-time) measurement points, used by the
/// figure harnesses to report avg/min/max across ranks like the paper's
/// output logs.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    points: Vec<(String, SimNs)>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a measurement.
    pub fn push(&mut self, label: impl Into<String>, t: SimNs) {
        self.points.push((label.into(), t));
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(String, SimNs)] {
        &self.points
    }

    /// Duration between two labelled points (first occurrence each);
    /// `None` if either label is missing or ordering is inverted.
    pub fn span(&self, from: &str, to: &str) -> Option<SimNs> {
        let a = self.points.iter().find(|(l, _)| l == from)?.1;
        let b = self.points.iter().find(|(l, _)| l == to)?.1;
        b.checked_sub(a)
    }
}

/// Summarise per-rank durations the way the paper's logs do: average,
/// minimum, and maximum.
pub fn avg_min_max(durations: &[SimNs]) -> (f64, SimNs, SimNs) {
    if durations.is_empty() {
        return (0.0, 0, 0);
    }
    let sum: u128 = durations.iter().map(|&d| d as u128).sum();
    let avg = sum as f64 / durations.len() as f64;
    let min = *durations.iter().min().unwrap();
    let max = *durations.iter().max().unwrap();
    (avg, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn krps_basic() {
        // 1000 ops in 1 second = 1 KRPS.
        assert!((krps(1000, SEC) - 1.0).abs() < 1e-9);
        assert_eq!(krps(1000, 0), 0.0);
    }

    #[test]
    fn mbps_basic() {
        assert!((mbps(MIB, SEC) - 1.0).abs() < 1e-9);
        assert_eq!(mbps(MIB, 0), 0.0);
    }

    #[test]
    fn opstats_accumulate() {
        let s = OpStats::new();
        s.record(10);
        s.record(20);
        assert_eq!(s.ops(), 2);
        assert_eq!(s.bytes(), 30);
    }

    #[test]
    fn opstats_shared_across_clones() {
        let s = OpStats::new();
        let s2 = s.clone();
        s.record(5);
        assert_eq!(s2.ops(), 1);
    }

    #[test]
    fn hit_ratio() {
        let s = OpStats::new();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hit();
        s.hit();
        s.miss();
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn timeline_span() {
        let mut t = Timeline::new();
        t.push("start", 100);
        t.push("end", 400);
        assert_eq!(t.span("start", "end"), Some(300));
        assert_eq!(t.span("end", "start"), None);
        assert_eq!(t.span("start", "nope"), None);
    }

    #[test]
    fn avg_min_max_basic() {
        let (avg, min, max) = avg_min_max(&[10, 20, 30]);
        assert!((avg - 20.0).abs() < 1e-9);
        assert_eq!(min, 10);
        assert_eq!(max, 30);
        assert_eq!(avg_min_max(&[]), (0.0, 0, 0));
    }
}
