//! # papyrus-simtime
//!
//! Virtual-time substrate for the PapyrusKV reproduction.
//!
//! The original PapyrusKV evaluation ran on three supercomputers and reported
//! wall-clock throughput. This crate replaces wall-clock with *virtual
//! nanoseconds* so the whole evaluation is deterministic and runs on one
//! machine while preserving the relative device/network characteristics the
//! paper's results depend on.
//!
//! Three building blocks:
//!
//! * [`Clock`] — a per-rank monotonically advancing virtual clock. Ranks
//!   advance their own clock as they perform modelled work; clocks are
//!   max-merged at synchronisation points (message receipt, barriers) so
//!   causality is respected without a full discrete-event engine.
//! * [`Resource`] — a shared serialising resource (a storage device, a NIC)
//!   with *busy-until* semantics: work of duration `d` submitted at time `t`
//!   completes at `max(busy_until, t) + d`. This is what produces contention
//!   effects such as all-to-all network congestion and shared-device queueing
//!   inside a storage group.
//! * Cost models ([`DeviceModel`], [`NetModel`], [`MemModel`]) — analytic
//!   latency/bandwidth models calibrated to the magnitudes discussed in the
//!   paper (NVMe ≫ Lustre random reads, striped Lustre sequential writes,
//!   burst-buffer striping, DDR4 random-access put costs).

mod clock;
mod cost;
mod resource;
mod stats;

pub use clock::Clock;
pub use cost::{AccessPattern, DeviceModel, MemModel, NetModel};
pub use resource::{Resource, MAX_OVERLAP, QUEUE_SLACK};
pub use stats::{avg_min_max, krps, mbps, OpStats, OpStatsSnapshot, Timeline};

/// Virtual time in nanoseconds since simulation start.
pub type SimNs = u64;

/// One second in [`SimNs`].
pub const SEC: SimNs = 1_000_000_000;

/// One millisecond in [`SimNs`].
pub const MS: SimNs = 1_000_000;

/// One microsecond in [`SimNs`].
pub const US: SimNs = 1_000;

/// Kibibyte, mebibyte, gibibyte — byte-count helpers used by cost models and
/// workload generators.
pub const KIB: u64 = 1024;
/// Mebibyte.
pub const MIB: u64 = 1024 * 1024;
/// Gibibyte.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// Convert a `bytes`-over-`bandwidth` (bytes/sec) transfer into virtual ns,
/// rounding up so that nonzero transfers always cost at least 1 ns.
#[inline]
pub fn transfer_ns(bytes: u64, bandwidth_bytes_per_sec: u64) -> SimNs {
    if bytes == 0 || bandwidth_bytes_per_sec == 0 {
        return 0;
    }
    // ns = bytes * 1e9 / bw, computed in u128 to avoid overflow for TB-scale
    // transfers.
    let ns = (bytes as u128 * SEC as u128).div_ceil(bandwidth_bytes_per_sec as u128);
    ns.min(u64::MAX as u128) as SimNs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_ns_zero_bytes_is_free() {
        assert_eq!(transfer_ns(0, GIB), 0);
    }

    #[test]
    fn transfer_ns_zero_bandwidth_is_free() {
        // Degenerate model (disabled accounting) must not divide by zero.
        assert_eq!(transfer_ns(123, 0), 0);
    }

    #[test]
    fn transfer_ns_one_gib_per_sec() {
        assert_eq!(transfer_ns(GIB, GIB), SEC);
        assert_eq!(transfer_ns(GIB / 2, GIB), SEC / 2);
    }

    #[test]
    fn transfer_ns_rounds_up() {
        // 1 byte at 1 GiB/s is a fraction of a ns; must round to >= 1.
        assert!(transfer_ns(1, GIB) >= 1);
    }

    #[test]
    fn transfer_ns_huge_values_no_overflow() {
        let ns = transfer_ns(u64::MAX, 1);
        assert_eq!(ns, u64::MAX);
    }
}
