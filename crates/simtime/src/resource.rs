//! Busy-until serialising resources (devices, NICs).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::SimNs;

/// A shared resource that serialises modelled work.
///
/// Submitting work of duration `d` at virtual time `t` schedules it to start
/// at `max(busy_until, t)` and returns its completion time, updating
/// `busy_until`. Multiple clients submitting concurrently therefore queue
/// behind each other — this single mechanism models storage-device
/// queueing, NIC serialisation, and the all-to-all congestion that makes a
/// relaxed-mode barrier slower than incremental synchronous puts in the
/// paper's Figure 7.
///
/// **Bounded-overlap approximation.** Ranks free-run between
/// synchronisation points, so submissions arrive out of virtual-time order:
/// a rank whose clock runs ahead must not drag everyone else's small
/// operations behind its frontier (that would serialise the whole job in
/// virtual time). A request of duration `d` can therefore observe at most
/// [`MAX_OVERLAP`]` × d + `[`QUEUE_SLACK`] of queueing delay — enough to
/// capture `MAX_OVERLAP`-way genuine contention (device queueing inside a
/// storage group, barrier incast), while capping spurious cross-epoch
/// coupling at nanoseconds for small operations.
///
/// `Resource` is `Clone` (shared handle) and lock-free (a CAS loop).
#[derive(Debug, Clone, Default)]
pub struct Resource {
    busy_until: Arc<AtomicU64>,
}

/// Maximum number of competing same-size requests a request can queue
/// behind (see [`Resource`] docs).
pub const MAX_OVERLAP: u64 = 64;

/// Constant queueing slack added to the overlap bound (ns).
pub const QUEUE_SLACK: SimNs = 500;

impl Resource {
    /// Create an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time at which all currently submitted work completes.
    #[inline]
    pub fn busy_until(&self) -> SimNs {
        self.busy_until.load(Ordering::Acquire)
    }

    /// Submit work of duration `dur` arriving at time `now`.
    ///
    /// Returns the completion timestamp. The caller decides whether the
    /// submitter blocks until completion (synchronous I/O: merge the stamp
    /// into the rank clock) or proceeds (background flush: remember the stamp
    /// and reconcile at the next fence/barrier). Queueing delay is capped by
    /// the bounded-overlap rule (see the type docs).
    pub fn submit(&self, now: SimNs, dur: SimNs) -> SimNs {
        self.submit_shared(now, dur, 1)
    }

    /// Submit work to a resource with internal parallelism (an NVMe device
    /// servicing multiple queue pairs): the submission *occupies* the
    /// resource for only `dur / parallelism` (throughput), while the caller
    /// still waits the full `dur` after its start slot (latency).
    ///
    /// Returns the caller-visible completion stamp.
    pub fn submit_shared(&self, now: SimNs, dur: SimNs, parallelism: u32) -> SimNs {
        let k = parallelism.max(1) as u64;
        self.submit_with_occupancy(now, dur, dur / k)
    }

    /// Submit work with an explicit occupancy: the caller experiences `dur`
    /// of latency, the resource is held for `occupancy` (e.g. an RDMA NIC
    /// pipelines the wire latency but is occupied for the transfer time).
    pub fn submit_with_occupancy(&self, now: SimNs, dur: SimNs, occupancy: SimNs) -> SimNs {
        // Bounded overlap: a request queues behind at most MAX_OVERLAP
        // competitors' *occupancies* (+slack). Occupancy is the
        // contention-relevant quantity — latency-dominated operations
        // (small messages, RDMA) occupy almost nothing and thus cannot pile
        // up, while bandwidth-dominated ones (flushes, incast transfers)
        // queue for real. This also stops out-of-order submissions from
        // free-running ranks chaining the whole job onto one timeline.
        let latest_start =
            now.saturating_add(occupancy.saturating_mul(MAX_OVERLAP)).saturating_add(QUEUE_SLACK);
        // ordering: optimistic first read of a CAS retry loop; any stale
        // value is corrected by the compare_exchange below.
        let mut cur = self.busy_until.load(Ordering::Relaxed);
        loop {
            let start = cur.max(now).min(latest_start);
            let busy = cur.max(start.saturating_add(occupancy));
            match self.busy_until.compare_exchange_weak(
                cur,
                busy,
                Ordering::AcqRel,
                // ordering: failure path only refreshes `cur` for the next
                // CAS attempt; no data is read through it.
                Ordering::Relaxed,
            ) {
                Ok(_) => return start.saturating_add(dur),
                Err(observed) => cur = observed,
            }
        }
    }

    /// Reset to idle at time zero. Used when a simulated "job" ends and the
    /// same process reuses the world (e.g. coupled-application workflows).
    pub fn reset(&self) {
        self.busy_until.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn idle_resource_starts_at_arrival() {
        let r = Resource::new();
        assert_eq!(r.submit(100, 50), 150);
    }

    #[test]
    fn busy_resource_queues() {
        let r = Resource::new();
        assert_eq!(r.submit(0, 100), 100);
        // Arrives at t=10 but device busy until 100 -> completes at 200.
        assert_eq!(r.submit(10, 100), 200);
    }

    #[test]
    fn late_arrival_creates_idle_gap() {
        let r = Resource::new();
        r.submit(0, 10);
        // Device idle from 10..500; work arriving at 500 starts then.
        assert_eq!(r.submit(500, 10), 510);
    }

    #[test]
    fn zero_duration_still_orders() {
        let r = Resource::new();
        r.submit(0, 100);
        assert_eq!(r.submit(0, 0), 100);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let r = Resource::new();
        assert_eq!(r.submit(u64::MAX - 1, 100), u64::MAX);
    }

    #[test]
    fn reset_clears() {
        let r = Resource::new();
        r.submit(0, 1000);
        r.reset();
        assert_eq!(r.busy_until(), 0);
    }

    #[test]
    fn concurrent_submissions_serialise() {
        // 64 jobs of duration 1000 stay within the overlap bound, so they
        // must serialise losslessly.
        let r = Resource::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                thread::spawn(move || {
                    for _ in 0..8 {
                        r.submit(0, 1000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.busy_until(), 64_000);
    }

    #[test]
    fn queueing_delay_is_bounded_by_overlap_rule() {
        let r = Resource::new();
        // Push the frontier far ahead with one big job.
        r.submit(0, 10_000_000);
        // A tiny job submitted "in the past" must not inherit the frontier:
        // its delay is capped at MAX_OVERLAP * dur + QUEUE_SLACK.
        let done = r.submit(100, 10);
        assert!(done <= 100 + MAX_OVERLAP * 10 + QUEUE_SLACK + 10, "done={done}");
        // And the frontier itself must not regress.
        assert!(r.busy_until() >= 10_000_000);
    }
}
