//! Analytic cost models for storage devices, interconnects, and DRAM.
//!
//! The constants are calibrated to the device classes in the paper's Table 2
//! and the qualitative statements in §5.2: NVM random reads are orders of
//! magnitude faster than Lustre, Lustre's striped sequential writes rival or
//! beat a single local NVM device at large value sizes, Cori's burst buffer
//! stripes across nodes and keeps winning, and small-value put throughput is
//! bound by DDR4 random-access latency.

use crate::{transfer_ns, SimNs, GIB, MIB, US};

/// Whether an I/O touches the device sequentially or at a random offset.
///
/// The distinction drives the paper's headline observation: flash-based NVM
/// has near-identical random and sequential read performance, while a
/// parallel file system pays an enormous penalty for random reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Streaming access (SSTable flush, compaction scan, checkpoint copy).
    Sequential,
    /// Point access (SSData binary-search probes, cache misses).
    Random,
}

/// A storage device (or device class) cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceModel {
    /// Human-readable device class, e.g. `"nvme"` or `"lustre"`.
    pub name: &'static str,
    /// Fixed per-read software+device latency (ns).
    pub read_latency: SimNs,
    /// Fixed per-write latency (ns).
    pub write_latency: SimNs,
    /// Cost of opening a file / metadata operation (ns). Dominant for
    /// parallel file systems where the MDS round-trip is milliseconds.
    pub open_latency: SimNs,
    /// Sequential read bandwidth per stream (bytes/sec).
    pub seq_read_bw: u64,
    /// Sequential write bandwidth per stream (bytes/sec).
    pub seq_write_bw: u64,
    /// Random read bandwidth (bytes/sec) — for flash this ≈ sequential; for
    /// disk-backed PFS it is a small fraction of it.
    pub rand_read_bw: u64,
    /// Random write bandwidth (bytes/sec).
    pub rand_write_bw: u64,
    /// Number of stripes (OSTs / burst-buffer nodes) large transfers fan out
    /// over. 1 for node-local devices.
    pub stripes: u32,
    /// Internal request parallelism (queue depth the device can service
    /// concurrently): many random reads overlap on flash, so the device
    /// queue is occupied for `cost / parallelism` per request while the
    /// requester still sees the full latency.
    pub parallelism: u32,
}

impl DeviceModel {
    /// Cost of reading `bytes` with the given pattern. Striping accelerates
    /// only sequential transfers large enough to cover all stripes (we use a
    /// 1 MiB-per-stripe threshold, matching typical Lustre stripe sizes).
    pub fn read_ns(&self, bytes: u64, pattern: AccessPattern) -> SimNs {
        let (lat, bw) = match pattern {
            AccessPattern::Sequential => {
                (self.read_latency, self.striped_bw(self.seq_read_bw, bytes))
            }
            AccessPattern::Random => (self.read_latency, self.rand_read_bw),
        };
        lat + transfer_ns(bytes, bw)
    }

    /// Cost of writing `bytes` with the given pattern.
    pub fn write_ns(&self, bytes: u64, pattern: AccessPattern) -> SimNs {
        let (lat, bw) = match pattern {
            AccessPattern::Sequential => {
                (self.write_latency, self.striped_bw(self.seq_write_bw, bytes))
            }
            AccessPattern::Random => (self.write_latency, self.rand_write_bw),
        };
        lat + transfer_ns(bytes, bw)
    }

    /// Cost of a file open / metadata operation.
    pub fn open_ns(&self) -> SimNs {
        self.open_latency
    }

    fn striped_bw(&self, base: u64, bytes: u64) -> u64 {
        if self.stripes <= 1 {
            return base;
        }
        // A transfer only benefits from k stripes once it is large enough to
        // keep k stripes busy.
        let usable = ((bytes / MIB).max(1)).min(self.stripes as u64);
        base * usable
    }

    /// Node-local NVMe as on OLCF Summitdev (800 GB per node).
    pub fn nvme_summitdev() -> Self {
        Self {
            name: "nvme",
            read_latency: 12 * US,
            write_latency: 20 * US,
            open_latency: 15 * US,
            seq_read_bw: 3 * GIB,
            seq_write_bw: 2 * GIB,
            rand_read_bw: (2.5 * GIB as f64) as u64,
            rand_write_bw: GIB,
            stripes: 1,
            parallelism: 8,
        }
    }

    /// Node-local SATA SSD as on TACC Stampede KNL (112 GB per node).
    pub fn ssd_stampede() -> Self {
        Self {
            name: "ssd",
            read_latency: 90 * US,
            write_latency: 120 * US,
            open_latency: 40 * US,
            seq_read_bw: 520 * MIB,
            seq_write_bw: 290 * MIB,
            rand_read_bw: 380 * MIB,
            rand_write_bw: 150 * MIB,
            stripes: 1,
            parallelism: 4,
        }
    }

    /// NERSC Cori burst buffer: SSDs on dedicated nodes reached over the
    /// interconnect, striped across burst-buffer nodes.
    pub fn burst_buffer_cori() -> Self {
        Self {
            name: "burst-buffer",
            read_latency: 250 * US,
            write_latency: 300 * US,
            open_latency: 500 * US,
            seq_read_bw: (1.4 * GIB as f64) as u64,
            seq_write_bw: (1.2 * GIB as f64) as u64,
            rand_read_bw: 900 * MIB,
            rand_write_bw: 700 * MIB,
            stripes: 8,
            parallelism: 32,
        }
    }

    /// Lustre parallel file system: high striped sequential bandwidth, very
    /// expensive metadata and random reads (spinning OSTs + network).
    pub fn lustre() -> Self {
        Self {
            name: "lustre",
            read_latency: 900 * US,
            write_latency: 700 * US,
            open_latency: 2_500 * US,
            seq_read_bw: 800 * MIB,
            seq_write_bw: 700 * MIB,
            rand_read_bw: 25 * MIB,
            rand_write_bw: 40 * MIB,
            stripes: 16,
            parallelism: 4,
        }
    }

    /// An idealised DRAM "device" used for tests that want free I/O.
    pub fn dram() -> Self {
        Self {
            name: "dram",
            read_latency: 0,
            write_latency: 0,
            open_latency: 0,
            seq_read_bw: 0, // 0 = not accounted (transfer_ns returns 0)
            seq_write_bw: 0,
            rand_read_bw: 0,
            rand_write_bw: 0,
            stripes: 1,
            parallelism: 1,
        }
    }
}

/// Interconnect cost model (two-sided messaging plus an RDMA path used by
/// the UPC/DSM baseline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetModel {
    /// Interconnect family, e.g. `"infiniband-edr"`.
    pub name: &'static str,
    /// One-way small-message latency including MPI software overhead (ns).
    pub msg_latency: SimNs,
    /// Point-to-point bandwidth (bytes/sec).
    pub bandwidth: u64,
    /// One-sided (RDMA) latency — lower than two-sided because it skips the
    /// remote software stack. Used by `papyrus-dsm`.
    pub rdma_latency: SimNs,
}

impl NetModel {
    /// Cost of a two-sided message carrying `bytes` of payload.
    pub fn msg_ns(&self, bytes: u64) -> SimNs {
        self.msg_latency + transfer_ns(bytes, self.bandwidth)
    }

    /// Cost of a one-sided RDMA get/put of `bytes`.
    pub fn rdma_ns(&self, bytes: u64) -> SimNs {
        self.rdma_latency + transfer_ns(bytes, self.bandwidth)
    }

    /// Mellanox InfiniBand EDR (Summitdev).
    pub fn infiniband_edr() -> Self {
        Self { name: "infiniband-edr", msg_latency: 3 * US, bandwidth: 11 * GIB, rdma_latency: US }
    }

    /// Intel Omni-Path (Stampede).
    pub fn omni_path() -> Self {
        Self {
            name: "omni-path",
            msg_latency: 3 * US,
            bandwidth: 10 * GIB,
            rdma_latency: (1.3 * US as f64) as u64,
        }
    }

    /// Cray Aries Dragonfly (Cori).
    pub fn aries_dragonfly() -> Self {
        Self { name: "aries-dragonfly", msg_latency: 2 * US, bandwidth: 9 * GIB, rdma_latency: US }
    }

    /// Free network for unit tests.
    pub fn free() -> Self {
        Self { name: "free", msg_latency: 0, bandwidth: 0, rdma_latency: 0 }
    }
}

/// DRAM cost model for MemTable operations.
///
/// In the relaxed consistency mode a put touches memory only, so the paper's
/// Figure 6 put curves are DDR4-shaped: latency-bound for small values,
/// bandwidth-bound (then flat) for large ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemModel {
    /// Per-operation random-access cost: tree descent, pointer chasing (ns).
    pub op_latency: SimNs,
    /// Streaming copy bandwidth per rank (bytes/sec).
    pub copy_bw: u64,
}

impl MemModel {
    /// Cost of a MemTable insert/lookup moving `bytes` of key+value.
    pub fn op_ns(&self, bytes: u64) -> SimNs {
        self.op_latency + transfer_ns(bytes, self.copy_bw)
    }

    /// DDR4 as in the evaluation systems. Per-rank copy bandwidth reflects a
    /// single core's share of the socket.
    pub fn ddr4() -> Self {
        Self { op_latency: 350, copy_bw: 6 * GIB }
    }

    /// Free memory model for unit tests.
    pub fn free() -> Self {
        Self { op_latency: 0, copy_bw: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KIB;

    #[test]
    fn nvm_random_read_orders_of_magnitude_faster_than_lustre() {
        let nvme = DeviceModel::nvme_summitdev();
        let lustre = DeviceModel::lustre();
        let v = 128 * KIB;
        let nvme_ns = nvme.open_ns() + nvme.read_ns(v, AccessPattern::Random);
        let lustre_ns = lustre.open_ns() + lustre.read_ns(v, AccessPattern::Random);
        assert!(lustre_ns > 20 * nvme_ns, "lustre {lustre_ns} vs nvme {nvme_ns}");
    }

    #[test]
    fn lustre_striped_sequential_write_competitive_at_large_sizes() {
        let nvme = DeviceModel::nvme_summitdev();
        let lustre = DeviceModel::lustre();
        let big = 64 * MIB;
        // With striping, large sequential Lustre writes approach or beat a
        // single NVMe device (paper §5.2, Figure 6 barrier curves).
        assert!(
            lustre.write_ns(big, AccessPattern::Sequential)
                < 3 * nvme.write_ns(big, AccessPattern::Sequential)
        );
    }

    #[test]
    fn lustre_small_write_much_slower_than_nvme() {
        let nvme = DeviceModel::nvme_summitdev();
        let lustre = DeviceModel::lustre();
        let small = KIB;
        assert!(
            lustre.write_ns(small, AccessPattern::Sequential)
                > 10 * nvme.write_ns(small, AccessPattern::Sequential)
        );
    }

    #[test]
    fn burst_buffer_stripes_large_transfers() {
        let bb = DeviceModel::burst_buffer_cori();
        let one = bb.write_ns(MIB, AccessPattern::Sequential);
        let eight = bb.write_ns(8 * MIB, AccessPattern::Sequential);
        // 8 MiB across 8 stripes should cost much less than 8x the 1-MiB cost.
        assert!(eight < 4 * one, "eight={eight} one={one}");
    }

    #[test]
    fn striping_never_applies_to_random_reads() {
        let lustre = DeviceModel::lustre();
        let r1 = lustre.read_ns(MIB, AccessPattern::Random);
        let r16 = lustre.read_ns(16 * MIB, AccessPattern::Random);
        // Random reads scale linearly in bytes (no stripe speedup).
        assert!(r16 > 14 * (r1 - lustre.read_latency));
    }

    #[test]
    fn rdma_cheaper_than_message() {
        for net in [NetModel::infiniband_edr(), NetModel::omni_path(), NetModel::aries_dragonfly()]
        {
            assert!(net.rdma_ns(64) < net.msg_ns(64), "{}", net.name);
        }
    }

    #[test]
    fn free_models_cost_nothing() {
        assert_eq!(NetModel::free().msg_ns(12345), 0);
        assert_eq!(MemModel::free().op_ns(12345), 0);
        let d = DeviceModel::dram();
        assert_eq!(d.read_ns(1 << 20, AccessPattern::Random), 0);
        assert_eq!(d.write_ns(1 << 20, AccessPattern::Sequential), 0);
    }

    #[test]
    fn ddr4_small_op_latency_bound_large_bandwidth_bound() {
        let m = MemModel::ddr4();
        let small = m.op_ns(256);
        let large = m.op_ns(MIB);
        assert!(small < 2 * m.op_latency);
        assert!(large > 10 * small);
    }
}
