//! Property-based tests for the virtual-time substrate's invariants.

use papyrus_simtime::{
    transfer_ns, AccessPattern, Clock, DeviceModel, NetModel, Resource, MAX_OVERLAP, QUEUE_SLACK,
};
use proptest::prelude::*;

proptest! {
    /// Clocks are monotone under any interleaving of advances and merges.
    #[test]
    fn clock_monotonic(ops in prop::collection::vec((any::<bool>(), 0u64..1_000_000), 0..200)) {
        let c = Clock::new();
        let mut last = 0;
        for (advance, x) in ops {
            let now = if advance { c.advance(x) } else { c.merge(x) };
            prop_assert!(now >= last, "clock went backwards");
            prop_assert_eq!(now, c.now());
            last = now;
        }
    }

    /// Resource completions always include the full duration, never start
    /// before the arrival, and honour the bounded-overlap cap.
    #[test]
    fn resource_completion_bounds(jobs in prop::collection::vec((0u64..1_000_000, 0u64..100_000), 1..100)) {
        let r = Resource::new();
        for (now, dur) in jobs {
            let done = r.submit(now, dur);
            prop_assert!(done >= now + dur, "completion before arrival+duration");
            prop_assert!(
                done <= now + dur + MAX_OVERLAP * dur + QUEUE_SLACK,
                "queueing delay exceeded the overlap bound"
            );
        }
    }

    /// The busy frontier never regresses.
    #[test]
    fn resource_frontier_monotone(jobs in prop::collection::vec((0u64..1_000_000, 0u64..100_000, 1u32..64), 1..100)) {
        let r = Resource::new();
        let mut last = 0;
        for (now, dur, par) in jobs {
            r.submit_shared(now, dur, par);
            let b = r.busy_until();
            prop_assert!(b >= last);
            last = b;
        }
    }

    /// transfer_ns is monotone in bytes and antitone in bandwidth.
    #[test]
    fn transfer_monotonicity(bytes in 1u64..1_000_000_000, bw in 1u64..100_000_000_000) {
        let t = transfer_ns(bytes, bw);
        prop_assert!(transfer_ns(bytes + 1, bw) >= t);
        prop_assert!(transfer_ns(bytes, bw + 1) <= t);
        prop_assert!(t >= 1, "nonzero transfers cost at least 1 ns");
    }

    /// Device reads: sequential never slower than random on every preset;
    /// cost is monotone in size.
    #[test]
    fn device_cost_sanity(bytes in 1u64..(64 << 20)) {
        for dev in [
            DeviceModel::nvme_summitdev(),
            DeviceModel::ssd_stampede(),
            DeviceModel::burst_buffer_cori(),
            DeviceModel::lustre(),
        ] {
            let seq = dev.read_ns(bytes, AccessPattern::Sequential);
            let rand = dev.read_ns(bytes, AccessPattern::Random);
            prop_assert!(seq <= rand, "{}: sequential slower than random", dev.name);
            prop_assert!(dev.read_ns(bytes + 1024, AccessPattern::Random) >= rand);
            prop_assert!(dev.write_ns(bytes, AccessPattern::Sequential) >= dev.write_latency);
        }
    }

    /// RDMA is never more expensive than a two-sided message of the same
    /// size on any interconnect preset.
    #[test]
    fn rdma_never_worse(bytes in 0u64..(16 << 20)) {
        for net in [
            NetModel::infiniband_edr(),
            NetModel::omni_path(),
            NetModel::aries_dragonfly(),
        ] {
            prop_assert!(net.rdma_ns(bytes) <= net.msg_ns(bytes));
        }
    }
}
