//! Crash-point journal: record every backend mutation, then materialise
//! the bytes a crash at any point could leave behind.
//!
//! The crash-consistency checker (`papyrus-crashcheck`) wraps each store's
//! backend in a [`JournaledBackend`]. Every mutation — put, append, delete,
//! rename, clear — is appended to a shared [`Journal`] as a numbered op and
//! then applied to the real backend, so the journal is a total order of the
//! mutations the workload performed. [`Backend::fence`] calls are recorded
//! too: they bound how far writes may be reordered.
//!
//! A *crash point* `k` is a position in that order. [`materialize`] rebuilds
//! fresh in-memory backends holding exactly the bytes that survive a crash
//! at `k` under a [`CrashPolicy`]:
//!
//! * [`CrashPolicy::CleanCut`] — ops `0..k` applied, nothing else.
//! * [`CrashPolicy::TornTail`] — ops `0..k` applied, plus a *prefix* of op
//!   `k`'s payload (a torn final write, the classic half-written file).
//! * [`CrashPolicy::Reorder`] — ops `0..k` applied except a chosen subset of
//!   ops not yet pinned by a fence on their device
//!   ([`droppable_tail`]): unsynced writes that the crash loses even though
//!   later writes survived.
//!
//! Fault modes ([`FaultMode`]) distort what gets *recorded* (not what the
//! live run sees), seeding known durability bugs for the checker's
//! `--seed-bug` self-test.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use parking_lot::Mutex;

use crate::backend::{Backend, MemBackend};

// ---------------------------------------------------------------------------
// Ambient capture
// ---------------------------------------------------------------------------
//
// `NvmStore::with_backend` consults this slot when the `PAPYRUS_CRASHCHECK`
// gate is on: if a journal is installed, every store built afterwards is
// journaled automatically under the namespace `<device>#<ordinal>`. The
// crashcheck driver wraps its stores explicitly (it needs stable
// namespaces); the ambient path serves `PAPYRUS_CRASHCHECK=1` users who
// cannot reach every store-construction site.

fn capture_slot() -> &'static Mutex<Option<Arc<Journal>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Journal>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install a journal capturing every store built from now on (requires the
/// `PAPYRUS_CRASHCHECK` gate). Replaces any previous capture.
pub fn install_capture(journal: Arc<Journal>) {
    *capture_slot().lock() = Some(journal);
}

/// Remove the ambient capture.
pub fn clear_capture() {
    *capture_slot().lock() = None;
}

/// The currently installed capture journal, if any.
pub fn capture() -> Option<Arc<Journal>> {
    capture_slot().lock().clone()
}

/// Distinct namespace for an auto-wrapped store: `<device>#<ordinal>`.
pub(crate) fn auto_namespace(device: &str) -> String {
    static ORDINAL: AtomicUsize = AtomicUsize::new(0);
    // ordering: unique-suffix allocator; only RMW atomicity matters.
    format!("{device}#{}", ORDINAL.fetch_add(1, Ordering::Relaxed))
}

/// One recorded backend mutation (or fence), tagged with the namespace of
/// the store it hit — e.g. `"nvm"` vs `"pfs"` — so one journal can order
/// mutations across several devices.
#[derive(Debug, Clone)]
pub enum JournalOp {
    /// Whole-object create/truncate.
    Put {
        /// Store namespace.
        ns: String,
        /// Object path.
        path: String,
        /// Object contents.
        data: Bytes,
    },
    /// Append to an object (created if missing).
    Append {
        /// Store namespace.
        ns: String,
        /// Object path.
        path: String,
        /// Appended bytes.
        data: Bytes,
    },
    /// Object removal.
    Delete {
        /// Store namespace.
        ns: String,
        /// Object path.
        path: String,
    },
    /// Atomic move (`from` → `to`).
    Rename {
        /// Store namespace.
        ns: String,
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// Whole-store clear (job-end scratch trim).
    Clear {
        /// Store namespace.
        ns: String,
    },
    /// Persistence fence on one device: everything recorded before it on
    /// this namespace is durable.
    Fence {
        /// Store namespace.
        ns: String,
    },
}

impl JournalOp {
    /// The namespace this op belongs to.
    pub fn ns(&self) -> &str {
        match self {
            JournalOp::Put { ns, .. }
            | JournalOp::Append { ns, .. }
            | JournalOp::Delete { ns, .. }
            | JournalOp::Rename { ns, .. }
            | JournalOp::Clear { ns }
            | JournalOp::Fence { ns } => ns,
        }
    }

    /// Whether this is a state mutation (everything but a fence).
    pub fn is_mutation(&self) -> bool {
        !matches!(self, JournalOp::Fence { .. })
    }

    /// Payload bytes for data-carrying ops (`Put`/`Append`).
    pub fn payload_len(&self) -> usize {
        match self {
            JournalOp::Put { data, .. } | JournalOp::Append { data, .. } => data.len(),
            _ => 0,
        }
    }

    /// One-line description for reports.
    pub fn describe(&self) -> String {
        match self {
            JournalOp::Put { ns, path, data } => format!("{ns}:put {path} ({} B)", data.len()),
            JournalOp::Append { ns, path, data } => {
                format!("{ns}:append {path} (+{} B)", data.len())
            }
            JournalOp::Delete { ns, path } => format!("{ns}:delete {path}"),
            JournalOp::Rename { ns, from, to } => format!("{ns}:rename {from} -> {to}"),
            JournalOp::Clear { ns } => format!("{ns}:clear"),
            JournalOp::Fence { ns } => format!("{ns}:fence"),
        }
    }
}

/// Known durability bugs the checker must be able to catch (`--seed-bug`).
/// A fault mode distorts what the journal *records* while the live run
/// still sees every write — so the workload completes normally but every
/// materialised crash state exhibits the bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Record everything faithfully.
    None,
    /// Drop SSIndex writes (`*.index`): models flushing SSData without its
    /// index — the table is unreadable after a crash.
    DropIndexWrites,
    /// Skip manifest commit renames (`* -> */MANIFEST`): models a flush
    /// that never publishes its manifest — the recovered database silently
    /// loses acknowledged SSTables.
    SkipManifestRename,
    /// Rewrite the manifest tmp-write to target the live `MANIFEST`
    /// directly and drop the rename: models non-atomic manifest updates,
    /// re-exposing the torn-manifest window the tmp+rename scheme closes.
    TornManifest,
}

struct JournalState {
    ops: Vec<JournalOp>,
    frozen: bool,
    fault: FaultMode,
}

/// Shared, append-only record of backend mutations across one workload run.
pub struct Journal {
    state: Mutex<JournalState>,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl Journal {
    /// An empty journal recording faithfully.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(JournalState {
                ops: Vec::new(),
                frozen: false,
                fault: FaultMode::None,
            }),
        }
    }

    /// Set the recording fault mode (seed-bug self test).
    pub fn set_fault(&self, fault: FaultMode) {
        self.state.lock().fault = fault;
    }

    /// Stop recording: later mutations (e.g. from recovery replays against
    /// the same stores) are ignored.
    pub fn freeze(&self) {
        self.state.lock().frozen = true;
    }

    /// Number of recorded ops (mutations + fences).
    pub fn len(&self) -> usize {
        self.state.lock().ops.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the recorded op sequence.
    pub fn ops(&self) -> Vec<JournalOp> {
        self.state.lock().ops.clone()
    }

    /// Record one op, applying the fault mode's distortion. Called by
    /// [`JournaledBackend`] with the op it is about to apply.
    fn record(&self, op: JournalOp) {
        let mut st = self.state.lock();
        if st.frozen {
            return;
        }
        match st.fault {
            FaultMode::None => st.ops.push(op),
            FaultMode::DropIndexWrites => {
                let dropped = matches!(
                    &op,
                    JournalOp::Put { path, .. } | JournalOp::Append { path, .. }
                        if path.ends_with(".index")
                );
                if !dropped {
                    st.ops.push(op);
                }
            }
            FaultMode::SkipManifestRename => {
                let dropped =
                    matches!(&op, JournalOp::Rename { to, .. } if to.ends_with("/MANIFEST"));
                if !dropped {
                    st.ops.push(op);
                }
            }
            FaultMode::TornManifest => match op {
                JournalOp::Put { ns, path, data } if path.ends_with("/MANIFEST.tmp") => {
                    let live = path.trim_end_matches(".tmp").to_string();
                    st.ops.push(JournalOp::Put { ns, path: live, data });
                }
                JournalOp::Rename { to, .. } if to.ends_with("/MANIFEST") => {}
                other => st.ops.push(other),
            },
        }
    }
}

/// A [`Backend`] decorator journaling every mutation before applying it.
/// The journal lock is held across the inner apply, so the recorded order
/// is exactly the order mutations hit the backing store.
pub struct JournaledBackend {
    ns: String,
    journal: Arc<Journal>,
    inner: Arc<dyn Backend>,
}

impl JournaledBackend {
    /// Wrap `inner`, recording into `journal` under namespace `ns`.
    pub fn new(ns: impl Into<String>, journal: Arc<Journal>, inner: Arc<dyn Backend>) -> Self {
        Self { ns: ns.into(), journal, inner }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn Backend> {
        &self.inner
    }
}

impl Backend for JournaledBackend {
    fn put(&self, path: &str, data: Bytes) {
        self.journal.record(JournalOp::Put {
            ns: self.ns.clone(),
            path: path.to_string(),
            data: data.clone(),
        });
        self.inner.put(path, data);
    }

    fn append(&self, path: &str, data: &[u8]) {
        self.journal.record(JournalOp::Append {
            ns: self.ns.clone(),
            path: path.to_string(),
            data: Bytes::copy_from_slice(data),
        });
        self.inner.append(path, data);
    }

    fn get(&self, path: &str, offset: u64, len: u64) -> Option<Bytes> {
        self.inner.get(path, offset, len)
    }

    fn get_all(&self, path: &str) -> Option<Bytes> {
        self.inner.get_all(path)
    }

    fn len(&self, path: &str) -> Option<u64> {
        self.inner.len(path)
    }

    fn delete(&self, path: &str) -> bool {
        self.journal.record(JournalOp::Delete { ns: self.ns.clone(), path: path.to_string() });
        self.inner.delete(path)
    }

    fn rename(&self, from: &str, to: &str) -> bool {
        self.journal.record(JournalOp::Rename {
            ns: self.ns.clone(),
            from: from.to_string(),
            to: to.to_string(),
        });
        self.inner.rename(from, to)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }

    fn clear(&self) {
        self.journal.record(JournalOp::Clear { ns: self.ns.clone() });
        self.inner.clear();
    }

    fn fence(&self) {
        self.journal.record(JournalOp::Fence { ns: self.ns.clone() });
        self.inner.fence();
    }
}

/// How a crash at one journal position truncates the write history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashPolicy {
    /// Ops `0..point` applied; op `point` and everything later lost.
    CleanCut {
        /// Crash position.
        point: usize,
    },
    /// Ops `0..point` applied, plus the first `keep` payload bytes of op
    /// `point` (which must be a `Put` or `Append`).
    TornTail {
        /// Crash position.
        point: usize,
        /// Payload prefix length that survives.
        keep: usize,
    },
    /// Ops `0..point` applied except those at the listed indices — each
    /// must be a mutation after the last fence on its namespace (see
    /// [`droppable_tail`]).
    Reorder {
        /// Crash position.
        point: usize,
        /// Indices in `0..point` to drop.
        drop: Vec<usize>,
    },
}

/// Indices in `0..point` whose mutations are *not* yet pinned by a fence on
/// their own namespace at crash position `point` — the unsynced tail an
/// unordered device may lose independently.
pub fn droppable_tail(ops: &[JournalOp], point: usize) -> Vec<usize> {
    let point = point.min(ops.len());
    // Last fence position per namespace within the applied prefix.
    let mut last_fence: HashMap<&str, usize> = HashMap::new();
    for (i, op) in ops[..point].iter().enumerate() {
        if let JournalOp::Fence { ns } = op {
            last_fence.insert(ns.as_str(), i);
        }
    }
    let mut out = Vec::new();
    for (i, op) in ops[..point].iter().enumerate() {
        if op.is_mutation() && last_fence.get(op.ns()).is_none_or(|&f| f < i) {
            out.push(i);
        }
    }
    out
}

/// Build per-namespace [`MemBackend`]s holding the surviving bytes of a
/// crash at the policy's point. Namespaces with no surviving op still get
/// an (empty) backend if any recorded op mentioned them.
pub fn materialize(ops: &[JournalOp], policy: &CrashPolicy) -> HashMap<String, Arc<MemBackend>> {
    let mut backends: HashMap<String, Arc<MemBackend>> = HashMap::new();
    for op in ops {
        backends.entry(op.ns().to_string()).or_default();
    }
    let apply = |backends: &HashMap<String, Arc<MemBackend>>, op: &JournalOp| {
        let b = &backends[op.ns()];
        match op {
            JournalOp::Put { path, data, .. } => b.put(path, data.clone()),
            JournalOp::Append { path, data, .. } => b.append(path, data),
            JournalOp::Delete { path, .. } => {
                b.delete(path);
            }
            JournalOp::Rename { from, to, .. } => {
                b.rename(from, to);
            }
            JournalOp::Clear { .. } => b.clear(),
            JournalOp::Fence { .. } => {}
        }
    };
    match policy {
        CrashPolicy::CleanCut { point } => {
            for op in &ops[..(*point).min(ops.len())] {
                apply(&backends, op);
            }
        }
        CrashPolicy::TornTail { point, keep } => {
            let point = (*point).min(ops.len());
            for op in &ops[..point] {
                apply(&backends, op);
            }
            if let Some(op) = ops.get(point) {
                let b = &backends[op.ns()];
                match op {
                    JournalOp::Put { path, data, .. } => {
                        b.put(path, data.slice(..(*keep).min(data.len())))
                    }
                    JournalOp::Append { path, data, .. } => {
                        b.append(path, &data[..(*keep).min(data.len())])
                    }
                    // Non-data ops have no torn form; a crash "during" them
                    // is the clean cut at `point`.
                    _ => {}
                }
            }
        }
        CrashPolicy::Reorder { point, drop } => {
            let point = (*point).min(ops.len());
            for (i, op) in ops[..point].iter().enumerate() {
                if !drop.contains(&i) {
                    apply(&backends, op);
                }
            }
        }
    }
    backends
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journaled(ns: &str, j: &Arc<Journal>) -> (JournaledBackend, Arc<MemBackend>) {
        let mem = Arc::new(MemBackend::new());
        (JournaledBackend::new(ns, j.clone(), mem.clone()), mem)
    }

    #[test]
    fn records_in_apply_order_and_passes_through() {
        let j = Arc::new(Journal::new());
        let (b, mem) = journaled("nvm", &j);
        b.put("a", Bytes::from_static(b"123"));
        b.append("a", b"45");
        b.fence();
        b.put("t.tmp", Bytes::from_static(b"m"));
        assert!(b.rename("t.tmp", "t"));
        assert!(b.delete("a"));
        assert_eq!(j.len(), 6);
        assert!(!mem.exists("a"));
        assert_eq!(&mem.get_all("t").unwrap()[..], b"m");
        let ops = j.ops();
        assert!(matches!(&ops[2], JournalOp::Fence { .. }));
        assert!(matches!(&ops[4], JournalOp::Rename { .. }));
    }

    #[test]
    fn freeze_stops_recording() {
        let j = Arc::new(Journal::new());
        let (b, mem) = journaled("nvm", &j);
        b.put("a", Bytes::from_static(b"1"));
        j.freeze();
        b.put("b", Bytes::from_static(b"2"));
        assert_eq!(j.len(), 1);
        assert!(mem.exists("b"), "apply still happens after freeze");
    }

    #[test]
    fn clean_cut_applies_exact_prefix() {
        let j = Arc::new(Journal::new());
        let (b, _) = journaled("nvm", &j);
        b.put("a", Bytes::from_static(b"1"));
        b.put("b", Bytes::from_static(b"2"));
        let state = materialize(&j.ops(), &CrashPolicy::CleanCut { point: 1 });
        let m = &state["nvm"];
        assert!(m.exists("a"));
        assert!(!m.exists("b"));
    }

    #[test]
    fn torn_tail_keeps_payload_prefix() {
        let j = Arc::new(Journal::new());
        let (b, _) = journaled("nvm", &j);
        b.put("f", Bytes::from_static(b"abcdef"));
        let state = materialize(&j.ops(), &CrashPolicy::TornTail { point: 0, keep: 2 });
        assert_eq!(&state["nvm"].get_all("f").unwrap()[..], b"ab");
    }

    #[test]
    fn rename_is_atomic_under_clean_cut() {
        let j = Arc::new(Journal::new());
        let (b, _) = journaled("nvm", &j);
        b.put("m", Bytes::from_static(b"old"));
        b.put("m.tmp", Bytes::from_static(b"new"));
        b.rename("m.tmp", "m");
        let ops = j.ops();
        // Before the rename: old manifest intact.
        let pre = materialize(&ops, &CrashPolicy::CleanCut { point: 2 });
        assert_eq!(&pre["nvm"].get_all("m").unwrap()[..], b"old");
        // After: fully the new one, tmp gone.
        let post = materialize(&ops, &CrashPolicy::CleanCut { point: 3 });
        assert_eq!(&post["nvm"].get_all("m").unwrap()[..], b"new");
        assert!(!post["nvm"].exists("m.tmp"));
    }

    #[test]
    fn droppable_tail_respects_per_ns_fences() {
        let j = Arc::new(Journal::new());
        let (nvm, _) = journaled("nvm", &j);
        let (pfs, _) = journaled("pfs", &j);
        nvm.put("a", Bytes::from_static(b"1")); // 0
        pfs.put("x", Bytes::from_static(b"9")); // 1
        nvm.fence(); // 2
        nvm.put("b", Bytes::from_static(b"2")); // 3
        let ops = j.ops();
        // nvm op 0 is pinned by the fence at 2; pfs op 1 and nvm op 3 are not.
        assert_eq!(droppable_tail(&ops, 4), vec![1, 3]);
        // Before the fence everything on nvm is droppable too.
        assert_eq!(droppable_tail(&ops, 2), vec![0, 1]);
    }

    #[test]
    fn reorder_drops_selected_ops() {
        let j = Arc::new(Journal::new());
        let (b, _) = journaled("nvm", &j);
        b.put("a", Bytes::from_static(b"1"));
        b.put("b", Bytes::from_static(b"2"));
        b.put("c", Bytes::from_static(b"3"));
        let state = materialize(&j.ops(), &CrashPolicy::Reorder { point: 3, drop: vec![1] });
        let m = &state["nvm"];
        assert!(m.exists("a") && m.exists("c") && !m.exists("b"));
    }

    #[test]
    fn fault_drop_index_writes() {
        let j = Arc::new(Journal::new());
        j.set_fault(FaultMode::DropIndexWrites);
        let (b, mem) = journaled("nvm", &j);
        b.put("sst1.data", Bytes::from_static(b"d"));
        b.put("sst1.index", Bytes::from_static(b"i"));
        b.put("sst1.bloom", Bytes::from_static(b"b"));
        assert_eq!(j.len(), 2, "index write must be missing from the journal");
        assert!(mem.exists("sst1.index"), "live run still sees the write");
    }

    #[test]
    fn fault_skip_manifest_rename() {
        let j = Arc::new(Journal::new());
        j.set_fault(FaultMode::SkipManifestRename);
        let (b, _) = journaled("nvm", &j);
        b.put("r0/MANIFEST.tmp", Bytes::from_static(b"new"));
        b.rename("r0/MANIFEST.tmp", "r0/MANIFEST");
        let state = materialize(&j.ops(), &CrashPolicy::CleanCut { point: j.len() });
        assert!(!state["nvm"].exists("r0/MANIFEST"), "manifest never published");
    }

    #[test]
    fn fault_torn_manifest_writes_live_path_directly() {
        let j = Arc::new(Journal::new());
        j.set_fault(FaultMode::TornManifest);
        let (b, _) = journaled("nvm", &j);
        b.put("r0/MANIFEST.tmp", Bytes::from_static(b"next:2\n1\nok\n"));
        b.rename("r0/MANIFEST.tmp", "r0/MANIFEST");
        let ops = j.ops();
        assert_eq!(ops.len(), 1, "rename dropped, put rewritten");
        let torn = materialize(&ops, &CrashPolicy::TornTail { point: 0, keep: 4 });
        assert_eq!(&torn["nvm"].get_all("r0/MANIFEST").unwrap()[..], b"next");
    }
}
