//! Cost-accounted object store: one shared NVM (or PFS) storage.

use std::sync::Arc;

use bytes::Bytes;
use papyrus_faultinject::{Backoff, IoFault};
use papyrus_simtime::{AccessPattern, Clock, DeviceModel, Resource, SimNs};
use papyrus_telemetry::{Counter, Histogram, SpanRecorder};

use crate::backend::{Backend, MemBackend};

/// Base/cap for the virtual backoff used when an infallible store wrapper
/// rides out an injected transient fault.
const IO_BACKOFF_BASE_NS: SimNs = 50_000; // 50 µs
const IO_BACKOFF_CAP_NS: SimNs = 20_000_000; // 20 ms

/// Telemetry handles for one store, shared by all clones. Each store owns
/// its own trace timeline (pid ≥ [`papyrus_telemetry::NVM_PID_BASE`]) so
/// device occupancy renders as a separate track in Chrome/Perfetto.
struct StoreTel {
    read_ops: Counter,
    read_bytes: Counter,
    write_ops: Counter,
    write_bytes: Counter,
    meta_ops: Counter,
    io_retries: Counter,
    queue_wait: Histogram,
    service: Histogram,
    rec: SpanRecorder,
}

impl StoreTel {
    fn new(device_name: &str) -> Self {
        let reg = papyrus_telemetry::global();
        let pid = reg.alloc_store_pid(&format!("nvm {device_name}"));
        Self {
            read_ops: reg.counter(pid, "io.read.ops"),
            read_bytes: reg.counter(pid, "io.read.bytes"),
            write_ops: reg.counter(pid, "io.write.ops"),
            write_bytes: reg.counter(pid, "io.write.bytes"),
            meta_ops: reg.counter(pid, "io.meta.ops"),
            io_retries: reg.counter(pid, "io_retries"),
            queue_wait: reg.histogram(pid, "io.queue_wait.ns"),
            service: reg.histogram(pid, "io.service.ns"),
            rec: reg.recorder(pid),
        }
    }

    /// Account one device operation: `cost` is pure service time, the gap
    /// `done - now - cost` is time spent queued behind other requests.
    fn io(
        &self,
        name: &'static str,
        is_write: bool,
        bytes: u64,
        now: SimNs,
        cost: SimNs,
        done: SimNs,
    ) {
        if !papyrus_telemetry::is_enabled() {
            return;
        }
        if is_write {
            self.write_ops.inc();
            self.write_bytes.add(bytes);
        } else {
            self.read_ops.inc();
            self.read_bytes.add(bytes);
        }
        self.queue_wait.record(done.saturating_sub(now).saturating_sub(cost));
        self.service.record(cost);
        self.rec.span("nvm", name, 0, now, done);
    }

    fn meta(&self, name: &'static str, now: SimNs, done: SimNs) {
        if !papyrus_telemetry::is_enabled() {
            return;
        }
        self.meta_ops.inc();
        self.rec.span("nvm", name, 0, now, done);
    }
}

/// One shared storage: a device cost model, a device queue, and a backend.
///
/// An `NvmStore` represents what one *storage group* shares — a node-local
/// NVMe, the burst-buffer aggregate, or the Lustre scratch. All ranks in the
/// group funnel their modelled I/O through the same device [`Resource`], so
/// concurrent flushes/reads queue behind each other.
///
/// Every operation comes in two flavours:
/// * a **clocked** wrapper taking `&Clock` — synchronous I/O: the caller's
///   virtual clock is advanced to the operation's completion stamp;
/// * an **`_at`** primitive taking an explicit `now` and returning the
///   completion stamp — used by background threads (compaction, checkpoint
///   transfer) that must not block the application rank's clock. The stamp
///   is reconciled later at a fence/barrier.
#[derive(Clone)]
pub struct NvmStore {
    device: DeviceModel,
    queue: Resource,
    backend: Arc<dyn Backend>,
    tel: Arc<StoreTel>,
}

impl std::fmt::Debug for NvmStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmStore")
            .field("device", &self.device.name)
            .field("busy_until", &self.queue.busy_until())
            .finish()
    }
}

impl NvmStore {
    /// A store with the given device model, backed by memory.
    pub fn in_memory(device: DeviceModel) -> Self {
        Self::with_backend(device, Arc::new(MemBackend::new()))
    }

    /// A store with an explicit backend. When the `PAPYRUS_CRASHCHECK` gate
    /// is on and a capture journal is installed
    /// ([`crate::journal::install_capture`]), the backend is wrapped so
    /// every mutation lands in the journal as a numbered crash point.
    pub fn with_backend(device: DeviceModel, backend: Arc<dyn Backend>) -> Self {
        let backend = if papyrus_sanity::crashcheck_enabled() {
            match crate::journal::capture() {
                Some(journal) => Arc::new(crate::journal::JournaledBackend::new(
                    crate::journal::auto_namespace(device.name),
                    journal,
                    backend,
                )) as Arc<dyn Backend>,
                None => backend,
            }
        } else {
            backend
        };
        let tel = Arc::new(StoreTel::new(device.name));
        Self { device, queue: Resource::new(), backend, tel }
    }

    /// The device cost model.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Raw backend access (tests, capacity accounting).
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// The shared device queue (to model contention externally if needed).
    pub fn queue(&self) -> &Resource {
        &self.queue
    }

    // ----- fault injection (PAPYRUS_FAULTS plane) -----

    /// Consult the active [`papyrus_faultinject::FaultPlan`] for an op
    /// issued at `now`. One relaxed load when the gate is off.
    /// `Ok(extra_ns)` is an added slow-device stall.
    #[inline]
    fn inject(&self, write: bool, now: SimNs) -> Result<SimNs, IoFault> {
        if !papyrus_faultinject::enabled() {
            return Ok(0);
        }
        match papyrus_faultinject::plan() {
            Some(p) => p.io_fault(write, now),
            None => Ok(0),
        }
    }

    /// Ride out injected faults for an infallible wrapper: retry with
    /// deterministic virtual backoff until the issue stamp escapes every
    /// fault window. Plans have finite horizons, so this terminates; the
    /// horizon jump after many attempts is a safety valve for hand-built
    /// plans with overlong windows.
    fn ride_out<T>(
        &self,
        now: SimNs,
        seed: u64,
        mut op: impl FnMut(SimNs) -> Result<T, IoFault>,
    ) -> T {
        let mut t = now;
        let mut bo = Backoff::new(seed, IO_BACKOFF_BASE_NS, IO_BACKOFF_CAP_NS);
        loop {
            match op(t) {
                Ok(v) => return v,
                Err(_) => {
                    if papyrus_telemetry::is_enabled() {
                        self.tel.io_retries.inc();
                    }
                    t = t.saturating_add(bo.next_delay());
                    if bo.attempts() > 64 {
                        if let Some(p) = papyrus_faultinject::plan() {
                            t = t.max(p.horizon().saturating_add(1));
                        }
                    }
                }
            }
        }
    }

    // ----- primitives (explicit timestamps) -----

    /// Open/metadata operation at `now`; returns completion stamp.
    pub fn open_at(&self, now: SimNs) -> SimNs {
        let done = self.queue.submit_shared(now, self.device.open_ns(), self.device.parallelism);
        self.tel.meta("open", now, done);
        done
    }

    /// Fallible whole-object write: surfaces injected transient `EIO` /
    /// `ENOSPC` as typed errors instead of retrying internally. The backend
    /// is untouched when the op faults.
    pub fn try_put_at(&self, path: &str, data: Bytes, now: SimNs) -> Result<SimNs, IoFault> {
        let stall = self.inject(true, now)?;
        let bytes = data.len() as u64;
        let cost = self.device.write_ns(bytes, AccessPattern::Sequential) + stall;
        self.backend.put(path, data);
        let done = self.queue.submit_shared(now, cost, self.device.parallelism);
        self.tel.io("write", true, bytes, now, cost, done);
        Ok(done)
    }

    /// Write (create/truncate) a whole object at `now`. Injected transient
    /// faults are retried internally with virtual backoff (counted in the
    /// `io_retries` telemetry counter); hardened callers that want typed
    /// errors use [`NvmStore::try_put_at`].
    pub fn put_at(&self, path: &str, data: Bytes, now: SimNs) -> SimNs {
        if !papyrus_faultinject::enabled() {
            let bytes = data.len() as u64;
            let cost = self.device.write_ns(bytes, AccessPattern::Sequential);
            self.backend.put(path, data);
            let done = self.queue.submit_shared(now, cost, self.device.parallelism);
            self.tel.io("write", true, bytes, now, cost, done);
            return done;
        }
        self.ride_out(now, path_seed(path), |t| self.try_put_at(path, data.clone(), t))
    }

    /// Fallible append (see [`NvmStore::try_put_at`]).
    pub fn try_append_at(&self, path: &str, data: &[u8], now: SimNs) -> Result<SimNs, IoFault> {
        let stall = self.inject(true, now)?;
        let cost = self.device.write_ns(data.len() as u64, AccessPattern::Sequential) + stall;
        self.backend.append(path, data);
        let done = self.queue.submit_shared(now, cost, self.device.parallelism);
        self.tel.io("append", true, data.len() as u64, now, cost, done);
        Ok(done)
    }

    /// Append to an object at `now` (sequential write).
    pub fn append_at(&self, path: &str, data: &[u8], now: SimNs) -> SimNs {
        if !papyrus_faultinject::enabled() {
            let cost = self.device.write_ns(data.len() as u64, AccessPattern::Sequential);
            self.backend.append(path, data);
            let done = self.queue.submit_shared(now, cost, self.device.parallelism);
            self.tel.io("append", true, data.len() as u64, now, cost, done);
            return done;
        }
        self.ride_out(now, path_seed(path), |t| self.try_append_at(path, data, t))
    }

    /// Fallible ranged read: `Ok(None)` = object missing (free), `Err` =
    /// injected read fault.
    pub fn try_read_at(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        pattern: AccessPattern,
        now: SimNs,
    ) -> Result<Option<(Bytes, SimNs)>, IoFault> {
        let Some(data) = self.backend.get(path, offset, len) else {
            return Ok(None);
        };
        let stall = self.inject(false, now)?;
        let cost = self.device.read_ns(data.len() as u64, pattern) + stall;
        let done = self.queue.submit_shared(now, cost, self.device.parallelism);
        self.tel.io("read", false, data.len() as u64, now, cost, done);
        Ok(Some((data, done)))
    }

    /// Ranged read at `now` with the given access pattern.
    pub fn read_at(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        pattern: AccessPattern,
        now: SimNs,
    ) -> Option<(Bytes, SimNs)> {
        if !papyrus_faultinject::enabled() {
            let data = self.backend.get(path, offset, len)?;
            let cost = self.device.read_ns(data.len() as u64, pattern);
            let done = self.queue.submit_shared(now, cost, self.device.parallelism);
            self.tel.io("read", false, data.len() as u64, now, cost, done);
            return Some((data, done));
        }
        self.ride_out(now, path_seed(path), |t| self.try_read_at(path, offset, len, pattern, t))
    }

    /// Fallible whole-object read (see [`NvmStore::try_read_at`]).
    pub fn try_read_all_at(
        &self,
        path: &str,
        now: SimNs,
    ) -> Result<Option<(Bytes, SimNs)>, IoFault> {
        let Some(data) = self.backend.get_all(path) else {
            return Ok(None);
        };
        let stall = self.inject(false, now)?;
        let cost = self.device.read_ns(data.len() as u64, AccessPattern::Sequential) + stall;
        let done = self.queue.submit_shared(now, cost, self.device.parallelism);
        self.tel.io("read_all", false, data.len() as u64, now, cost, done);
        Ok(Some((data, done)))
    }

    /// Whole-object read at `now` (sequential scan).
    pub fn read_all_at(&self, path: &str, now: SimNs) -> Option<(Bytes, SimNs)> {
        if !papyrus_faultinject::enabled() {
            let data = self.backend.get_all(path)?;
            let cost = self.device.read_ns(data.len() as u64, AccessPattern::Sequential);
            let done = self.queue.submit_shared(now, cost, self.device.parallelism);
            self.tel.io("read_all", false, data.len() as u64, now, cost, done);
            return Some((data, done));
        }
        self.ride_out(now, path_seed(path), |t| self.try_read_all_at(path, t))
    }

    /// Delete at `now` (metadata-cost operation).
    pub fn delete_at(&self, path: &str, now: SimNs) -> (bool, SimNs) {
        let existed = self.backend.delete(path);
        let done = self.queue.submit_shared(now, self.device.open_ns(), self.device.parallelism);
        self.tel.meta("delete", now, done);
        (existed, done)
    }

    /// Atomic rename at `now` (metadata-cost operation) — the commit step
    /// of write-tmp-then-rename updates. Returns whether `from` existed.
    pub fn rename_at(&self, from: &str, to: &str, now: SimNs) -> (bool, SimNs) {
        let moved = self.backend.rename(from, to);
        let done = self.queue.submit_shared(now, self.device.open_ns(), self.device.parallelism);
        self.tel.meta("rename", now, done);
        (moved, done)
    }

    /// Persistence fence: orders earlier writes before later ones for crash
    /// purposes. A pure ordering marker — devices complete in submission
    /// order in this model, so no virtual time is charged; the crashcheck
    /// journal records it to bound write reordering.
    pub fn fence(&self) {
        self.backend.fence();
    }

    // ----- clocked wrappers (synchronous I/O) -----

    /// Synchronous open: clock advances to completion.
    pub fn open(&self, clock: &Clock) {
        let done = self.open_at(clock.now());
        clock.merge(done);
    }

    /// Synchronous whole-object write.
    pub fn put(&self, path: &str, data: Bytes, clock: &Clock) {
        let done = self.put_at(path, data, clock.now());
        clock.merge(done);
    }

    /// Synchronous append.
    pub fn append(&self, path: &str, data: &[u8], clock: &Clock) {
        let done = self.append_at(path, data, clock.now());
        clock.merge(done);
    }

    /// Synchronous ranged read.
    pub fn read(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        pattern: AccessPattern,
        clock: &Clock,
    ) -> Option<Bytes> {
        let (data, done) = self.read_at(path, offset, len, pattern, clock.now())?;
        clock.merge(done);
        Some(data)
    }

    /// Synchronous whole-object read.
    pub fn read_all(&self, path: &str, clock: &Clock) -> Option<Bytes> {
        let (data, done) = self.read_all_at(path, clock.now())?;
        clock.merge(done);
        Some(data)
    }

    /// Synchronous delete.
    pub fn delete(&self, path: &str, clock: &Clock) -> bool {
        let (existed, done) = self.delete_at(path, clock.now());
        clock.merge(done);
        existed
    }

    /// Synchronous atomic rename.
    pub fn rename(&self, from: &str, to: &str, clock: &Clock) -> bool {
        let (moved, done) = self.rename_at(from, to, clock.now());
        clock.merge(done);
        moved
    }

    // ----- cost-free metadata (no device round trip modelled) -----

    /// Whether an object exists (in-memory metadata check).
    pub fn exists(&self, path: &str) -> bool {
        self.backend.exists(path)
    }

    /// Object length.
    pub fn len(&self, path: &str) -> Option<u64> {
        self.backend.len(path)
    }

    /// Objects under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.backend.list(prefix)
    }

    /// Drop every object (job-end scratch trim, paper §4).
    pub fn clear(&self) {
        self.backend.clear();
        self.queue.reset();
    }

    /// Start a buffered sequential writer for building large objects
    /// (SSTable flush): bytes accumulate in memory and are written with one
    /// device submission on [`ObjectWriter::finish`].
    pub fn writer(&self, path: impl Into<String>) -> ObjectWriter {
        ObjectWriter { store: self.clone(), path: path.into(), buf: Vec::new() }
    }
}

/// Stable per-path seed so an object's injected-fault backoff jitter is
/// reproducible across runs (FNV-1a).
fn path_seed(path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Buffered writer returned by [`NvmStore::writer`].
pub struct ObjectWriter {
    store: NvmStore,
    path: String,
    buf: Vec<u8>,
}

impl ObjectWriter {
    /// Append bytes to the in-memory buffer.
    pub fn write(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered so far.
    pub fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current write offset (== `len`).
    pub fn offset(&self) -> u64 {
        self.len()
    }

    /// Persist the object with one sequential write submitted at `now`;
    /// returns the completion stamp.
    pub fn finish_at(self, now: SimNs) -> SimNs {
        self.store.put_at(&self.path, Bytes::from(self.buf), now)
    }

    /// Fallible [`ObjectWriter::finish_at`]: surfaces injected write faults
    /// as typed errors. The buffer is consumed either way.
    pub fn try_finish_at(self, now: SimNs) -> Result<SimNs, IoFault> {
        self.store.try_put_at(&self.path, Bytes::from(self.buf), now)
    }

    /// Persist synchronously against `clock`.
    pub fn finish(self, clock: &Clock) {
        let done = self.finish_at(clock.now());
        clock.merge(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papyrus_simtime::US;

    fn nvme() -> NvmStore {
        NvmStore::in_memory(DeviceModel::nvme_summitdev())
    }

    #[test]
    fn put_then_read_roundtrip() {
        let s = nvme();
        let clock = Clock::new();
        s.put("f", Bytes::from_static(b"abcdef"), &clock);
        let got = s.read("f", 2, 3, AccessPattern::Random, &clock).unwrap();
        assert_eq!(&got[..], b"cde");
        assert!(clock.now() > 0, "I/O must cost virtual time");
    }

    #[test]
    fn read_missing_is_none_and_free() {
        let s = nvme();
        let clock = Clock::new();
        assert!(s.read("nope", 0, 10, AccessPattern::Random, &clock).is_none());
        assert_eq!(clock.now(), 0);
    }

    #[test]
    fn writes_queue_on_shared_device() {
        let s = nvme();
        // Two "ranks" submit 1 MiB writes at the same instant. The device
        // services `parallelism` requests concurrently, so the second write
        // starts after the first's occupancy slot (cost / parallelism) and
        // still pays its own full latency+transfer.
        let d1 = s.put_at("a", Bytes::from(vec![0u8; 1 << 20]), 0);
        let d2 = s.put_at("b", Bytes::from(vec![0u8; 1 << 20]), 0);
        assert!(d2 > d1, "second write must queue behind the first");
        let occupancy = d1 / s.device().parallelism as u64;
        assert_eq!(d2, occupancy + d1);
    }

    #[test]
    fn saturated_device_throughput_bounded_by_occupancy() {
        let s = nvme();
        // 64 concurrent 1 MiB writes: aggregate completion must reflect the
        // device's total service capacity, not a single request's latency.
        let mut last = 0;
        for i in 0..64 {
            last = s.put_at(&format!("o{i}"), Bytes::from(vec![0u8; 1 << 20]), 0);
        }
        let one = s.device().write_ns(1 << 20, AccessPattern::Sequential);
        // 64 requests at occupancy one/parallelism each, plus the last
        // request's full duration.
        let expected_min = 63 * (one / s.device().parallelism as u64);
        assert!(last >= expected_min, "last={last} expected_min={expected_min}");
    }

    #[test]
    fn clocked_wrappers_merge_completion() {
        let s = nvme();
        let c = Clock::new();
        s.open(&c);
        let t1 = c.now();
        assert!(t1 >= s.device().open_ns());
        s.append("x", b"12345", &c);
        assert!(c.now() > t1);
        assert!(s.delete("x", &c));
        assert!(!s.delete("x", &c));
    }

    #[test]
    fn writer_single_submission() {
        let s = nvme();
        let mut w = s.writer("sst/1.data");
        assert!(w.is_empty());
        w.write(b"hello ");
        w.write(b"world");
        assert_eq!(w.len(), 11);
        let done = w.finish_at(0);
        assert_eq!(&s.backend().get_all("sst/1.data").unwrap()[..], b"hello world");
        // One write latency, not two.
        assert!(done < 2 * s.device().write_latency + US);
    }

    #[test]
    fn list_and_clear() {
        let s = nvme();
        let c = Clock::new();
        s.put("db/r0/s1", Bytes::new(), &c);
        s.put("db/r0/s2", Bytes::new(), &c);
        s.put("db/r1/s1", Bytes::new(), &c);
        assert_eq!(s.list("db/r0/").len(), 2);
        s.clear();
        assert!(s.list("").is_empty());
        assert_eq!(s.queue().busy_until(), 0);
    }

    #[test]
    fn rename_commits_atomically_and_charges_meta_cost() {
        let s = nvme();
        let c = Clock::new();
        s.put("m.tmp", Bytes::from_static(b"next:2\n1\n"), &c);
        let before = c.now();
        assert!(s.rename("m.tmp", "m", &c));
        assert!(c.now() > before, "rename is a metadata op with a cost");
        assert!(!s.exists("m.tmp"));
        assert_eq!(&s.backend().get_all("m").unwrap()[..], b"next:2\n1\n");
        assert!(!s.rename("m.tmp", "m", &c));
    }

    #[test]
    fn fence_is_free_and_preserves_state() {
        let s = nvme();
        let c = Clock::new();
        s.put("f", Bytes::from_static(b"x"), &c);
        let t = c.now();
        s.fence();
        assert_eq!(c.now(), t, "fence must not charge virtual time");
        assert!(s.exists("f"));
    }

    #[test]
    fn crashcheck_capture_auto_wraps_new_stores() {
        use crate::journal::{self, Journal, JournalOp};
        papyrus_sanity::force_enable_crashcheck();
        let j = std::sync::Arc::new(Journal::new());
        journal::install_capture(j.clone());
        let s = nvme();
        s.put_at("capture-probe", Bytes::from_static(b"x"), 0);
        journal::clear_capture();
        papyrus_sanity::force_disable_crashcheck();
        assert!(
            j.ops()
                .iter()
                .any(|op| matches!(op, JournalOp::Put { path, .. } if path == "capture-probe")),
            "store built under an installed capture must journal its writes"
        );
        // A store built with no capture in place is untouched.
        let before = j.len();
        let s2 = nvme();
        s2.put_at("uncaptured", Bytes::from_static(b"y"), 0);
        assert!(!j
            .ops()
            .iter()
            .skip(before)
            .any(|op| matches!(op, JournalOp::Put { path, .. } if path == "uncaptured")));
    }

    #[test]
    fn injected_faults_surface_typed_and_ride_out() {
        use papyrus_faultinject as fi;
        // Windows far beyond any stamp other parallel tests use, so turning
        // the global gate on cannot perturb them.
        const BASE: SimNs = 900_000_000_000_000_000;
        let plan = fi::FaultPlan::with_events(
            1,
            vec![
                fi::FaultEvent::NvmEnospc { start: BASE, end: BASE + 1_000_000 },
                fi::FaultEvent::NvmTransientEio {
                    start: BASE,
                    end: BASE + 1_000_000,
                    reads: true,
                    writes: false,
                },
                fi::FaultEvent::NvmStall {
                    start: BASE + 10_000_000,
                    end: BASE + 11_000_000,
                    extra_ns: 5_000_000,
                },
            ],
        );
        fi::install_plan(Arc::new(plan));
        fi::force_enable();
        let s = nvme();
        // Typed errors from the fallible primitives inside the window.
        assert_eq!(s.try_put_at("f", Bytes::from_static(b"x"), BASE), Err(IoFault::NoSpace));
        assert!(!s.exists("f"), "faulted write must not touch the backend");
        s.put_at("f", Bytes::from_static(b"x"), 0); // below every window
        assert_eq!(s.try_read_all_at("f", BASE).unwrap_err(), IoFault::TransientEio);
        // The infallible wrapper rides the windows out with virtual backoff.
        let done = s.put_at("g", Bytes::from_static(b"y"), BASE);
        assert!(done > BASE + 1_000_000, "retries must escape the fault window");
        assert!(s.exists("g"));
        // Slow-device stall inflates the op's service time.
        let slow = s.try_put_at("h", Bytes::from_static(b"z"), BASE + 10_000_000).unwrap();
        assert!(slow >= BASE + 10_000_000 + 5_000_000);
        fi::clear_plan();
        fi::force_disable();
    }

    #[test]
    fn background_io_does_not_touch_clock() {
        let s = nvme();
        let c = Clock::new();
        let done = s.put_at("bg", Bytes::from(vec![0u8; 4096]), c.now());
        assert_eq!(c.now(), 0);
        assert!(done > 0);
        // Later, a fence reconciles:
        c.merge(done);
        assert_eq!(c.now(), done);
    }

    #[test]
    fn random_read_slower_than_sequential_on_lustre() {
        // Two independent stores so the shared device queue doesn't
        // serialise the comparison.
        let mk = || {
            let s = NvmStore::in_memory(DeviceModel::lustre());
            s.put_at("f", Bytes::from(vec![1u8; 1 << 20]), 0);
            s.queue().reset();
            s
        };
        let c_rand = Clock::new();
        let c_seq = Clock::new();
        mk().read("f", 0, 1 << 20, AccessPattern::Random, &c_rand);
        mk().read("f", 0, 1 << 20, AccessPattern::Sequential, &c_seq);
        assert!(c_rand.now() > c_seq.now());
    }
}
