//! # papyrus-nvm
//!
//! Virtual NVM / parallel-file-system storage substrate.
//!
//! PapyrusKV accesses NVM through the POSIX file-system interface (paper
//! §2.3) and distinguishes two distributed NVM architectures (§2.7):
//!
//! * **Local NVM** — each compute node has private NVMe/SSD; all ranks on a
//!   node form one *storage group* and share that device.
//! * **Dedicated NVM** — burst-buffer nodes hold the SSDs; every rank can
//!   reach them, so all ranks form a single storage group.
//!
//! This crate reproduces that model in-process:
//!
//! * [`NvmStore`] — a named-object store (paths ≈ files) with a
//!   [`papyrus_simtime::DeviceModel`] cost model and a shared device queue,
//!   so concurrent ranks in a storage group contend realistically. Backends:
//!   in-memory (default; deterministic, fast) or real directory on disk.
//! * [`StorageMap`] — rank → storage-group mapping for a given group size,
//!   giving each group its own shared [`NvmStore`].
//! * [`SystemProfile`] — full machine descriptions of the paper's Table 2
//!   systems (Summitdev, Stampede KNL, Cori Haswell): interconnect, NVM
//!   device, parallel file system, ranks per node, iteration counts.
//! * [`journal`] — the crash-point journal behind the `PAPYRUS_CRASHCHECK`
//!   plane: every backend mutation is recorded as a numbered crash point,
//!   and [`journal::materialize`] rebuilds the bytes a crash at any point
//!   could leave behind (clean cut, torn tail, unsynced reorder).

mod backend;
pub mod journal;
mod store;
mod system;

pub use backend::{Backend, DiskBackend, MemBackend};
pub use journal::{CrashPolicy, FaultMode, Journal, JournalOp, JournaledBackend};
pub use papyrus_faultinject::IoFault;
pub use store::{NvmStore, ObjectWriter};
pub use system::{NvmArch, StorageMap, SystemProfile};
