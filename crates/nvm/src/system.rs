//! Machine profiles (the paper's Table 2) and rank → storage-group mapping.

use std::sync::Arc;

use papyrus_simtime::{DeviceModel, MemModel, NetModel};

use crate::store::NvmStore;

/// Distributed NVM architecture class (paper §2.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmArch {
    /// NVM devices are private to each compute node (Summitdev, Stampede,
    /// future Summit/Theta/Sierra). A storage group = the ranks of one node.
    Local,
    /// NVM lives on dedicated burst-buffer nodes reachable by everyone
    /// (Cori, Trinity). All ranks form a single storage group.
    Dedicated,
}

/// A full target-system description, mirroring the paper's Table 2.
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// System name, e.g. `"summitdev"`.
    pub name: &'static str,
    /// Site, e.g. `"OLCF"`.
    pub site: &'static str,
    /// NVM architecture class.
    pub arch: NvmArch,
    /// Interconnect model.
    pub net: NetModel,
    /// DRAM model (MemTable operations).
    pub mem: MemModel,
    /// The NVM device class of this system.
    pub nvm: DeviceModel,
    /// The parallel file system reachable from all ranks.
    pub pfs: DeviceModel,
    /// Physical cores per node == MPI ranks used per node in the paper.
    pub ranks_per_node: usize,
    /// Iteration count the paper used on this system (10K, or 1K on
    /// Stampede due to SSD capacity).
    pub iters: usize,
    /// NVM capacity per storage group in bytes (for capacity accounting).
    pub nvm_capacity: u64,
}

impl SystemProfile {
    /// OLCF Summitdev: POWER8, node-local 800 GB NVMe, InfiniBand EDR.
    pub fn summitdev() -> Self {
        Self {
            name: "summitdev",
            site: "OLCF",
            arch: NvmArch::Local,
            net: NetModel::infiniband_edr(),
            mem: MemModel::ddr4(),
            nvm: DeviceModel::nvme_summitdev(),
            pfs: DeviceModel::lustre(),
            ranks_per_node: 20,
            iters: 10_000,
            nvm_capacity: 800 * 1_000_000_000,
        }
    }

    /// TACC Stampede (KNL): node-local 112 GB SSD, Omni-Path.
    pub fn stampede() -> Self {
        Self {
            name: "stampede",
            site: "TACC",
            arch: NvmArch::Local,
            net: NetModel::omni_path(),
            mem: MemModel::ddr4(),
            nvm: DeviceModel::ssd_stampede(),
            pfs: DeviceModel::lustre(),
            ranks_per_node: 68,
            iters: 1_000,
            nvm_capacity: 112 * 1_000_000_000,
        }
    }

    /// NERSC Cori (Haswell): dedicated burst-buffer SSDs, Aries Dragonfly.
    pub fn cori() -> Self {
        Self {
            name: "cori",
            site: "NERSC",
            arch: NvmArch::Dedicated,
            net: NetModel::aries_dragonfly(),
            mem: MemModel::ddr4(),
            nvm: DeviceModel::burst_buffer_cori(),
            pfs: DeviceModel::lustre(),
            ranks_per_node: 32,
            iters: 10_000,
            nvm_capacity: 1_800_000_000_000_000 / 1000, // 1.8 PB aggregate, scaled per job
        }
    }

    /// A free-cost profile for unit tests (single-rank groups by default).
    pub fn test_profile() -> Self {
        Self {
            name: "test",
            site: "local",
            arch: NvmArch::Local,
            net: NetModel::free(),
            mem: MemModel::free(),
            nvm: DeviceModel::dram(),
            pfs: DeviceModel::dram(),
            ranks_per_node: 1,
            iters: 100,
            nvm_capacity: u64::MAX,
        }
    }

    /// The three evaluation systems, in the paper's order.
    pub fn all_eval_systems() -> Vec<SystemProfile> {
        vec![Self::summitdev(), Self::stampede(), Self::cori()]
    }

    /// Default storage-group size for `n_ranks` ranks on this system: the
    /// ranks of one node for local NVM, everyone for dedicated NVM.
    pub fn default_group_size(&self, n_ranks: usize) -> usize {
        match self.arch {
            NvmArch::Local => self.ranks_per_node.min(n_ranks.max(1)),
            NvmArch::Dedicated => n_ranks.max(1),
        }
    }
}

/// Rank → storage-group mapping plus the per-group shared [`NvmStore`]s and
/// the globally shared parallel file system.
///
/// Ranks `[k*g, (k+1)*g)` form group `k` (like consecutive ranks placed on
/// the same node). All ranks in a group share one NVM device queue; all
/// ranks in the world share the PFS queue.
#[derive(Clone)]
pub struct StorageMap {
    group_size: usize,
    groups: Arc<Vec<NvmStore>>,
    pfs: NvmStore,
}

impl StorageMap {
    /// Build a map for `n_ranks` ranks with `group_size` ranks per group,
    /// using in-memory backends.
    pub fn new(profile: &SystemProfile, n_ranks: usize, group_size: usize) -> Self {
        Self::with_pfs(profile, n_ranks, group_size, NvmStore::in_memory(profile.pfs.clone()))
    }

    /// Build with an explicit parallel file system store. The PFS outlives
    /// jobs: passing the same store to maps of *different* rank counts
    /// models coupled applications in different jobs sharing snapshots
    /// (paper Figure 5(b)-(c)).
    pub fn with_pfs(
        profile: &SystemProfile,
        n_ranks: usize,
        group_size: usize,
        pfs: NvmStore,
    ) -> Self {
        assert!(n_ranks > 0 && group_size > 0);
        let n_groups = n_ranks.div_ceil(group_size);
        let groups = (0..n_groups).map(|_| NvmStore::in_memory(profile.nvm.clone())).collect();
        Self { group_size, groups: Arc::new(groups), pfs }
    }

    /// Build with the system's default group size.
    pub fn with_default_groups(profile: &SystemProfile, n_ranks: usize) -> Self {
        Self::new(profile, n_ranks, profile.default_group_size(n_ranks))
    }

    /// Build from prebuilt stores: one per storage group plus the PFS. The
    /// crash-consistency checker uses this to run a job against journaled
    /// backends, and again to re-open a database from backends materialised
    /// at a crash point.
    pub fn from_parts(groups: Vec<NvmStore>, group_size: usize, pfs: NvmStore) -> Self {
        assert!(!groups.is_empty() && group_size > 0);
        Self { group_size, groups: Arc::new(groups), pfs }
    }

    /// Storage-group id of a rank.
    pub fn group_of(&self, rank: usize) -> usize {
        rank / self.group_size
    }

    /// Ranks per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of storage groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The shared NVM store of `rank`'s storage group.
    pub fn nvm_of(&self, rank: usize) -> &NvmStore {
        &self.groups[self.group_of(rank)]
    }

    /// NVM store by group id.
    pub fn nvm_of_group(&self, group: usize) -> &NvmStore {
        &self.groups[group]
    }

    /// The parallel file system shared by all ranks.
    pub fn pfs(&self) -> &NvmStore {
        &self.pfs
    }

    /// Whether two ranks share NVM storage (same storage group).
    pub fn same_group(&self, a: usize, b: usize) -> bool {
        self.group_of(a) == self.group_of(b)
    }

    /// Trim all NVM scratch (end of job) but keep the PFS contents —
    /// exactly the situation motivating checkpoint/restart in §4.2.
    pub fn trim_nvm(&self) {
        for g in self.groups.iter() {
            g.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_profiles_match_paper() {
        let s = SystemProfile::summitdev();
        assert_eq!(s.ranks_per_node, 20);
        assert_eq!(s.arch, NvmArch::Local);
        assert_eq!(s.iters, 10_000);

        let t = SystemProfile::stampede();
        assert_eq!(t.ranks_per_node, 68);
        assert_eq!(t.iters, 1_000); // SSD capacity limit

        let c = SystemProfile::cori();
        assert_eq!(c.ranks_per_node, 32);
        assert_eq!(c.arch, NvmArch::Dedicated);
    }

    #[test]
    fn default_group_size_local_vs_dedicated() {
        assert_eq!(SystemProfile::summitdev().default_group_size(320), 20);
        assert_eq!(SystemProfile::stampede().default_group_size(4352), 68);
        assert_eq!(SystemProfile::cori().default_group_size(512), 512);
        // Fewer ranks than a node still forms one group.
        assert_eq!(SystemProfile::summitdev().default_group_size(8), 8);
    }

    #[test]
    fn storage_map_group_assignment() {
        let p = SystemProfile::test_profile();
        let m = StorageMap::new(&p, 10, 4);
        assert_eq!(m.n_groups(), 3);
        assert_eq!(m.group_of(0), 0);
        assert_eq!(m.group_of(3), 0);
        assert_eq!(m.group_of(4), 1);
        assert_eq!(m.group_of(9), 2);
        assert!(m.same_group(4, 7));
        assert!(!m.same_group(3, 4));
    }

    #[test]
    fn group_members_share_store_others_do_not() {
        let p = SystemProfile::test_profile();
        let m = StorageMap::new(&p, 4, 2);
        let c = papyrus_simtime::Clock::new();
        m.nvm_of(0).put("f", bytes::Bytes::from_static(b"x"), &c);
        assert!(m.nvm_of(1).exists("f")); // same node
        assert!(!m.nvm_of(2).exists("f")); // different node
    }

    #[test]
    fn trim_nvm_preserves_pfs() {
        let p = SystemProfile::test_profile();
        let m = StorageMap::new(&p, 2, 1);
        let c = papyrus_simtime::Clock::new();
        m.nvm_of(0).put("scratch", bytes::Bytes::from_static(b"x"), &c);
        m.pfs().put("checkpoint", bytes::Bytes::from_static(b"y"), &c);
        m.trim_nvm();
        assert!(!m.nvm_of(0).exists("scratch"));
        assert!(m.pfs().exists("checkpoint"));
    }

    #[test]
    fn all_eval_systems_listed() {
        let names: Vec<_> = SystemProfile::all_eval_systems().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["summitdev", "stampede", "cori"]);
    }
}
