//! Storage backends: where object bytes actually live.

use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use parking_lot::RwLock;

/// Abstract byte storage for named objects.
///
/// Paths are flat, `/`-separated strings (like object-store keys). The
/// backend handles durability only; all cost accounting happens in
/// [`crate::NvmStore`].
pub trait Backend: Send + Sync {
    /// Create or truncate an object with the given contents.
    fn put(&self, path: &str, data: Bytes);
    /// Append to an object, creating it if missing.
    fn append(&self, path: &str, data: &[u8]);
    /// Read `len` bytes at `offset`; `None` if the object is missing.
    /// Reads past the end are truncated.
    fn get(&self, path: &str, offset: u64, len: u64) -> Option<Bytes>;
    /// Full object contents; `None` if missing.
    fn get_all(&self, path: &str) -> Option<Bytes>;
    /// Object length in bytes; `None` if missing.
    fn len(&self, path: &str) -> Option<u64>;
    /// Remove an object. Returns whether it existed.
    fn delete(&self, path: &str) -> bool;
    /// Atomically move `from` to `to`, overwriting `to` if present.
    /// Returns `false` (leaving `to` untouched) when `from` is missing.
    /// This is the commit primitive for write-tmp-then-rename updates
    /// (manifests): a crash either observes the old object or the new one,
    /// never a torn mix.
    fn rename(&self, from: &str, to: &str) -> bool;
    /// Persistence fence: every mutation issued before the fence is durable
    /// before any mutation issued after it (fsync/pmem-drain analogue).
    /// Backends with no write-back caching model need do nothing; the
    /// crashcheck journal records it to bound write reordering.
    fn fence(&self) {}
    /// All object paths with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
    /// Whether an object exists.
    fn exists(&self, path: &str) -> bool {
        self.len(path).is_some()
    }
    /// Remove every object. Models the scratch trim at job end (paper §4).
    fn clear(&self);
}

/// Deterministic in-memory backend (the default for tests and benches).
#[derive(Default)]
pub struct MemBackend {
    objects: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl MemBackend {
    /// Empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes held (capacity accounting, e.g. Stampede's 112 GB SSD).
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|v| v.len() as u64).sum()
    }
}

impl Backend for MemBackend {
    fn put(&self, path: &str, data: Bytes) {
        self.objects.write().insert(path.to_string(), data.to_vec());
    }

    fn append(&self, path: &str, data: &[u8]) {
        self.objects.write().entry(path.to_string()).or_default().extend_from_slice(data);
    }

    fn get(&self, path: &str, offset: u64, len: u64) -> Option<Bytes> {
        let g = self.objects.read();
        let v = g.get(path)?;
        let start = (offset as usize).min(v.len());
        let end = (offset.saturating_add(len) as usize).min(v.len());
        Some(Bytes::copy_from_slice(&v[start..end]))
    }

    fn get_all(&self, path: &str) -> Option<Bytes> {
        self.objects.read().get(path).map(|v| Bytes::copy_from_slice(v))
    }

    fn len(&self, path: &str) -> Option<u64> {
        self.objects.read().get(path).map(|v| v.len() as u64)
    }

    fn delete(&self, path: &str) -> bool {
        self.objects.write().remove(path).is_some()
    }

    fn rename(&self, from: &str, to: &str) -> bool {
        let mut g = self.objects.write();
        match g.remove(from) {
            Some(v) => {
                g.insert(to.to_string(), v);
                true
            }
            None => false,
        }
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn clear(&self) {
        self.objects.write().clear();
    }
}

/// Real-directory backend: each object is a file under `root`. Used by soak
/// tests and by users who want the SSTables inspectable on disk.
pub struct DiskBackend {
    root: PathBuf,
}

impl DiskBackend {
    /// Create (and mkdir -p) a disk backend rooted at `root`.
    pub fn new(root: impl AsRef<Path>) -> std::io::Result<Self> {
        fs::create_dir_all(root.as_ref())?;
        Ok(Self { root: root.as_ref().to_path_buf() })
    }

    fn fs_path(&self, path: &str) -> PathBuf {
        // Object paths are trusted internal names, but keep them contained:
        // strip any leading separators and reject parent traversal.
        let clean: Vec<&str> =
            path.split('/').filter(|c| !c.is_empty() && *c != "." && *c != "..").collect();
        let mut p = self.root.clone();
        for c in clean {
            p.push(c);
        }
        p
    }
}

impl Backend for DiskBackend {
    fn put(&self, path: &str, data: Bytes) {
        let p = self.fs_path(path);
        if let Some(parent) = p.parent() {
            let _ = fs::create_dir_all(parent);
        }
        fs::write(&p, &data).expect("disk backend write failed"); // lint:allow(panic-path): host-FS write failure is unrecoverable by design
    }

    fn append(&self, path: &str, data: &[u8]) {
        let p = self.fs_path(path);
        if let Some(parent) = p.parent() {
            let _ = fs::create_dir_all(parent);
        }
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&p)
            .expect("disk backend open failed");
        f.write_all(data).expect("disk backend append failed");
    }

    fn get(&self, path: &str, offset: u64, len: u64) -> Option<Bytes> {
        let mut f = fs::File::open(self.fs_path(path)).ok()?;
        let total = f.metadata().ok()?.len();
        let start = offset.min(total);
        let end = offset.saturating_add(len).min(total);
        f.seek(SeekFrom::Start(start)).ok()?;
        let mut buf = vec![0u8; (end - start) as usize];
        f.read_exact(&mut buf).ok()?;
        Some(Bytes::from(buf))
    }

    fn get_all(&self, path: &str) -> Option<Bytes> {
        fs::read(self.fs_path(path)).ok().map(Bytes::from)
    }

    fn len(&self, path: &str) -> Option<u64> {
        fs::metadata(self.fs_path(path)).ok().map(|m| m.len())
    }

    fn delete(&self, path: &str) -> bool {
        fs::remove_file(self.fs_path(path)).is_ok()
    }

    fn rename(&self, from: &str, to: &str) -> bool {
        let src = self.fs_path(from);
        if !src.exists() {
            return false;
        }
        let dst = self.fs_path(to);
        if let Some(parent) = dst.parent() {
            let _ = fs::create_dir_all(parent);
        }
        fs::rename(&src, &dst).is_ok()
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        // Walk the tree and reconstruct object names relative to root.
        fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
            let Ok(entries) = fs::read_dir(dir) else { return };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, root, out);
                } else if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &self.root, &mut out);
        out.retain(|p| p.starts_with(prefix));
        out.sort();
        out
    }

    fn clear(&self) {
        let _ = fs::remove_dir_all(&self.root);
        let _ = fs::create_dir_all(&self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(b: &dyn Backend) {
        assert!(!b.exists("a/b"));
        b.put("a/b", Bytes::from_static(b"hello"));
        assert!(b.exists("a/b"));
        assert_eq!(b.len("a/b"), Some(5));
        assert_eq!(&b.get_all("a/b").unwrap()[..], b"hello");

        b.append("a/b", b" world");
        assert_eq!(b.len("a/b"), Some(11));
        assert_eq!(&b.get("a/b", 6, 5).unwrap()[..], b"world");
        // Read past end truncates.
        assert_eq!(&b.get("a/b", 6, 100).unwrap()[..], b"world");
        assert_eq!(b.get("a/b", 100, 5).unwrap().len(), 0);
        assert!(b.get("missing", 0, 1).is_none());

        b.append("fresh", b"x"); // append creates
        assert_eq!(b.len("fresh"), Some(1));

        b.put("a/c", Bytes::from_static(b"1"));
        b.put("z", Bytes::from_static(b"2"));
        assert_eq!(b.list("a/"), vec!["a/b".to_string(), "a/c".to_string()]);
        assert_eq!(b.list("").len(), 4);

        assert!(b.delete("a/c"));
        assert!(!b.delete("a/c"));
        assert!(!b.exists("a/c"));

        // Rename moves, overwrites the target, and fails on a missing source
        // without touching the target.
        b.put("m/src", Bytes::from_static(b"manifest"));
        b.put("m/dst", Bytes::from_static(b"old"));
        assert!(b.rename("m/src", "m/dst"));
        assert!(!b.exists("m/src"));
        assert_eq!(&b.get_all("m/dst").unwrap()[..], b"manifest");
        assert!(!b.rename("m/gone", "m/dst"));
        assert_eq!(&b.get_all("m/dst").unwrap()[..], b"manifest");
        b.fence(); // no-op, must not disturb state
        assert_eq!(&b.get_all("m/dst").unwrap()[..], b"manifest");

        b.clear();
        assert!(b.list("").is_empty());
    }

    #[test]
    fn mem_backend_semantics() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn disk_backend_semantics() {
        let dir = std::env::temp_dir().join(format!("pkv-nvm-test-{}", std::process::id()));
        let b = DiskBackend::new(&dir).unwrap();
        b.clear();
        exercise(&b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_backend_total_bytes() {
        let b = MemBackend::new();
        b.put("x", Bytes::from_static(b"1234"));
        b.append("y", b"56");
        assert_eq!(b.total_bytes(), 6);
    }

    #[test]
    fn disk_backend_rejects_traversal() {
        let dir = std::env::temp_dir().join(format!("pkv-nvm-trav-{}", std::process::id()));
        let b = DiskBackend::new(&dir).unwrap();
        b.put("../../etc/evil", Bytes::from_static(b"x"));
        // The object lands inside root regardless of the ../ components.
        assert!(b.exists("../../etc/evil") || b.exists("etc/evil"));
        assert!(dir.join("etc/evil").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_truncates() {
        let b = MemBackend::new();
        b.put("k", Bytes::from_static(b"long contents"));
        b.put("k", Bytes::from_static(b"s"));
        assert_eq!(b.len("k"), Some(1));
    }
}
