// Seeded fixture: the serve-codec negative surface. This file is a
// protocol path (client bytes land here), yet every tempting panic site
// below is exempt — the sweep must stay completely silent on it.

/// Guarded incremental decode: `get` + `match` instead of raw indexing
/// or `unwrap` — the panic-free idiom the real codec uses.
pub fn serve_peek_len(buf: &[u8]) -> Option<usize> {
    match buf.first() {
        Some(b'$') => buf.iter().position(|&b| b == b'\r'),
        _ => None,
    }
}

/// Waived site: justified because the length was checked one line up.
pub fn serve_take_header(buf: &[u8]) -> &[u8] {
    if buf.len() < 4 {
        return buf;
    }
    buf.get(..4).expect("length checked above") // lint:allow(protocol-unwrap)
}

#[cfg(test)]
mod tests {
    #[test]
    fn serve_unwrap_in_tests_is_fine() {
        assert_eq!(super::serve_peek_len(b"$3\r\nfoo\r\n").unwrap(), 2);
    }
}
