// Seeded fixture: raw std locks outside compat/ must be flagged.
use std::sync::Mutex;

pub struct Holder {
    pub slot: std::sync::RwLock<u64>,
    pub q: Mutex<Vec<u8>>,
}

// A mention of std::sync::Mutex in a comment line must NOT be flagged.
pub fn waived() {
    let _cv = std::sync::Condvar::new(); // lint:allow(std-sync-lock)
}
