// Seeded fixture: naming std::sync::atomic directly in a protocol-path
// file must be flagged — protocol atomics go through the
// papyrus_sanity::atomic facade so `--cfg modelcheck` can shim them.

// Exactly one reportable finding in this file:
use std::sync::atomic::AtomicU64;

pub static SEQ: AtomicU64 = AtomicU64::new(0);

pub fn next_seq() -> u64 {
    SEQ.fetch_add(1, std::sync::atomic::Ordering::AcqRel) // lint:allow(no-atomic-in-protocol)
}

#[cfg(test)]
mod tests {
    // Test modules may reach for raw atomics freely.
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn raw_atomics_in_tests_are_fine() {
        let a = AtomicU64::new(1);
        // ordering: test-local atomic, no cross-thread visibility at stake.
        assert_eq!(a.load(Ordering::Relaxed), 1);
    }
}
