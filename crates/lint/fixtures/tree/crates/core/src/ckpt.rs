// Seeded fixture: unwrap on a recovery path must be flagged — recovery
// parses crash debris, and a panicking rank hangs its peers' collectives.

pub fn parse_manifest(text: &str) -> (u64, Vec<u64>) {
    let mut lines = text.lines();
    // Exactly one reportable finding in this file:
    let next: u64 = lines.next().unwrap().parse().unwrap_or(1);
    let _tail = lines.next().expect("sentinel line"); // lint:allow(recovery-unwrap)
    let ssids = lines.map(|l| l.parse().unwrap_or(0)).collect(); // unwrap_or is fine
    (next, ssids)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u64> = Some(7);
        assert_eq!(v.unwrap(), 7);
    }
}
