// Seeded fixture: Relaxed/SeqCst orderings without an `// ordering:`
// justification must be flagged; justified, waived, and middle-strength
// sites must not.
use std::sync::atomic::{AtomicU64, Ordering};

pub static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn bad_relaxed() -> u64 {
    // Exactly two reportable findings in this file: the next line...
    COUNTER.load(Ordering::Relaxed)
}

pub fn bad_seqcst() {
    // ...and this store (a comment without the magic word doesn't count).
    COUNTER.store(1, Ordering::SeqCst);
}

pub fn justified_same_line() -> u64 {
    COUNTER.load(Ordering::Relaxed) // ordering: monotone stat counter, read for display only
}

pub fn justified_block_above() {
    // ordering: publication is handled by the mutex this sits behind; the
    // counter itself never synchronises anything.
    COUNTER.fetch_add(1, Ordering::Relaxed);
}

pub fn waived() {
    COUNTER.store(0, Ordering::SeqCst); // lint:allow(atomic-ordering-justified)
}

pub fn middle_strength_needs_no_ceremony() -> u64 {
    COUNTER.load(Ordering::Acquire)
}
