// Seeded fixture: `unsafe {` blocks and `unsafe impl` without a
// `// SAFETY:` comment must be flagged; commented and waived ones not.

pub struct Raw(pub *mut u8);

pub fn bad_block(p: &Raw) -> u8 {
    // Exactly two reportable findings in this file: the block below...
    unsafe { *p.0 }
}

// ...and this impl (the marker word is SAFETY, not "safe").
unsafe impl Send for Raw {}

pub fn commented_block(p: &Raw) -> u8 {
    // SAFETY: caller guarantees `p.0` points at a live, aligned byte.
    unsafe { *p.0 }
}

// SAFETY: Raw is a plain pointer wrapper; sharing requires external
// synchronisation which every user of this fixture type provides.
unsafe impl Sync for Raw {}

pub fn waived_block(p: &Raw) -> u8 {
    unsafe { *p.0 } // lint:allow(unsafe-needs-safety-comment)
}

/// An `unsafe fn` signature needs no SAFETY comment at the declaration —
/// its contract lives in rustdoc, and each *call site* sits inside an
/// `unsafe {` block that the rule does cover.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn unsafe_fn_decl_is_fine(p: *const u8) -> u8 {
    *p
}
