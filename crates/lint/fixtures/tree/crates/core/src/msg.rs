// Seeded fixture: unwrap while decoding a wire message must be flagged —
// malformed payloads must surface as typed decode errors, not panics.

pub fn decode_header(payload: &[u8]) -> u64 {
    // Exactly one reportable finding in this file:
    let head: [u8; 8] = payload[..8].try_into().unwrap();
    let tail = payload.get(8).copied().unwrap_or(0); // unwrap_or is fine
    u64::from_le_bytes(head) + u64::from(tail)
}

pub fn decode_checked(payload: &[u8]) -> u64 {
    let head: [u8; 8] = payload[..8].try_into().expect("caller validated"); // lint:allow(protocol-unwrap)
    u64::from_le_bytes(head)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
