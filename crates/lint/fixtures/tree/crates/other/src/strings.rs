// Regression fixture for the false-positive surface the regex lint
// generation had: every banned pattern below sits inside a string literal
// or a comment, and this file must produce ZERO findings.
//
// In comments: use std::sync::Mutex; Ordering::Relaxed; Instant::now();
// unsafe { }; .unwrap(); std::sync::atomic::AtomicU64; rec.begin(
/* block comment too: std::sync::Condvar, Ordering::SeqCst, .expect( */

pub fn doc_strings() -> Vec<String> {
    vec![
        "use std::sync::Mutex;".to_string(),
        "std::sync::RwLock<u64>".to_string(),
        "Ordering::Relaxed".to_string(),
        "Ordering::SeqCst with no justification".to_string(),
        "Instant::now()".to_string(),
        "std::time::SystemTime::now()".to_string(),
        "unsafe { *p }".to_string(),
        ".unwrap() and .expect(".to_string(),
        "std::sync::atomic::AtomicU64".to_string(),
        "span.begin( but never .end".to_string(),
        r#"raw: std::sync::Condvar::new().unwrap()"#.to_string(),
    ]
}

pub fn tricky_tokens() -> char {
    // A char literal and a lifetime must not derail the lexer into
    // swallowing the rest of the file as a "string".
    let quote = '"';
    let escaped = '\'';
    if quote == escaped {
        quote
    } else {
        escaped
    }
}
