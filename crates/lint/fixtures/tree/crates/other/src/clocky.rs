// Seeded fixture: wall-clock time under crates/ must be flagged.
use std::time::Instant;

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let sys = std::time::SystemTime::now();
    let _ = sys;
    t0.elapsed().as_nanos()
}
