// Seeded fixture: a tel span opened but never closed must be flagged.

pub fn leaky(rec: &papyrus_telemetry::SpanRecorder) {
    let _span = rec.begin("core", "flush", 0, 100);
    // ... early return path forgets rec.end(_span, ts) — no .end( in file.
}
