// Seeded fixture: unwrap in a protocol-handler path must be flagged.

pub fn deliver(slots: &[Option<u32>]) -> u32 {
    // Exactly one reportable finding in this file:
    let first = slots.first().unwrap();
    let second = slots.get(1).copied().flatten().unwrap_or(0); // unwrap_or is fine
    first.expect("slot empty") + second // lint:allow(protocol-unwrap)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
