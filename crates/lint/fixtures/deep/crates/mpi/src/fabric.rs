//! Deep fixture: the blocking primitive. This file IS the primitive
//! implementation, so its own mailbox-mutex shape is excluded from guard
//! scanning.

pub struct Fabric {
    mail: Mutex<Vec<u32>>,
}

impl Fabric {
    pub fn recv(&self, _from: usize) -> u32 {
        // Internal guard around the blocking wait: must NOT be flagged —
        // this file implements the primitive.
        let mut q = self.mail.lock();
        q.pop().unwrap_or(0)
    }

    pub fn send(&self, _to: usize, _tag: u32, _b: &[u8]) {}
}
