//! Deep fixture: atomic pairing — one clean field per shape that must
//! stay silent, one field per finding kind.

use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

pub struct Flags {
    /// Release store + Acquire load — paired, clean.
    ready: AtomicU32,
    /// Release store, every load Relaxed — unpaired-release finding.
    orphan: AtomicU32,
    /// Acquire load, every store Relaxed — acquire-from-nothing finding.
    lonely: AtomicU32,
    /// AtomicPtr published with Relaxed — publication finding.
    hot: AtomicPtr<u8>,
    /// Only an AcqRel RMW: both sides of the pair live in one op — clean.
    cnt: AtomicU32,
}

impl Flags {
    pub fn ok(&self) -> u32 {
        self.ready.store(1, Ordering::Release);
        self.ready.load(Ordering::Acquire)
    }

    pub fn bad_release(&self) -> u32 {
        self.orphan.store(1, Ordering::Release);
        self.orphan.load(Ordering::Relaxed)
    }

    pub fn bad_acquire(&self) -> u32 {
        self.lonely.store(1, Ordering::Relaxed);
        self.lonely.load(Ordering::Acquire)
    }

    pub fn bad_ptr(&self, p: *mut u8) {
        self.hot.store(p, Ordering::Relaxed);
    }

    pub fn rmw_only(&self) -> u32 {
        self.cnt.fetch_add(1, Ordering::AcqRel)
    }
}
