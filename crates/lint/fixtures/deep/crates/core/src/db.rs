//! Deep fixture: blocking-under-lock positives and the lexical-guard
//! negatives the analysis must NOT trip on.

pub struct Db {
    pub state: RwLock<u32>,
    pub inner: Mutex<Vec<u8>>,
}

pub fn direct_block(db: &Db, f: &crate::fabric::Fabric) {
    let g = db.inner.lock();
    // Bound guard live: direct call to the fabric primitive — finding.
    f.recv(0);
    drop(g);
}

pub fn transitive_block(db: &Db, f: &crate::fabric::Fabric) {
    let g = db.inner.lock();
    // Guard live across a local fn that reaches recv two hops down —
    // finding with a trace.
    relay(f);
    drop(g);
}

pub fn sleep_block(db: &Db) {
    let g = db.inner.lock();
    // thread::sleep under a live guard — finding.
    std::thread::sleep(std::time::Duration::from_millis(1));
    drop(g);
}

pub fn scrutinee_block(db: &Db, f: &crate::fabric::Fabric) {
    // `match` scrutinee temporary lives through the block — finding.
    match *db.state.read() {
        0 => f.recv(0),
        _ => {}
    }
}

pub fn deref_copy_then_block(db: &Db, f: &crate::fabric::Fabric) {
    // `*...read()` copies the value; the guard is a statement temporary
    // that dies at the `;` — the recv below is NOT under it. Clean.
    let state = *db.state.read();
    if state > 0 {
        f.recv(0);
    }
}

pub fn drop_then_block(db: &Db, f: &crate::fabric::Fabric) {
    let g = db.inner.lock();
    drop(g);
    // Guard explicitly dropped first. Clean.
    f.recv(0);
}

pub fn if_condition_then_block(db: &Db, f: &crate::fabric::Fabric) {
    // A plain-`if` condition temporary drops before the block runs
    // (unlike a match scrutinee). Clean.
    if *db.state.read() > 0 {
        f.recv(0);
    }
}

fn relay(f: &crate::fabric::Fabric) {
    relay_inner(f);
}

fn relay_inner(f: &crate::fabric::Fabric) {
    f.recv(1);
}
