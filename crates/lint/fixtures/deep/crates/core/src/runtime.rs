//! Deep fixture: protocol entry points. The `pub` fns here seed the
//! panic-reachability sweep and host the tag send/handle sites.

use crate::msg::tags;

pub fn dispatch(f: &crate::fabric::Fabric, tag: u32, buf: &[u8]) {
    match tag {
        tags::PUT => handle_put(f, buf),
        tags::ACK => {}
        _ => {}
    }
}

pub fn send_put(f: &crate::fabric::Fabric) {
    f.send(0, tags::PUT, b"x");
    f.send(0, tags::GET, b"y");
}

fn handle_put(_f: &crate::fabric::Fabric, buf: &[u8]) {
    // Transitive panic: reaches util::parse8's unwrap two hops down.
    let _ = crate::util::parse8(buf);
}
