//! Deep fixture: helpers below the entry points.

pub fn parse8(b: &[u8]) -> u64 {
    // Reachable from runtime::dispatch via handle_put — panic-path
    // finding with a two-hop trace. The raw slice index is NOT flagged:
    // raw indexing is only reported inside the entry files themselves.
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

pub fn orphan_unwrap(b: &[u8]) -> u8 {
    // Same shape, but nothing reachable from an entry point calls this —
    // must NOT be flagged.
    *b.first().unwrap()
}
