//! Deep fixture: tag declarations (one of each matrix outcome) plus a
//! protocol entry file for the panic analysis.

pub mod tags {
    /// Sent by `send_put` and handled by `dispatch` — clean.
    pub const PUT: u32 = 1;
    /// Sent by `send_put`, no handler arm — sent-but-unhandled.
    pub const GET: u32 = 2;
    /// Handler arm in `dispatch`, no send site — handled-but-never-sent.
    pub const ACK: u32 = 3;
    /// Same value as ACK — duplicate-tag-value (and itself never used).
    pub const ACK_ALIAS: u32 = 3;
    /// Declared and never referenced anywhere — declared-but-never-used.
    pub const SPARE: u32 = 9;
}

pub fn decode(b: &[u8]) -> u64 {
    // Raw indexing in an entry file — one panic-path finding.
    u64::from(b[0])
}

pub fn decode_checked(b: &[u8]) -> u64 {
    // Waived: the justification comment suppresses the finding.
    u64::from(b[1]) // lint:allow(panic-path): fixture waiver — callers validate length
}
