//! Callgraph fixture: cross-crate calls, ambiguity, recursion.

pub fn entry() {
    local_helper();
    beta::beta_helper();
    // Ambiguous: `shared` is a free fn in alpha/util.rs AND beta/lib.rs,
    // and neither lives in this file — the resolver must link both and
    // record the ambiguity.
    shared(1);
    recurse(3);
    let w = Widget::new();
    // Trait-method ambiguity: `poke` has an inherent impl on Widget, a
    // trait declaration, and a trait impl for Widget2.
    w.poke();
}

fn local_helper() {}

pub fn recurse(n: u32) {
    if n > 0 {
        recurse(n - 1);
    }
}
