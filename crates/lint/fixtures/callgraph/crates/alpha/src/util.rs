/// Same name and arity as `beta::shared` — ambiguity fodder.
pub fn shared(n: u32) -> u32 {
    n * 2
}
