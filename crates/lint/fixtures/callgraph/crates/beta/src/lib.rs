//! Callgraph fixture, crate two.

pub fn beta_helper() {
    // Bare call with a same-file definition: narrows to beta's `shared`,
    // NOT ambiguous.
    shared(2);
    leaf();
}

pub fn shared(n: u32) -> u32 {
    n + 1
}

pub fn leaf() {}

pub struct Widget;

impl Widget {
    pub fn new() -> Widget {
        Widget
    }

    pub fn poke(&self) {
        leaf();
    }
}

pub struct Widget2;

pub trait Gadget {
    fn poke(&self);
}

impl Gadget for Widget2 {
    fn poke(&self) {
        leaf();
    }
}

impl Widget2 {
    pub fn new() -> Widget2 {
        Widget2
    }
}
