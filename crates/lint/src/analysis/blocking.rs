//! Blocking-under-lock: calls made while a parking_lot guard is live whose
//! transitive call graph reaches a blocking primitive — fabric recv/wait,
//! a collective, `thread::sleep`, or papyrus-nvm backend I/O.
//!
//! A rank that blocks on the fabric while holding a lock that the message
//! handler thread also needs is a distributed deadlock; holding one across
//! charged NVM I/O serialises every reader behind a device-latency stall.
//!
//! Guard detection is lexical: `let g = x.lock();` / `.read()` /
//! `.write()` binds a guard live until its enclosing block closes or a
//! `drop(g)`; a lock call that is *not* the whole initializer is a
//! statement temporary, live to the end of its statement (or through the
//! block it is scrutinee/condition for).
//!
//! False-positive policy (DESIGN.md §14): the files that *implement* the
//! blocking primitives (fabric.rs, comm.rs, nvm store.rs) are excluded —
//! their internal mailbox-mutex + condvar shape IS the primitive;
//! `BlockingQueue::push/pop` and backend `clear/len/list` are not seeds
//! (name+arity would collide with `Vec` methods); condvar waits are
//! excluded automatically by arity. Accepted sites carry
//! `// lint:allow(blocking-under-lock)` with a justification.

use crate::callgraph::{CallGraph, Ws};
use crate::report::Finding;
use crate::rules::seq_at;

const RULE: &str = "blocking-under-lock";

/// Blocking primitive leaves, as (file suffix, fn name). Everything that
/// transitively calls one of these is "blocking" via reverse BFS.
const SEEDS: &[(&str, &str)] = &[
    ("crates/mpi/src/fabric.rs", "recv"),
    ("crates/mpi/src/fabric.rs", "recv_deadline"),
    ("crates/mpi/src/fabric.rs", "allgather"),
    ("crates/mpi/src/fabric.rs", "allgather_abortable"),
    ("crates/mpi/src/comm.rs", "recv"),
    ("crates/mpi/src/comm.rs", "recv_timeout"),
    ("crates/mpi/src/comm.rs", "barrier"),
    ("crates/mpi/src/comm.rs", "allgather_bytes"),
    // Every charged NVM operation funnels through `NvmStore::io`.
    ("crates/nvm/src/store.rs", "io"),
];

/// Primitive-implementation files: not scanned for guards.
const PRIMITIVE_FILES: &[&str] =
    &["crates/mpi/src/fabric.rs", "crates/mpi/src/comm.rs", "crates/nvm/src/store.rs"];

struct Guard {
    /// Live token range within the file (half-open).
    range: std::ops::Range<usize>,
    /// `g` for a let-bound guard, the receiver text otherwise.
    name: String,
    line: usize,
}

pub fn run(ws: &Ws, cg: &CallGraph) -> Vec<Finding> {
    let seeds: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test
                && SEEDS.iter().any(|(sf, sn)| f.name == *sn && ws.rels[f.file].ends_with(sf))
        })
        .map(|(i, _)| i)
        .collect();
    if seeds.is_empty() {
        return Vec::new();
    }
    let (blocking, rparent) = cg.reach_rev(&seeds);
    let mut findings = Vec::new();
    for (fi, item) in ws.fns.iter().enumerate() {
        if item.is_test || item.body.is_empty() {
            continue;
        }
        let file = item.file;
        if PRIMITIVE_FILES.iter().any(|p| ws.rels[file].ends_with(p)) {
            continue;
        }
        let toks = &ws.lexed[file].tokens;
        let guards = find_guards(ws, fi, toks);
        if guards.is_empty() {
            continue;
        }
        for &ci in &ws.calls_by_fn[fi] {
            let call = &ws.calls[ci];
            // The guard-acquisition calls themselves.
            if call.arity == 0 && matches!(call.name.as_str(), "lock" | "read" | "write") {
                continue;
            }
            let Some(g) = guards.iter().find(|g| g.range.contains(&call.tok)) else { continue };
            let Some(&target) = cg.call_targets[ci].iter().find(|&&t| blocking[t]) else {
                continue;
            };
            if ws.in_tests(file, call.line) || ws.allowed(file, call.line, RULE) {
                continue;
            }
            // Chain from the called fn down to the primitive it reaches.
            let mut chain = CallGraph::path_to(&rparent, target);
            chain.reverse(); // called fn first, primitive last
            let trace: Vec<String> = chain.iter().map(|&f| ws.fn_label(f)).collect();
            findings.push(Finding {
                rule: RULE,
                path: ws.rels[file].clone(),
                line: call.line,
                text: format!(
                    "`{}({} args)` blocks while guard `{}` (line {}) is held: {}",
                    call.name,
                    call.arity,
                    g.name,
                    g.line,
                    ws.line_text(file, call.line).trim()
                ),
                trace,
            });
        }
        // Raw `thread::sleep` under a guard (unresolvable by the call graph).
        for g in &guards {
            for i in g.range.clone() {
                if seq_at(toks, i, &["thread", ":", ":", "sleep"]) {
                    let line = toks[i].line;
                    if ws.in_tests(file, line) || ws.allowed(file, line, RULE) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: RULE,
                        path: ws.rels[file].clone(),
                        line,
                        text: format!(
                            "`thread::sleep` while guard `{}` (line {}) is held: {}",
                            g.name,
                            g.line,
                            ws.line_text(file, line).trim()
                        ),
                        trace: Vec::new(),
                    });
                }
            }
        }
    }
    findings
}

/// Is `fi` the innermost fn whose body contains token `k`?
fn innermost(ws: &Ws, fi: usize, k: usize) -> bool {
    let file = ws.fns[fi].file;
    !ws.file_fns[file].iter().any(|&other| {
        other != fi
            && ws.fns[other].body.contains(&k)
            && ws.fns[other].body.len() < ws.fns[fi].body.len()
    })
}

/// Lexical scan of one fn body for live guard ranges.
fn find_guards(ws: &Ws, fi: usize, toks: &[crate::lexer::Tok]) -> Vec<Guard> {
    let item = &ws.fns[fi];
    let body = item.body.clone();
    // Brace depth before each body token, relative to the body start.
    let mut depth = Vec::with_capacity(body.len());
    let mut d = 0i32;
    for i in body.clone() {
        depth.push(d);
        match toks[i].text.as_str() {
            "{" => d += 1,
            "}" => d -= 1,
            _ => {}
        }
    }
    let dep = |i: usize| depth[i - body.start];
    let mut guards = Vec::new();
    for k in body.clone() {
        let acq = ["lock", "read", "write"].iter().any(|m| seq_at(toks, k, &[".", m, "(", ")"]));
        if !acq || !innermost(ws, fi, k) {
            continue;
        }
        let line = toks[k].line;
        // Statement head (previous `;`, `{`, or `}`).
        let mut head = k;
        while head > body.start && !matches!(toks[head - 1].text.as_str(), ";" | "{" | "}") {
            head -= 1;
        }
        // Let-bound guard: `let [mut] g = <recv chain> .lock();`
        //                                            k^        k+4 is `;`
        // The initializer must BE the guard: `let v = *x.read();` or
        // `let v = &x.read()...;` binds a copied/borrowed value, and the
        // guard itself is a statement temporary.
        let bound = toks.get(k + 4).is_some_and(|t| t.text == ";") && toks[head].text == "let" && {
            let name_at = if toks[head + 1].text == "mut" { head + 2 } else { head + 1 };
            toks[name_at].kind == crate::lexer::TokKind::Ident
                && toks.get(name_at + 1).is_some_and(|t| t.text == "=")
                && toks
                    .get(name_at + 2)
                    .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident || t.text == "self")
        };
        if bound {
            let j = head;
            let ident = if toks[j + 1].text == "mut" {
                toks[j + 2].text.clone()
            } else {
                toks[j + 1].text.clone()
            };
            // Live from after the `;` to the end of the enclosing block,
            // or an explicit `drop(ident)`.
            let d0 = dep(k);
            let mut end = body.end;
            for m in (k + 5)..body.end {
                if dep(m) < d0 {
                    end = m;
                    break;
                }
                if seq_at(toks, m, &["drop", "(", ident.as_str(), ")"]) {
                    end = m;
                    break;
                }
            }
            guards.push(Guard { range: (k + 5)..end, name: ident, line });
        } else {
            // Statement temporary: live to the end of its statement, or —
            // for `match`/`for`/`if let`/`while let` scrutinees — through
            // the block (Rust extends scrutinee temporaries to the end of
            // the expression; plain `if`/`while` conditions drop theirs
            // before the block runs).
            let extends = matches!(toks[head].text.as_str(), "match" | "for")
                || (matches!(toks[head].text.as_str(), "if" | "while")
                    && toks.get(head + 1).is_some_and(|t| t.text == "let"));
            let recv = if k > 0 { toks[k - 1].text.clone() } else { String::new() };
            let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
            let mut in_block = false;
            let mut end = body.end;
            for (m, tok) in toks.iter().enumerate().take(body.end).skip(k + 4) {
                match tok.text.as_str() {
                    "(" => p += 1,
                    ")" => p -= 1,
                    "[" => b += 1,
                    "]" => b -= 1,
                    "{" => {
                        if p == 0 && b == 0 && c == 0 {
                            if !extends {
                                end = m;
                                break;
                            }
                            in_block = true;
                        }
                        c += 1;
                    }
                    "}" => {
                        c -= 1;
                        if in_block && c == 0 {
                            end = m + 1;
                            break;
                        }
                    }
                    ";" if p == 0 && b == 0 && c == 0 => {
                        end = m;
                        break;
                    }
                    _ => {}
                }
                if p < 0 || c < 0 {
                    // Statement closed by the surrounding expression.
                    end = m;
                    break;
                }
            }
            guards.push(Guard { range: k..end, name: recv, line });
        }
    }
    guards
}
