//! Protocol tag matrix: every `tags::X` send site and handler match arm
//! across core/mpi/replica, cross-checked so that a tag cannot be sent
//! with no handler (the message rots in a mailbox and the vclock monitor
//! reports an unmatched channel at finalize) or handled but never sent
//! (dead protocol surface that silently diverges from the spec).
//!
//! Classification is lexical over the enclosing-call stack:
//! - inside a `.send(` / `.send_at(` argument list        -> SENT
//! - 1st / 2nd `tags::` argument of `rpc_with_retry(..)`  -> SENT / AWAITED
//! - inside `RecvTag::Tag(..)` / `Tag(..)` recv argument  -> AWAITED
//! - match arm `tags::X =>`                               -> HANDLED
//! - `== tags::X` / `tags::X ==` comparisons              -> neutral
//!
//! The static matrix complements the runtime `ProtoMonitor`, which keys
//! channel accounting by `(comm, src, dst, tag)`: two tags declared with
//! the same value would alias a monitor channel, so duplicate values are
//! also an error here.

use std::collections::HashMap;

use crate::callgraph::Ws;
use crate::report::Finding;
use crate::rules::{find_seq, seq_at};

const RULE: &str = "tag-matrix";

/// Crates whose send/handle sites feed the matrix.
const TAG_UNIVERSE: &[&str] = &["crates/core/", "crates/mpi/", "crates/replica/"];

#[derive(Default)]
struct TagUse {
    decl: Option<(usize, usize, u32)>, // (file, line, value)
    sent: Vec<(usize, usize)>,
    awaited: Vec<(usize, usize)>,
    handled: Vec<(usize, usize)>,
}

pub fn run(ws: &Ws) -> Vec<Finding> {
    let mut uses: HashMap<String, TagUse> = HashMap::new();
    // 1. Declared tags: `pub const NAME: u32 = N;` inside `pub mod tags`
    //    of crates/core/src/msg.rs.
    let Some(msg_file) = ws.rels.iter().position(|r| r.ends_with("crates/core/src/msg.rs")) else {
        return Vec::new();
    };
    {
        let toks = &ws.lexed[msg_file].tokens;
        let Some(m) = find_seq(toks, &["mod", "tags", "{"]) else { return Vec::new() };
        let open = m + 2;
        let mut depth = 0i32;
        let mut i = open;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "const" if depth == 1 => {
                    let name = toks[i + 1].text.clone();
                    // const NAME : u32 = VALUE ;
                    if let Some(v) = toks.get(i + 5).and_then(|t| t.text.parse::<u32>().ok()) {
                        uses.entry(name).or_default().decl = Some((msg_file, toks[i + 1].line, v));
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    if uses.is_empty() {
        return Vec::new();
    }
    // 2. Classify every `tags::NAME` occurrence in the tag universe.
    for file in 0..ws.rels.len() {
        if !TAG_UNIVERSE
            .iter()
            .any(|p| ws.rels[file].starts_with(p) || ws.rels[file].contains(&format!("/{p}")))
        {
            continue;
        }
        let toks = &ws.lexed[file].tokens;
        // Enclosing-call stack: (callee name, paren depth at which it opened,
        // count of tags:: arguments seen so far in this frame).
        let mut stack: Vec<(String, i32, u32)> = Vec::new();
        let mut paren = 0i32;
        for i in 0..toks.len() {
            match toks[i].text.as_str() {
                "(" => {
                    paren += 1;
                    if i > 0 && toks[i - 1].kind == crate::lexer::TokKind::Ident {
                        stack.push((toks[i - 1].text.clone(), paren, 0));
                    }
                }
                ")" => {
                    if stack.last().is_some_and(|f| f.1 == paren) {
                        stack.pop();
                    }
                    paren -= 1;
                }
                "tags" if seq_at(toks, i, &["tags", ":", ":"]) => {
                    let n = i + 3;
                    let Some(name_tok) = toks.get(n) else { continue };
                    let name = name_tok.text.clone();
                    if !uses.contains_key(&name) {
                        continue;
                    }
                    let line = name_tok.line;
                    if ws.in_tests(file, line) {
                        continue;
                    }
                    let site = (file, line);
                    // Neutral: comparison operand.
                    let eq_before = i >= 2
                        && (toks[i - 1].text == "="
                            || (toks[i - 1].text == "!" && toks[i - 2].text != "="));
                    let eq_after = toks.get(n + 1).is_some_and(|t| t.text == "=")
                        && toks.get(n + 2).is_some_and(|t| t.text == "=");
                    let arm = toks.get(n + 1).is_some_and(|t| t.text == "=")
                        && toks.get(n + 2).is_some_and(|t| t.text == ">");
                    let u = uses.get_mut(&name).unwrap();
                    if arm {
                        u.handled.push(site);
                        continue;
                    }
                    if eq_after || eq_before {
                        continue; // comparison, neutral
                    }
                    // Innermost classifying frame wins; a mention with no
                    // classifying frame is neutral.
                    for f in stack.iter_mut().rev() {
                        match f.0.as_str() {
                            "send" | "send_at" => u.sent.push(site),
                            "rpc_with_retry" => {
                                f.2 += 1;
                                if f.2 == 1 {
                                    u.sent.push(site);
                                } else {
                                    u.awaited.push(site);
                                }
                            }
                            "Tag" => u.awaited.push(site),
                            _ => continue,
                        }
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    // 3. The matrix.
    let mut findings = Vec::new();
    let mut names: Vec<&String> = uses.keys().collect();
    names.sort();
    // Duplicate values alias monitor channels.
    let mut by_value: HashMap<u32, Vec<&String>> = HashMap::new();
    for n in &names {
        if let Some((_, _, v)) = uses[*n].decl {
            by_value.entry(v).or_default().push(n);
        }
    }
    for (v, tags) in &by_value {
        if tags.len() > 1 {
            for dup in &tags[1..] {
                let (file, line, _) = uses[*dup].decl.unwrap();
                if ws.allowed(file, line, RULE) {
                    continue;
                }
                findings.push(Finding {
                    rule: RULE,
                    path: ws.rels[file].clone(),
                    line,
                    text: format!(
                        "duplicate tag value {v}: `{}` aliases `{}` — monitor channels are keyed by (comm, src, dst, tag) and would merge",
                        dup, tags[0]
                    ),
                    trace: Vec::new(),
                });
            }
        }
    }
    for n in names {
        let u = &uses[n];
        let Some((dfile, dline, val)) = u.decl else { continue };
        let consumed = !u.handled.is_empty() || !u.awaited.is_empty();
        if !u.sent.is_empty() && !consumed {
            let &(file, line) = u.sent.first().unwrap();
            if !ws.allowed(file, line, RULE) {
                findings.push(Finding {
                    rule: RULE,
                    path: ws.rels[file].clone(),
                    line,
                    text: format!(
                        "tag `{n}` ({val}) is sent here but no handler arm or recv awaits it"
                    ),
                    trace: Vec::new(),
                });
            }
        } else if consumed && u.sent.is_empty() {
            let &(file, line) = u.handled.first().or(u.awaited.first()).unwrap();
            if !ws.allowed(file, line, RULE) {
                findings.push(Finding {
                    rule: RULE,
                    path: ws.rels[file].clone(),
                    line,
                    text: format!(
                        "tag `{n}` ({val}) is handled/awaited here but never sent anywhere"
                    ),
                    trace: Vec::new(),
                });
            }
        } else if u.sent.is_empty() && !consumed && !ws.allowed(dfile, dline, RULE) {
            findings.push(Finding {
                rule: RULE,
                path: ws.rels[dfile].clone(),
                line: dline,
                text: format!("tag `{n}` ({val}) is declared but never sent or handled"),
                trace: Vec::new(),
            });
        }
    }
    findings
}
