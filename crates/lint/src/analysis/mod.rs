//! The four interprocedural analyses.
//!
//! All four run over the same parsed universe: the runtime crates whose
//! interactions the PapyrusKV protocol depends on. Tooling crates
//! (modelcheck, crashcheck, chaos, perfline, bench), the compat shims,
//! examples, and the demo apps are excluded — name+arity resolution over
//! the whole tree would drown the runtime signal in lookalike edges from
//! code that never runs in a protocol thread (policy: DESIGN.md §14).

pub mod atomics;
pub mod blocking;
pub mod panics;
pub mod tags;

use crate::callgraph::{CallGraph, Ws};
use crate::report::Finding;
use crate::SourceTree;

/// Crates in the interprocedural analysis universe.
const UNIVERSE: &[&str] = &[
    "crates/core/",
    "crates/mpi/",
    "crates/nvm/",
    "crates/replica/",
    "crates/simtime/",
    "crates/sanity/",
    "crates/telemetry/",
    "crates/faultinject/",
    "crates/serve/",
];

pub fn in_universe(rel: &str) -> bool {
    UNIVERSE.iter().any(|p| rel.starts_with(p))
}

/// Run all four analyses over `tree`, sorted by (file, line, rule).
pub fn run_deep(tree: &SourceTree) -> Vec<Finding> {
    let ws = Ws::build(tree, &in_universe);
    let cg = CallGraph::build(&ws);
    let mut findings = Vec::new();
    findings.extend(panics::run(&ws, &cg));
    findings.extend(blocking::run(&ws, &cg));
    findings.extend(tags::run(&ws));
    findings.extend(atomics::run(&ws));
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    /// Deep-analysis findings over `fixtures/deep` — a miniature workspace
    /// with one planted violation per finding kind plus the lexical-guard
    /// negatives the analyses must stay silent on.
    fn fixture_findings() -> Vec<Finding> {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/deep");
        let tree = SourceTree::load(&root);
        assert!(!tree.files.is_empty(), "deep fixture missing");
        run_deep(&tree)
    }

    fn lines_of(findings: &[Finding], rule: &str, path: &str) -> Vec<usize> {
        findings.iter().filter(|f| f.rule == rule && f.path == path).map(|f| f.line).collect()
    }

    #[test]
    fn panic_reachability_pins_fixture_findings() {
        let all = fixture_findings();
        let findings: Vec<&Finding> = all.iter().filter(|f| f.rule == "panic-path").collect();
        // decode's raw indexing (entry file) + parse8's transitive unwrap.
        // NOT: the waived decode_checked line, the unreachable
        // orphan_unwrap, or parse8's raw slice index (non-entry file).
        assert_eq!(findings.len(), 2, "{findings:#?}");
        assert_eq!(lines_of(&all, "panic-path", "crates/core/src/msg.rs"), vec![19]);
        let transitive = findings
            .iter()
            .find(|f| f.path == "crates/core/src/util.rs")
            .expect("transitive unwrap finding");
        // Full call path: entry -> helper -> sink.
        assert_eq!(transitive.trace.len(), 3, "{:?}", transitive.trace);
        assert!(transitive.trace[0].contains("dispatch"), "{:?}", transitive.trace);
        assert!(transitive.trace[1].contains("handle_put"), "{:?}", transitive.trace);
        assert!(transitive.trace[2].contains("parse8"), "{:?}", transitive.trace);
    }

    #[test]
    fn blocking_under_lock_pins_fixture_findings() {
        let all = fixture_findings();
        let lines = lines_of(&all, "blocking-under-lock", "crates/core/src/db.rs");
        // direct recv, transitive relay, thread::sleep, match-scrutinee —
        // and nothing from the deref-copy / drop-first / if-condition fns
        // or from the primitive file's own internal mutex.
        assert_eq!(lines.len(), 4, "{all:#?}");
        assert!(
            !all.iter().any(|f| f.path == "crates/mpi/src/fabric.rs"),
            "primitive file must be excluded: {all:#?}"
        );
        let transitive = all
            .iter()
            .find(|f| f.rule == "blocking-under-lock" && f.text.contains("relay"))
            .expect("transitive finding");
        assert!(
            transitive.trace.iter().any(|s| s.contains("recv")),
            "trace reaches the primitive: {:?}",
            transitive.trace
        );
    }

    #[test]
    fn tag_matrix_pins_fixture_findings() {
        let all = fixture_findings();
        let findings: Vec<&Finding> = all.iter().filter(|f| f.rule == "tag-matrix").collect();
        let texts: Vec<&str> = findings.iter().map(|f| f.text.as_str()).collect();
        assert!(texts.iter().any(|t| t.contains("`GET`") && t.contains("sent")), "{texts:#?}");
        assert!(
            texts.iter().any(|t| t.contains("`ACK`") && t.contains("never sent")),
            "{texts:#?}"
        );
        assert!(texts.iter().any(|t| t.contains("duplicate tag value 3")), "{texts:#?}");
        assert!(texts.iter().any(|t| t.contains("`SPARE`")), "{texts:#?}");
        // PUT is sent AND handled — silent.
        assert!(!texts.iter().any(|t| t.contains("`PUT`")), "{texts:#?}");
    }

    #[test]
    fn atomic_pairing_pins_fixture_findings() {
        let all = fixture_findings();
        let findings: Vec<&Finding> = all.iter().filter(|f| f.rule == "atomic-pairing").collect();
        let texts: Vec<&str> = findings.iter().map(|f| f.text.as_str()).collect();
        assert_eq!(findings.len(), 3, "{findings:#?}");
        assert!(texts.iter().any(|t| t.contains("`orphan`")), "{texts:#?}");
        assert!(texts.iter().any(|t| t.contains("`lonely`")), "{texts:#?}");
        assert!(texts.iter().any(|t| t.contains("AtomicPtr field `hot`")), "{texts:#?}");
        // `ready` (store/load pair) and `cnt` (AcqRel RMW) are silent.
        assert!(!texts.iter().any(|t| t.contains("`ready`") || t.contains("`cnt`")), "{texts:#?}");
    }

    /// The real workspace must be deep-clean modulo justified
    /// `lint:allow` waivers — the same gate CI enforces.
    #[test]
    fn real_workspace_is_deep_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
        let tree = SourceTree::load(root);
        assert!(!tree.files.is_empty());
        let findings = run_deep(&tree);
        assert!(
            findings.is_empty(),
            "deep analyses must be clean (fix or waive with lint:allow):\n{}",
            findings.iter().map(Finding::render).collect::<Vec<_>>().join("\n")
        );
    }
}
