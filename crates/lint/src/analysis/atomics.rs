//! Atomic pairing audit: every atomic field's operations are grouped by
//! field name across the whole workspace and checked for release/acquire
//! pairing.
//!
//! A `store(Release)` with no `load(Acquire)`-side partner anywhere
//! publishes to nobody — either the ordering is an accident or the reader
//! is missing its fence. Symmetrically, a `load(Acquire)` whose writers
//! are all `Relaxed` synchronises with nothing. `AtomicPtr` published
//! with `Relaxed` is the classic torn-publication bug: readers can see
//! the pointer before the pointee's writes.
//!
//! RMW orderings decompose into (load side, store side):
//! `AcqRel -> (Acquire, Release)`, `Acquire -> (Acquire, Relaxed)`,
//! `Release -> (Relaxed, Release)`, `SeqCst -> (SeqCst, SeqCst)`.
//!
//! Grouping is by field name only (no type inference), so same-named
//! fields on different structs merge — conservative, documented in
//! DESIGN.md §14. Accepted sites carry `// lint:allow(atomic-pairing)`.

use std::collections::HashMap;

use crate::callgraph::Ws;
use crate::lexer::TokKind;
use crate::report::Finding;

const RULE: &str = "atomic-pairing";

const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

const OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

#[derive(Clone, Copy, PartialEq, Debug)]
enum AtomicOrd {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

struct Op {
    file: usize,
    line: usize,
    /// (load side, store side); `None` = the op has no such side.
    load_side: Option<AtomicOrd>,
    store_side: Option<AtomicOrd>,
}

pub fn run(ws: &Ws) -> Vec<Finding> {
    let mut groups: HashMap<String, Vec<Op>> = HashMap::new();
    let mut ptr_fields: Vec<String> = Vec::new();
    for file in 0..ws.rels.len() {
        let toks = &ws.lexed[file].tokens;
        for i in 0..toks.len() {
            // Field/static declarations: `name: AtomicXxx` (possibly with a
            // path prefix before the type).
            if toks[i].kind == TokKind::Ident && ATOMIC_TYPES.contains(&toks[i].text.as_str()) {
                let mut j = i;
                while j >= 3
                    && toks[j - 1].text == ":"
                    && toks[j - 2].text == ":"
                    && toks[j - 3].kind == TokKind::Ident
                {
                    j -= 3;
                }
                if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].kind == TokKind::Ident {
                    let name = toks[j - 2].text.clone();
                    if toks[i].text == "AtomicPtr" && !ptr_fields.contains(&name) {
                        ptr_fields.push(name);
                    }
                }
            }
            // Operations: `<field> . op ( .. Ordering::X .. )`
            if i >= 2
                && toks[i - 1].text == "."
                && toks[i - 2].kind == TokKind::Ident
                && OPS.contains(&toks[i].text.as_str())
                && toks.get(i + 1).is_some_and(|t| t.text == "(")
            {
                let field = toks[i - 2].text.clone();
                let line = toks[i].line;
                if ws.in_tests(file, line) {
                    continue;
                }
                // First `Ordering::X` in the argument list is the success /
                // primary ordering.
                let mut depth = 0i32;
                let mut ord = None;
                for m in (i + 1)..toks.len() {
                    match toks[m].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "Ordering"
                            if ord.is_none() && toks.get(m + 1).is_some_and(|t| t.text == ":") =>
                        {
                            ord = toks.get(m + 3).and_then(|t| parse_ord(&t.text));
                        }
                        _ => {}
                    }
                }
                let Some(ord) = ord else { continue };
                let (load_side, store_side) = sides(&toks[i].text, ord);
                groups.entry(field).or_default().push(Op { file, line, load_side, store_side });
            }
        }
    }
    let mut findings = Vec::new();
    let mut names: Vec<&String> = groups.keys().collect();
    names.sort();
    for name in names {
        let ops = &groups[name];
        let acquire_loads: Vec<&Op> = ops
            .iter()
            .filter(|o| matches!(o.load_side, Some(AtomicOrd::Acquire | AtomicOrd::SeqCst)))
            .collect();
        let release_stores: Vec<&Op> = ops
            .iter()
            .filter(|o| matches!(o.store_side, Some(AtomicOrd::Release | AtomicOrd::SeqCst)))
            .collect();
        let any_store: Vec<&Op> = ops.iter().filter(|o| o.store_side.is_some()).collect();
        if !release_stores.is_empty() && acquire_loads.is_empty() {
            let o = release_stores[0];
            if !ws.allowed(o.file, o.line, RULE) {
                findings.push(finding(ws, o, format!(
                    "`{name}` is published with Release ordering but no Acquire-side load of `{name}` exists anywhere in the workspace"
                )));
            }
        }
        if !acquire_loads.is_empty() && !any_store.is_empty() && release_stores.is_empty() {
            let o = acquire_loads[0];
            if !ws.allowed(o.file, o.line, RULE) {
                findings.push(finding(ws, o, format!(
                    "`{name}` is loaded with Acquire ordering but every store to `{name}` is Relaxed — the acquire synchronises with nothing"
                )));
            }
        }
        if ptr_fields.contains(name) {
            for o in &any_store {
                if o.store_side == Some(AtomicOrd::Relaxed) && !ws.allowed(o.file, o.line, RULE) {
                    findings.push(finding(ws, o, format!(
                        "AtomicPtr field `{name}` is published with Relaxed ordering — readers can observe the pointer before the pointee"
                    )));
                }
            }
        }
    }
    findings
}

fn finding(ws: &Ws, o: &Op, text: String) -> Finding {
    Finding {
        rule: RULE,
        path: ws.rels[o.file].clone(),
        line: o.line,
        text: format!("{text}: {}", ws.line_text(o.file, o.line).trim()),
        trace: Vec::new(),
    }
}

fn parse_ord(s: &str) -> Option<AtomicOrd> {
    Some(match s {
        "Relaxed" => AtomicOrd::Relaxed,
        "Acquire" => AtomicOrd::Acquire,
        "Release" => AtomicOrd::Release,
        "AcqRel" => AtomicOrd::AcqRel,
        "SeqCst" => AtomicOrd::SeqCst,
        _ => return None,
    })
}

/// Decompose an op + ordering into (load side, store side).
fn sides(op: &str, ord: AtomicOrd) -> (Option<AtomicOrd>, Option<AtomicOrd>) {
    match op {
        "load" => (Some(ord), None),
        "store" => (None, Some(ord)),
        _ => match ord {
            AtomicOrd::AcqRel => (Some(AtomicOrd::Acquire), Some(AtomicOrd::Release)),
            AtomicOrd::Acquire => (Some(AtomicOrd::Acquire), Some(AtomicOrd::Relaxed)),
            AtomicOrd::Release => (Some(AtomicOrd::Relaxed), Some(AtomicOrd::Release)),
            AtomicOrd::SeqCst => (Some(AtomicOrd::SeqCst), Some(AtomicOrd::SeqCst)),
            AtomicOrd::Relaxed => (Some(AtomicOrd::Relaxed), Some(AtomicOrd::Relaxed)),
        },
    }
}
