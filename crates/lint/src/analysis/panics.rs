//! Panic-reachability: `unwrap`/`expect`/`panic!`-family sites (plus raw
//! indexing in the entry files themselves) that the call graph can reach
//! from a protocol or recovery entry point.
//!
//! Entry points are the `pub` fns of `runtime.rs`, `msg.rs`, and `ckpt.rs`
//! — the surfaces another rank's dispatcher, retry loop, or restart path
//! drives. A panic anywhere below them turns into a hung collective on
//! every peer, so each finding carries the full call path that makes the
//! site reachable.
//!
//! False-positive policy (DESIGN.md §14): `assert!`/`debug_assert!` are
//! deliberate invariant enforcement and are not flagged; raw indexing is
//! only flagged inside the entry files themselves (elsewhere the idiom is
//! length-guarded slice math and flagging it all would bury the signal);
//! accepted sites carry `// lint:allow(panic-path)` with a one-line
//! justification.

use crate::callgraph::{CallGraph, Ws};
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::seq_at;

const RULE: &str = "panic-path";

/// Entry-point files: their `pub` fns seed the reachability sweep.
///
/// The serve codec files are entries too: every byte they parse arrives
/// from an untrusted client socket, so a reachable panic is a remote
/// crash. (`server.rs` is deliberately not an entry — it drives `Db`,
/// whose internal `unwrap`s on poisoned locks are the engine's own
/// invariant enforcement, audited separately.)
const ENTRY_PATHS: &[&str] = &[
    "crates/core/src/runtime.rs",
    "crates/core/src/msg.rs",
    "crates/core/src/ckpt.rs",
    "crates/serve/src/resp.rs",
    "crates/serve/src/cmd.rs",
];

pub fn run(ws: &Ws, cg: &CallGraph) -> Vec<Finding> {
    let entries: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.is_pub && !f.is_test && ENTRY_PATHS.iter().any(|p| ws.rels[f.file].ends_with(p))
        })
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() {
        return Vec::new();
    }
    let (visited, parent) = cg.reach(&entries);
    let mut findings: Vec<Finding> = Vec::new();
    let mut seen: Vec<(usize, usize)> = Vec::new(); // (file, line) dedup across nested fns
    for (fi, item) in ws.fns.iter().enumerate() {
        if !visited[fi] || item.is_test || item.body.is_empty() {
            continue;
        }
        let file = item.file;
        let toks = &ws.lexed[file].tokens;
        let entry_file = ENTRY_PATHS.iter().any(|p| ws.rels[file].ends_with(p));
        for i in item.body.clone() {
            let what = if seq_at(toks, i, &[".", "unwrap", "(", ")"]) {
                Some("`.unwrap()`")
            } else if seq_at(toks, i, &[".", "expect", "("]) {
                Some("`.expect(..)`")
            } else if toks.get(i + 1).is_some_and(|t| t.text == "!")
                && matches!(
                    toks[i].text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && toks[i].kind == TokKind::Ident
            {
                Some("panic-family macro")
            } else if entry_file
                && toks[i].text == "["
                && i > 0
                && (toks[i - 1].kind == TokKind::Ident
                    || toks[i - 1].text == ")"
                    || toks[i - 1].text == "]")
                && !crate::parse::is_call_keyword(&toks[i - 1].text)
            {
                Some("raw indexing")
            } else {
                None
            };
            let Some(what) = what else { continue };
            let line = toks[i].line;
            if ws.in_tests(file, line)
                || ws.allowed(file, line, RULE)
                || seen.contains(&(file, line))
            {
                continue;
            }
            seen.push((file, line));
            let trace: Vec<String> =
                CallGraph::path_to(&parent, fi).iter().map(|&f| ws.fn_label(f)).collect();
            findings.push(Finding {
                rule: RULE,
                path: ws.rels[file].clone(),
                line,
                text: format!(
                    "{what} reachable from protocol/recovery entry: {}",
                    ws.line_text(file, line).trim()
                ),
                trace,
            });
        }
    }
    findings
}
