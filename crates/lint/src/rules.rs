//! Token-based file-local rules.
//!
//! Rules the repo enforces that rustc/clippy cannot express. All matching
//! runs over the lexed token stream from [`crate::lexer`], so banned
//! patterns inside string literals or comments never trip a rule, and
//! justification comments are looked up by line rather than substring.
//!
//! Rules:
//!
//! - **std-sync-lock** — no `std::sync::{Mutex, RwLock, Condvar}` outside
//!   `compat/` (the parking_lot shim wraps them and feeds the sanity
//!   lock-order detector; a raw std lock is invisible to it). Carve-outs:
//!   `crates/sanity` (the detector cannot be built on the primitives it
//!   checks), `crates/modelcheck` (the schedule explorer's own scheduler
//!   state must live on real OS primitives — shimming it would recurse),
//!   and `xtask`.
//! - **protocol-unwrap** — no `.unwrap()` / `.expect(` in protocol-handler
//!   paths: a panic inside a dispatcher/handler thread deadlocks the ranks
//!   blocked on it instead of failing loudly. Test modules are exempt.
//! - **recovery-unwrap** — same, for recovery paths that run against
//!   arbitrary crash debris.
//! - **real-time** — no `std::time::{Instant, SystemTime}` under `crates/`
//!   outside `crates/simtime`: all timing must flow through virtual SimNs
//!   clocks or results become wall-clock dependent.
//! - **tel-span-balance** — per file, every telemetry span opened with
//!   `.begin(` is closed with `.end(` (count parity).
//! - **atomic-ordering-justified** — every `Ordering::Relaxed` and
//!   `Ordering::SeqCst` use needs an `// ordering:` comment on the same
//!   line or in the comment block directly above, saying why that extreme
//!   of the ordering spectrum is correct. `Acquire`/`Release`/`AcqRel` are
//!   the defaults the repo reaches for and need no ceremony; `Relaxed`
//!   (no synchronisation at all) and `SeqCst` (global order, usually a
//!   smell for a missing design) are the two that demand an argument.
//! - **unsafe-needs-safety-comment** — every `unsafe {` block and
//!   `unsafe impl` carries a `// SAFETY:` comment on the same line or in
//!   the comment block directly above.
//! - **no-atomic-in-protocol** — protocol-path files must not name
//!   `std::sync::atomic` directly; they use the `papyrus_sanity::atomic`
//!   facade, which swaps in the model-checker's shimmed atomics under
//!   `--cfg modelcheck` so protocol interleavings stay explorable.
//!
//! A finding on a specific line can be waived with a trailing
//! `// lint:allow(<rule>)` comment.

use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::report::Finding;
use crate::SourceTree;

/// Files where `.unwrap()` / `.expect(` would panic inside a protocol
/// dispatcher/handler thread (or while decoding a wire message another
/// rank's retry loop will resend). Also the scope of
/// `no-atomic-in-protocol`.
pub(crate) const PROTOCOL_PATHS: &[&str] = &[
    "crates/mpi/src/fabric.rs",
    "crates/core/src/db.rs",
    "crates/core/src/runtime.rs",
    "crates/core/src/msg.rs",
    // The serve codec decodes bytes straight off client sockets: a panic
    // there takes down the whole rank, not just one connection.
    "crates/serve/src/resp.rs",
    "crates/serve/src/cmd.rs",
];

/// Recovery-path files that must tolerate arbitrary crash debris: a panic
/// here strands the peer ranks at the next collective.
pub(crate) const RECOVERY_PATHS: &[&str] = &["crates/core/src/ckpt.rs"];

/// Path prefixes exempt from `atomic-ordering-justified`. Kept empty on
/// purpose: every Relaxed/SeqCst in the tree carries its argument. The
/// mechanism exists so a future vendored crate can be carved out without
/// weakening the rule for first-party code.
const ORDERING_ALLOWLIST: &[&str] = &[];

/// Run every token rule over all files of `tree`; returns the findings.
pub fn run_rules(tree: &SourceTree) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &tree.files {
        lint_file(&f.rel, &f.text, &mut findings);
    }
    findings
}

/// Per-file lint context: lexed streams plus line-indexed lookups. Shared
/// with the interprocedural analyses for waiver / test-module lookups.
pub(crate) struct FileCtx<'a> {
    pub(crate) rel: &'a str,
    lines: Vec<&'a str>,
    pub(crate) lx: Lexed,
    /// Line of the first `#[cfg(test)]` token sequence, if any; everything
    /// from that line on is test code (matches the repo convention of one
    /// trailing test module per file).
    tests_from: Option<usize>,
}

impl<'a> FileCtx<'a> {
    pub(crate) fn new(rel: &'a str, source: &'a str) -> Self {
        let lx = lex(source);
        let tests_from =
            find_seq(&lx.tokens, &["#", "[", "cfg", "(", "test"]).map(|i| lx.tokens[i].line);
        Self { rel, lines: source.lines().collect(), lx, tests_from }
    }

    pub(crate) fn in_tests(&self, line: usize) -> bool {
        self.tests_from.is_some_and(|t| line >= t)
    }

    pub(crate) fn line_text(&self, line: usize) -> String {
        self.lines.get(line - 1).copied().unwrap_or("").to_string()
    }

    /// Waived if any comment on `line` carries `lint:allow(<rule>)`.
    pub(crate) fn allowed(&self, line: usize, rule: &str) -> bool {
        let needle = format!("lint:allow({rule})");
        self.lx.comments_on(line).any(|c| c.text.contains(&needle))
    }

    /// Like [`Self::allowed`], but anywhere in the file (for whole-file
    /// rules).
    fn allowed_anywhere(&self, rule: &str) -> bool {
        let needle = format!("lint:allow({rule})");
        self.lx.comments.iter().any(|c| c.text.contains(&needle))
    }

    /// True if a comment containing `marker` sits on `line` itself or in
    /// the contiguous block of comment-only lines directly above it.
    ///
    /// When `run_ident` is set, the upward walk also crosses code lines
    /// that mention that identifier: one justification block may cover an
    /// unbroken run of related sites (e.g. the four stat-cell RMWs of a
    /// histogram record) instead of demanding four copies of the same
    /// sentence. Any unrelated code line still breaks the chain.
    fn justified(&self, line: usize, marker: &str, run_ident: Option<&str>) -> bool {
        if self.lx.comments_on(line).any(|c| c.text.contains(marker)) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            // A line belongs to the justification block if a comment starts
            // on it and no code token does.
            let has_comment = self.lx.comments_on(l).next().is_some();
            let has_code = self.lx.tokens.iter().any(|t| t.line == l);
            if has_code || !has_comment {
                // Attribute lines (`#[inline]`, `#[test]`) between the
                // comment and the item are common; skip pure-attribute
                // lines and keep walking.
                if has_code
                    && self.lines.get(l - 1).is_some_and(|s| s.trim_start().starts_with("#["))
                {
                    continue;
                }
                // Same-rule run: keep walking up through sibling sites.
                if has_code
                    && run_ident.is_some_and(|id| {
                        self.lx.tokens.iter().any(|t| t.line == l && t.text == id)
                    })
                {
                    continue;
                }
                return false;
            }
            if self.lx.comments_on(l).any(|c| c.text.contains(marker)) {
                return true;
            }
        }
        false
    }

    fn push(&self, findings: &mut Vec<Finding>, rule: &'static str, line: usize) {
        findings.push(Finding {
            rule,
            path: self.rel.to_string(),
            line,
            text: self.line_text(line),
            trace: vec![],
        });
    }
}

/// Match `pat` against token texts starting at `i` (idents and puncts by
/// exact text; `::` must be written as two `:` entries).
pub(crate) fn seq_at(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    i + pat.len() <= toks.len() && pat.iter().zip(&toks[i..]).all(|(p, t)| t.text == *p)
}

/// First index where `pat` matches.
pub(crate) fn find_seq(toks: &[Tok], pat: &[&str]) -> Option<usize> {
    (0..toks.len().saturating_sub(pat.len() - 1)).find(|&i| seq_at(toks, i, pat))
}

fn lint_file(rel: &str, source: &str, findings: &mut Vec<Finding>) {
    let ctx = FileCtx::new(rel, source);
    let toks = &ctx.lx.tokens;

    let std_sync_applies = !(rel.starts_with("compat/")
        || rel.starts_with("crates/sanity/")
        || rel.starts_with("crates/modelcheck/")
        || rel.starts_with("xtask/"));
    let protocol_applies = PROTOCOL_PATHS.contains(&rel);
    let recovery_applies = RECOVERY_PATHS.contains(&rel);
    let real_time_applies = rel.starts_with("crates/") && !rel.starts_with("crates/simtime/");
    let ordering_applies = !ORDERING_ALLOWLIST.iter().any(|p| rel.starts_with(p));

    let mut begin_count = 0usize;
    let mut end_count = 0usize;
    let mut first_begin_line = 0usize;

    let mut i = 0;
    while i < toks.len() {
        let line = toks[i].line;

        // --- std-sync-lock / no-atomic-in-protocol / real-time: path uses.
        if seq_at(toks, i, &["std", ":", ":", "sync", ":", ":"]) {
            let after = i + 6;
            if seq_at(toks, after, &["atomic"]) {
                if protocol_applies
                    && !ctx.in_tests(line)
                    && !ctx.allowed(line, "no-atomic-in-protocol")
                {
                    ctx.push(findings, "no-atomic-in-protocol", line);
                }
            } else if std_sync_applies {
                let mut hit = false;
                if toks.get(after).is_some_and(|t| is_sync_lock_name(&t.text)) {
                    hit = true;
                } else if toks.get(after).is_some_and(|t| t.text == "{") {
                    // `use std::sync::{...}` group: scan to the matching
                    // brace, skipping any nested `atomic::{...}` subgroup.
                    hit = group_names_lock(toks, after);
                }
                if hit && !ctx.allowed(line, "std-sync-lock") {
                    ctx.push(findings, "std-sync-lock", line);
                }
            }
        }

        // --- real-time.
        if real_time_applies && !ctx.allowed(line, "real-time") {
            let direct = seq_at(toks, i, &["std", ":", ":", "time", ":", ":"])
                && toks.get(i + 6).is_some_and(|t| {
                    is_real_time_name(&t.text)
                        || (t.text == "{" && group_names_real_time(toks, i + 6))
                });
            let bare_now = (seq_at(toks, i, &["Instant", ":", ":", "now", "("])
                || seq_at(toks, i, &["SystemTime", ":", ":", "now", "("]))
                // `SimInstant::now()` etc. must not match; bare names only —
                // check the previous token is not a path separator.
                && (i == 0 || toks[i - 1].text != ":");
            if direct || bare_now {
                ctx.push(findings, "real-time", line);
            }
        }

        // --- protocol-unwrap / recovery-unwrap.
        if (protocol_applies || recovery_applies) && !ctx.in_tests(line) {
            let unwrapish = seq_at(toks, i, &[".", "unwrap", "(", ")"])
                || seq_at(toks, i, &[".", "expect", "("]);
            if unwrapish {
                if protocol_applies && !ctx.allowed(line, "protocol-unwrap") {
                    ctx.push(findings, "protocol-unwrap", line);
                }
                if recovery_applies && !ctx.allowed(line, "recovery-unwrap") {
                    ctx.push(findings, "recovery-unwrap", line);
                }
            }
        }

        // --- atomic-ordering-justified.
        if ordering_applies
            && seq_at(toks, i, &["Ordering", ":", ":"])
            && toks.get(i + 3).is_some_and(|t| t.text == "Relaxed" || t.text == "SeqCst")
            && !ctx.justified(line, "ordering:", Some("Ordering"))
            && !ctx.allowed(line, "atomic-ordering-justified")
        {
            ctx.push(findings, "atomic-ordering-justified", line);
        }

        // --- unsafe-needs-safety-comment: `unsafe {` blocks and
        // `unsafe impl`; `unsafe fn` signatures document their contract in
        // rustdoc instead and every *call* to one sits in an unsafe block.
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "unsafe"
            && toks.get(i + 1).is_some_and(|t| t.text == "{" || t.text == "impl")
            && !ctx.justified(line, "SAFETY:", None)
            && !ctx.allowed(line, "unsafe-needs-safety-comment")
        {
            ctx.push(findings, "unsafe-needs-safety-comment", line);
        }

        // --- tel-span-balance counters.
        if seq_at(toks, i, &[".", "begin", "("]) {
            if first_begin_line == 0 {
                first_begin_line = line;
            }
            begin_count += 1;
        }
        if seq_at(toks, i, &[".", "end", "("]) {
            end_count += 1;
        }

        i += 1;
    }

    if begin_count != end_count && !ctx.allowed_anywhere("tel-span-balance") {
        findings.push(Finding {
            rule: "tel-span-balance",
            path: rel.into(),
            line: first_begin_line.max(1),
            text: format!("{begin_count} span .begin( calls vs {end_count} .end( calls"),
            trace: vec![],
        });
    }
}

fn is_sync_lock_name(name: &str) -> bool {
    matches!(name, "Mutex" | "RwLock" | "Condvar")
}

fn is_real_time_name(name: &str) -> bool {
    matches!(name, "Instant" | "SystemTime")
}

/// Scan a `{ ... }` use-group starting at the `{` token for a lock name,
/// skipping any `atomic::{...}` / `atomic::X` subpaths (those are atomics,
/// covered by their own rules).
fn group_names_lock(toks: &[Tok], open: usize) -> bool {
    scan_group(toks, open, &is_sync_lock_name)
}

fn group_names_real_time(toks: &[Tok], open: usize) -> bool {
    scan_group(toks, open, &is_real_time_name)
}

fn scan_group(toks: &[Tok], open: usize, hit: &dyn Fn(&str) -> bool) -> bool {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "atomic" => {
                // Skip `atomic::{...}` or `atomic::Name` subpaths.
                if seq_at(toks, j, &["atomic", ":", ":", "{"]) {
                    let mut d = 0usize;
                    j += 3;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "{" => d += 1,
                            "}" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                } else if seq_at(toks, j, &["atomic", ":", ":"]) {
                    j += 3;
                }
            }
            name if hit(name) => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_lint;
    use std::path::{Path, PathBuf};

    fn fixture_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/tree")
    }

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/lint has a workspace root two levels up")
            .to_path_buf()
    }

    fn rules_hit(findings: &[Finding]) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
        rules.sort();
        rules.dedup();
        rules
    }

    #[test]
    fn fixture_tree_trips_every_rule() {
        let findings = run_lint(&fixture_root());
        let rules = rules_hit(&findings);
        assert_eq!(
            rules,
            vec![
                "atomic-ordering-justified",
                "no-atomic-in-protocol",
                "protocol-unwrap",
                "real-time",
                "recovery-unwrap",
                "std-sync-lock",
                "tel-span-balance",
                "unsafe-needs-safety-comment",
            ],
            "findings: {:#?}",
            findings
        );
    }

    #[test]
    fn fixture_findings_point_at_seeded_lines() {
        let findings = run_lint(&fixture_root());
        assert!(findings
            .iter()
            .any(|f| f.rule == "std-sync-lock" && f.path == "crates/core/src/bad_sync.rs"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "protocol-unwrap" && f.path == "crates/mpi/src/fabric.rs"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "protocol-unwrap" && f.path == "crates/core/src/msg.rs"));
        // The fixture fabric and msg files also have an .unwrap() under
        // #[cfg(test)] and a lint:allow'd one — none of those may be
        // reported: exactly one finding per file.
        assert_eq!(
            findings.iter().filter(|f| f.rule == "protocol-unwrap").count(),
            2,
            "{:#?}",
            findings
        );
        // Same exemptions for the recovery-path rule: its fixture seeds one
        // reportable unwrap plus a waived .expect( and a test-module one.
        assert_eq!(
            findings.iter().filter(|f| f.rule == "recovery-unwrap").count(),
            1,
            "{:#?}",
            findings
        );
        assert!(findings
            .iter()
            .any(|f| f.rule == "recovery-unwrap" && f.path == "crates/core/src/ckpt.rs"));
    }

    /// The serve codec is a protocol path, but its panic-free decode idiom
    /// (`get` + `match`), its waived length-checked `.expect(`, and its
    /// test-module `.unwrap()` are all exempt: the fixture file must
    /// produce zero findings of any rule.
    #[test]
    fn serve_codec_negatives_stay_quiet() {
        let findings = run_lint(&fixture_root());
        assert!(
            !findings.iter().any(|f| f.path == "crates/serve/src/resp.rs"),
            "serve codec negative fixture tripped a rule: {:#?}",
            findings
        );
    }

    /// The false-positive surface the regex generation had: banned names in
    /// string literals and comments. The fixture `strings.rs` is stuffed
    /// with them and must produce zero findings.
    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let findings = run_lint(&fixture_root());
        assert!(
            !findings.iter().any(|f| f.path.ends_with("strings.rs")),
            "string/comment content tripped a rule: {:#?}",
            findings
        );
    }

    #[test]
    fn ordering_rule_seeds_and_exemptions() {
        let findings = run_lint(&fixture_root());
        let hits: Vec<_> =
            findings.iter().filter(|f| f.rule == "atomic-ordering-justified").collect();
        // atomics.rs seeds exactly two unjustified sites (one Relaxed, one
        // SeqCst); the justified / waived / Acquire sites must not report.
        assert_eq!(hits.len(), 2, "{hits:#?}");
        assert!(hits.iter().all(|f| f.path.ends_with("atomics.rs")), "{hits:#?}");
    }

    #[test]
    fn unsafe_rule_seeds_and_exemptions() {
        let findings = run_lint(&fixture_root());
        let hits: Vec<_> =
            findings.iter().filter(|f| f.rule == "unsafe-needs-safety-comment").collect();
        // unsafe_blocks.rs seeds one bare `unsafe {` and one bare
        // `unsafe impl`; commented and waived ones stay quiet.
        assert_eq!(hits.len(), 2, "{hits:#?}");
        assert!(hits.iter().all(|f| f.path.ends_with("unsafe_blocks.rs")), "{hits:#?}");
    }

    #[test]
    fn protocol_atomic_rule_hits_protocol_file_only() {
        let findings = run_lint(&fixture_root());
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == "no-atomic-in-protocol").collect();
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert_eq!(hits[0].path, "crates/core/src/runtime.rs");
        // atomics.rs names std::sync::atomic too but is not a protocol
        // file, so the only hit is runtime.rs.
    }

    #[test]
    fn real_tree_is_clean() {
        let findings = run_lint(&workspace_root());
        assert!(
            findings.is_empty(),
            "lint findings in tree:\n{}",
            findings.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n")
        );
    }
}
