//! `papyrus-lint`: whole-workspace static analyzer.
//!
//! Two layers:
//!
//! 1. **Token rules** ([`rules`]) — the eight file-local rules the repo has
//!    enforced since the lint was token-based (std-sync-lock,
//!    protocol-unwrap, recovery-unwrap, real-time, tel-span-balance,
//!    atomic-ordering-justified, unsafe-needs-safety-comment,
//!    no-atomic-in-protocol). These match token sequences from [`lexer`]
//!    and need no cross-file knowledge.
//! 2. **Interprocedural analyses** ([`analysis`]) — built on a lightweight
//!    item/body parser ([`parse`]) and a workspace call graph
//!    ([`callgraph`]): panic-reachability from protocol/recovery entry
//!    points, blocking-under-lock guard liveness, the protocol tag matrix,
//!    and the atomic pairing audit.
//!
//! Everything operates on a [`SourceTree`] — an in-memory snapshot of the
//! workspace `.rs` files — so the `--seed-bug` self-test ([`seedbug`]) can
//! plant violations without touching the checkout.
//!
//! False-positive policy, the analysis universe, and the waiver format are
//! documented in `DESIGN.md` §14.

pub mod analysis;
pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod seedbug;

use std::fs;
use std::path::{Path, PathBuf};

pub use report::{render_json, render_sarif, Finding};

/// One workspace source file, path relative to the root with `/` separators.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub rel: String,
    pub text: String,
}

/// In-memory snapshot of every `.rs` file under a root. All rules and
/// analyses read from here, never from disk, so planted-bug runs can patch
/// sources without modifying the checkout.
#[derive(Debug, Clone, Default)]
pub struct SourceTree {
    pub files: Vec<SourceFile>,
}

impl SourceTree {
    /// Load all `.rs` files under `root` (sorted by path). Skips build
    /// output, VCS metadata, lint fixtures, and the `xtask` crate (its
    /// modelcheck driver mentions orderings in flag strings).
    pub fn load(root: &Path) -> SourceTree {
        let mut paths = Vec::new();
        collect_rs_files(root, root, &mut paths);
        paths.sort();
        let mut files = Vec::new();
        for rel in paths {
            let Ok(text) = fs::read_to_string(root.join(&rel)) else { continue };
            files.push(SourceFile { rel: rel.to_string_lossy().replace('\\', "/"), text });
        }
        SourceTree { files }
    }

    /// Build a tree directly from `(rel, source)` pairs (tests, fixtures).
    pub fn from_pairs(pairs: &[(&str, &str)]) -> SourceTree {
        SourceTree {
            files: pairs
                .iter()
                .map(|(rel, text)| SourceFile { rel: rel.to_string(), text: text.to_string() })
                .collect(),
        }
    }

    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Replace the first occurrence of `anchor` in `rel` with `replacement`;
    /// returns the 1-based line of the replacement. Errors loudly if the
    /// file or anchor is missing, so a drifted seed-bug patch fails the
    /// self-test instead of silently planting nothing.
    pub fn patch(&mut self, rel: &str, anchor: &str, replacement: &str) -> Result<usize, String> {
        let f = self
            .files
            .iter_mut()
            .find(|f| f.rel == rel)
            .ok_or_else(|| format!("seed patch target missing: {rel}"))?;
        let at = f
            .text
            .find(anchor)
            .ok_or_else(|| format!("seed patch anchor not found in {rel}: {anchor:?}"))?;
        let line = f.text[..at].matches('\n').count() + 1;
        f.text = f.text.replacen(anchor, replacement, 1);
        Ok(line)
    }
}

/// Recursively gather `.rs` files, paths relative to `root`.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "fixtures" | "xtask") {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// The eight token rules over all files under `root` (the historical
/// `cargo xtask lint` pass).
pub fn run_lint(root: &Path) -> Vec<Finding> {
    rules::run_rules(&SourceTree::load(root))
}

/// The four interprocedural analyses over an already-loaded tree.
pub fn run_deep(tree: &SourceTree) -> Vec<Finding> {
    analysis::run_deep(tree)
}
