//! Workspace call graph.
//!
//! Nodes are the `fn` items parsed by [`crate::parse`]; edges are call
//! sites resolved by **name + arity**, with receiver/qualifier shape used
//! to narrow candidates when it can. There is no type inference, so a
//! method call with several same-name-same-arity candidates links to all
//! of them and the ambiguity is recorded explicitly — over-approximation
//! makes the reachability analyses conservative (they can false-positive,
//! never silently miss an edge the resolver knew about).

use std::collections::HashMap;

use crate::lexer::{lex, Lexed};
use crate::parse::{extract_calls, parse_fns, CallSite, Callee, FnItem};
use crate::rules::find_seq;
use crate::SourceTree;

/// Parsed view of the files an analysis runs over.
pub struct Ws {
    pub rels: Vec<String>,
    pub lexed: Vec<Lexed>,
    pub tests_from: Vec<Option<usize>>,
    pub lines: Vec<Vec<String>>,
    pub fns: Vec<FnItem>,
    /// Per file: indices into `fns`.
    pub file_fns: Vec<Vec<usize>>,
    pub calls: Vec<CallSite>,
    /// Per fn: indices into `calls`.
    pub calls_by_fn: Vec<Vec<usize>>,
}

impl Ws {
    /// Parse every file of `tree` whose path passes `filter`.
    pub fn build(tree: &SourceTree, filter: &dyn Fn(&str) -> bool) -> Ws {
        let mut ws = Ws {
            rels: Vec::new(),
            lexed: Vec::new(),
            tests_from: Vec::new(),
            lines: Vec::new(),
            fns: Vec::new(),
            file_fns: Vec::new(),
            calls: Vec::new(),
            calls_by_fn: Vec::new(),
        };
        for f in tree.files.iter().filter(|f| filter(&f.rel)) {
            let lx = lex(&f.text);
            let tests_from =
                find_seq(&lx.tokens, &["#", "[", "cfg", "(", "test"]).map(|i| lx.tokens[i].line);
            let file = ws.rels.len();
            let before = ws.fns.len();
            parse_fns(file, &lx, tests_from, &mut ws.fns);
            ws.file_fns.push((before..ws.fns.len()).collect());
            ws.rels.push(f.rel.clone());
            ws.lexed.push(lx);
            ws.tests_from.push(tests_from);
            ws.lines.push(f.text.lines().map(str::to_string).collect());
        }
        for file in 0..ws.rels.len() {
            for &fi in &ws.file_fns[file] {
                if ws.fns[fi].is_test {
                    continue;
                }
                extract_calls(
                    fi,
                    &ws.fns,
                    &ws.file_fns[file],
                    &ws.lexed[file].tokens,
                    &mut ws.calls,
                );
            }
        }
        ws.calls_by_fn = vec![Vec::new(); ws.fns.len()];
        for (ci, c) in ws.calls.iter().enumerate() {
            ws.calls_by_fn[c.caller].push(ci);
        }
        ws
    }

    pub fn rel_of(&self, f: usize) -> &str {
        &self.rels[self.fns[f].file]
    }

    pub fn line_text(&self, file: usize, line: usize) -> String {
        self.lines[file].get(line - 1).cloned().unwrap_or_default()
    }

    /// `name (file:line)` for reports.
    pub fn fn_label(&self, f: usize) -> String {
        let item = &self.fns[f];
        format!("{} ({}:{})", item.display(), self.rels[item.file], item.line)
    }

    /// Waived if a comment carrying `lint:allow(rule)` sits on `line`
    /// (trailing style) or on the line directly above it (attribute style —
    /// what rustfmt produces when a trailing comment overflows the width).
    pub fn allowed(&self, file: usize, line: usize, rule: &str) -> bool {
        let needle = format!("lint:allow({rule})");
        self.lexed[file]
            .comments_on(line)
            .chain(self.lexed[file].comments_on(line.saturating_sub(1)))
            .any(|c| c.text.contains(&needle))
    }

    pub fn in_tests(&self, file: usize, line: usize) -> bool {
        self.tests_from[file].is_some_and(|t| line >= t)
    }
}

/// One ambiguously resolved call: several same-name-same-arity candidates.
#[derive(Debug)]
pub struct Ambiguity {
    pub file: String,
    pub line: usize,
    pub name: String,
    pub arity: usize,
    pub candidates: Vec<usize>,
}

/// Resolved call graph over a [`Ws`].
pub struct CallGraph {
    /// Per fn: deduped callee fn indices.
    pub edges: Vec<Vec<usize>>,
    /// Per call site (parallel to `ws.calls`): resolved targets.
    pub call_targets: Vec<Vec<usize>>,
    /// Calls that resolved to more than one candidate — reported, never
    /// silently dropped.
    pub ambiguous: Vec<Ambiguity>,
    /// Calls with no in-workspace candidate (std / external / shim calls).
    pub unresolved: usize,
}

impl CallGraph {
    pub fn build(ws: &Ws) -> CallGraph {
        // Name index over non-test fns.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in ws.fns.iter().enumerate() {
            if !f.is_test {
                by_name.entry(&f.name).or_default().push(i);
            }
        }
        let mut edges = vec![Vec::new(); ws.fns.len()];
        let mut call_targets = vec![Vec::new(); ws.calls.len()];
        let mut ambiguous = Vec::new();
        let mut unresolved = 0usize;
        for (ci, call) in ws.calls.iter().enumerate() {
            let cands = resolve(ws, &by_name, call);
            if cands.is_empty() {
                unresolved += 1;
                continue;
            }
            if cands.len() > 1 {
                ambiguous.push(Ambiguity {
                    file: ws.rel_of(call.caller).to_string(),
                    line: call.line,
                    name: call.name.clone(),
                    arity: call.arity,
                    candidates: cands.clone(),
                });
            }
            for &t in &cands {
                if !edges[call.caller].contains(&t) {
                    edges[call.caller].push(t);
                }
            }
            call_targets[ci] = cands;
        }
        CallGraph { edges, call_targets, ambiguous, unresolved }
    }

    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Forward BFS from `seeds`; returns (visited, parent) with
    /// `parent[seed] == seed`.
    pub fn reach(&self, seeds: &[usize]) -> (Vec<bool>, Vec<usize>) {
        bfs(seeds, &self.edges)
    }

    /// Reverse BFS: every fn from which some seed is reachable.
    pub fn reach_rev(&self, seeds: &[usize]) -> (Vec<bool>, Vec<usize>) {
        let mut redges = vec![Vec::new(); self.edges.len()];
        for (from, tos) in self.edges.iter().enumerate() {
            for &to in tos {
                redges[to].push(from);
            }
        }
        bfs(seeds, &redges)
    }

    /// Path `seed -> ... -> target` following the parent map from
    /// [`Self::reach`].
    pub fn path_to(parent: &[usize], target: usize) -> Vec<usize> {
        let mut path = vec![target];
        let mut cur = target;
        while parent[cur] != cur {
            cur = parent[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }
}

fn bfs(seeds: &[usize], edges: &[Vec<usize>]) -> (Vec<bool>, Vec<usize>) {
    let mut visited = vec![false; edges.len()];
    let mut parent: Vec<usize> = (0..edges.len()).collect();
    let mut queue = std::collections::VecDeque::new();
    for &s in seeds {
        if !visited[s] {
            visited[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(f) = queue.pop_front() {
        for &t in &edges[f] {
            if !visited[t] {
                visited[t] = true;
                parent[t] = f;
                queue.push_back(t);
            }
        }
    }
    (visited, parent)
}

/// Method names on std collections / smart pointers / Option-Result that
/// same-named workspace methods would shadow. A `.get(..)` on a HashMap is
/// lexically identical to a `.get(..)` on `Db`, and linking every such
/// call to every workspace `get` poisons reachability with thousands of
/// false edges (the first real-tree sweep produced 100+ findings that
/// were all `map.get`/`vec.push` lookalikes). Method calls with these
/// names only resolve through the `self.m(...)` own-impl narrowing; a
/// receiver we cannot type does NOT link them. Policy: DESIGN.md §14.
const COMMON_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "clear",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "retain",
    "extend",
    "drain",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "entry",
    "clone",
    "new",
    "take",
    "replace",
    "write",
    "read",
    "lock",
];

/// Candidate set for one call. Resolution rules, in order:
/// - method calls match `has_self` fns by name+arity; `self.m(...)`
///   narrows to the enclosing impl type when it defines a match;
///   [`COMMON_METHODS`] names never link without that narrowing;
/// - `Qual::f(...)` narrows to impls of `Qual`, then to fns in a
///   file/crate spelled like a module path `qual`; a qualifier matching
///   neither is an external type (`HashMap::new`) and stays unresolved;
/// - bare calls prefer same-file definitions before going global.
fn resolve(ws: &Ws, by_name: &HashMap<&str, Vec<usize>>, call: &CallSite) -> Vec<usize> {
    let Some(all) = by_name.get(call.name.as_str()) else { return Vec::new() };
    let caller = &ws.fns[call.caller];
    match &call.callee {
        Callee::SelfMethod | Callee::Method => {
            let methods: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| ws.fns[i].has_self && ws.fns[i].arity == call.arity)
                .collect();
            if call.callee == Callee::SelfMethod {
                if let Some(ty) = &caller.impl_type {
                    let own: Vec<usize> = methods
                        .iter()
                        .copied()
                        .filter(|&i| ws.fns[i].impl_type.as_deref() == Some(ty))
                        .collect();
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            if COMMON_METHODS.contains(&call.name.as_str()) {
                return Vec::new();
            }
            methods
        }
        Callee::Qualified(q) => {
            let arity_ok: Vec<usize> =
                all.iter().copied().filter(|&i| ws.fns[i].arity == call.arity).collect();
            let typed: Vec<usize> = arity_ok
                .iter()
                .copied()
                .filter(|&i| ws.fns[i].impl_type.as_deref() == Some(q.as_str()))
                .collect();
            if !typed.is_empty() {
                return typed;
            }
            let moduled: Vec<usize> = arity_ok
                .iter()
                .copied()
                .filter(|&i| !ws.fns[i].has_self && module_matches(ws.rel_of(i), q))
                .collect();
            if !moduled.is_empty() {
                return moduled;
            }
            // Qualifier matched no workspace impl or module: an external
            // type (`HashMap::new`, `Arc::new`) — do not guess.
            Vec::new()
        }
        Callee::Bare => {
            let frees: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| !ws.fns[i].has_self && ws.fns[i].arity == call.arity)
                .collect();
            let same_file: Vec<usize> =
                frees.iter().copied().filter(|&i| ws.fns[i].file == caller.file).collect();
            if !same_file.is_empty() {
                return same_file;
            }
            frees
        }
    }
}

/// Does path qualifier `q` plausibly name the file at `rel`? Matches the
/// file stem (`msg::encode` -> `.../msg.rs`), the crate directory
/// (`mpi::...` -> `crates/mpi/...`), or the crate's package ident
/// (`papyrus_mpi::...`, `papyruskv::...`).
fn module_matches(rel: &str, q: &str) -> bool {
    let stem = rel.rsplit('/').next().unwrap_or("").trim_end_matches(".rs");
    if stem == q {
        return true;
    }
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(dir) = parts.next() {
            if dir == q {
                return true;
            }
            if q.strip_prefix("papyrus_") == Some(dir) {
                return true;
            }
            if dir == "core" && q == "papyruskv" {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn fixture_ws() -> Ws {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/callgraph");
        let tree = SourceTree::load(&root);
        assert!(!tree.files.is_empty(), "callgraph fixture missing");
        Ws::build(&tree, &|_| true)
    }

    fn fn_idx(ws: &Ws, display: &str) -> usize {
        ws.fns
            .iter()
            .position(|f| f.display() == display)
            .unwrap_or_else(|| panic!("no fn {display}"))
    }

    #[test]
    fn node_and_edge_counts_are_pinned() {
        let ws = fixture_ws();
        let cg = CallGraph::build(&ws);
        // The fixture workspace defines exactly these fns (non-test):
        // alpha: entry, local_helper, recurse, shared (util.rs)
        // beta:  beta_helper, shared, leaf, Widget::new, Widget::poke,
        //        trait decl poke, Widget2::poke (Gadget impl), Widget2::new
        assert_eq!(
            ws.fns.iter().filter(|f| !f.is_test).count(),
            12,
            "fns: {:#?}",
            ws.fns.iter().map(|f| f.display()).collect::<Vec<_>>()
        );
        // Pinned edge count: entry->local_helper, entry->beta_helper,
        // entry->{shared x2}, entry->recurse, entry->Widget::new,
        // entry->{poke x3}, recurse->recurse, beta_helper->shared,
        // beta_helper->leaf, Widget::poke->leaf, Widget2::poke->leaf.
        assert_eq!(cg.edge_count(), 14, "edges");
        // Recursion: recurse has a self-edge.
        let r = fn_idx(&ws, "recurse");
        assert!(cg.edges[r].contains(&r), "recursion edge");
    }

    #[test]
    fn cross_crate_qualified_call_resolves_uniquely() {
        let ws = fixture_ws();
        let cg = CallGraph::build(&ws);
        let entry = fn_idx(&ws, "entry");
        let beta_helper = fn_idx(&ws, "beta_helper");
        assert!(cg.edges[entry].contains(&beta_helper));
        // beta::beta_helper is qualified by crate dir, so it must NOT be
        // ambiguous even though resolution fell through to module match.
        assert!(!cg.ambiguous.iter().any(|a| a.name == "beta_helper"), "{:#?}", cg.ambiguous);
    }

    #[test]
    fn same_name_free_fns_are_reported_ambiguous() {
        let ws = fixture_ws();
        let cg = CallGraph::build(&ws);
        // `shared(n)` exists in both crates; the bare call inside beta
        // narrows to beta's own file, but alpha's `entry` calls it with no
        // same-file candidate... alpha defines shared in util.rs (other
        // file, same crate) so the call goes global: 2 candidates.
        let amb = cg
            .ambiguous
            .iter()
            .find(|a| a.name == "shared" && a.file.contains("alpha"))
            .expect("shared ambiguity recorded");
        assert_eq!(amb.candidates.len(), 2);
        assert_eq!(amb.arity, 1);
        // Both candidates got edges — never silently dropped.
        let entry = fn_idx(&ws, "entry");
        for &c in &amb.candidates {
            assert!(cg.edges[entry].contains(&c));
        }
    }

    #[test]
    fn trait_method_ambiguity_links_all_impls() {
        let ws = fixture_ws();
        let cg = CallGraph::build(&ws);
        let amb = cg
            .ambiguous
            .iter()
            .find(|a| a.name == "poke")
            .expect("poke ambiguity across Widget and Widget2 impls");
        // Inherent Widget::poke, the bodyless trait declaration, and the
        // Gadget-for-Widget2 impl — all linked, none dropped.
        assert_eq!(amb.candidates.len(), 3, "{amb:#?}");
        let entry = fn_idx(&ws, "entry");
        let leaf = fn_idx(&ws, "leaf");
        // Reachability flows through both impls to the shared leaf.
        let (visited, _) = cg.reach(&[entry]);
        assert!(visited[leaf]);
    }

    #[test]
    fn reverse_reachability_and_paths() {
        let ws = fixture_ws();
        let cg = CallGraph::build(&ws);
        let entry = fn_idx(&ws, "entry");
        let leaf = fn_idx(&ws, "leaf");
        let (rev, _) = cg.reach_rev(&[leaf]);
        assert!(rev[entry], "entry reaches leaf, so reverse BFS from leaf hits entry");
        let (vis, parent) = cg.reach(&[entry]);
        assert!(vis[leaf]);
        let path = CallGraph::path_to(&parent, leaf);
        assert_eq!(path.first(), Some(&entry));
        assert_eq!(path.last(), Some(&leaf));
        assert!(path.len() >= 3, "path goes through an intermediate fn: {path:?}");
    }
}
