//! Finding type and output renderers (human, JSON, SARIF).

/// One lint finding. `trace` is empty for file-local token rules; the
/// interprocedural analyses fill it with the call path that makes the
/// finding reachable (entry point first, flagged function last).
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub text: String,
    pub trace: Vec<String>,
}

impl Finding {
    pub fn render(&self) -> String {
        let mut out = format!("{}:{}: [{}] {}", self.path, self.line, self.rule, self.text.trim());
        if !self.trace.is_empty() {
            out.push_str("\n    via: ");
            out.push_str(&self.trace.join(" -> "));
        }
        out
    }

    fn json(&self) -> String {
        let mut out = format!(
            r#"{{"rule":{},"file":{},"line":{},"snippet":{}"#,
            json_str(self.rule),
            json_str(&self.path),
            self.line,
            json_str(self.text.trim())
        );
        if !self.trace.is_empty() {
            out.push_str(",\"trace\":[");
            for (i, hop) in self.trace.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(hop));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Render findings as a JSON array (machine-readable `--format json`).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str("  ");
        out.push_str(&f.json());
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

/// Render findings as a minimal SARIF 2.1.0 log (one run, one result per
/// finding) so CI can upload the pass as a code-scanning artifact. The call
/// trace, when present, is appended to the message text — SARIF codeFlows
/// buy nothing for a grep-able artifact.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    let mut out = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \
         \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"runs\": [{\n    \"tool\": {\"driver\": {\"name\": \"papyrus-lint\", \"rules\": [",
    );
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"id\": {}}}", json_str(r)));
    }
    out.push_str("]}},\n    \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut message = f.text.trim().to_string();
        if !f.trace.is_empty() {
            message.push_str(" [via: ");
            message.push_str(&f.trace.join(" -> "));
            message.push(']');
        }
        out.push_str(&format!(
            "\n      {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            json_str(f.rule),
            json_str(&message),
            json_str(&f.path),
            f.line
        ));
    }
    out.push_str(if findings.is_empty() { "]\n  }]\n}" } else { "\n    ]\n  }]\n}" });
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_format_is_stable() {
        let findings = vec![Finding {
            rule: "std-sync-lock",
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            text: "    use std::sync::Mutex; // \"quoted\"".into(),
            trace: vec![],
        }];
        assert_eq!(
            render_json(&findings),
            "[\n  {\"rule\":\"std-sync-lock\",\"file\":\"crates/x/src/lib.rs\",\"line\":3,\
             \"snippet\":\"use std::sync::Mutex; // \\\"quoted\\\"\"}\n]"
        );
        assert_eq!(render_json(&[]), "[]");
    }

    #[test]
    fn json_includes_trace_when_present() {
        let findings = vec![Finding {
            rule: "panic-path",
            path: "crates/x/src/lib.rs".into(),
            line: 9,
            text: "x.unwrap()".into(),
            trace: vec!["entry (a.rs:1)".into(), "inner (b.rs:2)".into()],
        }];
        let json = render_json(&findings);
        assert!(json.contains("\"trace\":[\"entry (a.rs:1)\",\"inner (b.rs:2)\"]"), "{json}");
    }

    #[test]
    fn sarif_has_schema_rules_and_locations() {
        let findings = vec![Finding {
            rule: "blocking-under-lock",
            path: "crates/core/src/db.rs".into(),
            line: 42,
            text: "recv()".into(),
            trace: vec!["f (db.rs:40)".into()],
        }];
        let sarif = render_sarif(&findings);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"papyrus-lint\""));
        assert!(sarif.contains("\"id\": \"blocking-under-lock\""));
        assert!(sarif.contains("\"uri\": \"crates/core/src/db.rs\""));
        assert!(sarif.contains("\"startLine\": 42"));
        assert!(sarif.contains("[via: f (db.rs:40)]"));
        // Empty log is still well-formed.
        assert!(render_sarif(&[]).contains("\"results\": []"));
    }
}
