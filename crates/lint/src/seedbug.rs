//! `--seed-bug`: plant known violations into an in-memory copy of the
//! workspace and demand that the analyses convict every one of them.
//!
//! This is the same N/N-convicted self-test pattern the modelcheck, chaos,
//! and perfline planes use: a checker that has never caught a planted bug
//! is indistinguishable from a checker that is broken. Patches are
//! anchored to exact source text and fail loudly when the anchor drifts,
//! so a refactor cannot silently turn a seed into a no-op.
//!
//! The checkout is never modified — seeds patch a clone of the
//! [`SourceTree`] snapshot.

use std::path::Path;

use crate::report::Finding;
use crate::{analysis, rules, SourceTree};

/// One planted violation: anchored patches plus the conviction predicate.
pub struct Seed {
    pub id: &'static str,
    pub description: &'static str,
    /// (relative path, anchor text, replacement text), applied in order.
    pub patches: &'static [(&'static str, &'static str, &'static str)],
    /// Rule that must convict.
    pub rule: &'static str,
    /// Substring that must appear in the convicting finding's text.
    pub expect: &'static str,
    /// File the convicting finding must point into.
    pub file: &'static str,
}

pub const SEEDS: &[Seed] = &[
    Seed {
        id: "panic-direct-entry",
        description: "unwrap planted directly in rpc_with_retry (protocol entry fn)",
        patches: &[(
            "crates/core/src/runtime.rs",
            "ctx.comm_req.send(owner, req_tag, encode(seq));",
            "ctx.comm_req.send(owner, req_tag, encode(seq)); let _seed = None::<u32>.unwrap();",
        )],
        rule: "panic-path",
        expect: "_seed",
        file: "crates/core/src/runtime.rs",
    },
    Seed {
        id: "panic-transitive-sstable",
        description: "unwrap planted deep in SstReader::read_record, reachable via get path",
        patches: &[(
            "crates/core/src/sstable.rs",
            "let tomb = header[8] != 0;",
            "let tomb = *header.get(8).unwrap() != 0;",
        )],
        rule: "panic-path",
        expect: "header.get(8)",
        file: "crates/core/src/sstable.rs",
    },
    Seed {
        id: "panic-macro-recovery",
        description: "panic! planted in ckpt::checkpoint (recovery entry fn)",
        patches: &[(
            "crates/core/src/ckpt.rs",
            "let dest = dest.trim_matches('/').to_string();",
            "let dest = dest.trim_matches('/').to_string(); \
             if dest.len() > 65536 { panic!(\"checkpoint path overflow\") }",
        )],
        rule: "panic-path",
        expect: "panic-family macro",
        file: "crates/core/src/ckpt.rs",
    },
    Seed {
        id: "blocking-direct-barrier",
        description: "collective barrier planted under db.sync mutex guard",
        patches: &[(
            "crates/core/src/db.rs",
            "\n    sync.pending_flushes -= 1;",
            "\n    ctx.comm_ctl.barrier();\n    sync.pending_flushes -= 1;",
        )],
        rule: "blocking-under-lock",
        expect: "guard `sync`",
        file: "crates/core/src/db.rs",
    },
    Seed {
        id: "blocking-transitive-merge",
        description: "SSTable merge (charged NVM I/O, many hops above NvmStore::io) \
                      planted under the ssts write guard",
        patches: &[(
            "crates/core/src/db.rs",
            "        let mut ssts = db.ssts.write();\n        ssts.clear();",
            "        let mut ssts = db.ssts.write();\n        let _ = sstable::merge_at(&store, \
             &snapshot, &base, new_ssid, true, stamp);\n        ssts.clear();",
        )],
        rule: "blocking-under-lock",
        expect: "guard `ssts`",
        file: "crates/core/src/db.rs",
    },
    Seed {
        id: "tag-sent-unhandled",
        description: "ZOMBIE tag declared and sent, but no handler arm awaits it",
        patches: &[
            (
                "crates/core/src/msg.rs",
                "pub const MIGRATE: u32 = 1;",
                "pub const MIGRATE: u32 = 1;\n    pub const ZOMBIE: u32 = 90;",
            ),
            (
                "crates/core/src/runtime.rs",
                "ctx.comm_rep.send_at(src, tags::PUT_ACK, msg::encode_ack(seq), done);",
                "ctx.comm_rep.send_at(src, tags::PUT_ACK, msg::encode_ack(seq), done);\n    \
                 ctx.comm_rep.send_at(src, tags::ZOMBIE, msg::encode_ack(seq), done);",
            ),
        ],
        rule: "tag-matrix",
        expect: "tag `ZOMBIE`",
        file: "crates/core/src/runtime.rs",
    },
    Seed {
        id: "tag-handled-never-sent",
        description: "GHOST tag declared with a handler arm, but no send site exists",
        patches: &[
            (
                "crates/core/src/msg.rs",
                "pub const SHUTDOWN: u32 = 5;",
                "pub const SHUTDOWN: u32 = 5;\n    pub const GHOST: u32 = 91;",
            ),
            (
                "crates/core/src/runtime.rs",
                "tags::SHUTDOWN => return,",
                "tags::SHUTDOWN => return,\n            tags::GHOST => return,",
            ),
        ],
        rule: "tag-matrix",
        expect: "tag `GHOST`",
        file: "crates/core/src/runtime.rs",
    },
    Seed {
        id: "tag-duplicate-value",
        description: "ALIAS_PUT declared with PUT_SYNC's value — monitor channels would alias",
        patches: &[(
            "crates/core/src/msg.rs",
            "pub const PUT_SYNC: u32 = 2;",
            "pub const PUT_SYNC: u32 = 2;\n    pub const ALIAS_PUT: u32 = 2;",
        )],
        rule: "tag-matrix",
        expect: "duplicate tag value 2",
        file: "crates/core/src/msg.rs",
    },
    Seed {
        id: "atomic-unpaired-release",
        description: "queue slot seq Acquire loads weakened to Relaxed, orphaning the \
                      Release publication stores",
        patches: &[
            // Both loads are textually identical; `patch` replaces the
            // first remaining occurrence, so applying twice hits both.
            (
                "crates/core/src/queue.rs",
                "let seq = slot.seq.load(Ordering::Acquire);",
                "let seq = slot.seq.load(Ordering::Relaxed);",
            ),
            (
                "crates/core/src/queue.rs",
                "let seq = slot.seq.load(Ordering::Acquire);",
                "let seq = slot.seq.load(Ordering::Relaxed);",
            ),
        ],
        rule: "atomic-pairing",
        expect: "no Acquire-side load of `seq`",
        file: "crates/core/src/queue.rs",
    },
    Seed {
        id: "atomic-acquire-no-release",
        description: "Clock's AcqRel RMWs weakened to Relaxed — now() acquires from nothing",
        patches: &[
            (
                "crates/simtime/src/clock.rs",
                "self.now.fetch_add(dur, Ordering::AcqRel) + dur",
                "self.now.fetch_add(dur, Ordering::Relaxed) + dur",
            ),
            (
                "crates/simtime/src/clock.rs",
                "self.now.fetch_max(t, Ordering::AcqRel).max(t)",
                "self.now.fetch_max(t, Ordering::Relaxed).max(t)",
            ),
        ],
        rule: "atomic-pairing",
        expect: "every store to `now` is Relaxed",
        file: "crates/simtime/src/clock.rs",
    },
    Seed {
        id: "atomic-ptr-relaxed",
        description: "AtomicPtr published with Relaxed ordering",
        patches: &[(
            "crates/core/src/runtime.rs",
            "self.inner.comm_sig.send(r, signum, bytes::Bytes::new());",
            "self.inner.comm_sig.send(r, signum, bytes::Bytes::new()); \
             let hot: AtomicPtr<u8> = AtomicPtr::new(std::ptr::null_mut()); \
             hot.store(sig_ptr, Ordering::Relaxed);",
        )],
        rule: "atomic-pairing",
        expect: "AtomicPtr field `hot`",
        file: "crates/core/src/runtime.rs",
    },
];

/// Outcome of one seed run.
pub struct Conviction {
    pub id: &'static str,
    pub convicted: bool,
    pub detail: String,
}

/// Plant one seed into a clone of `base` and run the full pass (token
/// rules + deep analyses) over the patched tree.
pub fn run_one(base: &SourceTree, seed: &Seed) -> Result<Conviction, String> {
    let mut tree = base.clone();
    for (rel, anchor, replacement) in seed.patches {
        tree.patch(rel, anchor, replacement).map_err(|e| format!("seed `{}`: {e}", seed.id))?;
    }
    let mut findings = rules::run_rules(&tree);
    findings.extend(analysis::run_deep(&tree));
    let hit: Option<&Finding> = findings
        .iter()
        .find(|f| f.rule == seed.rule && f.path == seed.file && f.text.contains(seed.expect));
    Ok(match hit {
        Some(f) => Conviction { id: seed.id, convicted: true, detail: f.render() },
        None => Conviction {
            id: seed.id,
            convicted: false,
            detail: format!(
                "expected a `{}` finding in {} containing {:?}; got {} finding(s) total",
                seed.rule,
                seed.file,
                seed.expect,
                findings.len()
            ),
        },
    })
}

/// Run `which` (a seed id, or `all`) against the workspace at `root`.
pub fn run(root: &Path, which: &str) -> Result<Vec<Conviction>, String> {
    let base = SourceTree::load(root);
    if base.files.is_empty() {
        return Err(format!("no sources under {}", root.display()));
    }
    let selected: Vec<&Seed> = if which == "all" {
        SEEDS.iter().collect()
    } else {
        let s: Vec<&Seed> = SEEDS.iter().filter(|s| s.id == which).collect();
        if s.is_empty() {
            return Err(format!(
                "unknown seed `{which}` (have: {})",
                SEEDS.iter().map(|s| s.id).collect::<Vec<_>>().join(", ")
            ));
        }
        s
    };
    selected.iter().map(|s| run_one(&base, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    /// Every planted violation must be convicted by its analysis — and the
    /// anchors must still match the live sources (drift fails loudly).
    #[test]
    fn all_seeds_convict() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
        let convictions = run(root, "all").expect("seed patches apply");
        let missed: Vec<String> = convictions
            .iter()
            .filter(|c| !c.convicted)
            .map(|c| format!("{}: {}", c.id, c.detail))
            .collect();
        assert!(
            missed.is_empty(),
            "{}/{} seeds convicted; missed:\n{}",
            convictions.len() - missed.len(),
            convictions.len(),
            missed.join("\n")
        );
    }

    /// Seed ids are unique — `--seed-bug <id>` must be unambiguous.
    #[test]
    fn seed_ids_unique() {
        let mut ids: Vec<&str> = SEEDS.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), SEEDS.len());
    }
}
