//! Lightweight item/body parser over the token stream.
//!
//! Extracts just enough structure for interprocedural analysis: `fn` items
//! (name, enclosing `impl` type, visibility, arity, body token range) and
//! the call sites inside each body (callee name, qualifier or receiver
//! shape, argument count). It is not a real Rust parser — no types, no
//! macro expansion, no trait solving — and the call-graph layer is built
//! to tolerate that: resolution is by name + arity with every ambiguity
//! recorded explicitly (see `DESIGN.md` §14).

use crate::lexer::{Lexed, Tok, TokKind};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the file in the [`crate::SourceTree`].
    pub file: usize,
    pub name: String,
    /// Enclosing `impl` type name, if inside an `impl` block.
    pub impl_type: Option<String>,
    /// True if the first parameter is (some form of) `self`.
    pub has_self: bool,
    /// Parameter count excluding `self`.
    pub arity: usize,
    /// Carries any `pub` / `pub(crate)` / `pub(super)` marker.
    pub is_pub: bool,
    pub line: usize,
    /// Token index range of the body (exclusive of the outer braces).
    /// Empty for body-less trait method declarations.
    pub body: std::ops::Range<usize>,
    /// True if the item sits at/after the file's `#[cfg(test)]` marker.
    pub is_test: bool,
}

impl FnItem {
    /// `Type::name` or bare `name`, for reports.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Shape of a call site's receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(...)` with no path or receiver.
    Bare,
    /// `qual::foo(...)` — `qual` is the immediately preceding path segment
    /// (a type for associated fns, a module for free fns).
    Qualified(String),
    /// `self.foo(...)` — method on the enclosing impl type.
    SelfMethod,
    /// `expr.foo(...)` — method with an arbitrary receiver expression.
    Method,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling [`FnItem`] in the parsed file set.
    pub caller: usize,
    pub name: String,
    pub callee: Callee,
    /// Argument count (excluding any method receiver).
    pub arity: usize,
    pub line: usize,
    /// Token index of the callee name within the file's token stream.
    pub tok: usize,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Indices into the global fn list of fns defined in this file.
    pub fns: Vec<usize>,
}

/// Keywords and constructors that look like `name(` but are not calls.
pub(crate) fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "fn"
            | "move"
            | "let"
            | "else"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "box"
            | "dyn"
            | "impl"
            | "where"
            | "use"
            | "mod"
            | "pub"
            | "crate"
            | "super"
            | "ref"
            | "mut"
            | "break"
            | "continue"
    )
}

/// Extract `fn` items from a lexed file. `file` is the tree index; `fns`
/// is the global accumulator (body ranges index into this file's tokens).
pub fn parse_fns(file: usize, lx: &Lexed, tests_from: Option<usize>, fns: &mut Vec<FnItem>) {
    let toks = &lx.tokens;
    // Impl contexts as (type name, brace depth of the impl body).
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                while impls.last().is_some_and(|(_, d)| *d > depth) {
                    impls.pop();
                }
            }
            "impl" if toks[i].kind == TokKind::Ident => {
                if let Some((ty, open)) = parse_impl_header(toks, i) {
                    impls.push((ty, depth + 1));
                    depth += 1;
                    i = open;
                }
            }
            "fn" if toks[i].kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) =>
            {
                let name_tok = i + 1;
                let name = toks[name_tok].text.clone();
                let line = toks[name_tok].line;
                let is_pub = has_pub_before(toks, i);
                // Skip generics between name and `(`.
                let mut j = name_tok + 1;
                if toks.get(j).is_some_and(|t| t.text == "<") {
                    j = skip_angles(toks, j);
                }
                if toks.get(j).is_none_or(|t| t.text != "(") {
                    i += 1;
                    continue;
                }
                let (arity, has_self, params_end) = count_params(toks, j);
                // Scan to the body `{` or a `;` (trait declaration).
                let mut k = params_end;
                let mut body = 0..0;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => {
                            let close = matching_brace(toks, k);
                            body = (k + 1)..close;
                            break;
                        }
                        ";" => break,
                        "<" => k = skip_angles(toks, k),
                        _ => k += 1,
                    }
                }
                fns.push(FnItem {
                    file,
                    name,
                    impl_type: impls.last().map(|(t, _)| t.clone()),
                    has_self,
                    arity,
                    is_pub,
                    line,
                    body,
                    is_test: tests_from.is_some_and(|t| line >= t),
                });
                i = name_tok;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Parse an `impl` header starting at token `i` (`impl`); returns the type
/// name and the index of the opening body brace.
fn parse_impl_header(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.text == "<") {
        j = skip_angles(toks, j);
    }
    let mut after_for: Option<usize> = None;
    let start = j;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => {
                // The implemented type: last path segment after `for` if
                // present (`impl Trait for Type`), else after `impl`.
                let seg_start = after_for.unwrap_or(start);
                let ty = last_path_segment(toks, seg_start, j)?;
                return Some((ty, j));
            }
            ";" => return None,
            "for" => after_for = Some(j + 1),
            "<" => j = skip_angles(toks, j),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Last identifier of the leading path in `toks[start..end]` (e.g.
/// `crate :: msg :: GetResp < 'a >` -> `GetResp`).
fn last_path_segment(toks: &[Tok], start: usize, end: usize) -> Option<String> {
    let mut last = None;
    let mut j = start;
    while j < end {
        let t = &toks[j];
        if t.kind == TokKind::Ident {
            if t.text == "for" || t.text == "where" {
                break;
            }
            last = Some(t.text.clone());
            j += 1;
        } else if t.text == ":" {
            j += 1;
        } else if t.text == "<" {
            break;
        } else if t.text == "&" || t.text == "(" {
            // `impl Trait for &Type` / tuple impls: keep scanning.
            j += 1;
        } else {
            break;
        }
    }
    last
}

/// Skip a balanced `< ... >` region starting at the `<` token; returns the
/// index just past the matching `>`. Lifetimes are separate tokens so only
/// `<` / `>` puncts count.
fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            // `(`/`{` inside generics (const generics) — bail out rather
            // than mis-skip; the caller degrades gracefully.
            "(" | "{" | ";" => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Token index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// True if a `pub` marker directly precedes the `fn` keyword at `fn_idx`
/// (allowing `pub(crate)`, `pub(super)`, `pub(in path)`, and the
/// `unsafe` / `const` / `extern "C"` qualifiers in between).
fn has_pub_before(toks: &[Tok], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    let mut steps = 0;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        match toks[j].text.as_str() {
            "pub" => return true,
            "unsafe" | "const" | "extern" | ")" | "(" | "crate" | "super" | "in" => continue,
            _ => {
                if toks[j].kind == TokKind::Str {
                    continue; // extern "C"
                }
                return false;
            }
        }
    }
    false
}

/// Count parameters of the list opening at `open` (a `(`). Returns
/// (arity excluding self, has_self, index past the closing `)`).
fn count_params(toks: &[Tok], open: usize) -> (usize, bool, usize) {
    let mut depth = 0usize;
    let mut j = open;
    let mut commas = 0usize;
    let mut content = false;
    let mut last_was_comma = false;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "<" if depth == 1 => {
                // Generic args in a param type: skip so their commas
                // (`HashMap<K, V>`) don't count as parameter separators.
                let next = skip_angles(toks, j);
                if next > j {
                    j = next;
                    content = true;
                    last_was_comma = false;
                    continue;
                }
            }
            "," if depth == 1 => {
                commas += 1;
                last_was_comma = true;
                j += 1;
                continue;
            }
            _ => content = true,
        }
        if toks[j].text != "(" || depth != 1 {
            last_was_comma = false;
        }
        j += 1;
    }
    let close = j;
    if !content {
        return (0, false, close + 1);
    }
    let mut params = commas + 1;
    if last_was_comma {
        params -= 1; // trailing comma
    }
    // Self detection: first tokens inside are `self` / `& self` /
    // `& mut self` / `& 'a mut self` / `mut self`.
    let mut k = open + 1;
    while toks
        .get(k)
        .is_some_and(|t| t.text == "&" || t.text == "mut" || t.kind == TokKind::Lifetime)
    {
        k += 1;
    }
    let has_self = toks.get(k).is_some_and(|t| t.text == "self");
    let arity = if has_self { params.saturating_sub(1) } else { params };
    (arity, has_self, close + 1)
}

/// Count arguments of a call whose `(` is at `open`. Commas inside nested
/// delimiters do not count, and commas inside closure parameter pipes
/// (`|a, b|`) are skipped so `fold(0, |acc, x| ...)` reads as two args.
pub fn count_args(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    let mut commas = 0usize;
    let mut content = false;
    let mut last_was_comma = false;
    let mut prev_text = String::new();
    while j < toks.len() {
        let text = toks[j].text.as_str();
        match text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => {
                commas += 1;
                last_was_comma = true;
                prev_text = text.to_string();
                j += 1;
                continue;
            }
            "|" if depth == 1 && matches!(prev_text.as_str(), "(" | "," | "move" | "=" | "") => {
                // Closure parameter list: skip to the matching `|`,
                // ignoring its commas. Nested delimiters inside patterns
                // (`|(k, v)|`) keep their own balance.
                content = true;
                let mut d = 0usize;
                let mut k = j + 1;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "[" | "<" => d += 1,
                        ")" | "]" | ">" => d = d.saturating_sub(1),
                        "|" if d == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                prev_text = "|".to_string();
                j = k + 1;
                last_was_comma = false;
                continue;
            }
            _ => content = true,
        }
        if !(text == "(" && depth == 1) {
            last_was_comma = false;
        }
        prev_text = text.to_string();
        j += 1;
    }
    if !content {
        return 0;
    }
    let mut args = commas + 1;
    if last_was_comma {
        args -= 1;
    }
    args
}

/// Extract call sites from the body of `fns[f]`. `toks` is the owning
/// file's token stream. Calls inside nested fn bodies are attributed to
/// the innermost fn, so pass the full per-file fn list for containment
/// checks.
pub fn extract_calls(
    f: usize,
    fns: &[FnItem],
    file_fns: &[usize],
    toks: &[Tok],
    out: &mut Vec<CallSite>,
) {
    let body = fns[f].body.clone();
    'toks: for i in body.clone() {
        if toks[i].kind != TokKind::Ident || toks.get(i + 1).is_none_or(|t| t.text != "(") {
            continue;
        }
        let name = toks[i].text.as_str();
        if is_call_keyword(name) {
            continue;
        }
        if i > 0 && toks[i - 1].text == "fn" {
            continue; // definition, not a call
        }
        // Innermost-fn attribution: skip if another fn's body in this file
        // contains the token and is nested inside ours.
        for &other in file_fns {
            if other != f
                && fns[other].body.contains(&i)
                && fns[other].body.start > body.start
                && fns[other].body.end < body.end
            {
                continue 'toks;
            }
        }
        let callee = if i > 0 && toks[i - 1].text == "." {
            if i >= 2 && toks[i - 2].text == "self" && (i < 3 || toks[i - 3].text != ".") {
                Callee::SelfMethod
            } else {
                Callee::Method
            }
        } else if i >= 2 && toks[i - 1].text == ":" && toks[i - 2].text == ":" {
            match toks.get(i.wrapping_sub(3)) {
                Some(q) if q.kind == TokKind::Ident => Callee::Qualified(q.text.clone()),
                _ => Callee::Bare,
            }
        } else {
            Callee::Bare
        };
        out.push(CallSite {
            caller: f,
            name: name.to_string(),
            callee,
            arity: count_args(toks, i + 1),
            line: toks[i].line,
            tok: i,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> (Vec<FnItem>, Vec<CallSite>) {
        let lx = lex(src);
        let mut fns = Vec::new();
        parse_fns(0, &lx, None, &mut fns);
        let file_fns: Vec<usize> = (0..fns.len()).collect();
        let mut calls = Vec::new();
        for f in 0..fns.len() {
            extract_calls(f, &fns, &file_fns, &lx.tokens, &mut calls);
        }
        (fns, calls)
    }

    #[test]
    fn fn_items_with_impl_context_and_arity() {
        let src = r#"
            pub struct Table;
            impl Table {
                pub fn new(cap: usize) -> Self { Table }
                fn get(&self, key: &[u8]) -> Option<u32> { None }
                pub(crate) fn put(&mut self, key: Vec<u8>, val: Vec<u8>) {}
            }
            impl Default for Table {
                fn default() -> Self { Table::new(0) }
            }
            fn free_helper(a: u32, b: u32, c: u32) -> u32 { a + b + c }
        "#;
        let (fns, calls) = parse_src(src);
        let names: Vec<_> = fns.iter().map(|f| f.display()).collect();
        assert_eq!(
            names,
            vec!["Table::new", "Table::get", "Table::put", "Table::default", "free_helper"]
        );
        assert_eq!(fns[0].arity, 1);
        assert!(!fns[0].has_self);
        assert!(fns[0].is_pub);
        assert_eq!(fns[1].arity, 1);
        assert!(fns[1].has_self);
        assert!(!fns[1].is_pub);
        assert_eq!(fns[2].arity, 2);
        assert!(fns[2].is_pub);
        assert_eq!(fns[4].arity, 3);
        // The default() body calls Table::new with one argument.
        let call = calls.iter().find(|c| c.name == "new").expect("call to new");
        assert_eq!(call.callee, Callee::Qualified("Table".into()));
        assert_eq!(call.arity, 1);
    }

    #[test]
    fn closure_commas_do_not_inflate_arity() {
        let src = r#"
            fn caller(v: Vec<(u32, u32)>) {
                consume(v.iter().fold(0, |acc, x| acc + x.0));
                transform(v, |(k, val)| k + val);
                spawn(move || step());
            }
        "#;
        let (_, calls) = parse_src(src);
        let arity = |n: &str| calls.iter().find(|c| c.name == n).map(|c| c.arity);
        assert_eq!(arity("fold"), Some(2));
        assert_eq!(arity("transform"), Some(2));
        assert_eq!(arity("spawn"), Some(1));
        assert_eq!(arity("step"), Some(0));
    }

    #[test]
    fn generic_params_do_not_split() {
        let src = "fn f(m: HashMap<String, u32>, n: usize) {}";
        let (fns, _) = parse_src(src);
        assert_eq!(fns[0].arity, 2);
    }

    #[test]
    fn self_receivers_and_qualifiers_classified() {
        let src = r#"
            impl Db {
                fn run(&self) {
                    self.step(1);
                    self.inner.deep_step(2);
                    msg::encode(3, 4);
                    helper();
                }
            }
        "#;
        let (_, calls) = parse_src(src);
        let shape = |n: &str| calls.iter().find(|c| c.name == n).map(|c| c.callee.clone());
        assert_eq!(shape("step"), Some(Callee::SelfMethod));
        assert_eq!(shape("deep_step"), Some(Callee::Method));
        assert_eq!(shape("encode"), Some(Callee::Qualified("msg".into())));
        assert_eq!(shape("helper"), Some(Callee::Bare));
    }

    #[test]
    fn nested_fns_get_innermost_attribution() {
        let src = r#"
            fn outer() {
                fn inner() { deep_call(); }
                outer_call();
            }
        "#;
        let (fns, calls) = parse_src(src);
        assert_eq!(fns.len(), 2);
        let deep = calls.iter().find(|c| c.name == "deep_call").expect("deep_call");
        assert_eq!(fns[deep.caller].name, "inner");
        let outer = calls.iter().find(|c| c.name == "outer_call").expect("outer_call");
        assert_eq!(fns[outer.caller].name, "outer");
    }

    #[test]
    fn trait_decls_without_bodies_are_kept_bodyless() {
        let src = r#"
            trait Backend {
                fn get(&self, path: &str) -> Option<u32>;
                fn put(&self, path: &str, data: u32) { default_put(path, data) }
            }
        "#;
        let (fns, _) = parse_src(src);
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_empty());
        assert!(!fns[1].body.is_empty());
    }
}
